//! # simrt — deterministic discrete-event simulation runtime
//!
//! This crate is the foundation of the MHA reproduction: a small,
//! allocation-conscious discrete-event simulation (DES) kernel plus the
//! supporting pieces every simulated subsystem needs:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`Engine`] / [`Model`] / [`Scheduler`] — the event loop,
//! * [`resource`] — analytic FIFO resources (server queues) that avoid
//!   per-byte event churn,
//! * [`stats`] — online statistics, histograms and percentile helpers,
//! * [`rng`] — deterministic, splittable seeding for reproducible workloads,
//! * [`arrival`] — seeded open-loop (Poisson) arrival processes,
//! * [`lanes`] — stable lane partitioning and disjoint-write scatter for
//!   sharded (per-server) simulation passes,
//! * [`sched`] — per-server service-latency EWMAs and the dispatch policy
//!   knob for client-side straggler-aware request scheduling.
//!
//! Determinism is a hard requirement: two runs with the same seed must
//! produce bit-identical results, so the event calendar breaks timestamp
//! ties by insertion sequence number, never by pointer or hash order.

pub mod arrival;
pub mod engine;
pub mod fault;
pub mod lanes;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;

pub use arrival::ArrivalProcess;
pub use engine::{Engine, Model, Scheduler};
pub use fault::{DeviceProfile, FaultKind, FaultPlan, RetryPolicy, ServerFault, ServerHealth};
pub use lanes::{DisjointSlice, LanePartition, LaneSpan};
pub use resource::FifoResource;
pub use rng::SeedSeq;
pub use sched::{SchedPolicy, SchedState, ServerLat};
pub use time::{SimDuration, SimTime};
