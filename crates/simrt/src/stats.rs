//! Online statistics and histograms for simulation reporting.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Power-of-two bucketed histogram for size/latency distributions.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; values of 0 land in bucket 0.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Log2Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Log2Histogram { buckets: Vec::new(), total: 0 }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 { 0 } else { 63 - value.leading_zeros() as usize };
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i` (0 beyond the populated range).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Number of populated buckets (highest index + 1).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterator over `(bucket_floor_value, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }
}

/// Exact percentile over a sample set (sorts a copy; fine for reporting).
///
/// `q` in `[0, 1]`; uses nearest-rank on the sorted sample. Returns NaN for
/// an empty sample.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

/// Coefficient of variation of a set of values (stddev / mean); a standard
/// load-imbalance metric for per-server I/O times. Returns 0 for empty or
/// zero-mean input.
pub fn imbalance_cv(values: &[f64]) -> f64 {
    let mut s = OnlineStats::new();
    for &v in values {
        s.push(v);
    }
    let m = s.mean();
    if m == 0.0 {
        0.0
    } else {
        s.stddev() / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn log2_histogram_buckets() {
        let mut h = Log2Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        assert_eq!(h.total(), 5);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(10), 1);
        assert_eq!(h.bucket(99), 0);
        let nonempty: Vec<_> = h.iter().collect();
        assert_eq!(nonempty, vec![(1, 2), (2, 2), (1024, 1)]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn percentile_clamps_out_of_range_q() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -0.5), 1.0);
        assert_eq!(percentile(&v, 7.0), 3.0);
    }

    #[test]
    fn histogram_empty_flags() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        let mut h2 = Log2Histogram::new();
        h2.record(5);
        assert!(!h2.is_empty());
        assert_eq!(h2.len(), 3, "floor(log2 5) = 2 → 3 buckets allocated");
    }

    #[test]
    fn imbalance_cv_detects_skew() {
        assert_eq!(imbalance_cv(&[5.0, 5.0, 5.0]), 0.0);
        assert!(imbalance_cv(&[1.0, 9.0]) > 0.5);
        assert_eq!(imbalance_cv(&[]), 0.0);
    }
}
