//! Seeded open-loop arrival processes.
//!
//! An open-loop workload submits jobs on its own schedule, regardless of
//! how fast the system drains them — the methodology behind sustained
//! throughput / tail-latency studies (as opposed to closed-loop
//! benchmarks, whose submission rate collapses to the service rate).
//! [`ArrivalProcess`] generates a deterministic Poisson arrival stream:
//! exponential interarrival gaps drawn from a [`SeedSeq`]-derived RNG,
//! so the same seed always produces the same arrival instants.

use crate::rng::SeedSeq;
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// A deterministic Poisson (exponential-interarrival) arrival process.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    rng: SmallRng,
    mean: f64,
    now: SimTime,
}

impl ArrivalProcess {
    /// An arrival stream starting at `SimTime::ZERO` with the given mean
    /// interarrival gap, seeded from `seed`.
    ///
    /// # Panics
    /// If the mean gap is zero (the process would never advance).
    pub fn new(seed: SeedSeq, mean_interarrival: SimDuration) -> Self {
        assert!(!mean_interarrival.is_zero(), "mean interarrival must be positive");
        ArrivalProcess {
            rng: seed.rng(),
            mean: mean_interarrival.as_secs_f64(),
            now: SimTime::ZERO,
        }
    }

    /// The next arrival instant: strictly monotone, exponentially
    /// distributed gaps with the configured mean.
    pub fn next_arrival(&mut self) -> SimTime {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = -u.ln() * self.mean;
        self.now += SimDuration::from_secs_f64(gap.max(1e-9));
        self.now
    }

    /// The most recent arrival instant (`ZERO` before the first draw).
    pub fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mk = || ArrivalProcess::new(SeedSeq::new(42).derive("arrivals"), SimDuration::from_millis(10));
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..1000 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    fn arrivals_are_strictly_monotone() {
        let mut p = ArrivalProcess::new(SeedSeq::new(7), SimDuration::from_micros(1));
        let mut last = SimTime::ZERO;
        for _ in 0..10_000 {
            let t = p.next_arrival();
            assert!(t > last, "arrivals must advance: {t:?} after {last:?}");
            last = t;
        }
    }

    #[test]
    fn mean_gap_tracks_the_configured_rate() {
        let mean = SimDuration::from_millis(5);
        let mut p = ArrivalProcess::new(SeedSeq::new(1).derive("rate"), mean);
        let n = 20_000;
        let mut last = SimTime::ZERO;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = p.next_arrival();
            sum += t.since(last).as_secs_f64();
            last = t;
        }
        let got = sum / n as f64;
        let want = mean.as_secs_f64();
        assert!(
            (got - want).abs() / want < 0.05,
            "empirical mean gap {got} vs configured {want}"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ArrivalProcess::new(SeedSeq::new(1), SimDuration::from_millis(1));
        let mut b = ArrivalProcess::new(SeedSeq::new(2), SimDuration::from_millis(1));
        assert_ne!(a.next_arrival(), b.next_arrival());
    }

    #[test]
    #[should_panic(expected = "mean interarrival must be positive")]
    fn zero_mean_rejected() {
        ArrivalProcess::new(SeedSeq::new(0), SimDuration::ZERO);
    }
}
