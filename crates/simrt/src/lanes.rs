//! Lane partitioning for sharded simulation passes.
//!
//! A sharded replay splits a stream of work items (sub-requests) into
//! per-server *lanes* so each lane can advance its stateful resource
//! (device queue, fault state) independently. Two invariants make the
//! result bit-identical to a serial sweep:
//!
//! * **stable grouping** — within a lane, items keep their global order
//!   (both build strategies of [`LanePartition`] are stable), so a FIFO
//!   resource sees exactly the sequence the serial loop would feed it;
//! * **disjoint writes** — every item index belongs to exactly one lane,
//!   so parallel lanes can scatter results into one shared output array
//!   without synchronization ([`DisjointSlice`]).

use std::cell::UnsafeCell;

/// One active lane of a [`LanePartition`]: the half-open range
/// `start..end` into [`LanePartition::order`] holding lane `lane`'s item
/// indices. Only lanes with at least one item get a span, so a pass over
/// the spans does work proportional to the *active* lanes — a barrier
/// phase touching 200 of 1024 servers walks 200 spans, not 1024 lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSpan {
    /// Lane key (server index).
    pub lane: u32,
    /// Span start in `order`.
    pub start: u32,
    /// Span end in `order` (exclusive).
    pub end: u32,
}

/// Stable partition of item indices by lane key.
///
/// Two strategies, picked per build so the cost never scales with idle
/// lanes: when items are scarce relative to lanes (a narrow barrier
/// phase over a huge cluster) the partition sorts packed
/// `(key, position)` words — O(items log items), lane-count-free; when
/// items dominate it counting-sorts — O(items + lanes). Both are stable
/// and produce identical spans. Buffers are reused across builds, so a
/// per-phase partition in a replay loop is allocation-free at steady
/// state.
#[derive(Debug, Clone, Default)]
pub struct LanePartition {
    /// Item indices grouped by ascending lane, original order per lane.
    order: Vec<u32>,
    /// Active lanes in ascending lane order.
    spans: Vec<LaneSpan>,
    /// Scratch: packed sort words or counting-sort cursors.
    scratch: Vec<u64>,
    /// Lane count of the last build.
    lanes: usize,
}

impl LanePartition {
    /// Empty partition; buffers grow on first [`LanePartition::build`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Partition items `0..keys.len()` by `keys[i]` into `lanes` groups.
    ///
    /// # Panics
    /// In debug builds, when a key is out of range; release builds would
    /// scatter out of bounds, so callers validate keys first (the replay
    /// front pass rejects unknown servers before partitioning).
    pub fn build(&mut self, lanes: usize, keys: &[u32]) {
        debug_assert!(keys.iter().all(|&k| (k as usize) < lanes), "lane key out of range");
        self.lanes = lanes;
        self.spans.clear();
        self.order.clear();
        // Crossover: sorting costs ~items·log(items); counting costs
        // items + lanes. Sparse phases (the 1000-server regime) take the
        // sort, dense ones the counting pass.
        if keys.len() * 4 < lanes {
            self.build_sorted(keys);
        } else {
            self.build_counted(lanes, keys);
        }
    }

    /// Sparse strategy: sort `(key, position)` packed words. Position in
    /// the low half makes the unstable sort stable in effect — equal keys
    /// tie-break on original position.
    fn build_sorted(&mut self, keys: &[u32]) {
        self.scratch.clear();
        self.scratch
            .extend(keys.iter().enumerate().map(|(i, &k)| (u64::from(k) << 32) | i as u64));
        self.scratch.sort_unstable();
        self.order.reserve(keys.len());
        for &packed in self.scratch.iter() {
            let lane = (packed >> 32) as u32;
            let i = self.order.len() as u32;
            self.order.push(packed as u32);
            match self.spans.last_mut() {
                Some(s) if s.lane == lane => s.end = i + 1,
                _ => self.spans.push(LaneSpan { lane, start: i, end: i + 1 }),
            }
        }
    }

    /// Dense strategy: stable counting sort, then spans off the cursors.
    fn build_counted(&mut self, lanes: usize, keys: &[u32]) {
        self.scratch.clear();
        self.scratch.resize(lanes + 1, 0);
        for &k in keys {
            self.scratch[k as usize + 1] += 1;
        }
        for l in 0..lanes {
            self.scratch[l + 1] += self.scratch[l];
        }
        for l in 0..lanes {
            let (start, end) = (self.scratch[l] as u32, self.scratch[l + 1] as u32);
            if start < end {
                self.spans.push(LaneSpan { lane: l as u32, start, end });
            }
        }
        self.order.resize(keys.len(), 0);
        // Scatter via the prefix sums, which double as per-lane cursors.
        for (i, &k) in keys.iter().enumerate() {
            let c = &mut self.scratch[k as usize];
            self.order[*c as usize] = i as u32;
            *c += 1;
        }
    }

    /// Number of lanes of the last build (including empty ones).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Active lanes in ascending lane order — the iteration surface of a
    /// sharded pass. Empty lanes never appear.
    pub fn spans(&self) -> &[LaneSpan] {
        &self.spans
    }

    /// Item indices of `span`, in original (global) order.
    pub fn items(&self, span: &LaneSpan) -> &[u32] {
        &self.order[span.start as usize..span.end as usize]
    }

    /// Item indices of lane `l` in original order (empty when idle).
    /// Spans are sorted by lane, so this is a binary-search lookup; hot
    /// passes iterate [`LanePartition::spans`] directly instead.
    pub fn lane(&self, l: usize) -> &[u32] {
        match self.spans.binary_search_by_key(&(l as u32), |s| s.lane) {
            Ok(at) => self.items(&self.spans[at]),
            Err(_) => &[],
        }
    }

    /// All item indices grouped by ascending lane (`lane(0)`, `lane(1)`,
    /// ... laid out back to back).
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Per-lane item slices including empty lanes, for zipping against a
    /// parallel iterator over dense per-lane state.
    pub fn lane_spans(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.lanes()).map(move |l| self.lane(l))
    }
}

/// A shared slice that hands out unsynchronized access to *disjoint*
/// indices — the scatter target of parallel lane passes.
///
/// # Safety contract
/// [`DisjointSlice::write`] and [`DisjointSlice::get_mut`] are unsafe:
/// callers must guarantee that no two concurrent users touch the same
/// index and that nobody else reads the slice until the parallel pass has
/// joined. A [`LanePartition`] supplies exactly that guarantee (every
/// item index appears in exactly one lane, every lane in exactly one
/// span).
pub struct DisjointSlice<'a, T> {
    cells: &'a [UnsafeCell<T>],
}

// SAFETY: sharing the wrapper across threads is safe because every access
// targets a distinct cell (the caller's contract) and reads only happen
// after the parallel section joins.
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    /// Wrap `slice` for the duration of a parallel scatter pass.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` guarantees exclusive access; `UnsafeCell<T>`
        // has the same layout as `T`, so the cast reinterprets the same
        // memory without aliasing anything else.
        let cells =
            unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        DisjointSlice { cells }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// No other thread may read or write `index` during the parallel
    /// pass (see the type-level contract).
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        *self.cells[index].get() = value;
    }

    /// Exclusive reference to the element at `index`.
    ///
    /// # Safety
    /// `index` must be owned by the calling lane for the duration of the
    /// borrow: no other thread may touch it, and no second `get_mut` for
    /// the same index may coexist (see the type-level contract).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, index: usize) -> &mut T {
        &mut *self.cells[index].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_groups_stably() {
        let keys = [2u32, 0, 1, 2, 0, 2];
        let mut p = LanePartition::new();
        p.build(3, &keys);
        assert_eq!(p.lanes(), 3);
        assert_eq!(p.lane(0), &[1, 4], "lane 0 keeps global order");
        assert_eq!(p.lane(1), &[2]);
        assert_eq!(p.lane(2), &[0, 3, 5]);
        assert_eq!(p.order(), &[1, 4, 2, 0, 3, 5]);
    }

    #[test]
    fn sparse_and_dense_strategies_agree() {
        // Same keys partitioned under a huge lane count (sorted path) and
        // a tight one (counted path) must group identically.
        let keys: Vec<u32> = (0..64u32).map(|i| (i * 37) % 100).collect();
        let mut sparse = LanePartition::new();
        sparse.build(100_000, &keys); // 64 items ≪ lanes → sorted
        let mut dense = LanePartition::new();
        dense.build(100, &keys); // items ≥ lanes/4 → counted
        assert_eq!(sparse.order(), dense.order());
        for (a, b) in sparse.spans().iter().zip(dense.spans()) {
            assert_eq!((a.lane, a.start, a.end), (b.lane, b.start, b.end));
        }
        assert_eq!(sparse.spans().len(), dense.spans().len());
    }

    #[test]
    fn spans_cover_only_active_lanes_in_order() {
        let keys = [7u32, 3, 7, 900_000];
        let mut p = LanePartition::new();
        p.build(1_000_000, &keys);
        let lanes: Vec<u32> = p.spans().iter().map(|s| s.lane).collect();
        assert_eq!(lanes, vec![3, 7, 900_000], "ascending, empties skipped");
        let seven = p.spans().iter().find(|s| s.lane == 7).unwrap();
        assert_eq!(p.items(seven), &[0, 2], "global order within the lane");
        assert_eq!(p.lane(7), &[0, 2]);
        assert_eq!(p.lane(8), &[] as &[u32], "idle lane is empty");
    }

    #[test]
    fn empty_lanes_are_empty_slices() {
        let mut p = LanePartition::new();
        p.build(4, &[3u32, 3]);
        assert_eq!(p.lane(0), &[] as &[u32]);
        assert_eq!(p.lane(1), &[] as &[u32]);
        assert_eq!(p.lane(3), &[0, 1]);
    }

    #[test]
    fn rebuild_reuses_buffers_and_forgets_history() {
        let mut p = LanePartition::new();
        p.build(2, &[0u32, 1, 0]);
        p.build(2, &[1u32]);
        assert_eq!(p.lane(0), &[] as &[u32]);
        assert_eq!(p.lane(1), &[0]);
        assert_eq!(p.order().len(), 1);
        assert_eq!(p.spans().len(), 1);
    }

    #[test]
    fn zero_items_zero_lanes() {
        let mut p = LanePartition::new();
        p.build(0, &[]);
        assert_eq!(p.lanes(), 0);
        assert!(p.order().is_empty());
        assert!(p.spans().is_empty());
        assert_eq!(p.lane_spans().count(), 0);
    }

    #[test]
    fn disjoint_slice_scatters() {
        let mut data = vec![0u64; 6];
        let keys = [1u32, 0, 1, 0, 1, 1];
        let mut p = LanePartition::new();
        p.build(2, &keys);
        {
            let out = DisjointSlice::new(&mut data);
            for l in 0..p.lanes() {
                for &i in p.lane(l) {
                    // SAFETY: each index appears in exactly one lane.
                    unsafe { out.write(i as usize, (l as u64 + 1) * 100 + u64::from(i)) };
                }
            }
            assert_eq!(out.len(), 6);
            assert!(!out.is_empty());
        }
        assert_eq!(data, vec![200, 101, 202, 103, 204, 205]);
    }

    #[test]
    fn disjoint_slice_get_mut_mutates_in_place() {
        let mut data = vec![10u64, 20, 30];
        {
            let cells = DisjointSlice::new(&mut data);
            // SAFETY: indices 0..3 each touched by exactly one "lane".
            for i in 0..3 {
                unsafe { *cells.get_mut(i) += i as u64 };
            }
        }
        assert_eq!(data, vec![10, 21, 32]);
    }
}
