//! Deterministic, splittable random seeding.
//!
//! Every stochastic component (workload generators, device jitter) draws
//! from its own [`rand::rngs::SmallRng`] derived from a root seed plus a
//! component label. Adding or removing one component therefore never
//! perturbs the streams of the others — a property plain sequential seeding
//! (`seed`, `seed+1`, ...) does not have when code is refactored.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A splittable seed: a 64-bit root that derives independent child seeds by
/// hashing in a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSeq {
    root: u64,
}

impl SeedSeq {
    /// Create from a root seed.
    pub const fn new(root: u64) -> Self {
        SeedSeq { root }
    }

    /// Root seed value.
    pub const fn root(self) -> u64 {
        self.root
    }

    /// Derive a child seed for a labelled component.
    pub fn derive(self, label: &str) -> SeedSeq {
        let mut h = self.root ^ 0x9e37_79b9_7f4a_7c15;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = splitmix64(h);
        }
        SeedSeq { root: h }
    }

    /// Derive a child seed for an indexed component (e.g. per-rank).
    pub fn derive_idx(self, label: &str, idx: u64) -> SeedSeq {
        let child = self.derive(label);
        SeedSeq { root: splitmix64(child.root ^ splitmix64(idx.wrapping_add(0xabcd_ef01))) }
    }

    /// Materialize an RNG for this seed.
    pub fn rng(self) -> SmallRng {
        SmallRng::seed_from_u64(self.root)
    }
}

/// SplitMix64 mixing function (public domain, Vigna). Used only for seed
/// derivation, never as the simulation RNG itself.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let a = SeedSeq::new(42).derive("hdd");
        let b = SeedSeq::new(42).derive("hdd");
        assert_eq!(a, b);
        let (mut ra, mut rb) = (a.rng(), b.rng());
        for _ in 0..16 {
            assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let a = SeedSeq::new(42).derive("hdd");
        let b = SeedSeq::new(42).derive("ssd");
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_children_diverge() {
        let s = SeedSeq::new(7);
        let seeds: Vec<u64> = (0..64).map(|i| s.derive_idx("rank", i).root()).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "collision in derived seeds");
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(SeedSeq::new(1).derive("x"), SeedSeq::new(2).derive("x"));
    }
}
