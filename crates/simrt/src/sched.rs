//! Client-side straggler-aware scheduling state: per-server service-
//! latency EWMAs and the dispatch policy knob.
//!
//! The client of a parallel file system sees each server's service
//! latency on every sub-request it issues; a fast EWMA over those
//! observations reacts to a *transient* straggler within a handful of
//! requests, long before a window-granularity replanner can. This module
//! holds the policy type and the per-server latency trackers; the replay
//! cores own *when* observations happen (so the serial and sharded cores
//! feed each tracker the identical per-server sequence and the f64 state
//! stays bit-for-bit reproducible).
//!
//! A server is flagged *suspect* by comparing its fast EWMA against its
//! **own** long-run Welford mean ([`crate::stats::OnlineStats`]): on a
//! heterogeneous cluster an HDD is always slower than an SSD, so any
//! cross-server baseline would misfire permanently. Self-relative
//! triggering also guarantees the fault-free no-op: without a fault, the
//! fast EWMA never exceeds [`STRAGGLER_TRIGGER`]× the server's own mean
//! (the worst within-phase queue ramp tops out near 2×), no server is
//! ever suspect, every issue delay is zero and the dispatch permutation
//! is the identity — the schedule is bit-identical to the blind shuffle.

use serde::{Deserialize, Serialize};

use crate::stats::OnlineStats;

/// Fast-EWMA-to-own-mean ratio above which a server is suspect. A
/// within-phase FIFO queue ramp reaches ~2× (the mean of a linear ramp
/// is half its peak), so 4× keeps a 2× safety margin for the fault-free
/// identity while still firing on any real straggler (outage retries and
/// timeouts inflate observations by orders of magnitude).
pub const STRAGGLER_TRIGGER: f64 = 4.0;

/// Minimum observations a server needs before it can be suspect: below
/// this the Welford mean is too noisy to trust as a baseline.
pub const MIN_OBS: u64 = 8;

/// How a replay phase dispatches its requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SchedPolicy {
    /// The historical blind dispatch: requests replay in the seeded
    /// per-phase shuffle, all issued at the phase barrier. Bit-identical
    /// to every pre-scheduler release.
    #[default]
    SeededShuffle,
    /// Straggler-aware dispatch: per-server latency EWMAs flag suspect
    /// servers; requests targeting a suspect are issue-throttled (at
    /// most `inflight_cap` per EWMA interval) and deferred requests are
    /// reordered behind undeferred ones within `reorder_window`-sized
    /// windows of the shuffled order. With no suspect this degenerates
    /// to exactly `SeededShuffle`.
    StragglerAware {
        /// EWMA smoothing factor in `(0, 1]`; higher reacts faster.
        alpha: f64,
        /// Requests admitted per suspect server per EWMA interval.
        inflight_cap: u32,
        /// Reordering window (requests) within the shuffled phase order.
        reorder_window: u32,
    },
}

impl SchedPolicy {
    /// The straggler-aware policy at its default operating point:
    /// `alpha` 0.3 (reacts within ~3 observations), cap 4, window 64.
    pub fn straggler_aware() -> Self {
        SchedPolicy::StragglerAware { alpha: 0.3, inflight_cap: 4, reorder_window: 64 }
    }

    /// Validate the knobs; `Err` carries the reason.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SchedPolicy::SeededShuffle => Ok(()),
            SchedPolicy::StragglerAware { alpha, inflight_cap, reorder_window } => {
                if !(alpha > 0.0 && alpha <= 1.0) {
                    return Err(format!("alpha must be in (0, 1], got {alpha}"));
                }
                if inflight_cap == 0 {
                    return Err("inflight_cap must be at least 1".into());
                }
                if reorder_window == 0 {
                    return Err("reorder_window must be at least 1".into());
                }
                Ok(())
            }
        }
    }
}

/// Per-server service-latency tracker: a fast EWMA over the most recent
/// observations plus the server's own long-run Welford baseline.
#[derive(Debug, Clone, Default)]
pub struct ServerLat {
    fast: f64,
    seeded: bool,
    baseline: OnlineStats,
}

impl ServerLat {
    /// Record one service-latency observation (seconds): the span from a
    /// sub-request's issue to its device-stage completion — admission
    /// waits, retries and timeout charges included, which is exactly what
    /// makes a straggler visible from the client side.
    pub fn observe(&mut self, alpha: f64, x: f64) {
        if self.seeded {
            self.fast = alpha * x + (1.0 - alpha) * self.fast;
        } else {
            self.fast = x;
            self.seeded = true;
        }
        self.baseline.push(x);
    }

    /// Current fast EWMA (0 before the first observation).
    pub fn fast(&self) -> f64 {
        self.fast
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.baseline.count()
    }

    /// Long-run mean latency of this server (its own baseline).
    pub fn long_run_mean(&self) -> f64 {
        self.baseline.mean()
    }

    /// True when this server currently looks like a straggler: at least
    /// [`MIN_OBS`] observations and a fast EWMA above
    /// [`STRAGGLER_TRIGGER`]× its own long-run mean.
    pub fn is_suspect(&self) -> bool {
        self.baseline.count() >= MIN_OBS
            && self.fast > STRAGGLER_TRIGGER * self.baseline.mean()
    }
}

/// Per-server latency trackers for one replay run.
#[derive(Debug, Clone, Default)]
pub struct SchedState {
    servers: Vec<ServerLat>,
}

impl SchedState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for a run over `n` servers: every tracker starts cold, so
    /// reruns of the same input are bit-identical.
    pub fn reset(&mut self, n: usize) {
        self.servers.clear();
        self.servers.resize_with(n, ServerLat::default);
    }

    /// Number of tracked servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when no server is tracked.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Tracker of server `i`.
    pub fn server(&self, i: usize) -> &ServerLat {
        &self.servers[i]
    }

    /// Mutable tracker of server `i`.
    pub fn server_mut(&mut self, i: usize) -> &mut ServerLat {
        &mut self.servers[i]
    }

    /// All trackers, for lane-parallel observation via
    /// [`crate::DisjointSlice`] (one lane per server).
    pub fn as_mut_slice(&mut self) -> &mut [ServerLat] {
        &mut self.servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_seeded_shuffle() {
        assert_eq!(SchedPolicy::default(), SchedPolicy::SeededShuffle);
    }

    #[test]
    fn policy_validation_rejects_bad_knobs() {
        assert!(SchedPolicy::SeededShuffle.validate().is_ok());
        assert!(SchedPolicy::straggler_aware().validate().is_ok());
        for bad in [
            SchedPolicy::StragglerAware { alpha: 0.0, inflight_cap: 4, reorder_window: 64 },
            SchedPolicy::StragglerAware { alpha: 1.5, inflight_cap: 4, reorder_window: 64 },
            SchedPolicy::StragglerAware { alpha: f64::NAN, inflight_cap: 4, reorder_window: 64 },
            SchedPolicy::StragglerAware { alpha: 0.3, inflight_cap: 0, reorder_window: 64 },
            SchedPolicy::StragglerAware { alpha: 0.3, inflight_cap: 4, reorder_window: 0 },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn ewma_seeds_on_first_observation() {
        let mut lat = ServerLat::default();
        assert_eq!(lat.fast(), 0.0);
        lat.observe(0.3, 10.0);
        assert_eq!(lat.fast(), 10.0, "first observation seeds the EWMA");
        lat.observe(0.3, 0.0);
        assert!((lat.fast() - 7.0).abs() < 1e-12);
        assert_eq!(lat.count(), 2);
    }

    #[test]
    fn suspect_needs_min_obs_and_trigger_ratio() {
        let mut lat = ServerLat::default();
        for _ in 0..24 {
            lat.observe(0.5, 1.0);
        }
        assert!(!lat.is_suspect(), "steady latency is never suspect");
        // A burst of 100x observations drags the fast EWMA far above the
        // (still healthy-history-anchored) long-run mean.
        for _ in 0..4 {
            lat.observe(0.5, 100.0);
        }
        assert!(lat.is_suspect(), "fast={} mean={}", lat.fast(), lat.long_run_mean());
        // Below MIN_OBS the flag must stay off regardless of ratio.
        let mut young = ServerLat::default();
        for _ in 0..(MIN_OBS - 1) {
            young.observe(0.5, 100.0);
        }
        assert!(!young.is_suspect());
    }

    #[test]
    fn queue_ramp_stays_below_trigger() {
        // A linear within-phase queue ramp (the worst fault-free shape)
        // ends with fast ≈ peak and mean ≈ peak/2 — safely inside the 4x
        // trigger.
        let mut lat = ServerLat::default();
        for i in 1..=100 {
            lat.observe(0.3, i as f64);
        }
        assert!(lat.count() >= MIN_OBS);
        assert!(!lat.is_suspect(), "fast={} mean={}", lat.fast(), lat.long_run_mean());
    }

    #[test]
    fn state_reset_forgets_history() {
        let mut s = SchedState::new();
        s.reset(3);
        s.server_mut(1).observe(0.3, 5.0);
        assert_eq!(s.server(1).count(), 1);
        s.reset(3);
        assert_eq!(s.server(1).count(), 0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn identical_observation_sequences_are_bit_identical() {
        // The determinism contract the replay cores rely on: feeding two
        // trackers the same sequence yields the same f64 bits.
        let xs = [0.25, 3.5, 0.125, 2.0, 9.75, 0.5];
        let mut a = ServerLat::default();
        let mut b = ServerLat::default();
        for &x in &xs {
            a.observe(0.3, x);
            b.observe(0.3, x);
        }
        assert_eq!(a.fast().to_bits(), b.fast().to_bits());
        assert_eq!(a.long_run_mean().to_bits(), b.long_run_mean().to_bits());
    }
}
