//! Simulated time.
//!
//! Time is a `u64` count of nanoseconds since simulation start. Nanosecond
//! resolution lets the storage models express sub-microsecond SSD latencies
//! exactly while still covering ~584 years of simulated time, far beyond any
//! experiment in the paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to seconds as `f64` (for reporting only — never feed back
    /// into simulation arithmetic, which stays integral).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking so that reporting code can be sloppy about ordering.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero: callers
    /// feed calibrated model outputs here and a nonsensical negative
    /// service time must not travel backwards in time.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!(((t + d) - t).as_nanos(), 3_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a).as_nanos(), 10);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_nanos(3).max(SimDuration::from_nanos(4)).as_nanos(),
            4
        );
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        let m = SimTime::MAX;
        assert_eq!(m + SimDuration::from_secs(1), SimTime::MAX);
        let z = SimDuration::ZERO;
        assert_eq!(z.saturating_sub(SimDuration::from_secs(1)), SimDuration::ZERO);
    }
}
