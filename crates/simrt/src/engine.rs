//! The discrete-event engine.
//!
//! A [`Model`] owns all mutable simulation state and interprets events; the
//! [`Engine`] owns the event calendar and the clock. Events at equal
//! timestamps are delivered in insertion order (FIFO), which makes runs
//! deterministic and independent of heap internals.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation model: the state machine the engine drives.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at simulated time `now`, scheduling follow-ups
    /// through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handle through which event handlers schedule future events.
///
/// Collected entries are merged into the engine calendar after each handler
/// returns, preserving insertion order at equal timestamps.
pub struct Scheduler<E> {
    pending: Vec<(SimTime, E)>,
    now: SimTime,
}

impl<E> Scheduler<E> {
    fn new(now: SimTime) -> Self {
        Scheduler { pending: Vec::new(), now }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` from now.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Schedule `event` at absolute time `at`. Times in the past are
    /// clamped to `now`: the calendar must never run backwards.
    #[inline]
    pub fn at(&mut self, at: SimTime, event: E) {
        self.pending.push((at.max(self.now), event));
    }

    /// Schedule `event` to fire immediately (after already-queued events at
    /// the current timestamp).
    #[inline]
    pub fn now_event(&mut self, event: E) {
        self.pending.push((self.now, event));
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Event calendar + clock. Generic over the model's event type.
pub struct Engine<M: Model> {
    heap: BinaryHeap<Entry<M::Event>>,
    now: SimTime,
    seq: u64,
    events_processed: u64,
}

impl<M: Model> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Model> Engine<M> {
    /// Fresh engine at time zero with an empty calendar.
    pub fn new() -> Self {
        Engine {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            events_processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last delivered event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently scheduled.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Seed the calendar with an event at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at: at.max(self.now), seq, event });
    }

    /// Deliver a single event. Returns `false` when the calendar is empty.
    pub fn step(&mut self, model: &mut M) -> bool {
        let Some(entry) = self.heap.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "calendar ran backwards");
        self.now = entry.at;
        self.events_processed += 1;
        let mut sched = Scheduler::new(self.now);
        model.handle(self.now, entry.event, &mut sched);
        for (at, ev) in sched.pending {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { at, seq, event: ev });
        }
        true
    }

    /// Run until the calendar drains. Returns the final simulated time.
    pub fn run(&mut self, model: &mut M) -> SimTime {
        while self.step(model) {}
        self.now
    }

    /// Run until the calendar drains or the clock passes `deadline`,
    /// whichever comes first. Events scheduled after the deadline stay in
    /// the calendar.
    pub fn run_until(&mut self, model: &mut M, deadline: SimTime) -> SimTime {
        while let Some(head) = self.heap.peek() {
            if head.at > deadline {
                break;
            }
            self.step(model);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that records delivery order and spawns chains.
    struct Recorder {
        delivered: Vec<(u64, u32)>,
        chain_left: u32,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.delivered.push((now.as_nanos(), ev));
            if ev == 100 && self.chain_left > 0 {
                self.chain_left -= 1;
                sched.after(SimDuration::from_nanos(10), 100);
            }
        }
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut eng: Engine<Recorder> = Engine::new();
        let mut m = Recorder { delivered: vec![], chain_left: 0 };
        eng.schedule(SimTime::from_nanos(30), 3);
        eng.schedule(SimTime::from_nanos(10), 1);
        eng.schedule(SimTime::from_nanos(20), 2);
        eng.run(&mut m);
        assert_eq!(m.delivered, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut eng: Engine<Recorder> = Engine::new();
        let mut m = Recorder { delivered: vec![], chain_left: 0 };
        for i in 0..100 {
            eng.schedule(SimTime::from_nanos(5), i);
        }
        eng.run(&mut m);
        let order: Vec<u32> = m.delivered.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut eng: Engine<Recorder> = Engine::new();
        let mut m = Recorder { delivered: vec![], chain_left: 5 };
        eng.schedule(SimTime::ZERO, 100);
        let end = eng.run(&mut m);
        assert_eq!(end.as_nanos(), 50);
        assert_eq!(m.delivered.len(), 6);
        assert_eq!(eng.events_processed(), 6);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<Recorder> = Engine::new();
        let mut m = Recorder { delivered: vec![], chain_left: 0 };
        eng.schedule(SimTime::from_nanos(10), 1);
        eng.schedule(SimTime::from_nanos(1000), 2);
        eng.run_until(&mut m, SimTime::from_nanos(100));
        assert_eq!(m.delivered, vec![(10, 1)]);
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        struct Clamper {
            saw: Vec<u64>,
        }
        impl Model for Clamper {
            type Event = u8;
            fn handle(&mut self, now: SimTime, ev: u8, sched: &mut Scheduler<u8>) {
                self.saw.push(now.as_nanos());
                if ev == 0 {
                    // Try to schedule in the past; must clamp to now.
                    sched.at(SimTime::ZERO, 1);
                }
            }
        }
        let mut eng: Engine<Clamper> = Engine::new();
        let mut m = Clamper { saw: vec![] };
        eng.schedule(SimTime::from_nanos(50), 0);
        eng.run(&mut m);
        assert_eq!(m.saw, vec![50, 50]);
    }

    #[test]
    fn interleaved_chains_preserve_time_order() {
        struct Chain {
            seen: Vec<(u64, u32)>,
        }
        impl Model for Chain {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.seen.push((now.as_nanos(), ev));
                if ev < 100 {
                    // Two children at staggered delays.
                    sched.after(SimDuration::from_nanos(7), ev + 100);
                    sched.after(SimDuration::from_nanos(3), ev + 200);
                }
            }
        }
        let mut eng: Engine<Chain> = Engine::new();
        let mut m = Chain { seen: vec![] };
        for i in 0..10 {
            eng.schedule(SimTime::from_nanos(i), i as u32);
        }
        eng.run(&mut m);
        // Global time order must be non-decreasing.
        for w in m.seen.windows(2) {
            assert!(w[0].0 <= w[1].0, "{:?} then {:?}", w[0], w[1]);
        }
        assert_eq!(m.seen.len(), 30);
    }

    #[test]
    fn empty_run_is_noop() {
        let mut eng: Engine<Recorder> = Engine::new();
        let mut m = Recorder { delivered: vec![], chain_left: 0 };
        assert_eq!(eng.run(&mut m), SimTime::ZERO);
        assert!(!eng.step(&mut m));
    }
}
