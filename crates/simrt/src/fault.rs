//! Deterministic fault injection: the shared vocabulary for describing
//! degraded clusters.
//!
//! A [`FaultPlan`] is a seeded, serializable description of everything
//! that is wrong with a cluster during one measurement window: per-server
//! slowdown factors (stragglers), degraded-device profiles, transient
//! unavailability windows, and permanent server loss. The plan itself is
//! pure data — `storage-model` maps device profiles onto concrete model
//! parameters, `netsim` applies link slowdowns, and `pfs-sim` drives the
//! retry/timeout state machine during replay. Keeping the vocabulary here
//! (the bottom of the crate stack) lets every layer speak it without
//! circular dependencies.
//!
//! Times are carried as `f64` seconds rather than [`crate::SimTime`] so a
//! plan serializes to human-readable JSON; the consumers convert to
//! nanosecond ticks at the boundary. An **empty plan is a guarantee**:
//! every consumer must behave bit-for-bit identically to the fault-free
//! code path when handed one.

use crate::rng::SeedSeq;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What kind of degraded hardware a server pretends to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceProfile {
    /// Flash near end-of-life: the write cliff — heavy garbage collection,
    /// depressed sustained write rate. Reads are largely unaffected.
    WornSsd,
    /// An aged disk with grown defects: a fraction of blocks are remapped
    /// to the spare area, each access paying an extra full seek.
    AgedHdd,
}

impl DeviceProfile {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DeviceProfile::WornSsd => "worn-ssd",
            DeviceProfile::AgedHdd => "aged-hdd",
        }
    }

    /// Pessimistic service-time inflation this profile implies, used when
    /// summarizing a plan into per-server health factors.
    pub fn slowdown_estimate(self) -> f64 {
        match self {
            DeviceProfile::WornSsd => 3.0,
            DeviceProfile::AgedHdd => 1.5,
        }
    }
}

/// One fault pinned to one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Straggler: every device service time is multiplied by `factor`.
    Slowdown {
        /// Service-time multiplier (> 1 is slower).
        factor: f64,
    },
    /// Degraded NIC/link: wire times to and from the server's node are
    /// multiplied by `factor`.
    SlowLink {
        /// Wire-time multiplier (> 1 is slower).
        factor: f64,
    },
    /// Transient unavailability: requests arriving inside the window
    /// retry with exponential backoff until the window passes (or the
    /// retry budget runs out, which counts as a timeout).
    Outage {
        /// Window start, seconds of simulated time.
        start_s: f64,
        /// Window length, seconds.
        duration_s: f64,
    },
    /// Permanent loss: every request arriving at or after `at_s` times
    /// out. The server never comes back.
    Down {
        /// Failure instant, seconds of simulated time.
        at_s: f64,
    },
    /// The server's device behaves like the given degraded profile.
    Degraded {
        /// Which degraded hardware profile to apply.
        profile: DeviceProfile,
    },
}

/// A fault attached to a server index (cluster server numbering).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerFault {
    /// Target server index.
    pub server: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// Client-side retry/timeout policy used when a server is unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// First retry delay, seconds; doubles on every further retry.
    pub backoff_s: f64,
    /// Retries before the client gives up on a sub-request.
    pub max_retries: u32,
    /// Time a client waits on a lost server before declaring the
    /// sub-request failed, seconds.
    pub timeout_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { backoff_s: 10.0e-3, max_retries: 12, timeout_s: 2.0 }
    }
}

/// Observed health of one server, as a planner sees it: a summary of the
/// plan's faults suitable for down-weighting or excluding the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerHealth {
    /// Permanently lost (every request to it times out).
    pub down: bool,
    /// Combined service-time inflation (1.0 = nominal).
    pub speed_factor: f64,
}

impl ServerHealth {
    /// A healthy server.
    pub fn nominal() -> Self {
        ServerHealth { down: false, speed_factor: 1.0 }
    }
}

/// A deterministic, serializable fault schedule for one replay.
///
/// The empty plan ([`FaultPlan::none`]) is the common case and is
/// guaranteed to change nothing: replaying with it produces bit-identical
/// reports to not passing a plan at all.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed this plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The injected faults.
    pub faults: Vec<ServerFault>,
    /// Retry/timeout behaviour of clients facing unavailable servers.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The empty plan: nothing is wrong.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects no faults (the bit-identical path).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Add a straggler: server `server` serves `factor`× slower.
    pub fn slow_server(mut self, server: usize, factor: f64) -> Self {
        self.faults.push(ServerFault { server, kind: FaultKind::Slowdown { factor } });
        self
    }

    /// Add a degraded link on `server`'s node.
    pub fn slow_link(mut self, server: usize, factor: f64) -> Self {
        self.faults.push(ServerFault { server, kind: FaultKind::SlowLink { factor } });
        self
    }

    /// Add a transient outage window on `server`.
    pub fn outage(mut self, server: usize, start_s: f64, duration_s: f64) -> Self {
        self.faults
            .push(ServerFault { server, kind: FaultKind::Outage { start_s, duration_s } });
        self
    }

    /// Permanently lose `server` at `at_s` seconds.
    pub fn down(mut self, server: usize, at_s: f64) -> Self {
        self.faults.push(ServerFault { server, kind: FaultKind::Down { at_s } });
        self
    }

    /// Replace `server`'s device with a degraded profile.
    pub fn degraded(mut self, server: usize, profile: DeviceProfile) -> Self {
        self.faults.push(ServerFault { server, kind: FaultKind::Degraded { profile } });
        self
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// A seeded straggler scenario: `count` distinct servers out of
    /// `servers`, each slowed by a factor drawn uniformly from
    /// `factors.0..=factors.1`. The same seed always yields the same plan
    /// (server choice and factors), so faulted experiments replicate.
    pub fn random_stragglers(
        seed: u64,
        servers: usize,
        count: usize,
        factors: (f64, f64),
    ) -> Self {
        let mut rng = SeedSeq::new(seed).derive("stragglers").rng();
        let mut ids: Vec<usize> = (0..servers).collect();
        ids.shuffle(&mut rng);
        let mut plan = FaultPlan { seed, ..Self::default() };
        ids.truncate(count.min(servers));
        // Deterministic order: factors are drawn in shuffled order (that
        // is what the RNG stream dictates), then the list is sorted so the
        // plan itself reads in server order.
        let mut faults: Vec<ServerFault> = ids
            .into_iter()
            .map(|server| ServerFault {
                server,
                kind: FaultKind::Slowdown { factor: rng.gen_range(factors.0..=factors.1) },
            })
            .collect();
        faults.sort_by_key(|f| f.server);
        plan.faults = faults;
        plan
    }

    /// Summarize the plan into per-server health, the planner-facing
    /// view: slowdowns, slow links and degraded profiles multiply into a
    /// `speed_factor`; outages apply `outage_penalty` (they make a server
    /// unreliable for the whole window, which a planner cannot schedule
    /// around at finer grain); `Down` marks the server lost.
    pub fn health_view(&self, servers: usize) -> Vec<ServerHealth> {
        let mut health = vec![ServerHealth::nominal(); servers];
        const OUTAGE_PENALTY: f64 = 4.0;
        for f in &self.faults {
            let Some(h) = health.get_mut(f.server) else { continue };
            match f.kind {
                FaultKind::Slowdown { factor } | FaultKind::SlowLink { factor } => {
                    h.speed_factor *= factor;
                }
                FaultKind::Outage { .. } => h.speed_factor *= OUTAGE_PENALTY,
                FaultKind::Down { .. } => h.down = true,
                FaultKind::Degraded { profile } => {
                    h.speed_factor *= profile.slowdown_estimate();
                }
            }
        }
        health
    }

    /// Largest server index referenced by the plan, if any.
    pub fn max_server(&self) -> Option<usize> {
        self.faults.iter().map(|f| f.server).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::none().max_server().is_none());
    }

    #[test]
    fn builders_accumulate_faults() {
        let p = FaultPlan::none()
            .slow_server(2, 6.0)
            .outage(6, 1.0, 2.0)
            .down(0, 0.0)
            .degraded(7, DeviceProfile::WornSsd);
        assert_eq!(p.faults.len(), 4);
        assert_eq!(p.max_server(), Some(7));
        assert!(!p.is_empty());
    }

    #[test]
    fn random_stragglers_is_seed_deterministic() {
        let a = FaultPlan::random_stragglers(7, 8, 3, (2.0, 8.0));
        let b = FaultPlan::random_stragglers(7, 8, 3, (2.0, 8.0));
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 3);
        let c = FaultPlan::random_stragglers(8, 8, 3, (2.0, 8.0));
        assert_ne!(a, c, "different seed, different plan");
        for f in &a.faults {
            let FaultKind::Slowdown { factor } = f.kind else { panic!() };
            assert!((2.0..=8.0).contains(&factor));
        }
    }

    #[test]
    fn health_view_summarizes_faults() {
        let p = FaultPlan::none().slow_server(1, 3.0).slow_link(1, 2.0).down(4, 0.5);
        let h = p.health_view(6);
        assert_eq!(h.len(), 6);
        assert_eq!(h[0], ServerHealth::nominal());
        assert!((h[1].speed_factor - 6.0).abs() < 1e-12, "factors multiply");
        assert!(h[4].down);
        assert_eq!(h[5], ServerHealth::nominal());
    }

    #[test]
    fn health_view_ignores_out_of_range_targets() {
        let p = FaultPlan::none().slow_server(99, 2.0);
        let h = p.health_view(4);
        assert!(h.iter().all(|x| *x == ServerHealth::nominal()));
    }

    #[test]
    fn plan_serializes_roundtrip() {
        let p = FaultPlan::random_stragglers(3, 8, 2, (2.0, 4.0)).outage(7, 0.1, 0.2);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, back);
    }
}
