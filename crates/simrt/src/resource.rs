//! Analytic FIFO resources.
//!
//! A storage device or network link in this simulation is a FIFO server: a
//! request arriving at time `a` with service demand `d` begins service at
//! `max(a, next_free)` and completes `d` later. Modelling this analytically
//! (one arithmetic update per request instead of begin/end event pairs)
//! keeps large sweeps cheap while producing exactly the same completion
//! times a token-based DES would.

use crate::time::{SimDuration, SimTime};

/// A single-server FIFO queue with analytic service accounting.
#[derive(Debug, Clone)]
pub struct FifoResource {
    next_free: SimTime,
    busy: SimDuration,
    served: u64,
    /// Completion time of the most recent request (for makespan queries).
    last_completion: SimTime,
    /// Sum of queueing delays (time between arrival and service start).
    total_wait: SimDuration,
}

impl Default for FifoResource {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoResource {
    /// An idle resource at time zero.
    pub fn new() -> Self {
        FifoResource {
            next_free: SimTime::ZERO,
            busy: SimDuration::ZERO,
            served: 0,
            last_completion: SimTime::ZERO,
            total_wait: SimDuration::ZERO,
        }
    }

    /// Submit a request arriving at `arrival` needing `service` time.
    /// Returns its completion time.
    pub fn submit(&mut self, arrival: SimTime, service: SimDuration) -> SimTime {
        let start = arrival.max(self.next_free);
        let completion = start + service;
        self.total_wait += start.since(arrival);
        self.busy += service;
        self.next_free = completion;
        self.served += 1;
        self.last_completion = self.last_completion.max(completion);
        completion
    }

    /// When the resource next becomes idle.
    #[inline]
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total time spent serving requests.
    #[inline]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of requests served.
    #[inline]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Completion time of the latest-finishing request so far.
    #[inline]
    pub fn last_completion(&self) -> SimTime {
        self.last_completion
    }

    /// Accumulated queueing delay across all requests.
    #[inline]
    pub fn total_wait(&self) -> SimDuration {
        self.total_wait
    }

    /// Utilization over `[0, horizon]`; 0.0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }

    /// Forget all history (start a fresh measurement window at time zero).
    pub fn reset(&mut self) {
        *self = FifoResource::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimTime {
        SimTime::from_nanos(v)
    }
    fn d(v: u64) -> SimDuration {
        SimDuration::from_nanos(v)
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = FifoResource::new();
        let done = r.submit(ns(100), d(50));
        assert_eq!(done, ns(150));
        assert_eq!(r.total_wait(), SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = FifoResource::new();
        assert_eq!(r.submit(ns(0), d(100)), ns(100));
        // Arrives while busy: waits 50.
        assert_eq!(r.submit(ns(50), d(100)), ns(200));
        assert_eq!(r.total_wait(), d(50));
        assert_eq!(r.busy_time(), d(200));
        assert_eq!(r.served(), 2);
    }

    #[test]
    fn gap_leaves_idle_time() {
        let mut r = FifoResource::new();
        r.submit(ns(0), d(10));
        let done = r.submit(ns(1000), d(10));
        assert_eq!(done, ns(1010));
        assert_eq!(r.busy_time(), d(20));
        // Utilization over the horizon reflects the idle gap.
        let u = r.utilization(ns(1010));
        assert!((u - 20.0 / 1010.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_zero_horizon_is_zero() {
        let r = FifoResource::new();
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn fifo_order_is_preserved_regardless_of_service_length() {
        let mut r = FifoResource::new();
        let c1 = r.submit(ns(0), d(1000));
        let c2 = r.submit(ns(1), d(1)); // short job still waits behind long one
        assert!(c2 > c1);
        assert_eq!(c2, ns(1001));
    }

    #[test]
    fn reset_clears_history() {
        let mut r = FifoResource::new();
        r.submit(ns(0), d(10));
        r.reset();
        assert_eq!(r.served(), 0);
        assert_eq!(r.busy_time(), SimDuration::ZERO);
        assert_eq!(r.next_free(), SimTime::ZERO);
    }
}
