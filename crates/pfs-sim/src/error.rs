//! Replay/session error type: every failure mode the session API can
//! report instead of panicking.

use storage_model::DeviceKind;

/// Why a replay (or the setup leading to it) could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The pinned [`crate::ReplaySchedule`] was built for a trace of a
    /// different shape.
    ScheduleMismatch {
        /// Records the schedule was built for.
        schedule: usize,
        /// Records in the trace being replayed.
        trace: usize,
    },
    /// A layout or fault plan referenced a server the cluster does not
    /// have.
    UnknownServer {
        /// Offending server index.
        server: usize,
        /// Number of servers in the cluster.
        servers: usize,
    },
    /// The cluster configuration itself is unusable.
    InvalidCluster(String),
    /// A fault plan targeted a server index outside the cluster.
    FaultTargetOutOfRange {
        /// Offending server index.
        server: usize,
        /// Number of servers in the cluster.
        servers: usize,
    },
    /// A degraded-device profile was applied to the wrong medium (e.g.
    /// the worn-SSD profile on an HDD-backed server).
    ProfileMismatch {
        /// Target server index.
        server: usize,
        /// Profile name (see `simrt::DeviceProfile::name`).
        profile: &'static str,
        /// The medium actually backing the server.
        kind: DeviceKind,
    },
    /// A streaming payload was paired with the serial core: the serial
    /// replay loop needs the whole trace materialized, so streams can
    /// only run on the sharded core (`CoreSel::Auto` picks it).
    StreamRequiresSharded,
    /// The session's [`simrt::SchedPolicy`] carries out-of-range knobs
    /// (see `SchedPolicy::validate`); the string is the reason.
    InvalidSchedPolicy(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::ScheduleMismatch { schedule, trace } => write!(
                f,
                "schedule/trace mismatch: schedule covers {schedule} records, trace has {trace}"
            ),
            ReplayError::UnknownServer { server, servers } => {
                write!(f, "unknown server {server} (cluster has {servers})")
            }
            ReplayError::InvalidCluster(msg) => write!(f, "{msg}"),
            ReplayError::FaultTargetOutOfRange { server, servers } => write!(
                f,
                "fault plan targets server {server}, but the cluster has only {servers}"
            ),
            ReplayError::ProfileMismatch { server, profile, kind } => write!(
                f,
                "device profile {profile} does not fit server {server} (backed by {kind:?})"
            ),
            ReplayError::StreamRequiresSharded => write!(
                f,
                "a streaming payload cannot run on the serial core; use CoreSel::Sharded or Auto"
            ),
            ReplayError::InvalidSchedPolicy(reason) => {
                write!(f, "invalid scheduling policy: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_legacy_mismatch_phrase() {
        // Pre-0.3 callers matched on this assert text; the Display form
        // keeps the phrase stable.
        let e = ReplayError::ScheduleMismatch { schedule: 3, trace: 5 };
        assert!(e.to_string().contains("schedule/trace mismatch"), "{e}");
    }

    #[test]
    fn errors_format_with_context() {
        let e = ReplayError::FaultTargetOutOfRange { server: 9, servers: 8 };
        assert!(e.to_string().contains('9') && e.to_string().contains('8'));
        let e = ReplayError::ProfileMismatch {
            server: 2,
            profile: "worn-ssd",
            kind: DeviceKind::Hdd,
        };
        assert!(e.to_string().contains("worn-ssd"));
        let e = ReplayError::InvalidCluster("cluster needs at least one server".into());
        assert_eq!(e.to_string(), "cluster needs at least one server");
    }
}
