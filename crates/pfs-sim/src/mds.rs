//! Metadata server: file → layout mapping with lookup-cost accounting.
//!
//! In OrangeFS a client contacts the metadata service at open to fetch a
//! file's distribution before talking to data servers directly; MHA adds
//! its Region Stripe Table on the same node (§III-G). We model the MDS as
//! a map plus a FIFO service queue so heavy open traffic queues up.

use crate::layout::LayoutSpec;
use iotrace::FileId;
use simrt::{FifoResource, SimDuration, SimTime};
use std::collections::BTreeMap;

/// The metadata server.
pub struct MetadataServer {
    layouts: BTreeMap<FileId, LayoutSpec>,
    default_layout: LayoutSpec,
    lookup_cost: SimDuration,
    queue: FifoResource,
}

impl MetadataServer {
    /// MDS with `default_layout` for files without an explicit entry and a
    /// per-lookup service cost (an OrangeFS getattr round trip is a few
    /// hundred microseconds on Gigabit Ethernet).
    pub fn new(default_layout: LayoutSpec, lookup_cost: SimDuration) -> Self {
        MetadataServer {
            layouts: BTreeMap::new(),
            default_layout,
            lookup_cost,
            queue: FifoResource::new(),
        }
    }

    /// Register (or replace) the layout of `file`.
    pub fn set_layout(&mut self, file: FileId, layout: LayoutSpec) {
        self.layouts.insert(file, layout);
    }

    /// Layout of `file` without charging a lookup (planner-side access).
    pub fn layout(&self, file: FileId) -> &LayoutSpec {
        self.layouts.get(&file).unwrap_or(&self.default_layout)
    }

    /// Perform a client lookup at `now`: returns `(layout, completion)`.
    /// Lookups serialize through the MDS queue.
    pub fn lookup(&mut self, now: SimTime, file: FileId) -> (LayoutSpec, SimTime) {
        let done = self.queue.submit(now, self.lookup_cost);
        (self.layouts.get(&file).unwrap_or(&self.default_layout).clone(), done)
    }

    /// Number of lookups served.
    pub fn lookups(&self) -> u64 {
        self.queue.served()
    }

    /// Files with explicit layout entries.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.layouts.keys().copied()
    }

    /// Clear queue statistics (keeps layouts).
    pub fn reset_queue(&mut self) {
        self.queue.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ServerId;

    fn mds() -> MetadataServer {
        MetadataServer::new(
            LayoutSpec::fixed(&[ServerId(0), ServerId(1)], 64 << 10),
            SimDuration::from_micros(300),
        )
    }

    #[test]
    fn default_layout_for_unknown_files() {
        let m = mds();
        assert_eq!(m.layout(FileId(7)).round_size(), 128 << 10);
    }

    #[test]
    fn explicit_layout_overrides_default() {
        let mut m = mds();
        m.set_layout(FileId(1), LayoutSpec::fixed(&[ServerId(0)], 4 << 10));
        assert_eq!(m.layout(FileId(1)).round_size(), 4 << 10);
        assert_eq!(m.layout(FileId(2)).round_size(), 128 << 10);
        assert_eq!(m.files().collect::<Vec<_>>(), vec![FileId(1)]);
    }

    #[test]
    fn lookups_serialize_and_cost_time() {
        let mut m = mds();
        let (_, t1) = m.lookup(SimTime::ZERO, FileId(0));
        let (_, t2) = m.lookup(SimTime::ZERO, FileId(0));
        assert_eq!(t1.as_nanos(), 300_000);
        assert_eq!(t2.as_nanos(), 600_000);
        assert_eq!(m.lookups(), 2);
        m.reset_queue();
        assert_eq!(m.lookups(), 0);
    }
}
