//! Metadata server: file → layout mapping with lookup-cost accounting.
//!
//! In OrangeFS a client contacts the metadata service at open to fetch a
//! file's distribution before talking to data servers directly; MHA adds
//! its Region Stripe Table on the same node (§III-G). We model the MDS as
//! a map plus a FIFO service queue so heavy open traffic queues up.

use crate::layout::LayoutSpec;
use iotrace::FileId;
use simrt::{FifoResource, SimDuration, SimTime};
use std::cell::Cell;

/// The metadata server.
pub struct MetadataServer {
    /// `(file, layout)` rows sorted by file id: registration is rare and
    /// lookup is hot, so a flat sorted table (binary search over dense
    /// memory) beats a `BTreeMap` tree walk. The last-hit cursor is
    /// interior-mutable so read-only accessors stay `&self`; replayed
    /// traces touch the same file in bursts, collapsing most searches to
    /// one comparison.
    layouts: Vec<(FileId, LayoutSpec)>,
    default_layout: LayoutSpec,
    lookup_cost: SimDuration,
    queue: FifoResource,
    cursor: Cell<usize>,
}

impl MetadataServer {
    /// MDS with `default_layout` for files without an explicit entry and a
    /// per-lookup service cost (an OrangeFS getattr round trip is a few
    /// hundred microseconds on Gigabit Ethernet).
    pub fn new(default_layout: LayoutSpec, lookup_cost: SimDuration) -> Self {
        MetadataServer {
            layouts: Vec::new(),
            default_layout,
            lookup_cost,
            queue: FifoResource::new(),
            cursor: Cell::new(usize::MAX),
        }
    }

    /// Register (or replace) the layout of `file`.
    pub fn set_layout(&mut self, file: FileId, layout: LayoutSpec) {
        match self.layouts.binary_search_by_key(&file, |e| e.0) {
            Ok(i) => self.layouts[i].1 = layout,
            Err(i) => self.layouts.insert(i, (file, layout)),
        }
    }

    /// Layout of `file` without charging a lookup (planner-side access).
    pub fn layout(&self, file: FileId) -> &LayoutSpec {
        match self.slot(file) {
            Some(i) => &self.layouts[i].1,
            None => &self.default_layout,
        }
    }

    /// Perform a client lookup at `now`: returns `(layout, completion)`.
    /// Lookups serialize through the MDS queue.
    pub fn lookup(&mut self, now: SimTime, file: FileId) -> (LayoutSpec, SimTime) {
        let (layout, done) = self.lookup_ref(now, file);
        (layout.clone(), done)
    }

    /// [`Self::lookup`] without cloning the layout: the replay fast path
    /// borrows the installed spec for the duration of one request instead
    /// of copying its segment table per open. Queue accounting is
    /// identical to [`Self::lookup`].
    pub fn lookup_ref(&mut self, now: SimTime, file: FileId) -> (&LayoutSpec, SimTime) {
        let done = self.queue.submit(now, self.lookup_cost);
        (self.layout(file), done)
    }

    /// Table row holding `file`, trying the cursor before searching.
    fn slot(&self, file: FileId) -> Option<usize> {
        let c = self.cursor.get();
        if let Some(e) = self.layouts.get(c) {
            if e.0 == file {
                return Some(c);
            }
        }
        let i = self.layouts.binary_search_by_key(&file, |e| e.0).ok()?;
        self.cursor.set(i);
        Some(i)
    }

    /// Number of lookups served.
    pub fn lookups(&self) -> u64 {
        self.queue.served()
    }

    /// Files with explicit layout entries.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.layouts.iter().map(|e| e.0)
    }

    /// The installed `(file, layout)` rows, sorted by file id — the
    /// snapshot a persistence layer needs to re-install the MDS state
    /// after a restart.
    pub fn layouts(&self) -> impl Iterator<Item = (FileId, &LayoutSpec)> + '_ {
        self.layouts.iter().map(|e| (e.0, &e.1))
    }

    /// Clear queue statistics (keeps layouts).
    pub fn reset_queue(&mut self) {
        self.queue.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ServerId;

    fn mds() -> MetadataServer {
        MetadataServer::new(
            LayoutSpec::fixed(&[ServerId(0), ServerId(1)], 64 << 10),
            SimDuration::from_micros(300),
        )
    }

    #[test]
    fn default_layout_for_unknown_files() {
        let m = mds();
        assert_eq!(m.layout(FileId(7)).round_size(), 128 << 10);
    }

    #[test]
    fn explicit_layout_overrides_default() {
        let mut m = mds();
        m.set_layout(FileId(1), LayoutSpec::fixed(&[ServerId(0)], 4 << 10));
        assert_eq!(m.layout(FileId(1)).round_size(), 4 << 10);
        assert_eq!(m.layout(FileId(2)).round_size(), 128 << 10);
        assert_eq!(m.files().collect::<Vec<_>>(), vec![FileId(1)]);
        let rows: Vec<(FileId, u64)> = m.layouts().map(|(f, l)| (f, l.round_size())).collect();
        assert_eq!(rows, vec![(FileId(1), 4 << 10)]);
    }

    #[test]
    fn lookup_ref_matches_lookup() {
        let mut m = mds();
        m.set_layout(FileId(1), LayoutSpec::fixed(&[ServerId(0)], 4 << 10));
        let (by_clone, t1) = m.lookup(SimTime::ZERO, FileId(1));
        let (by_ref, t2) = m.lookup_ref(SimTime::ZERO, FileId(1));
        assert_eq!(&by_clone, by_ref);
        assert_eq!(t2.as_nanos(), t1.as_nanos() + 300_000, "same queue accounting");
        assert_eq!(m.lookups(), 2);
    }

    #[test]
    fn cursor_survives_arbitrary_access_order() {
        // Register out of order, then read in patterns that alternately
        // hit and miss the last-hit cursor; every answer must match the
        // registration, and unknown files must still get the default.
        let mut m = mds();
        for f in [9u32, 3, 7, 1, 5] {
            m.set_layout(FileId(f), LayoutSpec::fixed(&[ServerId(0)], u64::from(f) << 10));
        }
        for f in [1u32, 1, 5, 3, 9, 9, 7, 1, 5, 5, 3] {
            assert_eq!(m.layout(FileId(f)).round_size(), u64::from(f) << 10, "file {f}");
        }
        assert_eq!(m.layout(FileId(4)).round_size(), 128 << 10, "default for unknown");
        assert_eq!(m.layout(FileId(5)).round_size(), 5 << 10, "cursor valid after miss");
        // Replacement through the sorted table keeps ordering intact.
        m.set_layout(FileId(5), LayoutSpec::fixed(&[ServerId(1)], 77 << 10));
        assert_eq!(m.layout(FileId(5)).round_size(), 77 << 10);
        assert_eq!(m.files().collect::<Vec<_>>().len(), 5);
    }

    #[test]
    fn lookups_serialize_and_cost_time() {
        let mut m = mds();
        let (_, t1) = m.lookup(SimTime::ZERO, FileId(0));
        let (_, t2) = m.lookup(SimTime::ZERO, FileId(0));
        assert_eq!(t1.as_nanos(), 300_000);
        assert_eq!(t2.as_nanos(), 600_000);
        assert_eq!(m.lookups(), 2);
        m.reset_queue();
        assert_eq!(m.lookups(), 0);
    }
}
