//! Metadata server: file → layout mapping with lookup-cost accounting.
//!
//! In OrangeFS a client contacts the metadata service at open to fetch a
//! file's distribution before talking to data servers directly; MHA adds
//! its Region Stripe Table on the same node (§III-G). We model the MDS as
//! a map plus a FIFO service queue so heavy open traffic queues up.
//!
//! The table is sharded by tenant: file ids carry their tenant in the
//! high bits ([`iotrace::FileId::with_tenant`]), and each tenant's
//! `(file, layout)` rows live in their own sorted shard with their own
//! last-hit cursor, so one tenant's registration churn never invalidates
//! another's cursor locality. All legacy ids belong to tenant 0 — a
//! single-tenant MDS behaves bit-identically to the pre-sharded one.
//! The service *queue* stays shared: there is one metadata node, and
//! tenants contend on it exactly as clients contend in OrangeFS.

use crate::error::ReplayError;
use crate::layout::LayoutSpec;
use iotrace::{FileId, TenantId};
use simrt::{FifoResource, SimDuration, SimTime};
use std::cell::Cell;

/// Builder for a [`MetadataServer`] with validated defaults.
///
/// ```
/// use pfs_sim::{LayoutSpec, MdsConfig, ServerId};
/// use simrt::SimDuration;
/// let mds = MdsConfig::new(LayoutSpec::fixed(&[ServerId(0)], 64 << 10))
///     .lookup_cost(SimDuration::from_micros(300))
///     .build()
///     .unwrap();
/// assert_eq!(mds.lookups(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct MdsConfig {
    default_layout: LayoutSpec,
    lookup_cost: SimDuration,
}

impl MdsConfig {
    /// Configuration serving `default_layout` for files without an
    /// explicit entry. The lookup cost defaults to 300 µs — an OrangeFS
    /// getattr round trip on Gigabit Ethernet.
    pub fn new(default_layout: LayoutSpec) -> Self {
        MdsConfig { default_layout, lookup_cost: SimDuration::from_micros(300) }
    }

    /// Per-lookup service time charged through the MDS queue.
    #[must_use]
    pub fn lookup_cost(mut self, cost: SimDuration) -> Self {
        self.lookup_cost = cost;
        self
    }

    /// Build the server. Fails with [`ReplayError::InvalidCluster`] when
    /// the default layout spans no servers (possible only via a
    /// deserialized spec — every unregistered file would be unreachable)
    /// or the lookup cost exceeds 60 s (almost certainly a unit mixup:
    /// the paper-scale cost is hundreds of microseconds).
    pub fn build(self) -> Result<MetadataServer, ReplayError> {
        if self.default_layout.servers().count() == 0 {
            return Err(ReplayError::InvalidCluster(
                "MDS default layout must span at least one server".into(),
            ));
        }
        if self.lookup_cost > SimDuration::from_millis(60_000) {
            return Err(ReplayError::InvalidCluster(format!(
                "MDS lookup cost {} exceeds 60 s (milliseconds passed as seconds?)",
                self.lookup_cost
            )));
        }
        Ok(MetadataServer {
            shards: Vec::new(),
            default_layout: self.default_layout,
            lookup_cost: self.lookup_cost,
            queue: FifoResource::new(),
            shard_cursor: Cell::new(usize::MAX),
        })
    }
}

/// One tenant's `(file, layout)` rows, sorted by file id: registration
/// is rare and lookup is hot, so a flat sorted table (binary search over
/// dense memory) beats a `BTreeMap` tree walk. The last-hit cursor is
/// interior-mutable so read-only accessors stay `&self`; replayed traces
/// touch the same file in bursts, collapsing most searches to one
/// comparison.
#[derive(Debug)]
struct Shard {
    tenant: TenantId,
    layouts: Vec<(FileId, LayoutSpec)>,
    cursor: Cell<usize>,
}

/// The metadata server.
pub struct MetadataServer {
    /// Per-tenant shards, sorted by tenant id. Tenant-major order is
    /// also global-file-id order (the tenant sits in the high bits), so
    /// cross-shard iteration yields the same sorted sequence the flat
    /// pre-sharded table did.
    shards: Vec<Shard>,
    default_layout: LayoutSpec,
    lookup_cost: SimDuration,
    queue: FifoResource,
    /// Last-hit shard index (most traffic streaks within one tenant).
    shard_cursor: Cell<usize>,
}

impl MetadataServer {
    /// MDS with `default_layout` for files without an explicit entry and
    /// a per-lookup service cost.
    #[deprecated(
        since = "0.8.0",
        note = "use MdsConfig::new(default_layout).lookup_cost(..).build(); removed next release"
    )]
    pub fn new(default_layout: LayoutSpec, lookup_cost: SimDuration) -> Self {
        MdsConfig::new(default_layout)
            .lookup_cost(lookup_cost)
            .build()
            .expect("legacy constructor accepts any layout the builder does")
    }

    /// The shard holding `tenant`'s rows, if any.
    fn shard(&self, tenant: TenantId) -> Option<&Shard> {
        let c = self.shard_cursor.get();
        if let Some(s) = self.shards.get(c) {
            if s.tenant == tenant {
                return Some(s);
            }
        }
        let i = self.shards.binary_search_by_key(&tenant, |s| s.tenant).ok()?;
        self.shard_cursor.set(i);
        Some(&self.shards[i])
    }

    /// The shard holding `tenant`'s rows, created on first use.
    fn shard_mut(&mut self, tenant: TenantId) -> &mut Shard {
        let i = match self.shards.binary_search_by_key(&tenant, |s| s.tenant) {
            Ok(i) => i,
            Err(i) => {
                self.shards.insert(
                    i,
                    Shard { tenant, layouts: Vec::new(), cursor: Cell::new(usize::MAX) },
                );
                i
            }
        };
        self.shard_cursor.set(i);
        &mut self.shards[i]
    }

    /// Register (or replace) the layout of `file`.
    pub fn set_layout(&mut self, file: FileId, layout: LayoutSpec) {
        let shard = self.shard_mut(file.tenant());
        match shard.layouts.binary_search_by_key(&file, |e| e.0) {
            Ok(i) => shard.layouts[i].1 = layout,
            Err(i) => shard.layouts.insert(i, (file, layout)),
        }
    }

    /// Layout of `file` without charging a lookup (planner-side access).
    pub fn layout(&self, file: FileId) -> &LayoutSpec {
        match self.shard(file.tenant()).and_then(|s| s.slot(file).map(|i| &s.layouts[i].1)) {
            Some(l) => l,
            None => &self.default_layout,
        }
    }

    /// Perform a client lookup at `now`: returns `(layout, completion)`.
    /// Lookups serialize through the MDS queue.
    pub fn lookup(&mut self, now: SimTime, file: FileId) -> (LayoutSpec, SimTime) {
        let (layout, done) = self.lookup_ref(now, file);
        (layout.clone(), done)
    }

    /// [`Self::lookup`] without cloning the layout: the replay fast path
    /// borrows the installed spec for the duration of one request instead
    /// of copying its segment table per open. Queue accounting is
    /// identical to [`Self::lookup`].
    pub fn lookup_ref(&mut self, now: SimTime, file: FileId) -> (&LayoutSpec, SimTime) {
        let done = self.queue.submit(now, self.lookup_cost);
        (self.layout(file), done)
    }

    /// Number of lookups served.
    pub fn lookups(&self) -> u64 {
        self.queue.served()
    }

    /// Files with explicit layout entries, across all tenants, in
    /// global file-id order.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.shards.iter().flat_map(|s| s.layouts.iter().map(|e| e.0))
    }

    /// The installed `(file, layout)` rows, sorted by file id — the
    /// snapshot a persistence layer needs to re-install the MDS state
    /// after a restart.
    pub fn layouts(&self) -> impl Iterator<Item = (FileId, &LayoutSpec)> + '_ {
        self.shards.iter().flat_map(|s| s.layouts.iter().map(|e| (e.0, &e.1)))
    }

    /// `tenant`'s installed `(file, layout)` rows, sorted by file id.
    pub fn tenant_layouts(
        &self,
        tenant: TenantId,
    ) -> impl Iterator<Item = (FileId, &LayoutSpec)> + '_ {
        self.shards
            .iter()
            .filter(move |s| s.tenant == tenant)
            .flat_map(|s| s.layouts.iter().map(|e| (e.0, &e.1)))
    }

    /// Tenants with at least one registered layout.
    pub fn tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.shards.iter().map(|s| s.tenant)
    }

    /// Clear queue statistics (keeps layouts).
    pub fn reset_queue(&mut self) {
        self.queue.reset();
    }
}

impl Shard {
    /// Table row holding `file`, trying the cursor before searching.
    fn slot(&self, file: FileId) -> Option<usize> {
        let c = self.cursor.get();
        if let Some(e) = self.layouts.get(c) {
            if e.0 == file {
                return Some(c);
            }
        }
        let i = self.layouts.binary_search_by_key(&file, |e| e.0).ok()?;
        self.cursor.set(i);
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ServerId;

    fn mds() -> MetadataServer {
        MdsConfig::new(LayoutSpec::fixed(&[ServerId(0), ServerId(1)], 64 << 10))
            .lookup_cost(SimDuration::from_micros(300))
            .build()
            .unwrap()
    }

    #[test]
    fn default_layout_for_unknown_files() {
        let m = mds();
        assert_eq!(m.layout(FileId(7)).round_size(), 128 << 10);
    }

    #[test]
    fn builder_defaults_and_validation() {
        let m = MdsConfig::new(LayoutSpec::fixed(&[ServerId(0)], 4 << 10)).build().unwrap();
        let (_, done) = {
            let mut m = m;
            m.lookup(SimTime::ZERO, FileId(0))
        };
        assert_eq!(done.as_nanos(), 300_000, "default lookup cost is 300 µs");
    }

    #[test]
    fn explicit_layout_overrides_default() {
        let mut m = mds();
        m.set_layout(FileId(1), LayoutSpec::fixed(&[ServerId(0)], 4 << 10));
        assert_eq!(m.layout(FileId(1)).round_size(), 4 << 10);
        assert_eq!(m.layout(FileId(2)).round_size(), 128 << 10);
        assert_eq!(m.files().collect::<Vec<_>>(), vec![FileId(1)]);
        let rows: Vec<(FileId, u64)> = m.layouts().map(|(f, l)| (f, l.round_size())).collect();
        assert_eq!(rows, vec![(FileId(1), 4 << 10)]);
    }

    #[test]
    fn lookup_ref_matches_lookup() {
        let mut m = mds();
        m.set_layout(FileId(1), LayoutSpec::fixed(&[ServerId(0)], 4 << 10));
        let (by_clone, t1) = m.lookup(SimTime::ZERO, FileId(1));
        let (by_ref, t2) = m.lookup_ref(SimTime::ZERO, FileId(1));
        assert_eq!(&by_clone, by_ref);
        assert_eq!(t2.as_nanos(), t1.as_nanos() + 300_000, "same queue accounting");
        assert_eq!(m.lookups(), 2);
    }

    #[test]
    fn cursor_survives_arbitrary_access_order() {
        // Register out of order, then read in patterns that alternately
        // hit and miss the last-hit cursor; every answer must match the
        // registration, and unknown files must still get the default.
        let mut m = mds();
        for f in [9u32, 3, 7, 1, 5] {
            m.set_layout(FileId(f), LayoutSpec::fixed(&[ServerId(0)], u64::from(f) << 10));
        }
        for f in [1u32, 1, 5, 3, 9, 9, 7, 1, 5, 5, 3] {
            assert_eq!(m.layout(FileId(f)).round_size(), u64::from(f) << 10, "file {f}");
        }
        assert_eq!(m.layout(FileId(4)).round_size(), 128 << 10, "default for unknown");
        assert_eq!(m.layout(FileId(5)).round_size(), 5 << 10, "cursor valid after miss");
        // Replacement through the sorted table keeps ordering intact.
        m.set_layout(FileId(5), LayoutSpec::fixed(&[ServerId(1)], 77 << 10));
        assert_eq!(m.layout(FileId(5)).round_size(), 77 << 10);
        assert_eq!(m.files().collect::<Vec<_>>().len(), 5);
    }

    #[test]
    fn lookups_serialize_and_cost_time() {
        let mut m = mds();
        let (_, t1) = m.lookup(SimTime::ZERO, FileId(0));
        let (_, t2) = m.lookup(SimTime::ZERO, FileId(0));
        assert_eq!(t1.as_nanos(), 300_000);
        assert_eq!(t2.as_nanos(), 600_000);
        assert_eq!(m.lookups(), 2);
        m.reset_queue();
        assert_eq!(m.lookups(), 0);
    }

    #[test]
    fn tenant_shards_isolate_same_local_id() {
        let mut m = mds();
        let a = FileId::with_tenant(TenantId(1), FileId(42));
        let b = FileId::with_tenant(TenantId(2), FileId(42));
        m.set_layout(a, LayoutSpec::fixed(&[ServerId(0)], 4 << 10));
        m.set_layout(b, LayoutSpec::fixed(&[ServerId(1)], 8 << 10));
        assert_eq!(m.layout(a).round_size(), 4 << 10);
        assert_eq!(m.layout(b).round_size(), 8 << 10);
        // The other tenant's local 42 (tenant 0) still gets the default.
        assert_eq!(m.layout(FileId(42)).round_size(), 128 << 10);
        assert_eq!(m.tenants().collect::<Vec<_>>(), vec![TenantId(1), TenantId(2)]);
        assert_eq!(m.tenant_layouts(TenantId(1)).count(), 1);
        assert_eq!(m.tenant_layouts(TenantId(3)).count(), 0);
    }

    #[test]
    fn cross_tenant_iteration_is_global_id_order() {
        let mut m = mds();
        let ids = [
            FileId::with_tenant(TenantId(2), FileId(1)),
            FileId(9),
            FileId::with_tenant(TenantId(1), FileId(700)),
            FileId(3),
            FileId::with_tenant(TenantId(1), FileId(2)),
        ];
        for f in ids {
            m.set_layout(f, LayoutSpec::fixed(&[ServerId(0)], 4 << 10));
        }
        let got: Vec<FileId> = m.files().collect();
        let mut want = ids.to_vec();
        want.sort();
        assert_eq!(got, want, "tenant-major order equals global file-id order");
    }

    #[test]
    fn interleaved_tenant_access_keeps_per_shard_cursors_honest() {
        let mut m = mds();
        for t in 0..4u32 {
            for f in [2u32, 5, 8] {
                m.set_layout(
                    FileId::with_tenant(TenantId(t), FileId(f)),
                    LayoutSpec::fixed(&[ServerId(0)], u64::from(t * 100 + f) << 10),
                );
            }
        }
        // Ping-pong across tenants: every probe must resolve within its
        // own shard despite constant shard-cursor churn.
        for (t, f) in [(0u32, 2u32), (3, 8), (1, 5), (1, 2), (3, 2), (0, 8), (2, 5), (2, 5)] {
            let got = m.layout(FileId::with_tenant(TenantId(t), FileId(f)));
            assert_eq!(got.round_size(), u64::from(t * 100 + f) << 10, "tenant {t} file {f}");
        }
    }

    #[test]
    fn absurd_lookup_cost_rejected() {
        let err = MdsConfig::new(LayoutSpec::fixed(&[ServerId(0)], 64 << 10))
            .lookup_cost(SimDuration::from_millis(90_000))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("exceeds 60 s"), "{err}");
    }
}
