//! [`ReplaySession`]: the single entry point for replaying traces.
//!
//! A session owns the replay's working state — scratch buffers, an
//! optional pinned schedule — plus the fault-injection state
//! ([`simrt::FaultPlan`]). One session replayed across a whole
//! experiment grid keeps the per-request path allocation-free, and
//! every failure mode surfaces as a [`ReplayError`] instead of a panic.
//!
//! Since 0.8 there is one `run` method: the payload (a materialized
//! [`Trace`] or a streaming [`BatchSource`]) travels inside a
//! [`ReplayInput`], and the replay core is picked by [`CoreSel`].
//! `CoreSel::Auto` reproduces the pre-0.8 defaults exactly: traces run
//! on the serial core, streams on the sharded per-server-lane core.
//! The two cores are bit-for-bit identical, so the selector is a
//! performance knob, never a semantics knob.

use crate::cluster::Cluster;
use crate::error::ReplayError;
use crate::fault::FaultRuntime;
use crate::replay::{replay_core, ReplayReport, ReplaySchedule, ReplayScratch, Resolver};
use crate::sched::SchedRuntime;
use crate::sharded::{sharded_core, ShardedScratch};
use iotrace::{BatchSource, Trace, TraceBatches};
use simrt::{FaultPlan, SchedPolicy};

/// What a replay consumes: a materialized trace or a phase stream.
pub enum ReplayPayload<'a> {
    /// A fully materialized trace (replayable by either core).
    Trace(&'a Trace),
    /// A streaming phase source (sharded core only; the full trace
    /// never materializes, peak memory is the widest single phase).
    Stream(&'a mut dyn BatchSource),
}

/// Everything one replay needs: the cluster, the payload, and the
/// resolver translating logical requests to physical extents.
pub struct ReplayInput<'a> {
    cluster: &'a mut Cluster,
    payload: ReplayPayload<'a>,
    resolver: &'a mut dyn Resolver,
}

impl<'a> ReplayInput<'a> {
    /// Replay a materialized `trace` against `cluster` through `resolver`.
    pub fn trace(
        cluster: &'a mut Cluster,
        trace: &'a Trace,
        resolver: &'a mut dyn Resolver,
    ) -> Self {
        ReplayInput { cluster, payload: ReplayPayload::Trace(trace), resolver }
    }

    /// Replay a streaming `source` against `cluster` through `resolver`.
    pub fn stream(
        cluster: &'a mut Cluster,
        source: &'a mut dyn BatchSource,
        resolver: &'a mut dyn Resolver,
    ) -> Self {
        ReplayInput { cluster, payload: ReplayPayload::Stream(source), resolver }
    }
}

/// Which replay core executes a [`ReplayInput`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreSel {
    /// Pick per payload: serial for traces, sharded for streams (the
    /// pre-0.8 behavior of `run` / `run_stream`).
    #[default]
    Auto,
    /// The serial replay loop. Requires a materialized trace; honors a
    /// pinned [`ReplaySchedule`].
    Serial,
    /// The per-server-lane core ([`crate::sharded`]): bit-identical to
    /// serial and several times faster at scale. A pinned schedule is
    /// ignored — the sharded core derives the same deterministic order
    /// from the phases themselves.
    Sharded,
}

/// Reusable replay context: scratch buffers, an optional pinned
/// [`ReplaySchedule`], and an optional [`FaultPlan`].
///
/// ```
/// use pfs_sim::{Cluster, ClusterConfig, CoreSel, IdentityResolver, ReplayInput, ReplaySession};
/// # use iotrace::Trace;
/// let mut cluster = Cluster::new(ClusterConfig::paper_default());
/// let mut session = ReplaySession::new();
/// let report = session
///     .run(
///         ReplayInput::trace(&mut cluster, &Trace::new(), &mut IdentityResolver),
///         CoreSel::Auto,
///     )
///     .unwrap();
/// assert_eq!(report.requests, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplaySession {
    /// Pinned schedule, when the caller hoisted it; otherwise the order
    /// is rebuilt per run from the scratch's schedule buffers.
    schedule: Option<ReplaySchedule>,
    scratch: ReplayScratch,
    sharded: ShardedScratch,
    fault: FaultPlan,
    sched: SchedRuntime,
}

impl ReplaySession {
    /// Fresh session: no pinned schedule, no faults, cold buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin a prebuilt schedule. Every subsequent serial run replays in
    /// exactly this order and rejects traces of a different shape with
    /// [`ReplayError::ScheduleMismatch`].
    #[must_use]
    pub fn with_schedule(mut self, schedule: ReplaySchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Attach a fault plan. An empty plan ([`FaultPlan::none`]) leaves
    /// replay bit-for-bit identical to the fault-free path.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Replace the fault plan in place (e.g. to sweep fault scenarios
    /// over one warmed-up session).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// The active fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Attach a dispatch policy. The default
    /// [`SchedPolicy::SeededShuffle`] replays bit-identically to every
    /// pre-scheduler release; [`SchedPolicy::StragglerAware`] adapts the
    /// within-phase issue order and pacing to per-server latency EWMAs
    /// (and still degenerates to the exact blind schedule while no
    /// server looks suspect).
    #[must_use]
    pub fn with_sched_policy(mut self, policy: SchedPolicy) -> Self {
        self.sched.set_policy(policy);
        self
    }

    /// Replace the dispatch policy in place (e.g. per tenant, or to
    /// sweep policies over one warmed-up session).
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.sched.set_policy(policy);
    }

    /// The active dispatch policy.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.sched.policy()
    }

    /// The pinned schedule, if any.
    pub fn schedule(&self) -> Option<&ReplaySchedule> {
        self.schedule.as_ref()
    }

    /// Replay `input` on the core picked by `core`.
    ///
    /// When the session carries a non-empty fault plan, the plan's
    /// device/link faults are materialized into the cluster first (once —
    /// [`Cluster::apply_fault_plan`] is skipped if faults were already
    /// applied, so repeated runs don't stack slowdowns), and its temporal
    /// faults drive per-sub-request admission during the run. Retry,
    /// timeout and health accounting land in the returned
    /// [`ReplayReport`].
    ///
    /// A streaming payload on [`CoreSel::Serial`] fails with
    /// [`ReplayError::StreamRequiresSharded`]; every other combination
    /// produces bit-identical reports across cores.
    pub fn run(
        &mut self,
        input: ReplayInput<'_>,
        core: CoreSel,
    ) -> Result<ReplayReport, ReplayError> {
        let ReplayInput { cluster, payload, resolver } = input;
        if let Err(reason) = self.sched.policy().validate() {
            return Err(ReplayError::InvalidSchedPolicy(reason));
        }
        let mut runtime = if self.fault.is_empty() {
            None
        } else {
            if !cluster.faults_applied() {
                cluster.apply_fault_plan(&self.fault)?;
            }
            Some(FaultRuntime::new(&self.fault, cluster.servers().len()))
        };
        match (payload, core) {
            (ReplayPayload::Trace(trace), CoreSel::Auto | CoreSel::Serial) => {
                match &self.schedule {
                    Some(schedule) => replay_core(
                        cluster,
                        trace,
                        schedule,
                        resolver,
                        &mut self.scratch,
                        runtime.as_mut(),
                        &mut self.sched,
                    ),
                    None => {
                        // Borrow dance: the schedule buffers live inside
                        // the scratch, so take them out while the scratch
                        // is mutably borrowed by the core.
                        let mut schedule = self.scratch.take_schedule();
                        schedule.rebuild(trace);
                        let report = replay_core(
                            cluster,
                            trace,
                            &schedule,
                            resolver,
                            &mut self.scratch,
                            runtime.as_mut(),
                            &mut self.sched,
                        );
                        self.scratch.put_schedule(schedule);
                        report
                    }
                }
            }
            (ReplayPayload::Trace(trace), CoreSel::Sharded) => sharded_core(
                cluster,
                &mut TraceBatches::new(trace),
                resolver,
                &mut self.sharded,
                runtime.as_mut(),
                &mut self.sched,
            ),
            (ReplayPayload::Stream(source), CoreSel::Auto | CoreSel::Sharded) => sharded_core(
                cluster,
                source,
                resolver,
                &mut self.sharded,
                runtime.as_mut(),
                &mut self.sched,
            ),
            (ReplayPayload::Stream(_), CoreSel::Serial) => {
                Err(ReplayError::StreamRequiresSharded)
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::replay::IdentityResolver;
    use iotrace::gen::ior::{generate, IorConfig};
    use storage_model::IoOp;

    fn small_ior(op: IoOp) -> Trace {
        let mut cfg = IorConfig::default_run(op);
        cfg.reqs_per_proc = 8;
        cfg.proc_mix = vec![8];
        generate(&cfg)
    }

    fn run_serial(t: &Trace) -> ReplayReport {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        ReplaySession::new()
            .run(ReplayInput::trace(&mut c, t, &mut IdentityResolver), CoreSel::Auto)
            .unwrap()
    }

    #[test]
    fn independent_sessions_are_bit_identical() {
        // Two fresh sessions over the same trace must agree bit for bit
        // on the fault-free path (the replay order depends only on the
        // trace, never on session history).
        for t in [small_ior(IoOp::Write), small_ior(IoOp::Read)] {
            let a = run_serial(&t);
            let b = run_serial(&t);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.server_busy_secs(), b.server_busy_secs());
            assert_eq!(a.mds_lookups, b.mds_lookups);
            assert_eq!(
                a.request_latency.sum().to_bits(),
                b.request_latency.sum().to_bits()
            );
            assert_eq!(b.retries, 0);
            assert_eq!(b.timeouts, 0);
        }
    }

    #[test]
    fn explicit_core_selection_is_bit_identical_to_auto() {
        let t = small_ior(IoOp::Write);
        let auto = run_serial(&t);
        for core in [CoreSel::Serial, CoreSel::Sharded] {
            let mut c = Cluster::new(ClusterConfig::paper_default());
            let r = ReplaySession::new()
                .run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), core)
                .unwrap();
            assert_eq!(r.makespan, auto.makespan, "{core:?}");
            assert_eq!(r.server_busy_secs(), auto.server_busy_secs(), "{core:?}");
            assert_eq!(
                r.request_latency.sum().to_bits(),
                auto.request_latency.sum().to_bits(),
                "{core:?}"
            );
        }
    }

    #[test]
    fn stream_on_serial_core_is_rejected() {
        let t = small_ior(IoOp::Write);
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let err = ReplaySession::new()
            .run(
                ReplayInput::stream(&mut c, &mut TraceBatches::new(&t), &mut IdentityResolver),
                CoreSel::Serial,
            )
            .unwrap_err();
        assert_eq!(err, ReplayError::StreamRequiresSharded);
    }

    #[test]
    fn deprecated_shims_are_gone_and_run_covers_their_contracts() {
        // The 0.8 `run_sharded`/`run_stream` shims have been removed
        // after their one-release grace period; the unified `run` entry
        // point must deliver both contracts bit-identically: trace on
        // the sharded core, and a streamed source on the Auto pick.
        let t = small_ior(IoOp::Read);
        let unified = {
            let mut c = Cluster::new(ClusterConfig::paper_default());
            ReplaySession::new()
                .run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), CoreSel::Sharded)
                .unwrap()
        };
        let mut c2 = Cluster::new(ClusterConfig::paper_default());
        let streamed = ReplaySession::new()
            .run(
                ReplayInput::stream(&mut c2, &mut TraceBatches::new(&t), &mut IdentityResolver),
                CoreSel::Auto,
            )
            .unwrap();
        assert_eq!(streamed.makespan, unified.makespan);
        assert_eq!(streamed.server_busy_secs(), unified.server_busy_secs());
        assert_eq!(
            streamed.request_latency.sum().to_bits(),
            unified.request_latency.sum().to_bits()
        );
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let t = small_ior(IoOp::Write);
        let plain = run_serial(&t);
        let mut c2 = Cluster::new(ClusterConfig::paper_default());
        let faultless = ReplaySession::new()
            .with_fault_plan(FaultPlan::none())
            .run(ReplayInput::trace(&mut c2, &t, &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        assert_eq!(plain.makespan, faultless.makespan);
        assert_eq!(plain.server_busy_secs(), faultless.server_busy_secs());
        assert!(!c2.faults_applied(), "empty plan must not touch the cluster");
    }

    #[test]
    fn pinned_schedule_rejects_wrong_trace() {
        let t = small_ior(IoOp::Write);
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let err = ReplaySession::new()
            .with_schedule(ReplaySchedule::for_trace(&Trace::new()))
            .run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), CoreSel::Auto)
            .unwrap_err();
        assert_eq!(err, ReplayError::ScheduleMismatch { schedule: 0, trace: t.len() });
    }

    #[test]
    fn straggler_plan_slows_the_run_deterministically() {
        let t = small_ior(IoOp::Write);
        let base = run_serial(&t);
        let plan = FaultPlan::none().slow_server(0, 4.0);
        let run = |plan: FaultPlan| {
            let mut c = Cluster::new(ClusterConfig::paper_default());
            ReplaySession::new()
                .with_fault_plan(plan)
                .run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), CoreSel::Auto)
                .unwrap()
        };
        let r1 = run(plan.clone());
        let r2 = run(plan);
        assert!(r1.makespan > base.makespan, "straggler must cost time");
        assert_eq!(r1.makespan, r2.makespan, "same plan, same report");
        assert_eq!(r1.server_busy_secs(), r2.server_busy_secs());
        assert!((r1.per_server[0].slowdown - 4.0).abs() < 1e-12);
    }

    #[test]
    fn outage_accounts_retries_and_down_server_times_out() {
        let t = small_ior(IoOp::Write);
        // Server 0 is unreachable for the first 50 ms, server 1 dies at
        // t = 0: every sub-request to it burns the 2 s timeout.
        let plan = FaultPlan::none().outage(0, 0.0, 0.05).down(1, 0.0);
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let r = ReplaySession::new()
            .with_fault_plan(plan)
            .run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        assert!(r.retries > 0, "outage must force retries");
        assert!(r.timeouts > 0, "down server must time out");
        assert!(r.fault_wait > simrt::SimDuration::ZERO);
        assert_eq!(r.per_server[0].retries, r.retries);
        assert_eq!(r.per_server[1].timeouts, r.timeouts);
        assert!(r.per_server[1].down);
        assert_eq!(
            r.per_server[1].bytes_written, 0,
            "a dead server moves no bytes"
        );
        assert!(
            r.makespan.as_secs_f64() >= 2.0,
            "timeouts dominate the makespan: {:?}",
            r.makespan
        );
    }

    #[test]
    fn repeated_runs_do_not_stack_device_faults() {
        let t = small_ior(IoOp::Write);
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let mut session = ReplaySession::new().with_fault_plan(FaultPlan::none().slow_server(0, 3.0));
        let r1 = session
            .run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        let r2 = session
            .run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        assert_eq!(
            r1.makespan, r2.makespan,
            "second run must not re-wrap the device"
        );
    }

    #[test]
    fn fault_plan_out_of_range_surfaces_as_error() {
        let t = small_ior(IoOp::Write);
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let servers = c.servers().len();
        let err = ReplaySession::new()
            .with_fault_plan(FaultPlan::none().slow_server(servers, 2.0))
            .run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), CoreSel::Auto)
            .unwrap_err();
        assert_eq!(err, ReplayError::FaultTargetOutOfRange { server: servers, servers });
    }
}
