//! Cluster assembly: servers + fabric + metadata service.

use crate::error::ReplayError;
use crate::layout::{LayoutSpec, ServerId};
use crate::mds::{MdsConfig, MetadataServer};
use crate::server::StorageServer;
use netsim::{LinkParams, NetFabric, NodeId};
use simrt::{DeviceProfile, FaultKind, FaultPlan, SimDuration};
use storage_model::{DeviceKind, HddModel, HddParams, ScaledDevice, SsdModel, SsdParams};

/// Cluster shape and hardware parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of HDD-backed servers.
    pub hservers: usize,
    /// Number of SSD-backed servers.
    pub sservers: usize,
    /// Number of compute (client) nodes.
    pub clients: usize,
    /// HDD model parameters.
    pub hdd: HddParams,
    /// SSD model parameters.
    pub ssd: SsdParams,
    /// NIC parameters (all nodes identical, per the paper's assumption).
    pub link: LinkParams,
    /// Metadata lookup service time.
    pub mds_lookup: SimDuration,
    /// Default stripe size for files without an optimized layout (the
    /// paper's 64 KB default).
    pub default_stripe: u64,
    /// Number of device-space slots files hash into on each server: each
    /// file's object lives in its own slot (6 GiB apart), so switching
    /// files costs a real head move. More slots spread files further
    /// across the platter; 40 covers a 240 GB usable span, matching the
    /// paper's 250 GB disks.
    pub device_slots: u64,
}

impl ClusterConfig {
    /// The paper's testbed: 6 HServers, 2 SServers, 8 compute nodes,
    /// Gigabit Ethernet, 64 KB default stripe.
    pub fn paper_default() -> Self {
        ClusterConfig {
            hservers: 6,
            sservers: 2,
            clients: 8,
            hdd: HddParams::sata2_250gb(),
            ssd: SsdParams::pcie_100gb(),
            link: LinkParams::gigabit_ethernet(),
            mds_lookup: SimDuration::from_micros(300),
            default_stripe: 64 << 10,
            device_slots: 40,
        }
    }

    /// Same testbed with a different H:S server split (Fig. 10 sweeps
    /// 7h:1s .. 4h:4s).
    pub fn with_ratio(hservers: usize, sservers: usize) -> Self {
        ClusterConfig { hservers, sservers, ..Self::paper_default() }
    }

    /// Total number of file servers.
    pub fn servers(&self) -> usize {
        self.hservers + self.sservers
    }
}

/// An assembled hybrid PFS cluster.
///
/// Fabric node numbering: clients occupy nodes `0..clients`, servers
/// `clients..clients+servers`, and the MDS the final node.
pub struct Cluster {
    config: ClusterConfig,
    servers: Vec<StorageServer>,
    fabric: NetFabric,
    mds: MetadataServer,
    /// Whether a fault plan's device/link faults have been materialized.
    faulted: bool,
}

impl Cluster {
    /// Build a cluster per `config`. Servers `0..hservers` are HServers,
    /// the rest SServers (matching the paper's S0–S5 = H, S6–S7 = S
    /// numbering in Fig. 8).
    ///
    /// # Panics
    /// On a shapeless config (no servers or no clients); use
    /// [`Cluster::try_new`] to get a [`ReplayError`] instead.
    pub fn new(config: ClusterConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Cluster::new`].
    pub fn try_new(config: ClusterConfig) -> Result<Self, ReplayError> {
        if config.servers() == 0 {
            return Err(ReplayError::InvalidCluster(
                "cluster needs at least one server".into(),
            ));
        }
        if config.clients == 0 {
            return Err(ReplayError::InvalidCluster(
                "cluster needs at least one client".into(),
            ));
        }
        let nodes = config.clients + config.servers() + 1;
        let fabric = NetFabric::new(nodes, config.link);
        let mut servers = Vec::with_capacity(config.servers());
        for i in 0..config.servers() {
            let node = NodeId(config.clients + i);
            let device: storage_model::BoxedDevice = if i < config.hservers {
                Box::new(HddModel::new(config.hdd.clone()))
            } else {
                Box::new(SsdModel::new(config.ssd.clone()))
            };
            servers.push(StorageServer::new(ServerId(i), node, device));
        }
        let all: Vec<ServerId> = (0..config.servers()).map(ServerId).collect();
        let mds = MdsConfig::new(LayoutSpec::fixed(&all, config.default_stripe))
            .lookup_cost(config.mds_lookup)
            .build()?;
        Ok(Cluster { config, servers, fabric, mds, faulted: false })
    }

    /// Materialize the device and link faults of `plan` onto this
    /// cluster: stragglers wrap their device in a
    /// [`storage_model::ScaledDevice`], degraded profiles swap in worn
    /// hardware models, and slow links degrade the server's fabric node.
    /// Temporal faults (outages, permanent loss) are not handled here —
    /// the replay session drives those per sub-request.
    ///
    /// Applying is idempotent per cluster life: sessions check
    /// [`Cluster::faults_applied`] first. [`Cluster::reset`] keeps the
    /// degradation (it models hardware, not queue state).
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), ReplayError> {
        let n = self.servers.len();
        if let Some(max) = plan.max_server() {
            if max >= n {
                return Err(ReplayError::FaultTargetOutOfRange { server: max, servers: n });
            }
        }
        // Validate profile/medium agreement before touching anything, so
        // a failed apply leaves the cluster pristine.
        for f in &plan.faults {
            if let FaultKind::Degraded { profile } = f.kind {
                let kind = self.servers[f.server].kind();
                let fits = matches!(
                    (profile, kind),
                    (DeviceProfile::WornSsd, DeviceKind::Ssd)
                        | (DeviceProfile::AgedHdd, DeviceKind::Hdd)
                );
                if !fits {
                    return Err(ReplayError::ProfileMismatch {
                        server: f.server,
                        profile: profile.name(),
                        kind,
                    });
                }
            }
        }
        for f in &plan.faults {
            let server = &mut self.servers[f.server];
            match f.kind {
                FaultKind::Slowdown { factor } => {
                    if factor != 1.0 {
                        let inner = server.clone_device();
                        server.set_device(Box::new(ScaledDevice::new(inner, factor)));
                    }
                }
                FaultKind::SlowLink { factor } => {
                    if factor != 1.0 {
                        self.fabric.degrade_node(server.node(), factor);
                    }
                }
                FaultKind::Degraded { profile } => {
                    let device: storage_model::BoxedDevice = match profile {
                        DeviceProfile::WornSsd => {
                            Box::new(SsdModel::new(SsdParams::worn_pcie_100gb()))
                        }
                        DeviceProfile::AgedHdd => {
                            Box::new(HddModel::new(HddParams::aged_sata2_250gb()))
                        }
                    };
                    server.set_device(device);
                }
                FaultKind::Outage { .. } | FaultKind::Down { .. } => {}
            }
        }
        self.faulted = true;
        Ok(())
    }

    /// True once [`Cluster::apply_fault_plan`] has run on this cluster.
    pub fn faults_applied(&self) -> bool {
        self.faulted
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// All server ids.
    pub fn server_ids(&self) -> Vec<ServerId> {
        self.servers.iter().map(StorageServer::id).collect()
    }

    /// HServer ids.
    pub fn hserver_ids(&self) -> Vec<ServerId> {
        (0..self.config.hservers).map(ServerId).collect()
    }

    /// SServer ids.
    pub fn sserver_ids(&self) -> Vec<ServerId> {
        (self.config.hservers..self.config.servers()).map(ServerId).collect()
    }

    /// Kind of server `id`.
    pub fn server_kind(&self, id: ServerId) -> DeviceKind {
        self.servers[id.0].kind()
    }

    /// Fabric node of the client with rank `rank` (ranks wrap around the
    /// compute nodes, as when running more processes than nodes).
    pub fn client_node(&self, rank: u32) -> NodeId {
        NodeId(rank as usize % self.config.clients)
    }

    /// Shared access to the servers (reports).
    pub fn servers(&self) -> &[StorageServer] {
        &self.servers
    }

    /// Mutable pieces for the replay driver: servers, fabric, MDS.
    pub fn parts_mut(&mut self) -> (&mut [StorageServer], &mut NetFabric, &mut MetadataServer) {
        (&mut self.servers, &mut self.fabric, &mut self.mds)
    }

    /// The metadata server.
    pub fn mds(&self) -> &MetadataServer {
        &self.mds
    }

    /// Mutable metadata server (layout installation).
    pub fn mds_mut(&mut self) -> &mut MetadataServer {
        &mut self.mds
    }

    /// Reset all queues and device state, keeping installed layouts —
    /// start a fresh measurement run on the same configuration.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            s.reset();
        }
        self.fabric.reset();
        self.mds.reset_queue();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let c = Cluster::new(ClusterConfig::paper_default());
        assert_eq!(c.server_ids().len(), 8);
        assert_eq!(c.hserver_ids().len(), 6);
        assert_eq!(c.sserver_ids(), vec![ServerId(6), ServerId(7)]);
        assert_eq!(c.server_kind(ServerId(0)), DeviceKind::Hdd);
        assert_eq!(c.server_kind(ServerId(7)), DeviceKind::Ssd);
    }

    #[test]
    fn node_numbering_is_disjoint() {
        let c = Cluster::new(ClusterConfig::paper_default());
        let client_max = (0..8).map(|r| c.client_node(r).0).max().unwrap();
        let server_min = c.servers().iter().map(|s| s.node().0).min().unwrap();
        assert!(client_max < server_min, "clients and servers share no node");
    }

    #[test]
    fn ranks_wrap_over_clients() {
        let c = Cluster::new(ClusterConfig::paper_default());
        assert_eq!(c.client_node(0), c.client_node(8));
        assert_ne!(c.client_node(0), c.client_node(1));
    }

    #[test]
    fn ratio_builder_changes_split() {
        let c = Cluster::new(ClusterConfig::with_ratio(4, 4));
        assert_eq!(c.hserver_ids().len(), 4);
        assert_eq!(c.sserver_ids().len(), 4);
    }

    #[test]
    fn default_layout_spans_all_servers() {
        let c = Cluster::new(ClusterConfig::paper_default());
        let l = c.mds().layout(iotrace::FileId(0));
        assert_eq!(l.servers().count(), 8);
        assert_eq!(l.round_size(), 8 * (64 << 10));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        Cluster::new(ClusterConfig { hservers: 0, sservers: 0, ..ClusterConfig::paper_default() });
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        let err = Cluster::try_new(ClusterConfig {
            hservers: 0,
            sservers: 0,
            ..ClusterConfig::paper_default()
        })
        .map(|_| ())
        .unwrap_err();
        assert!(err.to_string().contains("at least one server"));
        let err =
            Cluster::try_new(ClusterConfig { clients: 0, ..ClusterConfig::paper_default() })
                .map(|_| ())
                .unwrap_err();
        assert!(err.to_string().contains("at least one client"));
        assert!(Cluster::try_new(ClusterConfig::paper_default()).is_ok());
    }

    #[test]
    fn fault_plan_materializes_device_and_link_faults() {
        use simrt::{FaultPlan, SimTime};
        use storage_model::IoOp;
        let mut faulted = Cluster::new(ClusterConfig::paper_default());
        let mut clean = Cluster::new(ClusterConfig::paper_default());
        let plan = FaultPlan::none().slow_server(0, 3.0).degraded(7, simrt::DeviceProfile::WornSsd);
        faulted.apply_fault_plan(&plan).unwrap();
        assert!(faulted.faults_applied());
        assert!(!clean.faults_applied());
        // Straggler HServer 0: same request takes 3x.
        let (fs, _, _) = faulted.parts_mut();
        let (cs, _, _) = clean.parts_mut();
        let tf = fs[0].serve(SimTime::ZERO, IoOp::Read, 0, 65536).since(SimTime::ZERO);
        let tc = cs[0].serve(SimTime::ZERO, IoOp::Read, 0, 65536).since(SimTime::ZERO);
        assert!((tf.as_secs_f64() - 3.0 * tc.as_secs_f64()).abs() < 1e-9);
        // Worn SServer 7: writes collapse, reads survive.
        let wf = fs[7].serve(SimTime::ZERO, IoOp::Write, 0, 1 << 20).since(SimTime::ZERO);
        let wc = cs[7].serve(SimTime::ZERO, IoOp::Write, 0, 1 << 20).since(SimTime::ZERO);
        assert!(wf.as_secs_f64() > 2.0 * wc.as_secs_f64(), "wf={wf:?} wc={wc:?}");
    }

    #[test]
    fn fault_plan_survives_reset() {
        use simrt::{FaultPlan, SimTime};
        use storage_model::IoOp;
        let mut c = Cluster::new(ClusterConfig::paper_default());
        c.apply_fault_plan(&FaultPlan::none().slow_server(0, 4.0)).unwrap();
        let before = {
            let (s, _, _) = c.parts_mut();
            s[0].serve(SimTime::ZERO, IoOp::Read, 0, 65536).since(SimTime::ZERO)
        };
        c.reset();
        let after = {
            let (s, _, _) = c.parts_mut();
            s[0].serve(SimTime::ZERO, IoOp::Read, 0, 65536).since(SimTime::ZERO)
        };
        assert_eq!(before.as_nanos(), after.as_nanos(), "degradation is hardware, not state");
        assert!(c.faults_applied());
    }

    #[test]
    fn fault_plan_out_of_range_rejected() {
        use crate::error::ReplayError;
        use simrt::FaultPlan;
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let err = c.apply_fault_plan(&FaultPlan::none().slow_server(8, 2.0)).unwrap_err();
        assert_eq!(err, ReplayError::FaultTargetOutOfRange { server: 8, servers: 8 });
        assert!(!c.faults_applied(), "failed apply leaves the cluster pristine");
    }

    #[test]
    fn degraded_profile_must_match_medium() {
        use crate::error::ReplayError;
        use simrt::{DeviceProfile, FaultPlan};
        let mut c = Cluster::new(ClusterConfig::paper_default());
        // Server 0 is an HServer; the worn-SSD profile cannot apply.
        let err =
            c.apply_fault_plan(&FaultPlan::none().degraded(0, DeviceProfile::WornSsd)).unwrap_err();
        assert_eq!(
            err,
            ReplayError::ProfileMismatch { server: 0, profile: "worn-ssd", kind: DeviceKind::Hdd }
        );
        // And the aged-HDD profile fits it.
        c.apply_fault_plan(&FaultPlan::none().degraded(0, DeviceProfile::AgedHdd)).unwrap();
        assert!(c.faults_applied());
    }
}
