//! Cluster assembly: servers + fabric + metadata service.

use crate::layout::{LayoutSpec, ServerId};
use crate::mds::MetadataServer;
use crate::server::StorageServer;
use netsim::{LinkParams, NetFabric, NodeId};
use simrt::SimDuration;
use storage_model::{DeviceKind, HddModel, HddParams, SsdModel, SsdParams};

/// Cluster shape and hardware parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of HDD-backed servers.
    pub hservers: usize,
    /// Number of SSD-backed servers.
    pub sservers: usize,
    /// Number of compute (client) nodes.
    pub clients: usize,
    /// HDD model parameters.
    pub hdd: HddParams,
    /// SSD model parameters.
    pub ssd: SsdParams,
    /// NIC parameters (all nodes identical, per the paper's assumption).
    pub link: LinkParams,
    /// Metadata lookup service time.
    pub mds_lookup: SimDuration,
    /// Default stripe size for files without an optimized layout (the
    /// paper's 64 KB default).
    pub default_stripe: u64,
}

impl ClusterConfig {
    /// The paper's testbed: 6 HServers, 2 SServers, 8 compute nodes,
    /// Gigabit Ethernet, 64 KB default stripe.
    pub fn paper_default() -> Self {
        ClusterConfig {
            hservers: 6,
            sservers: 2,
            clients: 8,
            hdd: HddParams::sata2_250gb(),
            ssd: SsdParams::pcie_100gb(),
            link: LinkParams::gigabit_ethernet(),
            mds_lookup: SimDuration::from_micros(300),
            default_stripe: 64 << 10,
        }
    }

    /// Same testbed with a different H:S server split (Fig. 10 sweeps
    /// 7h:1s .. 4h:4s).
    pub fn with_ratio(hservers: usize, sservers: usize) -> Self {
        ClusterConfig { hservers, sservers, ..Self::paper_default() }
    }

    /// Total number of file servers.
    pub fn servers(&self) -> usize {
        self.hservers + self.sservers
    }
}

/// An assembled hybrid PFS cluster.
///
/// Fabric node numbering: clients occupy nodes `0..clients`, servers
/// `clients..clients+servers`, and the MDS the final node.
pub struct Cluster {
    config: ClusterConfig,
    servers: Vec<StorageServer>,
    fabric: NetFabric,
    mds: MetadataServer,
}

impl Cluster {
    /// Build a cluster per `config`. Servers `0..hservers` are HServers,
    /// the rest SServers (matching the paper's S0–S5 = H, S6–S7 = S
    /// numbering in Fig. 8).
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.servers() > 0, "cluster needs at least one server");
        assert!(config.clients > 0, "cluster needs at least one client");
        let nodes = config.clients + config.servers() + 1;
        let fabric = NetFabric::new(nodes, config.link);
        let mut servers = Vec::with_capacity(config.servers());
        for i in 0..config.servers() {
            let node = NodeId(config.clients + i);
            let device: storage_model::BoxedDevice = if i < config.hservers {
                Box::new(HddModel::new(config.hdd.clone()))
            } else {
                Box::new(SsdModel::new(config.ssd.clone()))
            };
            servers.push(StorageServer::new(ServerId(i), node, device));
        }
        let all: Vec<ServerId> = (0..config.servers()).map(ServerId).collect();
        let mds = MetadataServer::new(
            LayoutSpec::fixed(&all, config.default_stripe),
            config.mds_lookup,
        );
        Cluster { config, servers, fabric, mds }
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// All server ids.
    pub fn server_ids(&self) -> Vec<ServerId> {
        self.servers.iter().map(StorageServer::id).collect()
    }

    /// HServer ids.
    pub fn hserver_ids(&self) -> Vec<ServerId> {
        (0..self.config.hservers).map(ServerId).collect()
    }

    /// SServer ids.
    pub fn sserver_ids(&self) -> Vec<ServerId> {
        (self.config.hservers..self.config.servers()).map(ServerId).collect()
    }

    /// Kind of server `id`.
    pub fn server_kind(&self, id: ServerId) -> DeviceKind {
        self.servers[id.0].kind()
    }

    /// Fabric node of the client with rank `rank` (ranks wrap around the
    /// compute nodes, as when running more processes than nodes).
    pub fn client_node(&self, rank: u32) -> NodeId {
        NodeId(rank as usize % self.config.clients)
    }

    /// Shared access to the servers (reports).
    pub fn servers(&self) -> &[StorageServer] {
        &self.servers
    }

    /// Mutable pieces for the replay driver: servers, fabric, MDS.
    pub fn parts_mut(&mut self) -> (&mut [StorageServer], &mut NetFabric, &mut MetadataServer) {
        (&mut self.servers, &mut self.fabric, &mut self.mds)
    }

    /// The metadata server.
    pub fn mds(&self) -> &MetadataServer {
        &self.mds
    }

    /// Mutable metadata server (layout installation).
    pub fn mds_mut(&mut self) -> &mut MetadataServer {
        &mut self.mds
    }

    /// Reset all queues and device state, keeping installed layouts —
    /// start a fresh measurement run on the same configuration.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            s.reset();
        }
        self.fabric.reset();
        self.mds.reset_queue();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let c = Cluster::new(ClusterConfig::paper_default());
        assert_eq!(c.server_ids().len(), 8);
        assert_eq!(c.hserver_ids().len(), 6);
        assert_eq!(c.sserver_ids(), vec![ServerId(6), ServerId(7)]);
        assert_eq!(c.server_kind(ServerId(0)), DeviceKind::Hdd);
        assert_eq!(c.server_kind(ServerId(7)), DeviceKind::Ssd);
    }

    #[test]
    fn node_numbering_is_disjoint() {
        let c = Cluster::new(ClusterConfig::paper_default());
        let client_max = (0..8).map(|r| c.client_node(r).0).max().unwrap();
        let server_min = c.servers().iter().map(|s| s.node().0).min().unwrap();
        assert!(client_max < server_min, "clients and servers share no node");
    }

    #[test]
    fn ranks_wrap_over_clients() {
        let c = Cluster::new(ClusterConfig::paper_default());
        assert_eq!(c.client_node(0), c.client_node(8));
        assert_ne!(c.client_node(0), c.client_node(1));
    }

    #[test]
    fn ratio_builder_changes_split() {
        let c = Cluster::new(ClusterConfig::with_ratio(4, 4));
        assert_eq!(c.hserver_ids().len(), 4);
        assert_eq!(c.sserver_ids().len(), 4);
    }

    #[test]
    fn default_layout_spans_all_servers() {
        let c = Cluster::new(ClusterConfig::paper_default());
        let l = c.mds().layout(iotrace::FileId(0));
        assert_eq!(l.servers().count(), 8);
        assert_eq!(l.round_size(), 8 * (64 << 10));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        Cluster::new(ClusterConfig { hservers: 0, sservers: 0, ..ClusterConfig::paper_default() });
    }
}
