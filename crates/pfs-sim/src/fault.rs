//! Replay-side fault state machine: turns a declarative
//! [`simrt::FaultPlan`] into per-server admission decisions with retry,
//! backoff and timeout accounting.
//!
//! Device and link faults (slowdowns, degraded profiles) are materialized
//! once by [`crate::Cluster::apply_fault_plan`]; this runtime handles the
//! *temporal* faults — outage windows and permanent loss — which depend on
//! when each sub-request is issued.
//!
//! All accounting is **per server**: every counter lives in that server's
//! [`ServerFaultState`], and run totals are integer sums over servers.
//! This is what lets the sharded replay admit sub-requests lane-parallel
//! (one lane owns one server's state exclusively) and still report
//! bit-identical totals — integer sums are order-independent, so the
//! deterministic merge is just the sum in server order.

use simrt::{FaultKind, FaultPlan, ServerHealth, SimDuration, SimTime};

/// Outcome of asking whether a server will accept a sub-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Accepted at this (possibly backed-off) time.
    At(SimTime),
    /// The client gave up: retry budget exhausted or the server is gone.
    TimedOut,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct ServerFaultState {
    /// Instant the server is permanently lost, if ever.
    down_at: Option<SimTime>,
    /// Transient unavailability windows, half-open `[start, end)`.
    outages: Vec<(SimTime, SimTime)>,
    /// Retries spent against this server.
    retries: u64,
    /// Sub-requests abandoned against this server.
    timeouts: u64,
    /// Backoff time burned waiting out this server's outages.
    fault_wait: SimDuration,
}

impl ServerFaultState {
    fn covering_outage_end(&self, at: SimTime) -> Option<SimTime> {
        self.outages.iter().find(|&&(s, e)| at >= s && at < e).map(|&(_, e)| e)
    }
}

/// The scalar retry knobs shared by all servers — split from the mutable
/// per-server states so a lane-parallel admission pass can borrow the
/// policy immutably alongside disjoint `&mut ServerFaultState`s.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryParams {
    backoff: SimDuration,
    max_retries: u32,
    /// Wall-clock charge for an abandoned sub-request.
    pub(crate) timeout: SimDuration,
}

impl RetryParams {
    /// Decide whether (and when) a sub-request issued at `at` is accepted
    /// by the server owning `state`. Requests inside an outage window
    /// retry with exponential backoff (`backoff · 2^i` after the i-th
    /// attempt) until the window passes or the budget runs out; requests
    /// at or after a permanent loss time out immediately.
    pub(crate) fn admit(&self, state: &mut ServerFaultState, at: SimTime) -> Admission {
        let mut t = at;
        let mut tries = 0u32;
        loop {
            if state.down_at.is_some_and(|d| t >= d) {
                state.timeouts += 1;
                return Admission::TimedOut;
            }
            if state.covering_outage_end(t).is_none() {
                break;
            }
            if tries >= self.max_retries {
                state.timeouts += 1;
                return Admission::TimedOut;
            }
            t += self.backoff * (1u64 << tries.min(32));
            tries += 1;
        }
        if tries > 0 {
            state.retries += u64::from(tries);
            state.fault_wait += t.since(at);
        }
        Admission::At(t)
    }
}

/// Mutable fault state for one replay run. Built fresh per run so the
/// counters always describe exactly one report.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    servers: Vec<ServerFaultState>,
    params: RetryParams,
    /// Planner-facing health summary echoed into the report.
    health: Vec<ServerHealth>,
}

impl FaultRuntime {
    /// Compile `plan` against a cluster of `servers` servers. Out-of-range
    /// targets must have been rejected earlier (by
    /// [`crate::Cluster::apply_fault_plan`]); here they are ignored so the
    /// runtime can never index out of bounds.
    pub(crate) fn new(plan: &FaultPlan, servers: usize) -> Self {
        let mut states = vec![ServerFaultState::default(); servers];
        for f in &plan.faults {
            let Some(s) = states.get_mut(f.server) else { continue };
            match f.kind {
                FaultKind::Outage { start_s, duration_s } => {
                    let start = SimTime::ZERO + SimDuration::from_secs_f64(start_s);
                    let end = start + SimDuration::from_secs_f64(duration_s);
                    s.outages.push((start, end));
                }
                FaultKind::Down { at_s } => {
                    let at = SimTime::ZERO + SimDuration::from_secs_f64(at_s);
                    s.down_at = Some(s.down_at.map_or(at, |d: SimTime| d.min(at)));
                }
                FaultKind::Slowdown { .. }
                | FaultKind::SlowLink { .. }
                | FaultKind::Degraded { .. } => {}
            }
        }
        FaultRuntime {
            servers: states,
            params: RetryParams {
                backoff: SimDuration::from_secs_f64(plan.retry.backoff_s),
                max_retries: plan.retry.max_retries,
                timeout: SimDuration::from_secs_f64(plan.retry.timeout_s),
            },
            health: plan.health_view(servers),
        }
    }

    /// Wall-clock charge for an abandoned sub-request.
    pub(crate) fn timeout(&self) -> SimDuration {
        self.params.timeout
    }

    /// Serial admission against `server`'s state.
    pub(crate) fn admit(&mut self, server: usize, at: SimTime) -> Admission {
        self.params.admit(&mut self.servers[server], at)
    }

    /// The retry policy and the per-server states, for a lane-parallel
    /// admission pass (each lane takes exactly one state).
    pub(crate) fn lanes(&mut self) -> (RetryParams, &mut [ServerFaultState]) {
        (self.params, &mut self.servers)
    }

    /// Total retries across all servers.
    pub(crate) fn retries(&self) -> u64 {
        self.servers.iter().map(|s| s.retries).sum()
    }

    /// Total abandoned sub-requests.
    pub(crate) fn timeouts(&self) -> u64 {
        self.servers.iter().map(|s| s.timeouts).sum()
    }

    /// Total time requests spent backed off in retry loops.
    pub(crate) fn fault_wait(&self) -> SimDuration {
        self.servers
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.fault_wait)
    }

    /// Per-server `(retries, timeouts)` counters.
    pub(crate) fn server_counters(&self, server: usize) -> (u64, u64) {
        self.servers.get(server).map_or((0, 0), |s| (s.retries, s.timeouts))
    }

    /// The plan's health summary for `server`.
    pub(crate) fn server_health(&self, server: usize) -> ServerHealth {
        self.health.get(server).copied().unwrap_or_else(ServerHealth::nominal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrt::RetryPolicy;

    fn at(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn healthy_server_admits_immediately() {
        let plan = FaultPlan::none().outage(1, 1.0, 1.0);
        let mut rt = FaultRuntime::new(&plan, 4);
        assert_eq!(rt.admit(0, at(1.5)), Admission::At(at(1.5)));
        assert_eq!(rt.admit(1, at(0.5)), Admission::At(at(0.5)), "before the window");
        assert_eq!(rt.admit(1, at(2.5)), Admission::At(at(2.5)), "after the window");
        assert_eq!(rt.retries(), 0);
        assert_eq!(rt.fault_wait(), SimDuration::ZERO);
    }

    #[test]
    fn outage_backs_off_exponentially_until_clear() {
        // Window [1.0, 1.035): from t=1.0 the retries land at +10ms,
        // +30ms, +70ms — the third attempt clears the window.
        let plan = FaultPlan::none().outage(0, 1.0, 0.035);
        let mut rt = FaultRuntime::new(&plan, 1);
        let got = rt.admit(0, at(1.0));
        assert_eq!(got, Admission::At(at(1.0) + SimDuration::from_secs_f64(0.07)));
        assert_eq!(rt.retries(), 3);
        assert_eq!(rt.server_counters(0), (3, 0));
        assert!((rt.fault_wait().as_secs_f64() - 0.07).abs() < 1e-9);
    }

    #[test]
    fn exhausted_retry_budget_times_out() {
        let plan = FaultPlan::none()
            .outage(0, 0.0, 3600.0)
            .with_retry(RetryPolicy { backoff_s: 1.0e-3, max_retries: 3, timeout_s: 2.0 });
        let mut rt = FaultRuntime::new(&plan, 1);
        assert_eq!(rt.admit(0, at(0.0)), Admission::TimedOut);
        assert_eq!(rt.server_counters(0), (0, 1));
        assert_eq!(rt.timeouts(), 1);
        assert_eq!(rt.timeout(), SimDuration::from_secs_f64(2.0));
    }

    #[test]
    fn down_server_times_out_from_the_instant_of_loss() {
        let plan = FaultPlan::none().down(0, 1.0);
        let mut rt = FaultRuntime::new(&plan, 2);
        assert_eq!(rt.admit(0, at(0.5)), Admission::At(at(0.5)), "still alive");
        assert_eq!(rt.admit(0, at(1.0)), Admission::TimedOut);
        assert_eq!(rt.admit(0, at(7.0)), Admission::TimedOut, "never comes back");
        assert_eq!(rt.server_counters(0), (0, 2));
    }

    #[test]
    fn backoff_into_a_downed_server_times_out() {
        // Outage pushes the retry past the permanent-loss instant: the
        // retried attempt must hit the down check, not sneak through.
        let plan = FaultPlan::none().outage(0, 1.0, 0.05).down(0, 1.02);
        let mut rt = FaultRuntime::new(&plan, 1);
        assert_eq!(rt.admit(0, at(1.0)), Admission::TimedOut);
    }

    #[test]
    fn health_echo_matches_plan_view() {
        let plan = FaultPlan::none().slow_server(1, 5.0).down(2, 0.0);
        let rt = FaultRuntime::new(&plan, 3);
        assert_eq!(rt.server_health(0), ServerHealth::nominal());
        assert!((rt.server_health(1).speed_factor - 5.0).abs() < 1e-12);
        assert!(rt.server_health(2).down);
    }

    #[test]
    fn totals_are_sums_of_per_server_counters() {
        // Two servers with different fault shapes: the run totals must be
        // exactly the per-server sums (the sharded merge invariant).
        let plan = FaultPlan::none().outage(0, 1.0, 0.035).down(1, 0.0);
        let mut rt = FaultRuntime::new(&plan, 2);
        rt.admit(0, at(1.0));
        rt.admit(1, at(0.5));
        rt.admit(1, at(2.0));
        let (r0, t0) = rt.server_counters(0);
        let (r1, t1) = rt.server_counters(1);
        assert_eq!(rt.retries(), r0 + r1);
        assert_eq!(rt.timeouts(), t0 + t1);
        assert_eq!((r0, t0), (3, 0));
        assert_eq!((r1, t1), (0, 2));
    }

    #[test]
    fn lane_split_admission_matches_serial() {
        let plan = FaultPlan::none().outage(0, 1.0, 0.035).outage(1, 0.0, 0.5);
        let mut serial = FaultRuntime::new(&plan, 2);
        let a = serial.admit(0, at(1.0));
        let b = serial.admit(1, at(0.1));
        let mut laned = FaultRuntime::new(&plan, 2);
        let (params, states) = laned.lanes();
        // Admit in the opposite order through disjoint states — results
        // and totals must be unchanged.
        let (s0, s1) = states.split_at_mut(1);
        let b2 = params.admit(&mut s1[0], at(0.1));
        let a2 = params.admit(&mut s0[0], at(1.0));
        assert_eq!(a, a2);
        assert_eq!(b, b2);
        assert_eq!(serial.retries(), laned.retries());
        assert_eq!(serial.fault_wait(), laned.fault_wait());
    }
}
