//! Striped data layouts and the request → sub-request decomposition.
//!
//! A layout is an ordered list of `(server, stripe_size)` assignments.
//! One *round* of the layout covers `Σ stripe_i` consecutive file bytes:
//! within a round, the first `stripe_0` bytes live on server 0, the next
//! `stripe_1` on server 1, and so on; rounds repeat ad infinitum. With
//! equal stripes this is the classic fixed-size round-robin of Fig. 1;
//! with per-class sizes it is the varied-size striping of AAL/HARL/MHA
//! (`<h, s>` stripe pairs, including the `h = 0` "SServers only" extreme).

use serde::{Deserialize, Serialize};

/// Index of a storage server within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub usize);

/// How a layout places redundancy on top of its striped data path.
///
/// `Striped` is the paper's single-copy baseline: every byte lives on
/// exactly one server and a permanent server loss is fatal to the data
/// it held. The redundant variants derive their geometry from the
/// layout's segment list (see DESIGN.md §17):
///
/// * `Replicated(k)`: copy `r` of the stripe unit homed on segment `i`
///   lives on segment `(i + r) mod n` (`n` = segment count), so the
///   copies of one unit always occupy `k` distinct servers.
/// * `ErasureCoded(k, m)`: stripe units are numbered in file order
///   (unit `u` is homed on segment `u mod n`); each run of `k`
///   consecutive units forms a parity group `g = u / k`, whose `m`
///   parity units live on segments `(g·k + k + p) mod n` — the `m`
///   segments immediately after the group's data, rotating with `g`
///   like RAID-5 parity.
///
/// Serialized layouts written before this field existed deserialize as
/// `Striped` (the historical behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Placement {
    /// One copy of every byte (the historical layouts).
    #[default]
    Striped,
    /// `k` full copies of every stripe unit (`2 ≤ k ≤` segments).
    Replicated(usize),
    /// `k` data + `m` parity units per group (`k + m ≤` segments).
    ErasureCoded(usize, usize),
}

impl Placement {
    /// True for the single-copy baseline.
    pub fn is_striped(&self) -> bool {
        matches!(self, Placement::Striped)
    }

    /// Physical bytes written per logical byte: 1 for striping, `k` for
    /// `k`-way replication, `(k + m)/k` for erasure coding.
    pub fn write_amplification(&self) -> f64 {
        match *self {
            Placement::Striped => 1.0,
            Placement::Replicated(k) => k as f64,
            Placement::ErasureCoded(k, m) => (k + m) as f64 / k as f64,
        }
    }

    /// Physical bytes stored per logical byte — numerically the same as
    /// [`Self::write_amplification`], named for the capacity question.
    pub fn storage_overhead(&self) -> f64 {
        self.write_amplification()
    }

    /// Permanent server losses the placement survives without data loss.
    pub fn loss_tolerance(&self) -> usize {
        match *self {
            Placement::Striped => 0,
            Placement::Replicated(k) => k - 1,
            Placement::ErasureCoded(_, m) => m,
        }
    }

    /// Short label for reports (e.g. `3x`, `EC(4+2)`).
    pub fn label(&self) -> String {
        match *self {
            Placement::Striped => "striped".to_string(),
            Placement::Replicated(k) => format!("{k}x"),
            Placement::ErasureCoded(k, m) => format!("EC({k}+{m})"),
        }
    }
}

/// One server's share of a layout round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Segment {
    server: ServerId,
    stripe: u64,
    /// Byte offset of this segment within a round (prefix sum).
    start: u64,
}

/// A piece of a file request mapped onto one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubExtent {
    /// Target server.
    pub server: ServerId,
    /// Byte offset within the server's local object store.
    pub server_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A striped layout over a set of servers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayoutSpec {
    segments: Vec<Segment>,
    round: u64,
    /// `floor(2^64 / round)`: cached reciprocal that strength-reduces the
    /// per-request round-index division in [`Self::map_extent_into`] to a
    /// widening multiply (round sizes are rarely powers of two, so the
    /// hardware divide would otherwise sit on the replay hot path).
    /// Derived from `round` — excluded from equality and serialization;
    /// deserialized layouts fall back to plain division until rebuilt.
    #[serde(skip, default)]
    round_magic: u64,
    /// Redundancy scheme layered over the striped data path. Absent in
    /// pre-redundancy serialized layouts, which decode as `Striped`.
    #[serde(default)]
    placement: Placement,
}

/// Layout identity is its shape (including placement); the cached
/// reciprocal is derived state (and absent on deserialized specs).
impl PartialEq for LayoutSpec {
    fn eq(&self, other: &Self) -> bool {
        self.segments == other.segments
            && self.round == other.round
            && self.placement == other.placement
    }
}

impl Eq for LayoutSpec {}

/// `floor(2^64 / round)` (saturated for `round == 1`, where the true
/// value does not fit; the fixup step absorbs the error).
fn round_magic_for(round: u64) -> u64 {
    if round <= 1 {
        u64::MAX
    } else {
        ((1u128 << 64) / round as u128) as u64
    }
}

/// Reusable accumulators for [`LayoutSpec::per_server_load_into`].
///
/// Holds per-server `(bytes, runs)` totals indexed by `ServerId.0`, plus
/// the list of servers actually touched so clearing is O(touched) rather
/// than O(table). Reusing one scratch across calls makes the whole
/// decomposition allocation-free after the first call.
#[derive(Debug, Default, Clone)]
pub struct LoadScratch {
    bytes: Vec<u64>,
    runs: Vec<u32>,
    /// Server ids with nonzero load, in layout (round) order.
    touched: Vec<usize>,
}

impl LoadScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-server loads of the last decomposition, in layout round order:
    /// `(server, bytes, runs)` for every server with nonzero bytes.
    pub fn entries(&self) -> impl Iterator<Item = (ServerId, u64, u32)> + '_ {
        self.touched
            .iter()
            .map(|&i| (ServerId(i), self.bytes[i], self.runs[i]))
    }

    /// Number of servers touched by the last decomposition.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// True when the last decomposition touched no server.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Reset all accumulators (O(touched)).
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.bytes[i] = 0;
            self.runs[i] = 0;
        }
        self.touched.clear();
    }

    fn ensure_capacity(&mut self, max_id: usize) {
        if self.bytes.len() <= max_id {
            self.bytes.resize(max_id + 1, 0);
            self.runs.resize(max_id + 1, 0);
        }
    }

    fn add(&mut self, server: usize, bytes: u64, runs: u32) {
        if self.bytes[server] == 0 && self.runs[server] == 0 {
            self.touched.push(server);
        }
        self.bytes[server] += bytes;
        self.runs[server] += runs;
    }
}

impl LayoutSpec {
    /// Fixed-size round-robin striping (the DEF scheme's shape).
    ///
    /// # Panics
    /// If `servers` is empty or `stripe` is zero.
    pub fn fixed(servers: &[ServerId], stripe: u64) -> Self {
        assert!(stripe > 0, "stripe must be positive");
        Self::from_assignments(servers.iter().map(|&s| (s, stripe)))
    }

    /// Hybrid `<h, s>` striping: stripe `h` on each HServer and `s` on
    /// each SServer, round-robin HServers first (the paper's Fig. 2/4
    /// shape). A zero stripe excludes that server class entirely — the
    /// paper's `h = 0` extreme dispatches data only to SServers.
    ///
    /// # Panics
    /// If no server ends up with a positive stripe.
    pub fn hybrid(hservers: &[ServerId], h: u64, sservers: &[ServerId], s: u64) -> Self {
        let assigns = hservers
            .iter()
            .map(|&sv| (sv, h))
            .chain(sservers.iter().map(|&sv| (sv, s)))
            .filter(|&(_, sz)| sz > 0);
        Self::from_assignments(assigns)
    }

    /// Build from explicit `(server, stripe)` pairs in round-robin order.
    ///
    /// # Panics
    /// If no pair has a positive stripe.
    pub fn from_assignments(assigns: impl IntoIterator<Item = (ServerId, u64)>) -> Self {
        let mut segments = Vec::new();
        let mut start = 0u64;
        for (server, stripe) in assigns {
            if stripe == 0 {
                continue;
            }
            segments.push(Segment { server, stripe, start });
            start += stripe;
        }
        assert!(!segments.is_empty(), "layout must include at least one server");
        LayoutSpec {
            segments,
            round: start,
            round_magic: round_magic_for(start),
            placement: Placement::Striped,
        }
    }

    /// Layer a redundancy placement over this layout. The replay cores
    /// and cost model consult it; the striped data geometry (rounds,
    /// stripes, `map_extent`) is unchanged.
    ///
    /// # Panics
    /// If the layout cannot host the placement: replication needs
    /// `2 ≤ k ≤ segments`, erasure coding needs `k ≥ 1`, `m ≥ 1` and
    /// `k + m ≤ segments`; both need every segment on a distinct server
    /// (otherwise "distinct copies" is meaningless). Use
    /// [`Self::try_with_placement`] for a non-panicking check.
    #[must_use]
    pub fn with_placement(self, placement: Placement) -> Self {
        match self.try_with_placement(placement) {
            Ok(l) => l,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Fallible [`Self::with_placement`]: returns the reason the layout
    /// cannot host `placement` instead of panicking.
    pub fn try_with_placement(mut self, placement: Placement) -> Result<Self, String> {
        let n = self.segments.len();
        match placement {
            Placement::Striped => {}
            Placement::Replicated(k) => {
                if k < 2 {
                    return Err(format!("replication needs k >= 2 copies, got {k}"));
                }
                if k > n {
                    return Err(format!("replication needs k <= segments ({k} > {n})"));
                }
                if !self.servers_distinct() {
                    return Err("replication needs distinct servers per segment".into());
                }
            }
            Placement::ErasureCoded(k, m) => {
                if k == 0 || m == 0 {
                    return Err(format!("EC needs k >= 1 data and m >= 1 parity, got ({k},{m})"));
                }
                if k + m > n {
                    return Err(format!("EC needs k+m <= segments ({}+{} > {n})", k, m));
                }
                if !self.servers_distinct() {
                    return Err("EC needs distinct servers per segment".into());
                }
            }
        }
        self.placement = placement;
        Ok(self)
    }

    /// The redundancy placement layered over this layout.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Number of segments (participating servers) in one round.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Server owning segment `idx` (round order).
    ///
    /// # Panics
    /// If `idx` is out of range.
    pub fn server_at(&self, idx: usize) -> ServerId {
        self.segments[idx].server
    }

    /// Stripe size of segment `idx` (round order).
    ///
    /// # Panics
    /// If `idx` is out of range.
    pub fn stripe_at(&self, idx: usize) -> u64 {
        self.segments[idx].stripe
    }

    /// Position of `server` in the segment list, if it participates.
    pub fn position_of(&self, server: ServerId) -> Option<usize> {
        self.segments.iter().position(|s| s.server == server)
    }

    /// Largest stripe size in the layout (the erasure-coding parity unit
    /// size: one parity unit must cover the widest data unit it protects).
    pub fn max_stripe(&self) -> u64 {
        self.segments.iter().map(|s| s.stripe).max().unwrap_or(0)
    }

    /// Copy of this layout with every occurrence of `from` replaced by
    /// `to`, preserving stripes, segment order, and placement — the
    /// layout update a rebuild-onto-spare publishes after reconstructing
    /// a lost server's data on the spare.
    #[must_use]
    pub fn swap_server(&self, from: ServerId, to: ServerId) -> Self {
        let mut out = self.clone();
        for seg in &mut out.segments {
            if seg.server == from {
                seg.server = to;
            }
        }
        out
    }

    /// Bytes covered by one round of the layout.
    pub fn round_size(&self) -> u64 {
        self.round
    }

    /// Servers participating in the layout, in round order.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.segments.iter().map(|s| s.server)
    }

    /// `(server, stripe)` assignments in round order.
    pub fn assignments(&self) -> impl Iterator<Item = (ServerId, u64)> + '_ {
        self.segments.iter().map(|s| (s.server, s.stripe))
    }

    /// Stripe size assigned to `server` (0 if not participating).
    pub fn stripe_of(&self, server: ServerId) -> u64 {
        self.segments
            .iter()
            .find(|s| s.server == server)
            .map_or(0, |s| s.stripe)
    }

    /// Decompose the file extent `[offset, offset + len)` into per-server
    /// sub-extents, merging contiguous pieces that land on the same server
    /// across adjacent rounds is NOT done — each round contributes its own
    /// piece, mirroring how a PFS issues one contiguous server I/O per
    /// stripe unit run. Pieces are returned in file order.
    pub fn map_extent(&self, offset: u64, len: u64) -> Vec<SubExtent> {
        let mut out = Vec::new();
        self.map_extent_into(offset, len, &mut out);
        out
    }

    /// [`Self::map_extent`] into a caller-owned buffer: `out` is cleared
    /// and refilled with exactly the pieces `map_extent` would return, so
    /// a replay loop reusing one buffer decomposes requests without any
    /// per-request allocation once the buffer has warmed up.
    ///
    /// The walk locates the starting segment once (one reciprocal-multiply
    /// division plus a short scan) and then advances segment by segment,
    /// wrapping at round boundaries — no per-piece division or segment
    /// search.
    pub fn map_extent_into(&self, offset: u64, len: u64, out: &mut Vec<SubExtent>) {
        out.clear();
        if len == 0 {
            return;
        }
        let end = offset + len;
        let mut pos = offset;
        let mut round_idx = self.round_index(pos);
        let mut round_base = round_idx * self.round;
        let mut seg_idx = self.segment_index_at(pos - round_base);
        loop {
            let seg = &self.segments[seg_idx];
            let within = pos - round_base;
            let take = (seg.start + seg.stripe - within).min(end - pos);
            let server_offset = round_idx * seg.stripe + (within - seg.start);
            // Merge with the previous piece when it continues the same
            // server-local run (happens when only one server participates).
            match out.last_mut() {
                Some(last)
                    if last.server == seg.server
                        && last.server_offset + last.len == server_offset =>
                {
                    last.len += take;
                }
                _ => out.push(SubExtent { server: seg.server, server_offset, len: take }),
            }
            pos += take;
            if pos >= end {
                return;
            }
            seg_idx += 1;
            if seg_idx == self.segments.len() {
                seg_idx = 0;
                round_idx += 1;
                round_base += self.round;
            }
        }
    }

    /// `pos / self.round` via the cached reciprocal: the multiply-high
    /// estimate is off by at most one, fixed up with a single comparison.
    /// Deserialized specs (no cached magic) use the plain division.
    #[inline]
    fn round_index(&self, pos: u64) -> u64 {
        if self.round_magic == 0 {
            return pos / self.round;
        }
        let mut q = ((pos as u128 * self.round_magic as u128) >> 64) as u64;
        if pos - q * self.round >= self.round {
            q += 1;
        }
        q
    }

    /// Aggregate `map_extent` pieces per server: total bytes and number of
    /// contiguous runs for each involved server, in first-touch (file)
    /// order. This is the oracle path — it walks the extent one stripe
    /// unit at a time; [`Self::per_server_load_into`] computes the same
    /// totals in closed form.
    pub fn per_server_load(&self, offset: u64, len: u64) -> Vec<(ServerId, u64, u32)> {
        // Index-by-ServerId accumulation: O(pieces), not O(pieces²).
        let max_id = self.segments.iter().map(|s| s.server.0).max().unwrap_or(0);
        let mut slot = vec![usize::MAX; max_id + 1];
        let mut acc: Vec<(ServerId, u64, u32)> = Vec::new();
        for piece in self.map_extent(offset, len) {
            let s = &mut slot[piece.server.0];
            if *s == usize::MAX {
                *s = acc.len();
                acc.push((piece.server, piece.len, 1));
            } else {
                let (_, bytes, runs) = &mut acc[*s];
                *bytes += piece.len;
                *runs += 1;
            }
        }
        acc
    }

    /// Closed-form per-server decomposition of `[offset, offset + len)`:
    /// computes each server's `(bytes, runs)` arithmetically from full-
    /// round counts plus head/tail partial rounds, in O(segments) time
    /// with zero allocation once `scratch` has warmed up. Produces the
    /// same totals as aggregating [`Self::map_extent`] (the oracle in
    /// [`Self::per_server_load`]), but never materializes the pieces —
    /// a `len/stripe`-independent cost that makes scanning millions of
    /// candidate layouts viable.
    ///
    /// `scratch` is cleared on entry; results are read via
    /// [`LoadScratch::entries`] and stay valid until the next call.
    /// Entries come back in layout (round) order rather than the oracle's
    /// first-touch order; totals per server are identical.
    ///
    /// Requires every segment to name a distinct server (true for all
    /// [`Self::fixed`]/[`Self::hybrid`] layouts over distinct ids);
    /// duplicate-server layouts must use the oracle path, whose
    /// cross-round merge rules the closed form does not model.
    pub fn per_server_load_into(&self, offset: u64, len: u64, scratch: &mut LoadScratch) {
        debug_assert!(self.servers_distinct(), "closed form needs distinct servers");
        scratch.clear();
        if len == 0 {
            return;
        }
        let max_id = self.segments.iter().map(|s| s.server.0).max().unwrap_or(0);
        scratch.ensure_capacity(max_id);
        // A single-segment layout is one contiguous server-local run:
        // stripe == round, so consecutive rounds merge (as map_extent does).
        if self.segments.len() == 1 {
            scratch.add(self.segments[0].server.0, len, 1);
            return;
        }
        let round = self.round;
        let end = offset + len;
        for seg in &self.segments {
            // Bytes: prefix-count difference. bytes_before(x) = bytes of
            // [0, x) landing on this segment = full rounds · stripe plus
            // the clamped share of the partial round.
            let bytes_before = |x: u64| -> u64 {
                (x / round) * seg.stripe + (x % round).saturating_sub(seg.start).min(seg.stripe)
            };
            let bytes = bytes_before(end) - bytes_before(offset);
            if bytes == 0 {
                continue;
            }
            // Runs: with ≥ 2 segments, adjacent pieces land on different
            // servers and never merge, so runs = number of rounds r whose
            // segment window [r·round + start, r·round + start + stripe)
            // intersects [offset, end).
            let r_hi = (end - seg.start - 1) / round; // end > start ⇐ bytes > 0
            let r_lo = if seg.start + seg.stripe > offset {
                0
            } else {
                (offset - seg.start - seg.stripe) / round + 1
            };
            debug_assert!(r_hi >= r_lo, "bytes > 0 implies a touched round");
            let runs = (r_hi - r_lo + 1).min(u64::from(u32::MAX)) as u32;
            scratch.add(seg.server.0, bytes, runs);
        }
    }

    /// Rebuild this layout in place from `(server, stripe)` assignments,
    /// reusing the segment buffer — the allocation-free counterpart of
    /// [`Self::from_assignments`] for tight candidate-scan loops.
    ///
    /// Returns `false` (leaving the layout **empty and unusable** until
    /// the next successful rebuild) when no assignment has a positive
    /// stripe; callers must check the return value before using the
    /// layout.
    ///
    /// Rebuilding resets the placement to [`Placement::Striped`]: the new
    /// segment list may not be able to host the old placement, so callers
    /// re-attach one with [`Self::with_placement`] if they want it.
    pub fn rebuild(&mut self, assigns: impl IntoIterator<Item = (ServerId, u64)>) -> bool {
        self.placement = Placement::Striped;
        self.segments.clear();
        let mut start = 0u64;
        for (server, stripe) in assigns {
            if stripe == 0 {
                continue;
            }
            self.segments.push(Segment { server, stripe, start });
            start += stripe;
        }
        self.round = start;
        self.round_magic = round_magic_for(start);
        !self.segments.is_empty()
    }

    /// True when every segment names a distinct server.
    fn servers_distinct(&self) -> bool {
        self.segments
            .iter()
            .enumerate()
            .all(|(i, a)| self.segments[..i].iter().all(|b| b.server != a.server))
    }

    fn segment_index_at(&self, within_round: u64) -> usize {
        debug_assert!(within_round < self.round);
        // Small layouts (the paper's 8-server testbed) win with a linear
        // scan; wide layouts (hundreds of servers striping every file
        // over the whole cluster) need the binary search — the backward
        // scan was O(servers) per extent and dominated replay at 1024
        // servers.
        if self.segments.len() <= 16 {
            self.segments
                .iter()
                .rposition(|s| s.start <= within_round)
                .expect("segment_index_at: within_round < round implies a segment exists")
        } else {
            self.segments.partition_point(|s| s.start <= within_round) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: std::ops::Range<usize>) -> Vec<ServerId> {
        v.map(ServerId).collect()
    }

    #[test]
    fn fixed_round_robin_matches_fig1() {
        // 4 servers, 64 KB stripes: offset 256K..512K covers each server once.
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10);
        assert_eq!(l.round_size(), 256 << 10);
        let subs = l.map_extent(256 << 10, 256 << 10);
        assert_eq!(subs.len(), 4);
        for (i, s) in subs.iter().enumerate() {
            assert_eq!(s.server, ServerId(i));
            assert_eq!(s.len, 64 << 10);
            assert_eq!(s.server_offset, 64 << 10); // second round
        }
    }

    #[test]
    fn hybrid_pair_assigns_class_stripes() {
        let h = ids(0..2);
        let s = ids(2..4);
        let l = LayoutSpec::hybrid(&h, 32 << 10, &s, 96 << 10);
        assert_eq!(l.round_size(), (32 + 32 + 96 + 96) << 10);
        assert_eq!(l.stripe_of(ServerId(0)), 32 << 10);
        assert_eq!(l.stripe_of(ServerId(3)), 96 << 10);
    }

    #[test]
    fn zero_h_excludes_hservers() {
        let l = LayoutSpec::hybrid(&ids(0..6), 0, &ids(6..8), 128 << 10);
        let servers: Vec<_> = l.servers().collect();
        assert_eq!(servers, vec![ServerId(6), ServerId(7)]);
        assert_eq!(l.stripe_of(ServerId(0)), 0);
        let subs = l.map_extent(0, 512 << 10);
        assert!(subs.iter().all(|s| s.server.0 >= 6));
    }

    #[test]
    fn map_extent_partitions_the_request() {
        let l = LayoutSpec::hybrid(&ids(0..3), 10, &ids(3..5), 25);
        // Arbitrary unaligned extent must be exactly partitioned.
        let (off, len) = (7u64, 533u64);
        let subs = l.map_extent(off, len);
        let total: u64 = subs.iter().map(|s| s.len).sum();
        assert_eq!(total, len);
        assert!(subs.iter().all(|s| s.len > 0));
    }

    #[test]
    fn server_offsets_are_dense_per_server() {
        // Mapping the whole file prefix must produce contiguous,
        // non-overlapping server-local extents starting at 0.
        let l = LayoutSpec::hybrid(&ids(0..2), 8, &ids(2..3), 16);
        let subs = l.map_extent(0, 320);
        let mut per_server: std::collections::BTreeMap<ServerId, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for s in subs {
            per_server.entry(s.server).or_default().push((s.server_offset, s.len));
        }
        for (sid, mut spans) in per_server {
            spans.sort_unstable();
            let mut cursor = 0;
            for (o, l) in spans {
                assert_eq!(o, cursor, "hole in server {sid:?} object");
                cursor = o + l;
            }
            // 320 bytes / round 32 = 10 rounds; server share = stripe * 10.
            assert_eq!(cursor, l.stripe_of(sid) * 10);
        }
    }

    #[test]
    fn sub_extent_within_one_stripe_unit() {
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10);
        // A 16 KB request fits in one stripe on one server.
        let subs = l.map_extent(100 << 10, 16 << 10);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].server, ServerId(1)); // 100K lies in [64K,128K)
        assert_eq!(subs[0].len, 16 << 10);
        assert_eq!(subs[0].server_offset, 36 << 10);
    }

    #[test]
    fn map_extent_into_reuses_a_dirty_buffer() {
        let l = LayoutSpec::hybrid(&ids(0..3), 10, &ids(3..5), 25);
        let mut buf = vec![SubExtent { server: ServerId(9), server_offset: 7, len: 7 }];
        for (off, len) in [(0u64, 0u64), (7, 533), (79, 2), (0, 1), (100, 95)] {
            l.map_extent_into(off, len, &mut buf);
            assert_eq!(buf, l.map_extent(off, len), "off={off} len={len}");
        }
    }

    #[test]
    fn single_server_runs_merge() {
        let l = LayoutSpec::fixed(&[ServerId(5)], 4 << 10);
        let subs = l.map_extent(1000, 100_000);
        assert_eq!(subs.len(), 1, "single-server layout is one contiguous run");
        assert_eq!(subs[0].server_offset, 1000);
        assert_eq!(subs[0].len, 100_000);
    }

    #[test]
    fn per_server_load_aggregates() {
        let l = LayoutSpec::fixed(&ids(0..2), 10);
        // 50 bytes from 0: rounds of 20; server0 gets 30 (3 runs), server1 20 (2 runs).
        let load = l.per_server_load(0, 50);
        assert_eq!(load, vec![(ServerId(0), 30, 3), (ServerId(1), 20, 2)]);
    }

    #[test]
    fn zero_length_maps_to_nothing() {
        let l = LayoutSpec::fixed(&ids(0..2), 10);
        assert!(l.map_extent(5, 0).is_empty());
        assert!(l.per_server_load(5, 0).is_empty());
        let mut scratch = LoadScratch::new();
        l.per_server_load_into(5, 0, &mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(scratch.entries().count(), 0);
    }

    /// Compare the closed-form kernel against the map_extent oracle as
    /// per-server (bytes, runs) maps (the kernel reports in round order,
    /// the oracle in first-touch order).
    fn assert_kernel_matches_oracle(l: &LayoutSpec, offset: u64, len: u64) {
        let mut oracle: Vec<(ServerId, u64, u32)> = l.per_server_load(offset, len);
        oracle.sort_unstable_by_key(|e| e.0);
        let mut scratch = LoadScratch::new();
        l.per_server_load_into(offset, len, &mut scratch);
        let mut kernel: Vec<(ServerId, u64, u32)> = scratch.entries().collect();
        kernel.sort_unstable_by_key(|e| e.0);
        assert_eq!(kernel, oracle, "layout={l:?} offset={offset} len={len}");
    }

    #[test]
    fn closed_form_matches_oracle_on_known_cases() {
        let l = LayoutSpec::fixed(&ids(0..2), 10);
        assert_kernel_matches_oracle(&l, 0, 50);
        let l = LayoutSpec::hybrid(&ids(0..3), 10, &ids(3..5), 25);
        assert_kernel_matches_oracle(&l, 7, 533);
        assert_kernel_matches_oracle(&l, 0, 1);
        assert_kernel_matches_oracle(&l, 79, 2); // straddles a segment edge
        let l = LayoutSpec::hybrid(&ids(0..6), 0, &ids(6..8), 128 << 10);
        assert_kernel_matches_oracle(&l, 3 << 10, 512 << 10);
    }

    #[test]
    fn closed_form_matches_oracle_randomized() {
        // Hand-rolled xorshift so the sweep needs no external crates.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..400 {
            let m = (rng() % 6) as usize + 1;
            let n = (rng() % 5) as usize;
            let h = (rng() % 64 + 1) * 512;
            let s = (rng() % 128 + 1) * 512;
            let l = LayoutSpec::hybrid(&ids(0..m), h, &ids(m..m + n), s);
            for _ in 0..8 {
                let offset = rng() % (1 << 22);
                let len = rng() % (1 << 21);
                assert_kernel_matches_oracle(&l, offset, len);
            }
        }
    }

    #[test]
    fn closed_form_reuses_scratch_across_layouts() {
        // The same scratch must give correct answers after switching to a
        // layout with different servers (stale accumulators cleared).
        let mut scratch = LoadScratch::new();
        let a = LayoutSpec::fixed(&ids(0..4), 8 << 10);
        a.per_server_load_into(0, 64 << 10, &mut scratch);
        assert_eq!(scratch.len(), 4);
        let b = LayoutSpec::hybrid(&ids(0..6), 0, &ids(6..8), 16 << 10);
        b.per_server_load_into(0, 64 << 10, &mut scratch);
        let servers: Vec<ServerId> = scratch.entries().map(|e| e.0).collect();
        assert_eq!(servers, vec![ServerId(6), ServerId(7)]);
        let total: u64 = scratch.entries().map(|e| e.1).sum();
        assert_eq!(total, 64 << 10);
    }

    #[test]
    fn single_segment_closed_form_merges_rounds() {
        let l = LayoutSpec::fixed(&[ServerId(5)], 4 << 10);
        let mut scratch = LoadScratch::new();
        l.per_server_load_into(1000, 100_000, &mut scratch);
        let entries: Vec<_> = scratch.entries().collect();
        assert_eq!(entries, vec![(ServerId(5), 100_000, 1)]);
    }

    #[test]
    fn rebuild_matches_from_assignments() {
        let mut l = LayoutSpec::fixed(&ids(0..2), 10);
        let assigns = [(ServerId(0), 32u64), (ServerId(1), 0), (ServerId(2), 96)];
        assert!(l.rebuild(assigns));
        assert_eq!(l, LayoutSpec::from_assignments(assigns));
        assert_eq!(l.round_size(), 128);
        // All-zero rebuild fails and reports unusable.
        assert!(!l.rebuild([(ServerId(0), 0u64)]));
        // A later successful rebuild restores the layout.
        assert!(l.rebuild([(ServerId(3), 7u64)]));
        assert_eq!(l.stripe_of(ServerId(3)), 7);
    }

    #[test]
    fn placement_defaults_to_striped_and_joins_equality() {
        let base = LayoutSpec::fixed(&ids(0..4), 64 << 10);
        assert_eq!(base.placement(), Placement::Striped);
        assert!(base.placement().is_striped());
        let repl = base.clone().with_placement(Placement::Replicated(3));
        assert_eq!(repl.placement(), Placement::Replicated(3));
        assert_ne!(base, repl, "placement is part of layout identity");
        assert_eq!(repl, base.clone().with_placement(Placement::Replicated(3)));
        // Geometry is untouched by the placement.
        assert_eq!(repl.map_extent(7, 533), base.map_extent(7, 533));
    }

    #[test]
    fn placement_validation_rejects_misfits() {
        let narrow = LayoutSpec::fixed(&ids(0..2), 10);
        assert!(narrow.clone().try_with_placement(Placement::Replicated(3)).is_err());
        assert!(narrow.clone().try_with_placement(Placement::Replicated(1)).is_err());
        assert!(narrow.clone().try_with_placement(Placement::ErasureCoded(2, 1)).is_err());
        assert!(narrow.clone().try_with_placement(Placement::ErasureCoded(0, 2)).is_err());
        assert!(narrow.try_with_placement(Placement::Replicated(2)).is_ok());
        // Duplicate-server layouts cannot host redundancy.
        let dup = LayoutSpec::from_assignments([(ServerId(0), 8u64), (ServerId(0), 8)]);
        assert!(dup.try_with_placement(Placement::Replicated(2)).is_err());
        let wide = LayoutSpec::hybrid(&ids(0..6), 32 << 10, &ids(6..8), 96 << 10);
        assert!(wide.clone().try_with_placement(Placement::ErasureCoded(4, 2)).is_ok());
        assert!(wide.try_with_placement(Placement::ErasureCoded(7, 2)).is_err());
    }

    #[test]
    fn placement_overheads() {
        assert_eq!(Placement::Striped.write_amplification(), 1.0);
        assert_eq!(Placement::Replicated(3).write_amplification(), 3.0);
        assert_eq!(Placement::ErasureCoded(4, 2).write_amplification(), 1.5);
        assert_eq!(Placement::ErasureCoded(4, 2).storage_overhead(), 1.5);
        assert_eq!(Placement::Striped.loss_tolerance(), 0);
        assert_eq!(Placement::Replicated(3).loss_tolerance(), 2);
        assert_eq!(Placement::ErasureCoded(4, 2).loss_tolerance(), 2);
        assert_eq!(Placement::ErasureCoded(4, 2).label(), "EC(4+2)");
    }

    #[test]
    fn rebuild_resets_placement_and_swap_preserves_it() {
        let mut l = LayoutSpec::fixed(&ids(0..4), 10).with_placement(Placement::Replicated(2));
        assert!(l.rebuild([(ServerId(0), 32u64), (ServerId(1), 32)]));
        assert_eq!(l.placement(), Placement::Striped, "rebuild resets placement");

        let ec = LayoutSpec::hybrid(&ids(0..6), 8, &ids(6..8), 16)
            .with_placement(Placement::ErasureCoded(4, 2));
        let swapped = ec.swap_server(ServerId(3), ServerId(9));
        assert_eq!(swapped.placement(), Placement::ErasureCoded(4, 2));
        assert_eq!(swapped.position_of(ServerId(9)), Some(3));
        assert_eq!(swapped.position_of(ServerId(3)), None);
        assert_eq!(swapped.stripe_at(3), 8);
        assert_eq!(swapped.round_size(), ec.round_size());
        // Untouched servers keep their positions.
        assert_eq!(swapped.server_at(0), ServerId(0));
        assert_eq!(swapped.server_at(7), ServerId(7));
        assert_eq!(ec.max_stripe(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn all_zero_stripes_rejected() {
        LayoutSpec::hybrid(&ids(0..2), 0, &ids(2..4), 0);
    }

    #[test]
    #[should_panic(expected = "stripe must be positive")]
    fn fixed_zero_stripe_rejected() {
        LayoutSpec::fixed(&ids(0..2), 0);
    }
}
