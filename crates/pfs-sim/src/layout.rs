//! Striped data layouts and the request → sub-request decomposition.
//!
//! A layout is an ordered list of `(server, stripe_size)` assignments.
//! One *round* of the layout covers `Σ stripe_i` consecutive file bytes:
//! within a round, the first `stripe_0` bytes live on server 0, the next
//! `stripe_1` on server 1, and so on; rounds repeat ad infinitum. With
//! equal stripes this is the classic fixed-size round-robin of Fig. 1;
//! with per-class sizes it is the varied-size striping of AAL/HARL/MHA
//! (`<h, s>` stripe pairs, including the `h = 0` "SServers only" extreme).

use serde::{Deserialize, Serialize};

/// Index of a storage server within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub usize);

/// One server's share of a layout round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Segment {
    server: ServerId,
    stripe: u64,
    /// Byte offset of this segment within a round (prefix sum).
    start: u64,
}

/// A piece of a file request mapped onto one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubExtent {
    /// Target server.
    pub server: ServerId,
    /// Byte offset within the server's local object store.
    pub server_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// A striped layout over a set of servers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutSpec {
    segments: Vec<Segment>,
    round: u64,
}

impl LayoutSpec {
    /// Fixed-size round-robin striping (the DEF scheme's shape).
    ///
    /// # Panics
    /// If `servers` is empty or `stripe` is zero.
    pub fn fixed(servers: &[ServerId], stripe: u64) -> Self {
        assert!(stripe > 0, "stripe must be positive");
        Self::from_assignments(servers.iter().map(|&s| (s, stripe)))
    }

    /// Hybrid `<h, s>` striping: stripe `h` on each HServer and `s` on
    /// each SServer, round-robin HServers first (the paper's Fig. 2/4
    /// shape). A zero stripe excludes that server class entirely — the
    /// paper's `h = 0` extreme dispatches data only to SServers.
    ///
    /// # Panics
    /// If no server ends up with a positive stripe.
    pub fn hybrid(hservers: &[ServerId], h: u64, sservers: &[ServerId], s: u64) -> Self {
        let assigns = hservers
            .iter()
            .map(|&sv| (sv, h))
            .chain(sservers.iter().map(|&sv| (sv, s)))
            .filter(|&(_, sz)| sz > 0);
        Self::from_assignments(assigns)
    }

    /// Build from explicit `(server, stripe)` pairs in round-robin order.
    ///
    /// # Panics
    /// If no pair has a positive stripe.
    pub fn from_assignments(assigns: impl IntoIterator<Item = (ServerId, u64)>) -> Self {
        let mut segments = Vec::new();
        let mut start = 0u64;
        for (server, stripe) in assigns {
            if stripe == 0 {
                continue;
            }
            segments.push(Segment { server, stripe, start });
            start += stripe;
        }
        assert!(!segments.is_empty(), "layout must include at least one server");
        LayoutSpec { segments, round: start }
    }

    /// Bytes covered by one round of the layout.
    pub fn round_size(&self) -> u64 {
        self.round
    }

    /// Servers participating in the layout, in round order.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.segments.iter().map(|s| s.server)
    }

    /// Stripe size assigned to `server` (0 if not participating).
    pub fn stripe_of(&self, server: ServerId) -> u64 {
        self.segments
            .iter()
            .find(|s| s.server == server)
            .map_or(0, |s| s.stripe)
    }

    /// Decompose the file extent `[offset, offset + len)` into per-server
    /// sub-extents, merging contiguous pieces that land on the same server
    /// across adjacent rounds is NOT done — each round contributes its own
    /// piece, mirroring how a PFS issues one contiguous server I/O per
    /// stripe unit run. Pieces are returned in file order.
    pub fn map_extent(&self, offset: u64, len: u64) -> Vec<SubExtent> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let round_idx = pos / self.round;
            let within = pos % self.round;
            let seg = self.segment_at(within);
            let seg_end_in_round = seg.start + seg.stripe;
            let take = (seg_end_in_round - within).min(end - pos);
            let server_offset = round_idx * seg.stripe + (within - seg.start);
            // Merge with the previous piece when it continues the same
            // server-local run (happens when only one server participates).
            if let Some(last) = out.last_mut() {
                let last: &mut SubExtent = last;
                if last.server == seg.server && last.server_offset + last.len == server_offset {
                    last.len += take;
                    pos += take;
                    continue;
                }
            }
            out.push(SubExtent { server: seg.server, server_offset, len: take });
            pos += take;
        }
        out
    }

    /// Aggregate `map_extent` pieces per server: total bytes and number of
    /// contiguous runs for each involved server. Used by cost models.
    pub fn per_server_load(&self, offset: u64, len: u64) -> Vec<(ServerId, u64, u32)> {
        let mut acc: Vec<(ServerId, u64, u32)> = Vec::new();
        for piece in self.map_extent(offset, len) {
            match acc.iter_mut().find(|(s, _, _)| *s == piece.server) {
                Some((_, bytes, runs)) => {
                    *bytes += piece.len;
                    *runs += 1;
                }
                None => acc.push((piece.server, piece.len, 1)),
            }
        }
        acc
    }

    fn segment_at(&self, within_round: u64) -> &Segment {
        debug_assert!(within_round < self.round);
        // Layouts have at most a few dozen segments; linear scan wins over
        // binary search at this size.
        self.segments
            .iter()
            .rev()
            .find(|s| s.start <= within_round)
            .expect("segment_at: within_round < round implies a segment exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: std::ops::Range<usize>) -> Vec<ServerId> {
        v.map(ServerId).collect()
    }

    #[test]
    fn fixed_round_robin_matches_fig1() {
        // 4 servers, 64 KB stripes: offset 256K..512K covers each server once.
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10);
        assert_eq!(l.round_size(), 256 << 10);
        let subs = l.map_extent(256 << 10, 256 << 10);
        assert_eq!(subs.len(), 4);
        for (i, s) in subs.iter().enumerate() {
            assert_eq!(s.server, ServerId(i));
            assert_eq!(s.len, 64 << 10);
            assert_eq!(s.server_offset, 64 << 10); // second round
        }
    }

    #[test]
    fn hybrid_pair_assigns_class_stripes() {
        let h = ids(0..2);
        let s = ids(2..4);
        let l = LayoutSpec::hybrid(&h, 32 << 10, &s, 96 << 10);
        assert_eq!(l.round_size(), (32 + 32 + 96 + 96) << 10);
        assert_eq!(l.stripe_of(ServerId(0)), 32 << 10);
        assert_eq!(l.stripe_of(ServerId(3)), 96 << 10);
    }

    #[test]
    fn zero_h_excludes_hservers() {
        let l = LayoutSpec::hybrid(&ids(0..6), 0, &ids(6..8), 128 << 10);
        let servers: Vec<_> = l.servers().collect();
        assert_eq!(servers, vec![ServerId(6), ServerId(7)]);
        assert_eq!(l.stripe_of(ServerId(0)), 0);
        let subs = l.map_extent(0, 512 << 10);
        assert!(subs.iter().all(|s| s.server.0 >= 6));
    }

    #[test]
    fn map_extent_partitions_the_request() {
        let l = LayoutSpec::hybrid(&ids(0..3), 10, &ids(3..5), 25);
        // Arbitrary unaligned extent must be exactly partitioned.
        let (off, len) = (7u64, 533u64);
        let subs = l.map_extent(off, len);
        let total: u64 = subs.iter().map(|s| s.len).sum();
        assert_eq!(total, len);
        assert!(subs.iter().all(|s| s.len > 0));
    }

    #[test]
    fn server_offsets_are_dense_per_server() {
        // Mapping the whole file prefix must produce contiguous,
        // non-overlapping server-local extents starting at 0.
        let l = LayoutSpec::hybrid(&ids(0..2), 8, &ids(2..3), 16);
        let subs = l.map_extent(0, 320);
        let mut per_server: std::collections::BTreeMap<ServerId, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for s in subs {
            per_server.entry(s.server).or_default().push((s.server_offset, s.len));
        }
        for (sid, mut spans) in per_server {
            spans.sort_unstable();
            let mut cursor = 0;
            for (o, l) in spans {
                assert_eq!(o, cursor, "hole in server {sid:?} object");
                cursor = o + l;
            }
            // 320 bytes / round 32 = 10 rounds; server share = stripe * 10.
            assert_eq!(cursor, l.stripe_of(sid) * 10);
        }
    }

    #[test]
    fn sub_extent_within_one_stripe_unit() {
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10);
        // A 16 KB request fits in one stripe on one server.
        let subs = l.map_extent(100 << 10, 16 << 10);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].server, ServerId(1)); // 100K lies in [64K,128K)
        assert_eq!(subs[0].len, 16 << 10);
        assert_eq!(subs[0].server_offset, 36 << 10);
    }

    #[test]
    fn single_server_runs_merge() {
        let l = LayoutSpec::fixed(&[ServerId(5)], 4 << 10);
        let subs = l.map_extent(1000, 100_000);
        assert_eq!(subs.len(), 1, "single-server layout is one contiguous run");
        assert_eq!(subs[0].server_offset, 1000);
        assert_eq!(subs[0].len, 100_000);
    }

    #[test]
    fn per_server_load_aggregates() {
        let l = LayoutSpec::fixed(&ids(0..2), 10);
        // 50 bytes from 0: rounds of 20; server0 gets 30 (3 runs), server1 20 (2 runs).
        let load = l.per_server_load(0, 50);
        assert_eq!(load, vec![(ServerId(0), 30, 3), (ServerId(1), 20, 2)]);
    }

    #[test]
    fn zero_length_maps_to_nothing() {
        let l = LayoutSpec::fixed(&ids(0..2), 10);
        assert!(l.map_extent(5, 0).is_empty());
        assert!(l.per_server_load(5, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn all_zero_stripes_rejected() {
        LayoutSpec::hybrid(&ids(0..2), 0, &ids(2..4), 0);
    }

    #[test]
    #[should_panic(expected = "stripe must be positive")]
    fn fixed_zero_stripe_rejected() {
        LayoutSpec::fixed(&ids(0..2), 0);
    }
}
