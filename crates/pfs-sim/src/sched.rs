//! Straggler-aware dispatch glue shared by both replay cores.
//!
//! [`SchedRuntime`] owns everything the scheduler needs across one run:
//! the active [`SchedPolicy`], the per-server latency trackers
//! ([`simrt::sched::SchedState`]), and the per-phase plan (a dispatch
//! permutation plus per-record issue delays). Both cores drive it the
//! same way —
//!
//! 1. [`SchedRuntime::begin_run`] once per run (cold trackers, so reruns
//!    are bit-identical);
//! 2. [`SchedRuntime::plan_phase`] at each phase barrier, from tracker
//!    state **frozen at phase start** (observations made during a phase
//!    only influence the *next* phase's plan);
//! 3. [`SchedRuntime::dispatch`] / [`SchedRuntime::delay`] while issuing
//!    the phase's records;
//! 4. one latency observation per sub-request (issue → device-stage
//!    completion, timeout charges included), fed to the target server's
//!    tracker.
//!
//! Determinism across cores: the plan is a pure function of the shuffled
//! record order, the MDS layout table and the frozen tracker state, all
//! of which the cores share; and each server's observation sequence is
//! identical in both cores (the serial loop visits a server's subs as
//! the record-order subsequence, the sharded device pass visits the same
//! subs in lane order, and lanes are stable partitions of the record
//! order). Per-server EWMAs therefore carry the same f64 bits, phase by
//! phase.
//!
//! Planning looks up record targets with the *stateless*
//! [`MetadataServer::layout`] on the record's logical file — never the
//! resolver, which may mutate (lazy migration migrates on resolve) and
//! never the charged lookup path. The target set is an approximation for
//! redirected records; it only shapes delays, not correctness.

use crate::mds::MetadataServer;
use iotrace::FileId;
use simrt::sched::{SchedPolicy, SchedState, ServerLat};
use simrt::SimDuration;

/// Per-run scheduling state owned by a [`crate::ReplaySession`].
#[derive(Debug, Clone, Default)]
pub(crate) struct SchedRuntime {
    policy: SchedPolicy,
    state: SchedState,
    /// Per-record issue delay of the current phase, in base (shuffled)
    /// order.
    delays: Vec<SimDuration>,
    /// Dispatch permutation over base positions of the current phase.
    perm: Vec<u32>,
    /// Per-server pacing counters, zeroed at each plan.
    counts: Vec<u32>,
    /// `(server, fast EWMA)` of the servers suspect at phase start.
    suspects: Vec<(usize, f64)>,
    /// True when the current phase dispatches in base order with zero
    /// delays — `SeededShuffle`, or `StragglerAware` with no suspect.
    passthrough: bool,
    /// Records issued with a non-zero delay, run total.
    pub(crate) deferred: u64,
    /// Deepest displacement the reorder pass applied, run max.
    pub(crate) reorder_depth: u64,
}

impl SchedRuntime {
    /// Replace the policy (takes effect at the next run).
    pub(crate) fn set_policy(&mut self, policy: SchedPolicy) {
        self.policy = policy;
    }

    /// The active policy.
    pub(crate) fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Reset for a run over `n_servers`: cold trackers, zero counters.
    pub(crate) fn begin_run(&mut self, n_servers: usize) {
        self.state.reset(n_servers);
        self.counts.clear();
        self.counts.resize(n_servers, 0);
        self.deferred = 0;
        self.reorder_depth = 0;
        self.passthrough = true;
    }

    /// True when the cores must feed latency observations (any policy
    /// that adapts; `SeededShuffle` skips observation entirely).
    pub(crate) fn observing(&self) -> bool {
        matches!(self.policy, SchedPolicy::StragglerAware { .. })
    }

    /// EWMA smoothing factor of the active policy (0 when not observing).
    pub(crate) fn alpha(&self) -> f64 {
        match self.policy {
            SchedPolicy::StragglerAware { alpha, .. } => alpha,
            SchedPolicy::SeededShuffle => 0.0,
        }
    }

    /// Record one sub-request latency observation against `server`.
    pub(crate) fn observe(&mut self, server: usize, x: f64) {
        let alpha = self.alpha();
        self.state.server_mut(server).observe(alpha, x);
    }

    /// Per-server trackers for the sharded core's lane-parallel device
    /// pass (one lane per server, scattered via [`simrt::DisjointSlice`]).
    pub(crate) fn state_lanes(&mut self) -> &mut [ServerLat] {
        self.state.as_mut_slice()
    }

    /// Plan one phase from the tracker state frozen at its barrier.
    /// `files` yields the phase's records in base (shuffled) order.
    pub(crate) fn plan_phase<I>(&mut self, files: I, mds: &MetadataServer)
    where
        I: Iterator<Item = FileId>,
    {
        let SchedPolicy::StragglerAware { inflight_cap, reorder_window, .. } = self.policy
        else {
            self.passthrough = true;
            return;
        };
        self.suspects.clear();
        for s in 0..self.state.len() {
            let lat = self.state.server(s);
            if lat.is_suspect() {
                self.suspects.push((s, lat.fast()));
            }
        }
        if self.suspects.is_empty() {
            // Degenerate to the blind shuffle: identity order, zero
            // delays — bit-identical arithmetic, not merely equivalent.
            self.passthrough = true;
            return;
        }
        self.passthrough = false;
        for &(s, _) in &self.suspects {
            self.counts[s] = 0;
        }
        self.delays.clear();
        let cap = f64::from(inflight_cap);
        for file in files {
            let layout = mds.layout(file);
            let mut d = 0.0f64;
            for &(s, fast) in &self.suspects {
                if layout.servers().any(|id| id.0 == s) {
                    // Token pacing against the suspect: admit at most
                    // `inflight_cap` requests per EWMA interval, and
                    // defer even the first by a fraction of it — under a
                    // transient outage this pushes issue points past the
                    // blind-start pile-up whose exponential backoff
                    // overshoots (or exhausts) the retry budget.
                    let k = self.counts[s];
                    self.counts[s] = k + 1;
                    let step = fast * (f64::from(k) + 1.0) / cap;
                    if step > d {
                        d = step;
                    }
                }
            }
            if d > 0.0 {
                self.deferred += 1;
            }
            self.delays.push(SimDuration::from_secs_f64(d));
        }
        // Reorder: within fixed windows of the base order, stable-sort by
        // delay so undeferred records dispatch (and hit the MDS queue)
        // first. Stability keeps equal-delay records in shuffle order.
        self.perm.clear();
        self.perm.extend(0..self.delays.len() as u32);
        let delays = &self.delays;
        for chunk in self.perm.chunks_mut(reorder_window as usize) {
            chunk.sort_by_key(|&p| delays[p as usize]);
        }
        for (k, &p) in self.perm.iter().enumerate() {
            let depth = (k as i64 - i64::from(p)).unsigned_abs();
            if depth > self.reorder_depth {
                self.reorder_depth = depth;
            }
        }
    }

    /// Base position of the `k`-th record to dispatch this phase.
    #[inline]
    pub(crate) fn dispatch(&self, k: usize) -> usize {
        if self.passthrough {
            k
        } else {
            self.perm[k] as usize
        }
    }

    /// Issue delay of the record at base position `base_pos`.
    #[inline]
    pub(crate) fn delay(&self, base_pos: usize) -> SimDuration {
        if self.passthrough {
            SimDuration::ZERO
        } else {
            self.delays[base_pos]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{LayoutSpec, ServerId};
    use crate::mds::{MdsConfig, MetadataServer};
    use simrt::sched::MIN_OBS;

    fn mds_with(file: FileId, spec: LayoutSpec) -> MetadataServer {
        let all: Vec<ServerId> = (0..4).map(ServerId).collect();
        let mut mds =
            MdsConfig::new(LayoutSpec::fixed(&all, 64 << 10)).build().unwrap();
        mds.set_layout(file, spec);
        mds
    }

    fn aware(cap: u32, window: u32) -> SchedRuntime {
        let mut rt = SchedRuntime::default();
        rt.set_policy(SchedPolicy::StragglerAware {
            alpha: 0.5,
            inflight_cap: cap,
            reorder_window: window,
        });
        rt.begin_run(4);
        rt
    }

    fn make_suspect(rt: &mut SchedRuntime, server: usize) {
        for _ in 0..(3 * MIN_OBS) {
            rt.observe(server, 0.001);
        }
        for _ in 0..6 {
            rt.observe(server, 1.0);
        }
        assert!(rt.state.server(server).is_suspect());
    }

    #[test]
    fn seeded_shuffle_plans_are_passthrough() {
        let mut rt = SchedRuntime::default();
        rt.begin_run(4);
        let mds = mds_with(FileId(0), LayoutSpec::fixed(&[ServerId(0)], 64 << 10));
        rt.plan_phase([FileId(0); 8].into_iter(), &mds);
        assert_eq!(rt.dispatch(3), 3);
        assert_eq!(rt.delay(3), SimDuration::ZERO);
        assert_eq!(rt.deferred, 0);
    }

    #[test]
    fn no_suspect_means_identity_plan() {
        let mut rt = aware(4, 64);
        for s in 0..4 {
            for _ in 0..20 {
                rt.observe(s, 0.001);
            }
        }
        let mds = mds_with(FileId(0), LayoutSpec::fixed(&[ServerId(0)], 64 << 10));
        rt.plan_phase([FileId(0); 8].into_iter(), &mds);
        assert!(rt.passthrough);
        assert_eq!(rt.deferred, 0);
        assert_eq!(rt.reorder_depth, 0);
    }

    #[test]
    fn suspect_paces_its_requests_and_spares_others() {
        let mut rt = aware(2, 64);
        make_suspect(&mut rt, 1);
        // File 7 targets the suspect, file 8 does not.
        let mut mds = mds_with(FileId(7), LayoutSpec::fixed(&[ServerId(1)], 64 << 10));
        mds.set_layout(FileId(8), LayoutSpec::fixed(&[ServerId(2)], 64 << 10));
        let files = [FileId(7), FileId(8), FileId(7), FileId(7), FileId(8)];
        rt.plan_phase(files.into_iter(), &mds);
        assert!(!rt.passthrough);
        // Suspect-targeting records carry monotonically growing delays.
        let d: Vec<SimDuration> = (0..5).map(|p| rt.delays[p]).collect();
        assert!(d[0] > SimDuration::ZERO, "first suspect record is deferred");
        assert_eq!(d[1], SimDuration::ZERO, "clean record issues at the barrier");
        assert!(d[2] >= d[0] && d[3] > d[2]);
        assert_eq!(d[4], SimDuration::ZERO);
        assert_eq!(rt.deferred, 3);
        // Reordering moved the clean records ahead of the deferred ones.
        assert_eq!(rt.dispatch(0), 1);
        assert_eq!(rt.dispatch(1), 4);
        assert!(rt.reorder_depth > 0);
    }

    #[test]
    fn plans_are_deterministic_across_reruns() {
        let build = || {
            let mut rt = aware(2, 4);
            make_suspect(&mut rt, 0);
            let mds = mds_with(FileId(3), LayoutSpec::fixed(&[ServerId(0)], 64 << 10));
            rt.plan_phase([FileId(3); 10].into_iter(), &mds);
            (rt.delays.clone(), rt.perm.clone(), rt.deferred, rt.reorder_depth)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn begin_run_clears_history_and_counters() {
        let mut rt = aware(2, 4);
        make_suspect(&mut rt, 0);
        rt.deferred = 9;
        rt.reorder_depth = 5;
        rt.begin_run(4);
        assert_eq!(rt.deferred, 0);
        assert_eq!(rt.reorder_depth, 0);
        assert_eq!(rt.state.server(0).count(), 0);
        assert!(rt.passthrough);
    }
}
