//! [`LayoutService`]: a long-running, multi-tenant layout service over
//! one shared cluster.
//!
//! The single-shot pipeline (trace in, report out) models one experiment.
//! A real deployment is a *service*: many tenants submit job streams
//! against the same cluster and metadata server, and the interesting
//! questions become sustained throughput, per-tenant tail latency, and
//! whether one tenant's layout churn can corrupt another's results.
//!
//! The service is fully deterministic:
//!
//! * **Arrivals** come from a seeded open-loop Poisson process
//!   ([`simrt::ArrivalProcess`]), one per tenant, derived from the
//!   service seed and the tenant id — the same seed always yields the
//!   same interleaving, regardless of tenant registration order.
//! * **Admission** is a bounded per-tenant queue: a job arriving while
//!   `queue_depth` of its tenant's jobs are still in flight is rejected
//!   (open-loop systems shed load instead of slowing the submitter).
//! * **Execution** is FIFO over the shared cluster: each admitted job
//!   replays through the sharded streaming core, and the service clock
//!   advances by the job's makespan. [`crate::cluster::Cluster::reset`]
//!   at each replay keeps device/queue state from leaking across jobs
//!   while installed MDS layouts persist — exactly the composition model
//!   the single-shot pipeline already used for sequential runs.
//! * **Tenancy** lives in the file-id namespace: submitted traces are
//!   retagged into their tenant's id space
//!   ([`iotrace::FileId::with_tenant`]), so the shared MDS shards rows
//!   per tenant and layout updates can never collide. Tenant 0 is the
//!   identity namespace: a 1-tenant service run is bit-identical to a
//!   plain streaming replay of the same trace.
//!
//! Per-tenant planning (online re-planning, lazy migration) plugs in
//! through [`TenantRuntime`]: the service calls back after every
//! completed job and installs whatever layout updates the runtime
//! returns into the shared MDS.

use crate::cluster::Cluster;
use crate::error::ReplayError;
use crate::layout::LayoutSpec;
use crate::replay::{IdentityResolver, ReplayReport, Resolver};
use crate::session::{CoreSel, ReplayInput, ReplaySession};
use iotrace::{FileId, TenantId, Trace, TraceBatches, TraceRecord};
use simrt::{ArrivalProcess, SchedPolicy, SeedSeq, SimDuration, SimTime};

/// Per-tenant planning hook: how a tenant's jobs resolve requests, and
/// what layout updates each completed job feeds back into the shared
/// MDS.
pub trait TenantRuntime {
    /// Resolver used while replaying this tenant's jobs (e.g. a lazy
    /// migrator's redirect table). Called once per job.
    fn resolver(&mut self) -> &mut dyn Resolver;

    /// Observe a completed job (records already retagged into the
    /// tenant's namespace) and return layout updates for the shared MDS.
    /// File ids in the updates must live in the tenant's namespace.
    fn after_job(&mut self, trace: &Trace) -> Vec<(FileId, LayoutSpec)>;
}

/// The no-op runtime: identity resolution, no layout feedback. A service
/// of `NullRuntime` tenants measures pure replay interleaving.
#[derive(Debug, Default)]
pub struct NullRuntime(IdentityResolver);

impl NullRuntime {
    /// A fresh no-op runtime.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TenantRuntime for NullRuntime {
    fn resolver(&mut self) -> &mut dyn Resolver {
        &mut self.0
    }

    fn after_job(&mut self, _trace: &Trace) -> Vec<(FileId, LayoutSpec)> {
        Vec::new()
    }
}

/// Service-level knobs: the arrival seed, the open-loop arrival rate,
/// and the per-tenant admission bound.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    seed: u64,
    mean_interarrival: SimDuration,
    queue_depth: usize,
}

impl ServiceConfig {
    /// Defaults: 50 ms mean interarrival per tenant, queue depth 4.
    pub fn new(seed: u64) -> Self {
        ServiceConfig {
            seed,
            mean_interarrival: SimDuration::from_millis(50),
            queue_depth: 4,
        }
    }

    /// Mean interarrival gap of each tenant's Poisson job stream.
    ///
    /// # Panics
    /// If zero (the arrival process would never advance).
    #[must_use]
    pub fn mean_interarrival(mut self, gap: SimDuration) -> Self {
        assert!(!gap.is_zero(), "mean interarrival must be positive");
        self.mean_interarrival = gap;
        self
    }

    /// Per-tenant admission bound: a job arriving with this many of its
    /// tenant's jobs still in flight is rejected.
    ///
    /// # Panics
    /// If zero (every job would be rejected).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        self.queue_depth = depth;
        self
    }
}

/// One admitted job's lifecycle inside a [`ServiceReport`].
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Submission index within the tenant (0-based).
    pub seq: u32,
    /// Open-loop arrival instant.
    pub arrival: SimTime,
    /// When the shared cluster started serving the job.
    pub start: SimTime,
    /// `start + report.makespan`.
    pub completion: SimTime,
    /// The job's replay report (bit-identical to a standalone replay of
    /// the same trace against the same installed layouts).
    pub report: ReplayReport,
}

impl JobRecord {
    /// Arrival-to-completion latency in seconds (queueing + service).
    pub fn latency_secs(&self) -> f64 {
        self.completion.since(self.arrival).as_secs_f64()
    }
}

/// Per-tenant roll-up of completion latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// The tenant.
    pub tenant: TenantId,
    /// Jobs admitted and completed.
    pub completed: usize,
    /// Jobs shed by the admission bound.
    pub rejected: usize,
    /// Median arrival-to-completion latency, seconds (0 if none completed).
    pub p50_latency: f64,
    /// 95th-percentile latency, seconds.
    pub p95_latency: f64,
    /// 99th-percentile latency, seconds.
    pub p99_latency: f64,
}

/// What a service run produces: every admitted job's lifecycle, the
/// shed-load count, and per-tenant latency summaries.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Admitted jobs in service (start-time) order.
    pub jobs: Vec<JobRecord>,
    /// Total jobs rejected by the admission bound.
    pub rejected: usize,
    /// Last completion instant (ZERO when nothing was admitted).
    pub makespan: SimTime,
    /// Bytes moved by all admitted jobs.
    pub total_bytes: u64,
    /// Per-tenant summaries, in tenant-id order.
    pub tenants: Vec<TenantSummary>,
    /// Degraded (erasure-reconstruction) reads across all jobs — the
    /// service-level robustness counter (0 without redundant layouts).
    pub degraded_reads: u64,
    /// Bytes reconstructed by degraded reads across all jobs.
    pub reconstructed_bytes: u64,
    /// Reads served by a replica failover across all jobs.
    pub failovers: u64,
    /// Requests issue-deferred by straggler-aware scheduling across all
    /// jobs (0 when every tenant runs [`SchedPolicy::SeededShuffle`]).
    pub deferred_requests: u64,
    /// Deepest dispatch reordering any job's scheduler applied.
    pub reorder_depth: u64,
}

impl ServiceReport {
    /// Sustained aggregate bandwidth over the whole service run, MB/s
    /// (decimal megabytes — comparable to [`ReplayReport::bandwidth_mbps`]).
    pub fn aggregate_mbps(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_bytes as f64 / 1e6 / secs
    }
}

struct TenantEntry<'a> {
    tenant: TenantId,
    runtime: Box<dyn TenantRuntime + 'a>,
    jobs: Vec<Trace>,
    policy: SchedPolicy,
}

/// The multi-tenant layout service (see the module docs for the model).
pub struct LayoutService<'a> {
    cluster: &'a mut Cluster,
    cfg: ServiceConfig,
    /// Sorted by tenant id, so arrivals and reports never depend on
    /// registration order.
    tenants: Vec<TenantEntry<'a>>,
    session: ReplaySession,
}

impl<'a> LayoutService<'a> {
    /// A service over `cluster` with the given config and no tenants.
    pub fn new(cluster: &'a mut Cluster, cfg: ServiceConfig) -> Self {
        LayoutService { cluster, cfg, tenants: Vec::new(), session: ReplaySession::new() }
    }

    /// Register `tenant` with its planning runtime.
    ///
    /// # Panics
    /// If the tenant is already registered.
    pub fn add_tenant(&mut self, tenant: TenantId, runtime: Box<dyn TenantRuntime + 'a>) {
        match self.tenants.binary_search_by_key(&tenant, |e| e.tenant) {
            Ok(_) => panic!("tenant {} registered twice", tenant.0),
            Err(i) => self.tenants.insert(
                i,
                TenantEntry {
                    tenant,
                    runtime,
                    jobs: Vec::new(),
                    policy: SchedPolicy::default(),
                },
            ),
        }
    }

    /// Set the dispatch policy used while replaying `tenant`'s jobs
    /// (default [`SchedPolicy::SeededShuffle`]). Per-tenant: a latency-
    /// sensitive tenant can opt into straggler-aware dispatch while its
    /// neighbours keep the bit-stable blind shuffle.
    ///
    /// # Panics
    /// If the tenant is unknown.
    pub fn set_tenant_policy(&mut self, tenant: TenantId, policy: SchedPolicy) {
        let i = self
            .tenants
            .binary_search_by_key(&tenant, |e| e.tenant)
            .unwrap_or_else(|_| panic!("tenant {} not registered", tenant.0));
        self.tenants[i].policy = policy;
    }

    /// Submit one job for `tenant` and return its submission index.
    /// Records are retagged into the tenant's file-id namespace (tenant 0
    /// is the identity, so legacy traces pass through untouched).
    ///
    /// # Panics
    /// If the tenant is unknown, or a record's file id overflows the
    /// tenant-local namespace ([`iotrace::FileId::with_tenant`]).
    pub fn submit(&mut self, tenant: TenantId, trace: Trace) -> u32 {
        let i = self
            .tenants
            .binary_search_by_key(&tenant, |e| e.tenant)
            .unwrap_or_else(|_| panic!("tenant {} not registered", tenant.0));
        let entry = &mut self.tenants[i];
        let trace = if tenant.0 == 0 {
            trace
        } else {
            let records: Vec<TraceRecord> = trace
                .records()
                .iter()
                .map(|r| TraceRecord { file: FileId::with_tenant(tenant, r.file), ..*r })
                .collect();
            Trace::from_records(records)
        };
        entry.jobs.push(trace);
        (entry.jobs.len() - 1) as u32
    }

    /// Registered tenants, in id order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants.iter().map(|e| e.tenant).collect()
    }

    /// Inject `plan` into every job replay — degraded-mode service runs
    /// (lost servers, stragglers) against redundant layouts.
    pub fn set_fault_plan(&mut self, plan: simrt::FaultPlan) {
        self.session.set_fault_plan(plan);
    }

    /// Run the service to completion over every submitted job.
    ///
    /// Arrivals are drawn per tenant from the service seed, merged into
    /// one schedule (ties broken by tenant id, then submission index),
    /// gated by the admission bound, and served FIFO on the shared
    /// cluster. Deterministic: same seed, same tenants, same jobs —
    /// bit-identical report.
    pub fn run(&mut self) -> Result<ServiceReport, ReplayError> {
        struct Pending {
            tenant_ix: usize,
            tenant: TenantId,
            seq: u32,
            arrival: SimTime,
        }
        let mut schedule: Vec<Pending> = Vec::new();
        for (ix, entry) in self.tenants.iter().enumerate() {
            let seed = SeedSeq::new(self.cfg.seed)
                .derive_idx("tenant-arrivals", u64::from(entry.tenant.0));
            let mut arrivals = ArrivalProcess::new(seed, self.cfg.mean_interarrival);
            for seq in 0..entry.jobs.len() {
                schedule.push(Pending {
                    tenant_ix: ix,
                    tenant: entry.tenant,
                    seq: seq as u32,
                    arrival: arrivals.next_arrival(),
                });
            }
        }
        schedule.sort_by_key(|p| (p.arrival, p.tenant, p.seq));

        let mut free_at = SimTime::ZERO;
        let mut in_flight: Vec<(usize, SimTime)> = Vec::new();
        let mut jobs: Vec<JobRecord> = Vec::new();
        let mut rejected_by_tenant = vec![0usize; self.tenants.len()];
        let mut total_bytes = 0u64;
        let mut degraded_reads = 0u64;
        let mut reconstructed_bytes = 0u64;
        let mut failovers = 0u64;
        let mut deferred_requests = 0u64;
        let mut reorder_depth = 0u64;
        for p in schedule {
            let backlog = in_flight
                .iter()
                .filter(|(ix, done)| *ix == p.tenant_ix && *done > p.arrival)
                .count();
            if backlog >= self.cfg.queue_depth {
                rejected_by_tenant[p.tenant_ix] += 1;
                continue;
            }
            let entry = &mut self.tenants[p.tenant_ix];
            let trace = &entry.jobs[p.seq as usize];
            let mut batches = TraceBatches::new(trace);
            self.session.set_sched_policy(entry.policy);
            let report = self.session.run(
                ReplayInput::stream(self.cluster, &mut batches, entry.runtime.resolver()),
                CoreSel::Sharded,
            )?;
            let start = free_at.max(p.arrival);
            let completion = start + report.makespan;
            free_at = completion;
            in_flight.push((p.tenant_ix, completion));
            total_bytes += report.total_bytes;
            degraded_reads += report.degraded_reads;
            reconstructed_bytes += report.reconstructed_bytes;
            failovers += report.failovers;
            deferred_requests += report.deferred_requests;
            reorder_depth = reorder_depth.max(report.reorder_depth);
            for (file, layout) in entry.runtime.after_job(trace) {
                self.cluster.mds_mut().set_layout(file, layout);
            }
            jobs.push(JobRecord {
                tenant: p.tenant,
                seq: p.seq,
                arrival: p.arrival,
                start,
                completion,
                report,
            });
        }

        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(ix, entry)| {
                let lat: Vec<f64> = jobs
                    .iter()
                    .filter(|j| j.tenant == entry.tenant)
                    .map(JobRecord::latency_secs)
                    .collect();
                let pct = |q: f64| if lat.is_empty() { 0.0 } else { simrt::stats::percentile(&lat, q) };
                TenantSummary {
                    tenant: entry.tenant,
                    completed: lat.len(),
                    rejected: rejected_by_tenant[ix],
                    p50_latency: pct(0.50),
                    p95_latency: pct(0.95),
                    p99_latency: pct(0.99),
                }
            })
            .collect();
        Ok(ServiceReport {
            rejected: rejected_by_tenant.iter().sum(),
            makespan: free_at,
            total_bytes,
            jobs,
            tenants,
            degraded_reads,
            reconstructed_bytes,
            failovers,
            deferred_requests,
            reorder_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::layout::ServerId;
    use iotrace::gen::ior::{generate, IorConfig};
    use storage_model::IoOp;

    fn small_ior(reqs: usize) -> Trace {
        let mut cfg = IorConfig::default_run(IoOp::Write);
        cfg.reqs_per_proc = reqs;
        cfg.proc_mix = vec![4];
        generate(&cfg)
    }

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::paper_default())
    }

    /// Test runtime: installs one fixed layout per file it sees, counts
    /// callbacks.
    struct Recorder {
        resolver: IdentityResolver,
        seen_jobs: usize,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder { resolver: IdentityResolver, seen_jobs: 0 }
        }
    }

    impl TenantRuntime for Recorder {
        fn resolver(&mut self) -> &mut dyn Resolver {
            &mut self.resolver
        }

        fn after_job(&mut self, trace: &Trace) -> Vec<(FileId, LayoutSpec)> {
            self.seen_jobs += 1;
            trace
                .files()
                .into_iter()
                .map(|f| (f, LayoutSpec::fixed(&[ServerId(0)], 4 << 10)))
                .collect()
        }
    }

    fn fingerprint(r: &ServiceReport) -> Vec<(u32, u32, u64, u64, u64, u64)> {
        r.jobs
            .iter()
            .map(|j| {
                (
                    j.tenant.0,
                    j.seq,
                    j.arrival.as_nanos(),
                    j.start.as_nanos(),
                    j.completion.as_nanos(),
                    j.report.makespan.as_nanos(),
                )
            })
            .collect()
    }

    #[test]
    fn one_tenant_run_is_bit_identical_to_a_plain_streaming_replay() {
        let t = small_ior(6);
        let standalone = {
            let mut c = cluster();
            ReplaySession::new()
                .run(
                    ReplayInput::stream(&mut c, &mut TraceBatches::new(&t), &mut IdentityResolver),
                    CoreSel::Auto,
                )
                .unwrap()
        };
        let mut c = cluster();
        let mut svc = LayoutService::new(&mut c, ServiceConfig::new(7));
        svc.add_tenant(TenantId(0), Box::new(NullRuntime::new()));
        svc.submit(TenantId(0), t);
        let report = svc.run().unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.rejected, 0);
        let job = &report.jobs[0];
        assert_eq!(job.report.makespan, standalone.makespan);
        assert_eq!(job.report.total_bytes, standalone.total_bytes);
        assert_eq!(job.report.mds_lookups, standalone.mds_lookups);
        assert_eq!(job.report.server_busy_secs(), standalone.server_busy_secs());
        assert_eq!(
            job.report.request_latency.sum().to_bits(),
            standalone.request_latency.sum().to_bits()
        );
    }

    #[test]
    fn degraded_service_run_surfaces_redundancy_accounting() {
        // A replicated layout, one lost server, a read-heavy tenant: the
        // service must complete every job via replica failovers and roll
        // the degraded-mode counters up into the ServiceReport.
        let t = {
            let mut cfg = IorConfig::default_run(IoOp::Read);
            cfg.reqs_per_proc = 4;
            cfg.proc_mix = vec![4];
            generate(&cfg)
        };
        let mut c = cluster();
        let all: Vec<ServerId> = (0..8).map(ServerId).collect();
        c.mds_mut().set_layout(
            FileId(0),
            LayoutSpec::fixed(&all, 64 << 10).with_placement(crate::Placement::Replicated(3)),
        );
        let mut svc = LayoutService::new(&mut c, ServiceConfig::new(7));
        svc.set_fault_plan(simrt::FaultPlan::none().down(1, 0.0));
        svc.add_tenant(TenantId(0), Box::new(NullRuntime::new()));
        svc.submit(TenantId(0), t.clone());
        svc.submit(TenantId(0), t);
        let report = svc.run().unwrap();
        assert_eq!(report.jobs.len(), 2);
        assert!(report.failovers > 0, "lost primary must fail over");
        assert_eq!(
            report.failovers,
            report.jobs.iter().map(|j| j.report.failovers).sum::<u64>()
        );
        assert_eq!(report.degraded_reads, 0, "replication reconstructs nothing");
        for j in &report.jobs {
            assert_eq!(j.report.timeouts, 0, "redundant jobs must complete");
        }
    }

    #[test]
    fn same_seed_same_interleaving_bit_for_bit() {
        let run = || {
            let mut c = cluster();
            let mut svc = LayoutService::new(
                &mut c,
                ServiceConfig::new(42).mean_interarrival(SimDuration::from_millis(5)),
            );
            for t in 0..3u32 {
                svc.add_tenant(TenantId(t), Box::new(NullRuntime::new()));
                for reqs in [2usize, 3, 4] {
                    svc.submit(TenantId(t), small_ior(reqs));
                }
            }
            svc.run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.aggregate_mbps().to_bits(), b.aggregate_mbps().to_bits());
        assert_eq!(a.tenants, b.tenants);
    }

    #[test]
    fn registration_order_does_not_change_the_schedule() {
        let run = |order: &[u32]| {
            let mut c = cluster();
            let mut svc = LayoutService::new(&mut c, ServiceConfig::new(9));
            for &t in order {
                svc.add_tenant(TenantId(t), Box::new(NullRuntime::new()));
            }
            for &t in order {
                svc.submit(TenantId(t), small_ior(2));
            }
            svc.run().unwrap()
        };
        assert_eq!(fingerprint(&run(&[2, 0, 1])), fingerprint(&run(&[0, 1, 2])));
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed: u64| {
            let mut c = cluster();
            let mut svc = LayoutService::new(&mut c, ServiceConfig::new(seed));
            svc.add_tenant(TenantId(1), Box::new(NullRuntime::new()));
            svc.submit(TenantId(1), small_ior(2));
            svc.run().unwrap()
        };
        assert_ne!(
            run(1).jobs[0].arrival.as_nanos(),
            run(2).jobs[0].arrival.as_nanos()
        );
    }

    #[test]
    fn admission_bound_sheds_load() {
        // Arrivals every ~1 µs against multi-ms jobs: with depth 1 most
        // of the burst must be shed; with a deep queue nothing is.
        let run = |depth: usize| {
            let mut c = cluster();
            let mut svc = LayoutService::new(
                &mut c,
                ServiceConfig::new(3)
                    .mean_interarrival(SimDuration::from_micros(1))
                    .queue_depth(depth),
            );
            svc.add_tenant(TenantId(1), Box::new(NullRuntime::new()));
            for _ in 0..6 {
                svc.submit(TenantId(1), small_ior(4));
            }
            svc.run().unwrap()
        };
        let shallow = run(1);
        assert!(shallow.rejected > 0, "burst against depth 1 must shed");
        assert_eq!(shallow.jobs.len() + shallow.rejected, 6);
        assert_eq!(shallow.tenants[0].rejected, shallow.rejected);
        let deep = run(64);
        assert_eq!(deep.rejected, 0, "deep queue admits everything");
        assert_eq!(deep.jobs.len(), 6);
    }

    #[test]
    fn co_tenant_does_not_perturb_a_tenants_replay_reports() {
        // The isolation property: tenant 2's per-job replay reports are
        // bit-identical whether or not tenant 1 shares the service.
        // (Latencies shift — the cluster is shared — but results don't.)
        let solo = {
            let mut c = cluster();
            let mut svc = LayoutService::new(&mut c, ServiceConfig::new(11));
            svc.add_tenant(TenantId(2), Box::new(Recorder::new()));
            for _ in 0..3 {
                svc.submit(TenantId(2), small_ior(3));
            }
            svc.run().unwrap()
        };
        let shared = {
            let mut c = cluster();
            let mut svc = LayoutService::new(&mut c, ServiceConfig::new(11));
            svc.add_tenant(TenantId(1), Box::new(Recorder::new()));
            svc.add_tenant(TenantId(2), Box::new(Recorder::new()));
            for _ in 0..3 {
                svc.submit(TenantId(1), small_ior(5));
                svc.submit(TenantId(2), small_ior(3));
            }
            svc.run().unwrap()
        };
        let reports = |r: &ServiceReport, t: u32| -> Vec<(u64, u64, Vec<f64>)> {
            r.jobs
                .iter()
                .filter(|j| j.tenant.0 == t)
                .map(|j| {
                    (
                        j.report.makespan.as_nanos(),
                        j.report.total_bytes,
                        j.report.server_busy_secs(),
                    )
                })
                .collect()
        };
        assert_eq!(reports(&solo, 2), reports(&shared, 2));
        // Arrivals are also identical (derived from the tenant id, not
        // the tenant set); only start/completion may differ.
        let arrivals = |r: &ServiceReport, t: u32| -> Vec<u64> {
            r.jobs
                .iter()
                .filter(|j| j.tenant.0 == t)
                .map(|j| j.arrival.as_nanos())
                .collect()
        };
        assert_eq!(arrivals(&solo, 2), arrivals(&shared, 2));
    }

    #[test]
    fn runtime_feedback_lands_in_the_tenants_mds_shard() {
        let mut c = cluster();
        let report = {
            let mut svc = LayoutService::new(&mut c, ServiceConfig::new(5));
            svc.add_tenant(TenantId(1), Box::new(Recorder::new()));
            svc.add_tenant(TenantId(2), Box::new(Recorder::new()));
            // Same local file ids on both tenants: the namespace keeps
            // them apart in the shared MDS.
            svc.submit(TenantId(1), small_ior(2));
            svc.submit(TenantId(2), small_ior(2));
            svc.run().unwrap()
        };
        assert_eq!(report.jobs.len(), 2);
        let t1: Vec<FileId> = c.mds().tenant_layouts(TenantId(1)).map(|(f, _)| f).collect();
        let t2: Vec<FileId> = c.mds().tenant_layouts(TenantId(2)).map(|(f, _)| f).collect();
        assert!(!t1.is_empty() && t1.len() == t2.len());
        assert!(t1.iter().all(|f| f.tenant() == TenantId(1)));
        assert!(t2.iter().all(|f| f.tenant() == TenantId(2)));
        assert_eq!(
            t1.iter().map(|f| f.local()).collect::<Vec<_>>(),
            t2.iter().map(|f| f.local()).collect::<Vec<_>>(),
            "same local files, disjoint shards"
        );
    }

    #[test]
    fn percentiles_summarize_latencies() {
        let mut c = cluster();
        let mut svc = LayoutService::new(
            &mut c,
            ServiceConfig::new(2).mean_interarrival(SimDuration::from_micros(10)),
        );
        svc.add_tenant(TenantId(0), Box::new(NullRuntime::new()));
        for _ in 0..8 {
            svc.submit(TenantId(0), small_ior(2));
        }
        let r = svc.run().unwrap();
        let s = &r.tenants[0];
        assert_eq!(s.completed + s.rejected, 8);
        assert!(s.p50_latency > 0.0);
        assert!(s.p50_latency <= s.p95_latency && s.p95_latency <= s.p99_latency);
        assert!(r.aggregate_mbps() > 0.0);
        assert_eq!(r.makespan, r.jobs.last().unwrap().completion);
    }

    #[test]
    fn fault_free_straggler_aware_tenant_is_bit_identical_to_default() {
        // With no fault no server ever turns suspect, so a straggler-
        // aware tenant replays the exact blind-shuffle schedule and the
        // scheduler counters stay zero.
        let run = |aware: bool| {
            let mut c = cluster();
            let mut svc = LayoutService::new(&mut c, ServiceConfig::new(13));
            for t in 0..2u32 {
                svc.add_tenant(TenantId(t), Box::new(NullRuntime::new()));
                svc.submit(TenantId(t), small_ior(3));
            }
            if aware {
                svc.set_tenant_policy(TenantId(1), SchedPolicy::straggler_aware());
            }
            svc.run().unwrap()
        };
        let base = run(false);
        let aware = run(true);
        assert_eq!(fingerprint(&base), fingerprint(&aware));
        assert_eq!(aware.deferred_requests, 0);
        assert_eq!(aware.reorder_depth, 0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn policy_for_unknown_tenant_rejected() {
        let mut c = cluster();
        let mut svc = LayoutService::new(&mut c, ServiceConfig::new(0));
        svc.set_tenant_policy(TenantId(3), SchedPolicy::straggler_aware());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_tenant_rejected() {
        let mut c = cluster();
        let mut svc = LayoutService::new(&mut c, ServiceConfig::new(0));
        svc.add_tenant(TenantId(1), Box::new(NullRuntime::new()));
        svc.add_tenant(TenantId(1), Box::new(NullRuntime::new()));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_tenant_rejected() {
        let mut c = cluster();
        let mut svc = LayoutService::new(&mut c, ServiceConfig::new(0));
        svc.submit(TenantId(9), Trace::new());
    }
}
