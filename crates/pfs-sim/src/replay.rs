//! Trace replay: drives a cluster with a trace and reports bandwidth and
//! per-server load.
//!
//! Replay follows the synchronous parallel I/O semantics of the paper's
//! workloads: requests of one phase start together (after the previous
//! phase fully completes — a barrier), each request is decomposed into
//! per-server sub-requests by the target file's layout, and a request
//! completes when its **slowest** sub-request completes. Aggregate
//! bandwidth is total bytes over the makespan, matching how IOR reports.

use crate::cluster::Cluster;
use iotrace::{FileId, Trace, TraceRecord};
use rand::seq::SliceRandom;
use simrt::stats::OnlineStats;
use simrt::{SeedSeq, SimDuration, SimTime};
use storage_model::{DeviceKind, IoOp};

/// Device-space base for a file's object on every server: each file's
/// stripes live in their own region of the disk, so switching between
/// files costs a real head move (as on an actual data server, where
/// different PFS objects occupy different block ranges). Slots are 6 GiB
/// apart, golden-ratio hashed over a 240 GB usable span.
fn file_device_base(file: FileId) -> u64 {
    let slot = (u64::from(file.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % 40;
    slot * (6 << 30)
}

/// One physical extent a logical request resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysExtent {
    /// Physical file (an original file or a reordered region file).
    pub file: FileId,
    /// Byte offset within the physical file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Result of resolving one logical request.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// Physical extents, in logical order. Their lengths must sum to the
    /// request length.
    pub extents: Vec<PhysExtent>,
    /// Extra client-side latency charged for the resolution (e.g. a DRT
    /// lookup by MHA's redirector). Zero for direct access.
    pub overhead: SimDuration,
}

/// Maps logical requests to physical extents — the hook where MHA's
/// redirector plugs in. The default [`IdentityResolver`] passes requests
/// through unchanged.
pub trait Resolver {
    /// Resolve one trace record.
    fn resolve(&mut self, rec: &TraceRecord) -> Resolution;
}

/// Pass-through resolver: requests hit their original file directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityResolver;

impl Resolver for IdentityResolver {
    fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
        Resolution {
            extents: vec![PhysExtent { file: rec.file, offset: rec.offset, len: rec.len }],
            overhead: SimDuration::ZERO,
        }
    }
}

/// Per-server outcome of a replay.
#[derive(Debug, Clone)]
pub struct ServerIoStat {
    /// Server index.
    pub server: usize,
    /// Backing medium.
    pub kind: DeviceKind,
    /// Device busy time — the "I/O time of each server" of Fig. 8.
    pub busy: SimDuration,
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Sub-requests served.
    pub served: u64,
}

/// Outcome of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// End-to-end simulated time from first issue to last completion.
    pub makespan: SimDuration,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Bytes moved by reads.
    pub read_bytes: u64,
    /// Bytes moved by writes.
    pub write_bytes: u64,
    /// Number of logical requests replayed.
    pub requests: usize,
    /// Number of barrier phases.
    pub phases: u32,
    /// Per-server load breakdown.
    pub per_server: Vec<ServerIoStat>,
    /// Total resolver (redirection) overhead charged.
    pub resolve_overhead: SimDuration,
    /// Distribution of logical request latencies (seconds).
    pub request_latency: OnlineStats,
    /// Metadata lookups performed.
    pub mds_lookups: u64,
}

impl ReplayReport {
    /// Aggregate bandwidth in MB/s (decimal megabytes, as IOR reports).
    pub fn bandwidth_mbps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.total_bytes as f64 / 1e6 / self.makespan.as_secs_f64()
    }

    /// Per-server busy times in seconds, in server order (Fig. 8 series).
    pub fn server_busy_secs(&self) -> Vec<f64> {
        self.per_server.iter().map(|s| s.busy.as_secs_f64()).collect()
    }
}

/// Replay `trace` against `cluster`, resolving each request through
/// `resolver`. The cluster's queues are reset first; installed layouts
/// are kept.
pub fn replay(cluster: &mut Cluster, trace: &Trace, resolver: &mut dyn Resolver) -> ReplayReport {
    cluster.reset();
    let mut latencies = OnlineStats::new();
    let mut read_bytes = 0u64;
    let mut write_bytes = 0u64;
    let mut resolve_overhead = SimDuration::ZERO;
    let mut opened: Vec<FileId> = Vec::new();
    let mut phase_end = SimTime::ZERO;
    let mut phases = 0u32;

    // Group records into phases (consecutive runs of one phase id), then
    // interleave each phase's requests in a deterministic shuffled order:
    // concurrent clients race over the network, so a server does NOT see
    // sub-requests in rank (= ascending offset) order. Replaying them
    // sorted would hand rotating disks an unrealistically sequential
    // stream.
    let records = trace.records();
    let mut phase_groups: Vec<(u32, Vec<usize>)> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        match phase_groups.last_mut() {
            Some((p, idxs)) if *p == rec.phase => idxs.push(i),
            _ => phase_groups.push((rec.phase, vec![i])),
        }
    }
    let shuffle_seed = SeedSeq::new(0x5EED_0F0F);
    for (phase, idxs) in &mut phase_groups {
        let mut rng = shuffle_seed.derive_idx("phase", u64::from(*phase)).rng();
        idxs.shuffle(&mut rng);
    }

    for (_, idxs) in &phase_groups {
        // Barrier: the new phase starts when the previous one drained.
        let phase_start = phase_end;
        phases += 1;
        for &idx in idxs {
            let rec = &records[idx];
        let resolution = resolver.resolve(rec);
        debug_assert_eq!(
            resolution.extents.iter().map(|e| e.len).sum::<u64>(),
            rec.len,
            "resolution must cover the request exactly"
        );
        resolve_overhead += resolution.overhead;
        match rec.op {
            IoOp::Read => read_bytes += rec.len,
            IoOp::Write => write_bytes += rec.len,
        }
        let client = cluster.client_node(rec.rank.0);
        let mut issue = phase_start + resolution.overhead;
        let mut completion = issue;
        for ext in &resolution.extents {
            // First touch of a physical file pays a metadata lookup (open).
            let (servers, fabric, mds) = cluster.parts_mut();
            let layout = if opened.contains(&ext.file) {
                mds.layout(ext.file).clone()
            } else {
                opened.push(ext.file);
                let (layout, open_done) = mds.lookup(issue, ext.file);
                issue = open_done;
                layout
            };
            let dev_base = file_device_base(ext.file);
            for sub in layout.map_extent(ext.offset, ext.len) {
                let server = &mut servers[sub.server.0];
                let dev_off = dev_base + sub.server_offset;
                let done = match rec.op {
                    IoOp::Write => {
                        // Data flows client → server, then hits the device.
                        let arrived = fabric.transfer(issue, client, server.node(), sub.len);
                        server.serve(arrived, rec.op, dev_off, sub.len)
                    }
                    IoOp::Read => {
                        // Device read, then data flows server → client.
                        let read_done = server.serve(issue, rec.op, dev_off, sub.len);
                        fabric.transfer(read_done, server.node(), client, sub.len)
                    }
                };
                completion = completion.max(done);
            }
        }
        latencies.push(completion.since(phase_start + resolution.overhead).as_secs_f64());
        phase_end = phase_end.max(completion);
        }
    }

    let per_server = cluster
        .servers()
        .iter()
        .map(|s| ServerIoStat {
            server: s.id().0,
            kind: s.kind(),
            busy: s.busy_time(),
            bytes_read: s.bytes_read(),
            bytes_written: s.bytes_written(),
            served: s.served(),
        })
        .collect();

    ReplayReport {
        makespan: phase_end.since(SimTime::ZERO),
        total_bytes: read_bytes + write_bytes,
        read_bytes,
        write_bytes,
        requests: trace.len(),
        phases,
        per_server,
        resolve_overhead,
        request_latency: latencies,
        mds_lookups: cluster.mds().lookups(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::layout::{LayoutSpec, ServerId};
    use iotrace::gen::ior::{generate, IorConfig};
    use iotrace::record::Rank;

    fn small_ior(op: IoOp) -> Trace {
        let mut cfg = IorConfig::default_run(op);
        cfg.reqs_per_proc = 8;
        cfg.proc_mix = vec![8];
        generate(&cfg)
    }

    #[test]
    fn replay_produces_positive_bandwidth() {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let t = small_ior(IoOp::Write);
        let r = replay(&mut c, &t, &mut IdentityResolver);
        assert!(r.bandwidth_mbps() > 1.0, "bw={}", r.bandwidth_mbps());
        assert_eq!(r.total_bytes, t.total_bytes());
        assert_eq!(r.write_bytes, t.total_bytes());
        assert_eq!(r.read_bytes, 0);
        assert_eq!(r.requests, t.len());
        assert_eq!(r.phases, 8);
        assert!(r.makespan > SimDuration::ZERO);
    }

    #[test]
    fn all_servers_participate_under_default_layout() {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let t = small_ior(IoOp::Write);
        let r = replay(&mut c, &t, &mut IdentityResolver);
        for s in &r.per_server {
            assert!(s.served > 0, "server {} idle", s.server);
            assert!(s.bytes_written > 0);
        }
    }

    #[test]
    fn hservers_are_the_stragglers_under_fixed_striping() {
        // The paper's core observation: with fixed stripes the HServers'
        // I/O time dwarfs the SServers', so SServers contribute little.
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let t = small_ior(IoOp::Write);
        let r = replay(&mut c, &t, &mut IdentityResolver);
        let h_busy: f64 = r.per_server[..6].iter().map(|s| s.busy.as_secs_f64()).sum::<f64>() / 6.0;
        let s_busy: f64 = r.per_server[6..].iter().map(|s| s.busy.as_secs_f64()).sum::<f64>() / 2.0;
        assert!(h_busy > 2.0 * s_busy, "h={h_busy} s={s_busy}");
    }

    #[test]
    fn replay_is_deterministic() {
        let t = small_ior(IoOp::Read);
        let mut c1 = Cluster::new(ClusterConfig::paper_default());
        let mut c2 = Cluster::new(ClusterConfig::paper_default());
        let r1 = replay(&mut c1, &t, &mut IdentityResolver);
        let r2 = replay(&mut c2, &t, &mut IdentityResolver);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.server_busy_secs(), r2.server_busy_secs());
    }

    #[test]
    fn heterogeneity_aware_layout_beats_fixed_for_small_random_requests() {
        // Sanity for the paper's premise: for small random requests a
        // heterogeneity-aware stripe pair (here the h = 0 extreme, which
        // avoids paying an HDD seek per sub-request) outperforms DEF's
        // fixed 64 KB striping over all servers.
        let t = small_ior(IoOp::Write);
        let mut fixed = Cluster::new(ClusterConfig::paper_default());
        let r_fixed = replay(&mut fixed, &t, &mut IdentityResolver);

        let mut varied = Cluster::new(ClusterConfig::paper_default());
        let h: Vec<ServerId> = varied.hserver_ids();
        let s: Vec<ServerId> = varied.sserver_ids();
        varied
            .mds_mut()
            .set_layout(FileId(0), LayoutSpec::hybrid(&h, 0, &s, 32 << 10));
        let r_varied = replay(&mut varied, &t, &mut IdentityResolver);
        assert!(
            r_varied.bandwidth_mbps() > r_fixed.bandwidth_mbps(),
            "varied={} fixed={}",
            r_varied.bandwidth_mbps(),
            r_fixed.bandwidth_mbps()
        );
    }

    #[test]
    fn resolver_overhead_is_charged() {
        struct Slow;
        impl Resolver for Slow {
            fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
                Resolution {
                    extents: vec![PhysExtent { file: rec.file, offset: rec.offset, len: rec.len }],
                    overhead: SimDuration::from_micros(100),
                }
            }
        }
        let t = small_ior(IoOp::Write);
        let mut c1 = Cluster::new(ClusterConfig::paper_default());
        let fast = replay(&mut c1, &t, &mut IdentityResolver);
        let mut c2 = Cluster::new(ClusterConfig::paper_default());
        let slow = replay(&mut c2, &t, &mut Slow);
        assert!(slow.makespan > fast.makespan);
        assert_eq!(
            slow.resolve_overhead,
            SimDuration::from_micros(100) * t.len() as u64
        );
    }

    #[test]
    fn split_resolution_covers_request() {
        // A resolver that splits each request in two halves on the same
        // file must move the same number of bytes.
        struct Split;
        impl Resolver for Split {
            fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
                let half = rec.len / 2;
                Resolution {
                    extents: vec![
                        PhysExtent { file: rec.file, offset: rec.offset, len: half },
                        PhysExtent {
                            file: rec.file,
                            offset: rec.offset + half,
                            len: rec.len - half,
                        },
                    ],
                    overhead: SimDuration::ZERO,
                }
            }
        }
        let t = small_ior(IoOp::Read);
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let r = replay(&mut c, &t, &mut Split);
        assert_eq!(r.total_bytes, t.total_bytes());
    }

    #[test]
    fn empty_trace_reports_zero() {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let r = replay(&mut c, &Trace::new(), &mut IdentityResolver);
        assert_eq!(r.bandwidth_mbps(), 0.0);
        assert_eq!(r.phases, 0);
        assert_eq!(r.makespan, SimDuration::ZERO);
    }

    #[test]
    fn one_mds_lookup_per_file() {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let recs = vec![
            TraceRecord {
                pid: 0,
                rank: Rank(0),
                file: FileId(0),
                op: IoOp::Write,
                offset: 0,
                len: 4096,
                ts: SimTime::ZERO,
                phase: 0,
            },
            TraceRecord {
                pid: 0,
                rank: Rank(0),
                file: FileId(0),
                op: IoOp::Write,
                offset: 4096,
                len: 4096,
                ts: SimTime::ZERO,
                phase: 0,
            },
            TraceRecord {
                pid: 0,
                rank: Rank(1),
                file: FileId(1),
                op: IoOp::Write,
                offset: 0,
                len: 4096,
                ts: SimTime::ZERO,
                phase: 0,
            },
        ];
        let r = replay(&mut c, &Trace::from_records(recs), &mut IdentityResolver);
        assert_eq!(r.mds_lookups, 2, "two files, two opens");
    }
}
