//! Trace replay: drives a cluster with a trace and reports bandwidth and
//! per-server load.
//!
//! Replay follows the synchronous parallel I/O semantics of the paper's
//! workloads: requests of one phase start together (after the previous
//! phase fully completes — a barrier), each request is decomposed into
//! per-server sub-requests by the target file's layout, and a request
//! completes when its **slowest** sub-request completes. Aggregate
//! bandwidth is total bytes over the makespan, matching how IOR reports.

use crate::cluster::Cluster;
use crate::error::ReplayError;
use crate::fault::{Admission, FaultRuntime};
use crate::layout::{LayoutSpec, SubExtent};
use crate::redundancy::{decode_penalty, RedundancyState};
use crate::sched::SchedRuntime;
use iotrace::{FileId, Trace, TraceRecord};
use rand::seq::SliceRandom;
use simrt::stats::OnlineStats;
use simrt::{SeedSeq, ServerHealth, SimDuration, SimTime};
use storage_model::{DeviceKind, IoOp};

/// Device-space base for a file's object on every server: each file's
/// stripes live in their own region of the disk, so switching between
/// files costs a real head move (as on an actual data server, where
/// different PFS objects occupy different block ranges). Slots are 6 GiB
/// apart, golden-ratio hashed over `slots` positions — the cluster's
/// [`crate::ClusterConfig::device_slots`] (40 slots = a 240 GB usable
/// span, the historical hard-coded value).
pub(crate) fn file_device_base(file: FileId, slots: u64) -> u64 {
    let slot = (u64::from(file.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % slots.max(1);
    slot * (6 << 30)
}

/// One physical extent a logical request resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysExtent {
    /// Physical file (an original file or a reordered region file).
    pub file: FileId,
    /// Byte offset within the physical file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Result of resolving one logical request.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// Physical extents, in logical order. Their lengths must sum to the
    /// request length.
    pub extents: Vec<PhysExtent>,
    /// Extra client-side latency charged for the resolution (e.g. a DRT
    /// lookup by MHA's redirector). Zero for direct access.
    pub overhead: SimDuration,
}

/// Maps logical requests to physical extents — the hook where MHA's
/// redirector plugs in. The default [`IdentityResolver`] passes requests
/// through unchanged.
pub trait Resolver {
    /// Resolve one trace record.
    fn resolve(&mut self, rec: &TraceRecord) -> Resolution;

    /// Allocation-free fast path: overwrite `out` (cleared first) with
    /// the extents [`Self::resolve`] would return and return the
    /// resolution overhead. The replay loop calls this exclusively; the
    /// default implementation delegates to [`Self::resolve`], so existing
    /// resolvers keep working unchanged, while hot resolvers override it
    /// to reuse the caller's buffer.
    fn resolve_into(&mut self, rec: &TraceRecord, out: &mut Vec<PhysExtent>) -> SimDuration {
        let resolution = self.resolve(rec);
        out.clear();
        out.extend_from_slice(&resolution.extents);
        resolution.overhead
    }
}

/// Pass-through resolver: requests hit their original file directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityResolver;

impl Resolver for IdentityResolver {
    fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
        Resolution {
            extents: vec![PhysExtent { file: rec.file, offset: rec.offset, len: rec.len }],
            overhead: SimDuration::ZERO,
        }
    }

    fn resolve_into(&mut self, rec: &TraceRecord, out: &mut Vec<PhysExtent>) -> SimDuration {
        out.clear();
        out.push(PhysExtent { file: rec.file, offset: rec.offset, len: rec.len });
        SimDuration::ZERO
    }
}

/// Dense bitmap over [`FileId`]s — the opened-file set of the replay
/// loop. Insert/contains are O(1) bit operations, replacing the linear
/// `Vec::contains` scan that made replay quadratic in the number of
/// distinct physical files (region files push ids past 2^20, but the
/// bitmap grows lazily to the highest id actually touched).
#[derive(Debug, Clone, Default)]
pub struct FileSet {
    words: Vec<u64>,
}

impl FileSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove every file, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Insert `file`; returns `true` when it was not already present.
    pub fn insert(&mut self, file: FileId) -> bool {
        let word = (file.0 / 64) as usize;
        let bit = 1u64 << (file.0 % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        fresh
    }

    /// True when `file` is present.
    pub fn contains(&self, file: FileId) -> bool {
        self.words
            .get((file.0 / 64) as usize)
            .is_some_and(|w| w & (1 << (file.0 % 64)) != 0)
    }
}

/// Precomputed replay order for one trace: records grouped into barrier
/// phases, shuffled within each phase by the deterministic replay seed.
///
/// Building a schedule costs a pass over the records plus one RNG
/// shuffle per phase. The ordering depends only on the trace (the seed
/// is fixed), so callers replaying one trace many times — the experiment
/// grid runs every scheme over the same trace, benches iterate it
/// hundreds of times — build the schedule once with
/// [`ReplaySchedule::for_trace`] and pin it via
/// [`crate::ReplaySession::with_schedule`]. An unpinned session builds
/// one internally; hoisting changes where the ordering work happens,
/// never the order itself.
#[derive(Debug, Clone, Default)]
pub struct ReplaySchedule {
    /// Record indices in replay order (shuffled within each phase).
    order: Vec<usize>,
    /// Per-phase `(phase id, start, end)` spans into `order`.
    spans: Vec<(u32, usize, usize)>,
}

impl ReplaySchedule {
    /// Schedule for `trace` under the fixed replay seed.
    pub fn for_trace(trace: &Trace) -> Self {
        let mut s = Self::default();
        s.rebuild(trace);
        s
    }

    /// Recompute for `trace` in place, reusing the buffers.
    pub fn rebuild(&mut self, trace: &Trace) {
        self.order.clear();
        self.spans.clear();
        // Group records into phases (consecutive runs of one phase id),
        // then interleave each phase's requests in a deterministic
        // shuffled order: concurrent clients race over the network, so a
        // server does NOT see sub-requests in rank (= ascending offset)
        // order. Replaying them sorted would hand rotating disks an
        // unrealistically sequential stream.
        for (i, rec) in trace.records().iter().enumerate() {
            self.order.push(i);
            match self.spans.last_mut() {
                Some((p, _, end)) if *p == rec.phase => *end += 1,
                _ => self.spans.push((rec.phase, i, i + 1)),
            }
        }
        let shuffle_seed = SeedSeq::new(0x5EED_0F0F);
        for &(phase, start, end) in self.spans.iter() {
            let mut rng = shuffle_seed.derive_idx("phase", u64::from(phase)).rng();
            self.order[start..end].shuffle(&mut rng);
        }
    }

    /// Number of barrier phases.
    pub fn phases(&self) -> usize {
        self.spans.len()
    }
}

/// Reusable replay buffers owned by a [`crate::ReplaySession`]: the
/// resolved-extent and sub-request vectors, the opened-file bitmap, and
/// a schedule rebuilt per trace. One session threaded through a whole
/// experiment grid makes the per-request path allocation-free at steady
/// state.
#[derive(Debug, Clone, Default)]
pub struct ReplayScratch {
    /// Physical extents of the request being replayed.
    extents: Vec<PhysExtent>,
    /// Per-server sub-requests of the extent being decomposed.
    subs: Vec<SubExtent>,
    /// Physical files already opened (metadata lookup paid).
    opened: FileSet,
    /// Schedule buffers rebuilt per trace by an unpinned session
    /// (sessions pinned with [`crate::ReplaySession::with_schedule`]
    /// leave this empty).
    schedule: ReplaySchedule,
    /// Redundancy expansion state: sampled health, degraded-mode
    /// counters, and internal buffers. Reset per run.
    red: RedundancyState,
}

impl ReplayScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Detach the schedule buffers so they can be borrowed alongside the
    /// rest of the scratch (see [`crate::ReplaySession::run`]).
    pub(crate) fn take_schedule(&mut self) -> ReplaySchedule {
        std::mem::take(&mut self.schedule)
    }

    /// Return the schedule buffers taken by [`Self::take_schedule`].
    pub(crate) fn put_schedule(&mut self, schedule: ReplaySchedule) {
        self.schedule = schedule;
    }
}

/// Per-server outcome of a replay.
#[derive(Debug, Clone)]
pub struct ServerIoStat {
    /// Server index.
    pub server: usize,
    /// Backing medium.
    pub kind: DeviceKind,
    /// Device busy time — the "I/O time of each server" of Fig. 8.
    pub busy: SimDuration,
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Sub-requests served.
    pub served: u64,
    /// Client retries spent against this server (0 without faults).
    pub retries: u64,
    /// Sub-requests abandoned against this server (0 without faults).
    pub timeouts: u64,
    /// Whether the fault plan lost this server permanently.
    pub down: bool,
    /// The fault plan's service-time inflation estimate (1.0 = nominal).
    pub slowdown: f64,
    /// Degraded (erasure-reconstruction) reads caused by losing this
    /// server (0 without redundancy or faults).
    pub degraded_reads: u64,
    /// Bytes reconstructed in degraded reads of this server's lost data.
    pub reconstructed_bytes: u64,
    /// Reads this (primary) server lost to a replica failover.
    pub failovers: u64,
}

/// Outcome of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// End-to-end simulated time from first issue to last completion.
    pub makespan: SimDuration,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Bytes moved by reads.
    pub read_bytes: u64,
    /// Bytes moved by writes.
    pub write_bytes: u64,
    /// Number of logical requests replayed.
    pub requests: usize,
    /// Number of barrier phases.
    pub phases: u32,
    /// Per-server load breakdown.
    pub per_server: Vec<ServerIoStat>,
    /// Total resolver (redirection) overhead charged.
    pub resolve_overhead: SimDuration,
    /// Distribution of logical request latencies (seconds).
    pub request_latency: OnlineStats,
    /// Metadata lookups performed.
    pub mds_lookups: u64,
    /// Client retries spent waiting out outages (0 without faults).
    pub retries: u64,
    /// Sub-requests abandoned after exhausting their retry budget or
    /// hitting a lost server (0 without faults).
    pub timeouts: u64,
    /// Total wall-clock time requests spent backed off in retry loops.
    pub fault_wait: SimDuration,
    /// Degraded (erasure-reconstruction) reads across all servers.
    pub degraded_reads: u64,
    /// Total bytes reconstructed by degraded reads.
    pub reconstructed_bytes: u64,
    /// Reads served by a non-primary replica after a failover.
    pub failovers: u64,
    /// Requests the straggler-aware scheduler issued with a non-zero
    /// delay (0 under [`simrt::SchedPolicy::SeededShuffle`]).
    pub deferred_requests: u64,
    /// Deepest within-window displacement the scheduler's reorder pass
    /// applied to the dispatch order (0 when never reordered).
    pub reorder_depth: u64,
}

impl ReplayReport {
    /// Aggregate bandwidth in MB/s (decimal megabytes, as IOR reports).
    pub fn bandwidth_mbps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.total_bytes as f64 / 1e6 / self.makespan.as_secs_f64()
    }

    /// Per-server busy times in seconds, in server order (Fig. 8 series).
    pub fn server_busy_secs(&self) -> Vec<f64> {
        self.per_server.iter().map(|s| s.busy.as_secs_f64()).collect()
    }
}

/// The one replay loop behind [`crate::ReplaySession`]. With
/// `faults: None` the time arithmetic is exactly the historical
/// fault-free path — reports stay bit-for-bit identical; with a
/// [`FaultRuntime`], every sub-request first passes server admission
/// (outage retry loops, permanent loss) before touching fabric or device.
pub(crate) fn replay_core(
    cluster: &mut Cluster,
    trace: &Trace,
    schedule: &ReplaySchedule,
    resolver: &mut dyn Resolver,
    scratch: &mut ReplayScratch,
    mut faults: Option<&mut FaultRuntime>,
    sched: &mut SchedRuntime,
) -> Result<ReplayReport, ReplayError> {
    let records = trace.records();
    if schedule.order.len() != records.len() {
        return Err(ReplayError::ScheduleMismatch {
            schedule: schedule.order.len(),
            trace: records.len(),
        });
    }
    cluster.reset();
    let n_servers = cluster.servers().len();
    let device_slots = cluster.config().device_slots;
    let ReplayScratch { extents, subs, opened, schedule: _, red } = scratch;
    extents.clear();
    subs.clear();
    opened.clear();
    red.reset(n_servers, faults.as_deref());
    sched.begin_run(n_servers);
    let observing = sched.observing();
    let ReplaySchedule { order, spans } = schedule;
    let mut latencies = OnlineStats::new();
    let mut read_bytes = 0u64;
    let mut write_bytes = 0u64;
    let mut resolve_overhead = SimDuration::ZERO;
    let mut phase_end = SimTime::ZERO;
    let mut phases = 0u32;
    // `file_device_base` costs a division by the (runtime) slot count;
    // consecutive records overwhelmingly hit the same file, so a
    // one-entry memo removes it from the hot path.
    let mut dev_base_memo: Option<(FileId, u64)> = None;

    for &(_, start, end) in spans.iter() {
        // Barrier: the new phase starts when the previous one drained.
        let phase_start = phase_end;
        phases += 1;
        let span = &order[start..end];
        // Plan the phase from scheduler state frozen at the barrier
        // (stateless layout lookups only — the resolver may mutate).
        sched.plan_phase(span.iter().map(|&i| records[i].file), cluster.mds());
        for k in 0..span.len() {
            let bp = sched.dispatch(k);
            let idx = span[bp];
            let rec = &records[idx];
            let overhead = resolver.resolve_into(rec, extents);
            debug_assert_eq!(
                extents.iter().map(|e| e.len).sum::<u64>(),
                rec.len,
                "resolution must cover the request exactly"
            );
            resolve_overhead += overhead;
            match rec.op {
                IoOp::Read => read_bytes += rec.len,
                IoOp::Write => write_bytes += rec.len,
            }
            let client = cluster.client_node(rec.rank.0);
            // The latency base (and completion floor) excludes the
            // scheduler's issue delay: a deferred request still waited
            // from the barrier, so deferral counts as latency.
            let base = phase_start + overhead;
            let mut issue = base + sched.delay(bp);
            let mut completion = base;
            let mut decode_bytes = 0u64;
            let (servers, fabric, mds) = cluster.parts_mut();
            for ext in extents.iter() {
                // First touch of a physical file pays a metadata lookup
                // (open). The layout is borrowed from the MDS for the
                // duration of the extent — no per-extent clone.
                let layout: &LayoutSpec = if opened.insert(ext.file) {
                    let (layout, open_done) = mds.lookup_ref(issue, ext.file);
                    issue = open_done;
                    layout
                } else {
                    mds.layout(ext.file)
                };
                let dev_base = match dev_base_memo {
                    Some((f, b)) if f == ext.file => b,
                    _ => {
                        let b = file_device_base(ext.file, device_slots);
                        dev_base_memo = Some((ext.file, b));
                        b
                    }
                };
                decode_bytes += red.expand(layout, ext.offset, ext.len, rec.op, subs);
                for sub in subs.iter() {
                    let Some(server) = servers.get_mut(sub.server.0) else {
                        return Err(ReplayError::UnknownServer {
                            server: sub.server.0,
                            servers: n_servers,
                        });
                    };
                    let dev_off = dev_base + sub.server_offset;
                    // `done` is the sub-request's final completion;
                    // `dev_done` its device-stage completion (before any
                    // read fabric hop) — the scheduler's latency
                    // observation, matching the sharded device pass.
                    let (done, dev_done) = match faults.as_deref_mut() {
                        None => match rec.op {
                            IoOp::Write => {
                                // Data flows client → server, then hits the device.
                                let arrived =
                                    fabric.transfer(issue, client, server.node(), sub.len);
                                let d = server.serve(arrived, rec.op, dev_off, sub.len);
                                (d, d)
                            }
                            IoOp::Read => {
                                // Device read, then data flows server → client.
                                let read_done = server.serve(issue, rec.op, dev_off, sub.len);
                                (fabric.transfer(read_done, server.node(), client, sub.len), read_done)
                            }
                        },
                        Some(rt) => match rt.admit(sub.server.0, issue) {
                            Admission::At(admitted) => match rec.op {
                                IoOp::Write => {
                                    let arrived =
                                        fabric.transfer(admitted, client, server.node(), sub.len);
                                    let d = server.serve(arrived, rec.op, dev_off, sub.len);
                                    (d, d)
                                }
                                IoOp::Read => {
                                    let read_done =
                                        server.serve(admitted, rec.op, dev_off, sub.len);
                                    (fabric.transfer(read_done, server.node(), client, sub.len), read_done)
                                }
                            },
                            // An abandoned sub-request moves no bytes and
                            // charges no device or fabric time — the
                            // client just burns the timeout waiting.
                            Admission::TimedOut => {
                                let t = issue + rt.timeout();
                                (t, t)
                            }
                        },
                    };
                    if observing {
                        sched.observe(sub.server.0, dev_done.since(issue).as_secs_f64());
                    }
                    completion = completion.max(done);
                }
            }
            if decode_bytes > 0 {
                // Degraded EC reads pay the client-side decode before the
                // request can complete.
                completion += decode_penalty(decode_bytes);
            }
            latencies.push(completion.since(base).as_secs_f64());
            phase_end = phase_end.max(completion);
        }
    }

    Ok(assemble_report(
        cluster,
        faults.as_deref(),
        red,
        RunTotals {
            read_bytes,
            write_bytes,
            requests: trace.len(),
            phases,
            resolve_overhead,
            request_latency: latencies,
            phase_end,
            deferred_requests: sched.deferred,
            reorder_depth: sched.reorder_depth,
        },
    ))
}

/// Scalar run totals a replay core accumulates; everything else in a
/// [`ReplayReport`] is read off the cluster and fault runtime at the end.
pub(crate) struct RunTotals {
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub requests: usize,
    pub phases: u32,
    pub resolve_overhead: SimDuration,
    pub request_latency: OnlineStats,
    pub phase_end: SimTime,
    pub deferred_requests: u64,
    pub reorder_depth: u64,
}

/// Assemble the final report from the cluster's post-run state — shared
/// by the serial and sharded cores so the two can never drift in how
/// they read counters back.
pub(crate) fn assemble_report(
    cluster: &Cluster,
    faults: Option<&FaultRuntime>,
    red: &RedundancyState,
    totals: RunTotals,
) -> ReplayReport {
    let mut degraded_reads = 0u64;
    let mut reconstructed_bytes = 0u64;
    let mut failovers = 0u64;
    let per_server = cluster
        .servers()
        .iter()
        .map(|s| {
            let (retries, timeouts) =
                faults.map_or((0, 0), |rt| rt.server_counters(s.id().0));
            let health =
                faults.map_or_else(ServerHealth::nominal, |rt| rt.server_health(s.id().0));
            let (degraded, reconstructed, failed_over) = red.server_counters(s.id().0);
            degraded_reads += degraded;
            reconstructed_bytes += reconstructed;
            failovers += failed_over;
            ServerIoStat {
                server: s.id().0,
                kind: s.kind(),
                busy: s.busy_time(),
                bytes_read: s.bytes_read(),
                bytes_written: s.bytes_written(),
                served: s.served(),
                retries,
                timeouts,
                down: health.down,
                slowdown: health.speed_factor,
                degraded_reads: degraded,
                reconstructed_bytes: reconstructed,
                failovers: failed_over,
            }
        })
        .collect();

    ReplayReport {
        makespan: totals.phase_end.since(SimTime::ZERO),
        total_bytes: totals.read_bytes + totals.write_bytes,
        read_bytes: totals.read_bytes,
        write_bytes: totals.write_bytes,
        requests: totals.requests,
        phases: totals.phases,
        per_server,
        resolve_overhead: totals.resolve_overhead,
        request_latency: totals.request_latency,
        mds_lookups: cluster.mds().lookups(),
        retries: faults.map_or(0, |rt| rt.retries()),
        timeouts: faults.map_or(0, |rt| rt.timeouts()),
        fault_wait: faults.map_or(SimDuration::ZERO, |rt| rt.fault_wait()),
        degraded_reads,
        reconstructed_bytes,
        failovers,
        deferred_requests: totals.deferred_requests,
        reorder_depth: totals.reorder_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::layout::{LayoutSpec, ServerId};
    use crate::session::{CoreSel, ReplayInput, ReplaySession};
    use iotrace::gen::ior::{generate, IorConfig};
    use iotrace::record::Rank;

    fn small_ior(op: IoOp) -> Trace {
        let mut cfg = IorConfig::default_run(op);
        cfg.reqs_per_proc = 8;
        cfg.proc_mix = vec![8];
        generate(&cfg)
    }

    fn run(c: &mut Cluster, t: &Trace, r: &mut dyn Resolver) -> ReplayReport {
        ReplaySession::new().run(ReplayInput::trace(c, t, r), CoreSel::Auto).unwrap()
    }

    #[test]
    fn replay_produces_positive_bandwidth() {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let t = small_ior(IoOp::Write);
        let r = run(&mut c, &t, &mut IdentityResolver);
        assert!(r.bandwidth_mbps() > 1.0, "bw={}", r.bandwidth_mbps());
        assert_eq!(r.total_bytes, t.total_bytes());
        assert_eq!(r.write_bytes, t.total_bytes());
        assert_eq!(r.read_bytes, 0);
        assert_eq!(r.requests, t.len());
        assert_eq!(r.phases, 8);
        assert!(r.makespan > SimDuration::ZERO);
    }

    #[test]
    fn all_servers_participate_under_default_layout() {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let t = small_ior(IoOp::Write);
        let r = run(&mut c, &t, &mut IdentityResolver);
        for s in &r.per_server {
            assert!(s.served > 0, "server {} idle", s.server);
            assert!(s.bytes_written > 0);
        }
    }

    #[test]
    fn hservers_are_the_stragglers_under_fixed_striping() {
        // The paper's core observation: with fixed stripes the HServers'
        // I/O time dwarfs the SServers', so SServers contribute little.
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let t = small_ior(IoOp::Write);
        let r = run(&mut c, &t, &mut IdentityResolver);
        let h_busy: f64 = r.per_server[..6].iter().map(|s| s.busy.as_secs_f64()).sum::<f64>() / 6.0;
        let s_busy: f64 = r.per_server[6..].iter().map(|s| s.busy.as_secs_f64()).sum::<f64>() / 2.0;
        assert!(h_busy > 2.0 * s_busy, "h={h_busy} s={s_busy}");
    }

    #[test]
    fn file_set_inserts_and_grows() {
        let mut s = FileSet::new();
        assert!(!s.contains(FileId(0)));
        assert!(s.insert(FileId(0)), "first insert is fresh");
        assert!(!s.insert(FileId(0)), "second insert is not");
        assert!(s.contains(FileId(0)));
        // Region-file ids live past 2^20; the bitmap grows lazily.
        assert!(s.insert(FileId(1 << 20)));
        assert!(s.contains(FileId(1 << 20)));
        assert!(!s.contains(FileId((1 << 20) + 1)));
        s.clear();
        assert!(!s.contains(FileId(0)));
        assert!(s.insert(FileId(0)), "cleared set forgets everything");
    }

    #[test]
    fn scratch_reuse_is_report_identical() {
        // One session's warmed scratch across heterogeneous traces and
        // resolvers must give exactly the reports fresh sessions give.
        let mut session = ReplaySession::new();
        for t in [small_ior(IoOp::Write), small_ior(IoOp::Read)] {
            let mut c1 = Cluster::new(ClusterConfig::paper_default());
            let fresh = ReplaySession::new().run(ReplayInput::trace(&mut c1, &t, &mut IdentityResolver), CoreSel::Auto).unwrap();
            let mut c2 = Cluster::new(ClusterConfig::paper_default());
            let reused = session.run(ReplayInput::trace(&mut c2, &t, &mut IdentityResolver), CoreSel::Auto).unwrap();
            assert_eq!(fresh.makespan, reused.makespan);
            assert_eq!(fresh.total_bytes, reused.total_bytes);
            assert_eq!(fresh.server_busy_secs(), reused.server_busy_secs());
            assert_eq!(fresh.mds_lookups, reused.mds_lookups);
            assert_eq!(
                fresh.request_latency.mean().to_bits(),
                reused.request_latency.mean().to_bits()
            );
        }
    }

    #[test]
    fn resolve_into_default_delegates_to_resolve() {
        struct Halves;
        impl Resolver for Halves {
            fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
                let half = rec.len / 2;
                Resolution {
                    extents: vec![
                        PhysExtent { file: rec.file, offset: rec.offset, len: half },
                        PhysExtent {
                            file: rec.file,
                            offset: rec.offset + half,
                            len: rec.len - half,
                        },
                    ],
                    overhead: SimDuration::from_micros(3),
                }
            }
        }
        let rec = TraceRecord {
            pid: 0,
            rank: Rank(0),
            file: FileId(4),
            op: IoOp::Read,
            offset: 100,
            len: 64,
            ts: SimTime::ZERO,
            phase: 0,
        };
        // A dirty, over-long buffer must be overwritten, not appended to.
        let mut out = vec![PhysExtent { file: FileId(9), offset: 9, len: 9 }; 5];
        let overhead = Halves.resolve_into(&rec, &mut out);
        assert_eq!(overhead, SimDuration::from_micros(3));
        assert_eq!(out, Halves.resolve(&rec).extents);
    }

    #[test]
    fn hoisted_schedule_is_report_identical() {
        // One schedule pinned across replays must reproduce the
        // inline-built ordering exactly.
        for t in [small_ior(IoOp::Write), small_ior(IoOp::Read)] {
            let schedule = ReplaySchedule::for_trace(&t);
            assert_eq!(schedule.phases(), 8);
            let mut pinned = ReplaySession::new().with_schedule(schedule);
            let mut c1 = Cluster::new(ClusterConfig::paper_default());
            let inline = ReplaySession::new().run(ReplayInput::trace(&mut c1, &t, &mut IdentityResolver), CoreSel::Auto).unwrap();
            for round in 0..3 {
                let mut c2 = Cluster::new(ClusterConfig::paper_default());
                let hoisted = pinned.run(ReplayInput::trace(&mut c2, &t, &mut IdentityResolver), CoreSel::Auto).unwrap();
                assert_eq!(inline.makespan, hoisted.makespan, "round {round}");
                assert_eq!(inline.server_busy_secs(), hoisted.server_busy_secs());
                assert_eq!(inline.mds_lookups, hoisted.mds_lookups);
                assert_eq!(
                    inline.request_latency.sum().to_bits(),
                    hoisted.request_latency.sum().to_bits()
                );
            }
        }
    }

    #[test]
    fn schedule_for_wrong_trace_is_rejected() {
        let t = small_ior(IoOp::Write);
        let schedule = ReplaySchedule::for_trace(&Trace::new());
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let err = ReplaySession::new()
            .with_schedule(schedule)
            .run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), CoreSel::Auto)
            .unwrap_err();
        assert!(
            matches!(err, crate::ReplayError::ScheduleMismatch { schedule: 0, trace } if trace == t.len()),
            "got {err:?}"
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let t = small_ior(IoOp::Read);
        let mut c1 = Cluster::new(ClusterConfig::paper_default());
        let mut c2 = Cluster::new(ClusterConfig::paper_default());
        let r1 = run(&mut c1, &t, &mut IdentityResolver);
        let r2 = run(&mut c2, &t, &mut IdentityResolver);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.server_busy_secs(), r2.server_busy_secs());
    }

    #[test]
    fn default_device_slots_match_historical_constant() {
        // The configurable slot count defaulted to the old hard-coded 40
        // must reproduce the historical placement and report bit-for-bit,
        // and a different slot count must actually move file bases.
        let cfg = ClusterConfig::paper_default();
        assert_eq!(cfg.device_slots, 40);
        for f in 0..512u32 {
            let slot =
                (u64::from(f).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % 40;
            assert_eq!(file_device_base(FileId(f), 40), slot * (6 << 30));
        }
        let t = {
            let mut c = IorConfig::default_run(IoOp::Write);
            c.reqs_per_proc = 4;
            c.proc_mix = vec![4, 4];
            generate(&c)
        };
        let mut c1 = Cluster::new(ClusterConfig::paper_default());
        let mut c2 = Cluster::new(ClusterConfig { device_slots: 40, ..ClusterConfig::paper_default() });
        let r1 = run(&mut c1, &t, &mut IdentityResolver);
        let r2 = run(&mut c2, &t, &mut IdentityResolver);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.server_busy_secs(), r2.server_busy_secs());
        assert_eq!(r1.request_latency.sum().to_bits(), r2.request_latency.sum().to_bits());
        // A single slot puts every file at base 0 — placement collapses.
        assert_eq!(file_device_base(FileId(7), 1), 0);
        assert!((0..64u32).any(|f| file_device_base(FileId(f), 160) >= 40 * (6 << 30)));
    }

    #[test]
    fn heterogeneity_aware_layout_beats_fixed_for_small_random_requests() {
        // Sanity for the paper's premise: for small random requests a
        // heterogeneity-aware stripe pair (here the h = 0 extreme, which
        // avoids paying an HDD seek per sub-request) outperforms DEF's
        // fixed 64 KB striping over all servers.
        let t = small_ior(IoOp::Write);
        let mut fixed = Cluster::new(ClusterConfig::paper_default());
        let r_fixed = run(&mut fixed, &t, &mut IdentityResolver);

        let mut varied = Cluster::new(ClusterConfig::paper_default());
        let h: Vec<ServerId> = varied.hserver_ids();
        let s: Vec<ServerId> = varied.sserver_ids();
        varied
            .mds_mut()
            .set_layout(FileId(0), LayoutSpec::hybrid(&h, 0, &s, 32 << 10));
        let r_varied = run(&mut varied, &t, &mut IdentityResolver);
        assert!(
            r_varied.bandwidth_mbps() > r_fixed.bandwidth_mbps(),
            "varied={} fixed={}",
            r_varied.bandwidth_mbps(),
            r_fixed.bandwidth_mbps()
        );
    }

    #[test]
    fn resolver_overhead_is_charged() {
        struct Slow;
        impl Resolver for Slow {
            fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
                Resolution {
                    extents: vec![PhysExtent { file: rec.file, offset: rec.offset, len: rec.len }],
                    overhead: SimDuration::from_micros(100),
                }
            }
        }
        let t = small_ior(IoOp::Write);
        let mut c1 = Cluster::new(ClusterConfig::paper_default());
        let fast = run(&mut c1, &t, &mut IdentityResolver);
        let mut c2 = Cluster::new(ClusterConfig::paper_default());
        let slow = run(&mut c2, &t, &mut Slow);
        assert!(slow.makespan > fast.makespan);
        assert_eq!(
            slow.resolve_overhead,
            SimDuration::from_micros(100) * t.len() as u64
        );
    }

    #[test]
    fn split_resolution_covers_request() {
        // A resolver that splits each request in two halves on the same
        // file must move the same number of bytes.
        struct Split;
        impl Resolver for Split {
            fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
                let half = rec.len / 2;
                Resolution {
                    extents: vec![
                        PhysExtent { file: rec.file, offset: rec.offset, len: half },
                        PhysExtent {
                            file: rec.file,
                            offset: rec.offset + half,
                            len: rec.len - half,
                        },
                    ],
                    overhead: SimDuration::ZERO,
                }
            }
        }
        let t = small_ior(IoOp::Read);
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let r = run(&mut c, &t, &mut Split);
        assert_eq!(r.total_bytes, t.total_bytes());
    }

    #[test]
    fn empty_trace_reports_zero() {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let r = run(&mut c, &Trace::new(), &mut IdentityResolver);
        assert_eq!(r.bandwidth_mbps(), 0.0);
        assert_eq!(r.phases, 0);
        assert_eq!(r.makespan, SimDuration::ZERO);
    }

    #[test]
    fn one_mds_lookup_per_file() {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let recs = vec![
            TraceRecord {
                pid: 0,
                rank: Rank(0),
                file: FileId(0),
                op: IoOp::Write,
                offset: 0,
                len: 4096,
                ts: SimTime::ZERO,
                phase: 0,
            },
            TraceRecord {
                pid: 0,
                rank: Rank(0),
                file: FileId(0),
                op: IoOp::Write,
                offset: 4096,
                len: 4096,
                ts: SimTime::ZERO,
                phase: 0,
            },
            TraceRecord {
                pid: 0,
                rank: Rank(1),
                file: FileId(1),
                op: IoOp::Write,
                offset: 0,
                len: 4096,
                ts: SimTime::ZERO,
                phase: 0,
            },
        ];
        let r = run(&mut c, &Trace::from_records(recs), &mut IdentityResolver);
        assert_eq!(r.mds_lookups, 2, "two files, two opens");
    }
}
