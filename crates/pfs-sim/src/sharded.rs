//! Sharded replay core: per-server event lanes over columnar sub-request
//! batches, bit-identical to the serial [`crate::replay`] loop.
//!
//! The serial core walks one record at a time, bouncing between the
//! metadata server, the fabric and a *random* storage server per
//! sub-request. At 1000+ servers that walk is cache-hostile: every
//! sub-request misses on the server struct, its device state and both NIC
//! queues. This core restructures one barrier phase into passes over
//! structure-of-arrays sub-request columns, so each pass touches only the
//! state it owns:
//!
//! 1. **front** (serial, replay order) — resolve records, charge MDS
//!    opens, decompose extents into sub-request columns; on fault-free
//!    runs the write-fabric hop is fused in here (pass 3 would visit the
//!    same subs in the same order);
//! 2. **admit** (lane-parallel, fault runs only) — fault admission
//!    against per-server [`crate::fault::ServerFaultState`]s, one lane
//!    per server;
//! 3. **write fabric** (serial, sub order, fault runs only) —
//!    client→server transfers after admission (shared client egress NICs
//!    force this pass serial);
//! 4. **device** (lane-parallel) — each server serves its lane's
//!    sub-requests in order against its own queue and device;
//! 5. **read fabric + reduce** (serial, replay order) — server→client
//!    transfers fused with the per-request max-completion, latency
//!    statistics and the phase barrier (global sub order is replay
//!    order × sub order, so one sweep covers both).
//!
//! Write transfers use client-egress + server-ingress NICs; read
//! transfers use server-egress + client-ingress. Client and server node
//! ids are disjoint, so passes 3 and 5 share no FIFO and their relative
//! order cannot matter. Within every FIFO, sub-requests arrive in exactly
//! the serial replay order (lanes are stable partitions of the global
//! order), and all cross-lane merges are order-independent reductions
//! (max for times, sums for counters) — which is why the result is
//! bit-for-bit identical to the serial core, not merely close. See
//! DESIGN.md §14 for the invariant argument.

use crate::cluster::Cluster;
use crate::error::ReplayError;
use crate::fault::{Admission, FaultRuntime};
use crate::layout::LayoutSpec;
use crate::redundancy::{decode_penalty, RedundancyState};
use crate::replay::{assemble_report, file_device_base, ReplayReport, Resolver, RunTotals};
use crate::replay::FileSet;
use crate::sched::SchedRuntime;
use crate::layout::SubExtent;
use crate::replay::PhysExtent;
use iotrace::{BatchSource, FileId, RecordBatch};
use rand::seq::SliceRandom;
use rayon::prelude::*;
use simrt::stats::OnlineStats;
use simrt::{DisjointSlice, LanePartition, SeedSeq, SimDuration, SimTime};
use storage_model::IoOp;

/// Reusable buffers of the sharded core. All columns are per-phase: they
/// are cleared and refilled for each barrier phase, so peak memory is one
/// phase's sub-requests regardless of trace length — a 10 M-record
/// streaming run holds only its widest phase.
#[derive(Debug, Clone, Default)]
pub struct ShardedScratch {
    /// Current phase's records (columnar).
    batch: RecordBatch,
    /// Shuffled local record indices (the deterministic replay order).
    shuffle: Vec<u32>,
    /// Resolved extents of the record in flight.
    extents: Vec<PhysExtent>,
    /// Decomposition buffer of the extent in flight.
    subs: Vec<SubExtent>,
    /// Physical files already opened (metadata lookup paid) — per run.
    opened: FileSet,
    /// Per-record: issue floor (`phase_start + overhead`), in replay order.
    rec_base: Vec<SimTime>,
    /// Per-record: one-past-the-end index into the sub columns.
    rec_sub_end: Vec<u32>,
    /// Per-record: bytes fed through erasure decode (degraded EC reads).
    rec_decode: Vec<u64>,
    // Sub-request columns, in replay (global) order:
    /// Target server.
    sub_server: Vec<u32>,
    /// Issuing client node.
    sub_client: Vec<u32>,
    /// Length in bytes.
    sub_len: Vec<u64>,
    /// Device-space offset (slot base + server offset).
    sub_dev_off: Vec<u64>,
    /// Operation.
    sub_op: Vec<IoOp>,
    /// Issue time after MDS opens (immutable once the front pass ran).
    sub_issue: Vec<SimTime>,
    /// Evolving start time: issue → admitted → device arrival.
    sub_start: Vec<SimTime>,
    /// Final completion per sub-request.
    sub_done: Vec<SimTime>,
    /// Abandoned by fault admission (skips fabric and device).
    sub_timed_out: Vec<bool>,
    /// Per-server lanes over the sub columns.
    partition: LanePartition,
    /// Fabric node of each server, cached per run so the fabric passes
    /// never touch the (cache-cold) server structs.
    server_nodes: Vec<netsim::NodeId>,
    /// Redundancy expansion state: sampled health, degraded-mode
    /// counters, and internal buffers. Reset per run.
    red: RedundancyState,
}

impl ShardedScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Replay every phase of `source` against `cluster` — the engine behind
/// [`crate::ReplaySession::run`] with [`crate::CoreSel::Sharded`] (and
/// the `Auto` pick for streaming payloads).
pub(crate) fn sharded_core(
    cluster: &mut Cluster,
    source: &mut dyn BatchSource,
    resolver: &mut dyn Resolver,
    scratch: &mut ShardedScratch,
    mut faults: Option<&mut FaultRuntime>,
    sched: &mut SchedRuntime,
) -> Result<ReplayReport, ReplayError> {
    cluster.reset();
    let n_servers = cluster.servers().len();
    let clients = cluster.config().clients;
    let device_slots = cluster.config().device_slots;
    let shuffle_seed = SeedSeq::new(0x5EED_0F0F);

    let ShardedScratch {
        batch,
        shuffle,
        extents,
        subs,
        opened,
        rec_base,
        rec_sub_end,
        rec_decode,
        sub_server,
        sub_client,
        sub_len,
        sub_dev_off,
        sub_op,
        sub_issue,
        sub_start,
        sub_done,
        sub_timed_out,
        partition,
        server_nodes,
        red,
    } = scratch;
    opened.clear();
    server_nodes.clear();
    server_nodes.extend(cluster.servers().iter().map(|s| s.node()));
    red.reset(n_servers, faults.as_deref());
    sched.begin_run(n_servers);
    let observing = sched.observing();
    let sched_alpha = sched.alpha();
    // Timed-out subs complete at `issue + timeout`; the device pass
    // recomputes that for its latency observations instead of reading
    // back through the scatter wrapper.
    let timeout = faults.as_deref().map(|rt| rt.timeout());

    let mut latencies = OnlineStats::new();
    let mut read_bytes = 0u64;
    let mut write_bytes = 0u64;
    let mut resolve_overhead = SimDuration::ZERO;
    let mut phase_end = SimTime::ZERO;
    let mut phases = 0u32;
    let mut requests = 0usize;

    while source.next_phase(batch) {
        let n = batch.len();
        if n == 0 {
            // A generator may announce an empty phase; the materialized
            // trace would have no span for it, so neither do we.
            continue;
        }
        let phase_start = phase_end;
        phases += 1;
        requests += n;

        // The deterministic replay order: shuffling local indices with
        // the per-phase seed produces exactly the permutation
        // ReplaySchedule applies to this phase's global index span
        // (Fisher–Yates is position-based, so local and global shuffles
        // coincide up to the span offset).
        shuffle.clear();
        shuffle.extend(0..n as u32);
        let mut rng = shuffle_seed.derive_idx("phase", u64::from(batch.phase())).rng();
        shuffle.shuffle(&mut rng);

        // Plan the phase from scheduler state frozen at the barrier —
        // the same pure function of (shuffled order, layout table,
        // tracker state) the serial core computes, so both cores
        // dispatch the identical permutation with identical delays.
        sched.plan_phase(
            shuffle.iter().map(|&li| batch.record(li as usize).file),
            cluster.mds(),
        );

        rec_base.clear();
        rec_sub_end.clear();
        rec_decode.clear();
        sub_server.clear();
        sub_client.clear();
        sub_len.clear();
        sub_dev_off.clear();
        sub_op.clear();
        sub_issue.clear();
        sub_start.clear();
        sub_done.clear();
        sub_timed_out.clear();

        // Pass 1 — front: resolve, open, decompose (serial; owns the MDS
        // queue and the opened-file set). On fault-free runs the write
        // fabric hop is fused in here: with nothing between issue and the
        // client→server transfer, pass 3 would visit the very same subs
        // in the very same order, so doing it inline saves a full sweep
        // over the columns.
        let fused_write_fabric = faults.is_none();
        {
            let (_, fabric, mds) = cluster.parts_mut();
            // `file_device_base` costs a division by the (runtime) slot
            // count; consecutive records overwhelmingly hit the same
            // file, so a one-entry memo removes it from the hot path.
            let mut dev_base_memo: Option<(FileId, u64)> = None;
            for k in 0..n {
                let bp = sched.dispatch(k);
                let rec = batch.record(shuffle[bp] as usize);
                let overhead = resolver.resolve_into(&rec, extents);
                debug_assert_eq!(
                    extents.iter().map(|e| e.len).sum::<u64>(),
                    rec.len,
                    "resolution must cover the request exactly"
                );
                resolve_overhead += overhead;
                match rec.op {
                    IoOp::Read => read_bytes += rec.len,
                    IoOp::Write => write_bytes += rec.len,
                }
                let client = (rec.rank.0 as usize % clients) as u32;
                // The latency base (and completion floor) excludes the
                // scheduler's issue delay — deferral counts as latency,
                // exactly as in the serial core.
                let base = phase_start + overhead;
                let mut issue = base + sched.delay(bp);
                let mut decode_bytes = 0u64;
                rec_base.push(base);
                for ext in extents.iter() {
                    let layout: &LayoutSpec = if opened.insert(ext.file) {
                        let (layout, open_done) = mds.lookup_ref(issue, ext.file);
                        issue = open_done;
                        layout
                    } else {
                        mds.layout(ext.file)
                    };
                    let dev_base = match dev_base_memo {
                        Some((f, b)) if f == ext.file => b,
                        _ => {
                            let b = file_device_base(ext.file, device_slots);
                            dev_base_memo = Some((ext.file, b));
                            b
                        }
                    };
                    decode_bytes += red.expand(layout, ext.offset, ext.len, rec.op, subs);
                    for sub in subs.iter() {
                        if sub.server.0 >= n_servers {
                            return Err(ReplayError::UnknownServer {
                                server: sub.server.0,
                                servers: n_servers,
                            });
                        }
                        let start = if fused_write_fabric && rec.op == IoOp::Write {
                            fabric.transfer(
                                issue,
                                netsim::NodeId(client as usize),
                                server_nodes[sub.server.0],
                                sub.len,
                            )
                        } else {
                            issue
                        };
                        sub_server.push(sub.server.0 as u32);
                        sub_client.push(client);
                        sub_len.push(sub.len);
                        sub_dev_off.push(dev_base + sub.server_offset);
                        sub_op.push(rec.op);
                        sub_issue.push(issue);
                        sub_start.push(start);
                        sub_done.push(start);
                        sub_timed_out.push(false);
                    }
                }
                rec_sub_end.push(sub_server.len() as u32);
                rec_decode.push(decode_bytes);
            }
        }

        partition.build(n_servers, sub_server);

        // Pass 2 — admit: per-server fault state machines, one lane per
        // server. Admission decisions depend only on the sub-request's
        // issue time and the server's static outage windows; counters are
        // integer sums, so lanes merge deterministically. Iterates only
        // the active spans — idle servers cost nothing.
        if let Some(rt) = faults.as_deref_mut() {
            let timeout = rt.timeout();
            let (params, states) = rt.lanes();
            let start_w = DisjointSlice::new(sub_start);
            let done_w = DisjointSlice::new(sub_done);
            let timed_w = DisjointSlice::new(sub_timed_out);
            let states_w = DisjointSlice::new(states);
            let issue_r: &[SimTime] = sub_issue;
            let lanes: &LanePartition = partition;
            lanes.spans().par_iter().for_each(|span| {
                // SAFETY: spans carry unique lanes; this lane's state is
                // touched by no other span.
                let state = unsafe { states_w.get_mut(span.lane as usize) };
                for &i in lanes.items(span) {
                    let i = i as usize;
                    match params.admit(state, issue_r[i]) {
                        // SAFETY: each sub index lives in exactly one
                        // lane; no reads until the pass joins.
                        Admission::At(at) => unsafe { start_w.write(i, at) },
                        Admission::TimedOut => unsafe {
                            timed_w.write(i, true);
                            done_w.write(i, issue_r[i] + timeout);
                        },
                    }
                }
            });
        }

        // Pass 3 — write fabric (serial, global sub order): data flows
        // client → server before hitting the device. Client egress NICs
        // are shared across lanes, so this pass cannot shard; it touches
        // only the dense FIFO arrays and the cached node ids, never the
        // server structs. Fault-free runs did this inline in the front
        // pass; under faults the hop must wait for admission.
        if !fused_write_fabric {
            let (_, fabric, _) = cluster.parts_mut();
            for i in 0..sub_server.len() {
                if sub_op[i] == IoOp::Write && !sub_timed_out[i] {
                    sub_start[i] = fabric.transfer(
                        sub_start[i],
                        netsim::NodeId(sub_client[i] as usize),
                        server_nodes[sub_server[i] as usize],
                        sub_len[i],
                    );
                }
            }
        }

        // Pass 4 — device (lane-parallel): each server owns its queue and
        // device state exclusively and serves its lane in global order —
        // exactly the arrival sequence the serial loop would feed it.
        // Only active spans run: a phase touching 200 of 1024 servers
        // loads 200 server structs, once each.
        {
            let (servers, _, _) = cluster.parts_mut();
            let servers_w = DisjointSlice::new(servers);
            let done_w = DisjointSlice::new(sub_done);
            let lat_w = DisjointSlice::new(sched.state_lanes());
            let lanes: &LanePartition = partition;
            let starts: &[SimTime] = sub_start;
            let ops: &[IoOp] = sub_op;
            let dev_offs: &[u64] = sub_dev_off;
            let lens: &[u64] = sub_len;
            let timed: &[bool] = sub_timed_out;
            let issues: &[SimTime] = sub_issue;
            lanes.spans().par_iter().for_each(|span| {
                // SAFETY: spans carry unique lanes; this server is
                // touched by no other span.
                let server = unsafe { servers_w.get_mut(span.lane as usize) };
                for &i in lanes.items(span) {
                    let i = i as usize;
                    let dev_done = if !timed[i] {
                        let done = server.serve(starts[i], ops[i], dev_offs[i], lens[i]);
                        // SAFETY: disjoint lanes, no reads until join.
                        unsafe { done_w.write(i, done) };
                        done
                    } else {
                        // Pass 2 already scattered this exact value.
                        issues[i] + timeout.expect("timed-out subs exist only under faults")
                    };
                    if observing {
                        // Lane order is the record-order subsequence of
                        // this server's subs — the same sequence the
                        // serial loop feeds its tracker, so the EWMA
                        // bits agree across cores.
                        // SAFETY: one tracker per lane, disjoint.
                        let lat = unsafe { lat_w.get_mut(span.lane as usize) };
                        lat.observe(sched_alpha, dev_done.since(issues[i]).as_secs_f64());
                    }
                }
            });
        }

        // Pass 5 — read fabric + reduce (serial, replay order): read
        // payloads flow server → client after the device pass; the global
        // sub order IS replay order × sub order, so the fabric hop and
        // the per-request max-completion reduce share one sweep. Read
        // FIFOs (server egress + client ingress) are disjoint from the
        // write-fabric ones, so running after pass 4 preserves the serial
        // arrival order everywhere. Latencies accumulate in replay order
        // so the float statistics match the serial core bit for bit; the
        // phase barrier is the max over completions.
        {
            let (_, fabric, _) = cluster.parts_mut();
            let mut sub_cursor = 0usize;
            for (r, &base) in rec_base.iter().enumerate() {
                let end = rec_sub_end[r] as usize;
                let mut completion = base;
                for i in sub_cursor..end {
                    if sub_op[i] == IoOp::Read && !sub_timed_out[i] {
                        sub_done[i] = fabric.transfer(
                            sub_done[i],
                            server_nodes[sub_server[i] as usize],
                            netsim::NodeId(sub_client[i] as usize),
                            sub_len[i],
                        );
                    }
                    completion = completion.max(sub_done[i]);
                }
                sub_cursor = end;
                if rec_decode[r] > 0 {
                    // Same degraded-EC decode charge as the serial core.
                    completion += decode_penalty(rec_decode[r]);
                }
                latencies.push(completion.since(base).as_secs_f64());
                phase_end = phase_end.max(completion);
            }
        }
    }

    Ok(assemble_report(
        cluster,
        faults.as_deref(),
        red,
        RunTotals {
            read_bytes,
            write_bytes,
            requests,
            phases,
            resolve_overhead,
            request_latency: latencies,
            phase_end,
            deferred_requests: sched.deferred,
            reorder_depth: sched.reorder_depth,
        },
    ))
}

#[cfg(test)]
mod tests {
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::replay::{IdentityResolver, ReplayReport};
    use crate::session::{CoreSel, ReplayInput, ReplaySession};
    use iotrace::gen::ior::{generate, IorConfig};
    use iotrace::Trace;
    use simrt::FaultPlan;
    use storage_model::IoOp;

    fn small_ior(op: IoOp) -> Trace {
        let mut cfg = IorConfig::default_run(op);
        cfg.reqs_per_proc = 8;
        cfg.proc_mix = vec![8];
        generate(&cfg)
    }

    /// Every observable of the two reports, compared bit for bit.
    fn assert_identical(serial: &ReplayReport, sharded: &ReplayReport) {
        assert_eq!(serial.makespan, sharded.makespan);
        assert_eq!(serial.total_bytes, sharded.total_bytes);
        assert_eq!(serial.read_bytes, sharded.read_bytes);
        assert_eq!(serial.write_bytes, sharded.write_bytes);
        assert_eq!(serial.requests, sharded.requests);
        assert_eq!(serial.phases, sharded.phases);
        assert_eq!(serial.resolve_overhead, sharded.resolve_overhead);
        assert_eq!(serial.mds_lookups, sharded.mds_lookups);
        assert_eq!(serial.retries, sharded.retries);
        assert_eq!(serial.timeouts, sharded.timeouts);
        assert_eq!(serial.fault_wait, sharded.fault_wait);
        assert_eq!(serial.degraded_reads, sharded.degraded_reads);
        assert_eq!(serial.reconstructed_bytes, sharded.reconstructed_bytes);
        assert_eq!(serial.failovers, sharded.failovers);
        assert_eq!(
            serial.request_latency.sum().to_bits(),
            sharded.request_latency.sum().to_bits()
        );
        assert_eq!(
            serial.request_latency.max().to_bits(),
            sharded.request_latency.max().to_bits()
        );
        assert_eq!(serial.per_server.len(), sharded.per_server.len());
        for (a, b) in serial.per_server.iter().zip(sharded.per_server.iter()) {
            assert_eq!(a.busy, b.busy, "server {} busy", a.server);
            assert_eq!(a.bytes_read, b.bytes_read);
            assert_eq!(a.bytes_written, b.bytes_written);
            assert_eq!(a.served, b.served);
            assert_eq!(a.retries, b.retries, "server {} retries", a.server);
            assert_eq!(a.timeouts, b.timeouts, "server {} timeouts", a.server);
            assert_eq!(a.down, b.down);
            assert_eq!(a.degraded_reads, b.degraded_reads, "server {} degraded", a.server);
            assert_eq!(a.reconstructed_bytes, b.reconstructed_bytes);
            assert_eq!(a.failovers, b.failovers, "server {} failovers", a.server);
        }
    }

    #[test]
    fn sharded_matches_serial_fault_free() {
        for t in [small_ior(IoOp::Write), small_ior(IoOp::Read)] {
            let mut c1 = Cluster::new(ClusterConfig::paper_default());
            let serial = ReplaySession::new().run(ReplayInput::trace(&mut c1, &t, &mut IdentityResolver), CoreSel::Auto).unwrap();
            let mut c2 = Cluster::new(ClusterConfig::paper_default());
            let sharded =
                ReplaySession::new().run(ReplayInput::trace(&mut c2, &t, &mut IdentityResolver), CoreSel::Sharded).unwrap();
            assert_identical(&serial, &sharded);
        }
    }

    #[test]
    fn sharded_matches_serial_under_faults() {
        // Outage on one server, permanent loss of another, a straggler on
        // a third: the sharded admission lanes must reproduce the serial
        // retry/timeout accounting exactly, per server.
        let t = small_ior(IoOp::Write);
        let plan = FaultPlan::none().outage(0, 0.0, 0.05).down(1, 0.0).slow_server(2, 3.0);
        let mut c1 = Cluster::new(ClusterConfig::paper_default());
        let serial = ReplaySession::new()
            .with_fault_plan(plan.clone())
            .run(ReplayInput::trace(&mut c1, &t, &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        assert!(serial.retries > 0 && serial.timeouts > 0, "plan must bite");
        let mut c2 = Cluster::new(ClusterConfig::paper_default());
        let sharded = ReplaySession::new()
            .with_fault_plan(plan)
            .run(ReplayInput::trace(&mut c2, &t, &mut IdentityResolver), CoreSel::Sharded)
            .unwrap();
        assert_identical(&serial, &sharded);
    }

    #[test]
    fn redundant_layouts_survive_permanent_loss_in_both_cores() {
        // Permanent loss of server 1 under 3x replication and EC(4+2):
        // both cores must complete every request (no timeouts), surface
        // the degraded accounting, and stay bit-identical.
        use crate::layout::{LayoutSpec, Placement, ServerId};
        use iotrace::FileId;
        let t = small_ior(IoOp::Read);
        let all: Vec<ServerId> = (0..8).map(ServerId).collect();
        for placement in [Placement::Replicated(3), Placement::ErasureCoded(4, 2)] {
            let plan = FaultPlan::none().down(1, 0.0);
            let spec = LayoutSpec::fixed(&all, 64 << 10).with_placement(placement);
            let mut c1 = Cluster::new(ClusterConfig::paper_default());
            c1.mds_mut().set_layout(FileId(0), spec.clone());
            let serial = ReplaySession::new()
                .with_fault_plan(plan.clone())
                .run(ReplayInput::trace(&mut c1, &t, &mut IdentityResolver), CoreSel::Auto)
                .unwrap();
            let mut c2 = Cluster::new(ClusterConfig::paper_default());
            c2.mds_mut().set_layout(FileId(0), spec);
            let sharded = ReplaySession::new()
                .with_fault_plan(plan)
                .run(ReplayInput::trace(&mut c2, &t, &mut IdentityResolver), CoreSel::Sharded)
                .unwrap();
            assert_identical(&serial, &sharded);
            assert_eq!(serial.timeouts, 0, "{placement:?}: degraded replay must complete");
            assert_eq!(serial.total_bytes, t.total_bytes());
            match placement {
                Placement::Replicated(_) => {
                    assert!(serial.failovers > 0, "replica failovers must be counted");
                    assert_eq!(serial.per_server[1].failovers, serial.failovers);
                }
                _ => {
                    assert!(serial.degraded_reads > 0, "EC degraded reads must be counted");
                    assert!(serial.reconstructed_bytes > 0);
                    assert_eq!(serial.per_server[1].degraded_reads, serial.degraded_reads);
                }
            }
        }
    }

    #[test]
    fn streaming_generator_matches_materialized_replay() {
        // Replaying straight off the generator (never materializing the
        // trace) must equal replaying the materialized trace.
        let cfg = {
            let mut c = IorConfig::default_run(IoOp::Write);
            c.reqs_per_proc = 6;
            c.proc_mix = vec![8];
            c
        };
        let t = generate(&cfg);
        let mut c1 = Cluster::new(ClusterConfig::paper_default());
        let serial = ReplaySession::new().run(ReplayInput::trace(&mut c1, &t, &mut IdentityResolver), CoreSel::Auto).unwrap();
        let mut c2 = Cluster::new(ClusterConfig::paper_default());
        let streamed = ReplaySession::new()
            .run(ReplayInput::stream(&mut c2, &mut iotrace::gen::ior::stream(&cfg), &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        assert_identical(&serial, &streamed);
    }

    #[test]
    fn sharded_scratch_reuse_is_report_identical() {
        let mut session = ReplaySession::new();
        let mut reports = Vec::new();
        for t in [small_ior(IoOp::Write), small_ior(IoOp::Read), small_ior(IoOp::Write)] {
            let mut c = Cluster::new(ClusterConfig::paper_default());
            reports.push(session.run(ReplayInput::trace(&mut c, &t, &mut IdentityResolver), CoreSel::Sharded).unwrap());
        }
        assert_identical(&reports[0], &reports[2]);
    }

    #[test]
    fn empty_trace_reports_zero_through_sharded_core() {
        let mut c = Cluster::new(ClusterConfig::paper_default());
        let r = ReplaySession::new()
            .run(ReplayInput::trace(&mut c, &Trace::new(), &mut IdentityResolver), CoreSel::Sharded)
            .unwrap();
        assert_eq!(r.requests, 0);
        assert_eq!(r.phases, 0);
        assert_eq!(r.bandwidth_mbps(), 0.0);
    }
}
