//! # pfs-sim — hybrid parallel file system simulator
//!
//! The OrangeFS substitute: a striped parallel file system over a mix of
//! HDD-backed servers (HServers) and SSD-backed servers (SServers),
//! connected to client nodes by a simulated Gigabit-Ethernet fabric.
//!
//! The pieces that matter for the paper's effects are modelled exactly:
//!
//! * **Striping** ([`layout`]): files are distributed round-robin with
//!   either a fixed stripe size or a per-server-class `<h, s>` pair
//!   (variable-size striping is what the AAL/HARL/MHA schemes configure).
//! * **Request decomposition**: a client request is split into per-server
//!   sub-requests by the layout map; the request completes when the
//!   *slowest* sub-request completes — the load-imbalance mechanism that
//!   motivates heterogeneity-aware layouts.
//! * **Queueing** ([`server`]): each server serves sub-requests FIFO
//!   through its stateful device model; each NIC serializes flows.
//! * **Metadata service** ([`mds`]): layout lookups cost a round trip at
//!   file open, as in OrangeFS.
//! * **Replay** ([`session::ReplaySession`]): traces execute
//!   phase-by-phase with barrier semantics (synchronous parallel I/O),
//!   producing aggregate bandwidth and per-server I/O time reports. A
//!   session optionally carries a [`simrt::FaultPlan`] injecting
//!   stragglers, outage windows, permanent server loss and degraded
//!   device profiles; the fault-free path is bit-for-bit identical to a
//!   session with no plan.
//!
//! [`ReplaySession`] is the only replay entry point (the pre-0.3 free
//! functions `replay` / `replay_with_scratch` / `replay_scheduled` have
//! been removed). Since 0.8 a session takes a [`ReplayInput`] (trace or
//! stream) plus a [`CoreSel`]; the 0.8-era `run_sharded` / `run_stream`
//! shims have been removed after their one-release grace period.
//!
//! On top of single replays, [`service::LayoutService`] runs a
//! long-lived multi-tenant service over one shared cluster: seeded
//! open-loop arrivals, bounded per-tenant admission, and per-tenant
//! layout feedback through [`service::TenantRuntime`].

pub mod cluster;
pub mod error;
mod fault;
pub mod layout;
pub mod mds;
pub mod redundancy;
pub mod replay;
mod sched;
pub mod server;
pub mod service;
pub mod session;
pub mod sharded;

pub use cluster::{Cluster, ClusterConfig};
pub use error::ReplayError;
pub use layout::{LayoutSpec, LoadScratch, Placement, ServerId, SubExtent};
pub use redundancy::REDUNDANCY_REGION;
pub use mds::{MdsConfig, MetadataServer};
pub use replay::{
    FileSet, IdentityResolver, PhysExtent, ReplayReport, ReplaySchedule, ReplayScratch,
    Resolution, Resolver, ServerIoStat,
};
pub use server::StorageServer;
pub use service::{
    JobRecord, LayoutService, NullRuntime, ServiceConfig, ServiceReport, TenantRuntime,
    TenantSummary,
};
pub use session::{CoreSel, ReplayInput, ReplayPayload, ReplaySession};
pub use sharded::ShardedScratch;
// Tenancy vocabulary, re-exported so service callers don't need a direct
// iotrace dependency for ids alone.
pub use iotrace::TenantId;
// Fault-plan and scheduling vocabulary, re-exported so callers
// describing fault scenarios or dispatch policies against a cluster
// don't need a direct simrt dependency.
pub use simrt::{
    DeviceProfile, FaultKind, FaultPlan, RetryPolicy, SchedPolicy, ServerFault, ServerHealth,
};
