//! A storage server: one device behind one FIFO service queue.

use crate::layout::ServerId;
use netsim::NodeId;
use simrt::{FifoResource, SimDuration, SimTime};
use storage_model::{BoxedDevice, DeviceKind, IoOp};

/// One file server (HServer or SServer) of the hybrid PFS.
pub struct StorageServer {
    id: ServerId,
    node: NodeId,
    device: BoxedDevice,
    queue: FifoResource,
    bytes_read: u64,
    bytes_written: u64,
}

impl StorageServer {
    /// Server `id` on fabric node `node` backed by `device`.
    pub fn new(id: ServerId, node: NodeId, device: BoxedDevice) -> Self {
        StorageServer {
            id,
            node,
            device,
            queue: FifoResource::new(),
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Fabric node hosting this server.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Backing medium.
    pub fn kind(&self) -> DeviceKind {
        self.device.kind()
    }

    /// Enqueue a sub-request arriving at `arrival`; returns its completion
    /// time. The device's stateful service model sees sub-requests in
    /// arrival order, so locality effects (HDD head position) follow the
    /// actual serviced sequence. A request arriving after the queue has
    /// drained is flagged as an idle arrival (synchronous writes pay a
    /// rotational miss there — see [`storage_model::Device`]).
    pub fn serve(&mut self, arrival: SimTime, op: IoOp, offset: u64, len: u64) -> SimTime {
        let idle_arrival = arrival >= self.queue.next_free();
        let service = self.device.service_time_arrival(op, offset, len, idle_arrival);
        match op {
            IoOp::Read => self.bytes_read += len,
            IoOp::Write => self.bytes_written += len,
        }
        self.queue.submit(arrival, service)
    }

    /// Accumulated device busy time — the per-server "I/O time" of Fig. 8.
    pub fn busy_time(&self) -> SimDuration {
        self.queue.busy_time()
    }

    /// Time the server becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.queue.next_free()
    }

    /// Number of sub-requests served.
    pub fn served(&self) -> u64 {
        self.queue.served()
    }

    /// Bytes read from the device.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes written to the device.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Clone the backing device (used when wrapping it in a degraded
    /// profile — see [`crate::Cluster::apply_fault_plan`]).
    pub fn clone_device(&self) -> BoxedDevice {
        self.device.clone_box()
    }

    /// Replace the backing device, keeping queue state and byte counters.
    pub fn set_device(&mut self, device: BoxedDevice) {
        self.device = device;
    }

    /// Clear queue state and device state (fresh measurement window).
    pub fn reset(&mut self) {
        self.queue.reset();
        self.device.reset();
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_model::{HddModel, SsdModel};

    fn hserver() -> StorageServer {
        StorageServer::new(ServerId(0), NodeId(0), Box::new(HddModel::sata2_250gb()))
    }

    #[test]
    fn serve_accumulates_busy_time_and_bytes() {
        let mut s = hserver();
        let t1 = s.serve(SimTime::ZERO, IoOp::Write, 0, 4096);
        assert!(t1 > SimTime::ZERO);
        s.serve(SimTime::ZERO, IoOp::Read, 4096, 1000);
        assert_eq!(s.bytes_written(), 4096);
        assert_eq!(s.bytes_read(), 1000);
        assert_eq!(s.served(), 2);
        assert!(s.busy_time() > SimDuration::ZERO);
    }

    #[test]
    fn queueing_orders_requests() {
        let mut s = hserver();
        let t1 = s.serve(SimTime::ZERO, IoOp::Read, 0, 1 << 20);
        let t2 = s.serve(SimTime::ZERO, IoOp::Read, 1 << 20, 1 << 20);
        assert!(t2 > t1, "second sub-request queues behind the first");
    }

    #[test]
    fn ssd_server_faster_than_hdd_server_on_random_io() {
        let mut h = hserver();
        let mut s = StorageServer::new(ServerId(1), NodeId(1), Box::new(SsdModel::pcie_100gb()));
        let th = h.serve(SimTime::ZERO, IoOp::Read, 1 << 30, 64 << 10);
        let ts = s.serve(SimTime::ZERO, IoOp::Read, 1 << 30, 64 << 10);
        assert!(th.as_nanos() > 5 * ts.as_nanos());
        assert_eq!(h.kind(), DeviceKind::Hdd);
        assert_eq!(s.kind(), DeviceKind::Ssd);
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut s = hserver();
        s.serve(SimTime::ZERO, IoOp::Write, 0, 4096);
        s.reset();
        assert_eq!(s.busy_time(), SimDuration::ZERO);
        assert_eq!(s.bytes_written(), 0);
        assert_eq!(s.served(), 0);
    }
}
