//! Redundancy-aware sub-request expansion.
//!
//! [`RedundancyState::expand`] turns one logical extent into the physical
//! sub-requests its layout's [`Placement`] implies, consulting per-server
//! health so every sub-request targets a *live* source:
//!
//! * `Striped` delegates verbatim to [`LayoutSpec::map_extent_into`] —
//!   the historical single-copy path, bit-identical to pre-redundancy
//!   replays.
//! * `Replicated(k)` writes every stripe unit to its home segment plus
//!   `k − 1` follower segments; reads pick the fastest live copy
//!   (primary preferred at equal speed), so a lost or slow server is
//!   dodged instead of timing the request out.
//! * `ErasureCoded(k, m)` writes each data unit plus the `m` parity
//!   units of its group (delta-parity: one parity write per touched
//!   group, sized to the widest touched run); a read whose home server
//!   is lost becomes `k` reconstruction reads from the surviving group
//!   members plus a client-side decode penalty.
//!
//! Health is sampled **once per run** from the fault plan: permanent
//! losses are known cluster-wide (the MDS health map) before the first
//! request, which keeps source selection time-independent — a property
//! the sharded core's lane-parallel passes rely on. Both replay cores
//! call `expand` from their serial front section, so the emitted
//! sub-request order (and therefore every FIFO arrival order) is shared
//! and the serial/sharded bit-identity invariant survives.
//!
//! Redundant objects (replica copies, parity units) live in the second
//! half of the file's 6 GiB device slot, [`REDUNDANCY_REGION`] bytes in.
//! Distinct source segments may collide there; in a timing simulator a
//! collision just means two redundant objects share a block range, which
//! costs exactly as much as being adjacent, so the scheme stays simple.

use crate::fault::FaultRuntime;
use crate::layout::{LayoutSpec, Placement, ServerId, SubExtent};
use simrt::{ServerHealth, SimDuration};
use storage_model::IoOp;

/// Device-space offset of the redundancy region within a file's 6 GiB
/// device slot: primary stripes occupy `[0, 3 GiB)`, replica copies and
/// parity units `[3 GiB, 6 GiB)`. The split keeps redundant writes from
/// aliasing primary data while preserving the per-file seek locality the
/// slot scheme models.
pub const REDUNDANCY_REGION: u64 = 3 << 30;

/// Client-side erasure-decode throughput in bytes/second. A degraded
/// read pays `k · reconstructed_bytes / DECODE_BW` of extra latency on
/// top of its `k` reconstruction reads — XOR/RS decode is fast but not
/// free, and charging it keeps EC honest against plain replication.
const DECODE_BW: f64 = 2.0e9;

/// Extra client latency for decoding `bytes` of reconstruction input.
pub(crate) fn decode_penalty(bytes: u64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / DECODE_BW)
}

fn bump(v: &mut Vec<u64>, idx: usize, by: u64) {
    if idx >= v.len() {
        v.resize(idx + 1, 0);
    }
    v[idx] += by;
}

/// Per-run redundancy machinery owned by a replay scratch: the sampled
/// health map, degraded-mode counters, and internal expansion buffers.
/// Reset once per run; allocation-free at steady state.
#[derive(Debug, Clone, Default)]
pub struct RedundancyState {
    /// Health sampled at run start, indexed by server id.
    health: Vec<ServerHealth>,
    /// Degraded (reconstruction) reads, charged to the *lost* server.
    degraded_reads: Vec<u64>,
    /// Bytes reconstructed in degraded reads, charged to the lost server.
    reconstructed_bytes: Vec<u64>,
    /// Reads served by a non-primary replica, charged to the avoided
    /// primary server.
    failovers: Vec<u64>,
    /// Internal buffer for the primary (striped) decomposition.
    base: Vec<SubExtent>,
    /// Degraded-read candidate buffer: `(speed bits, server, offset)`.
    cand: Vec<(u64, usize, u64)>,
}

impl RedundancyState {
    /// Sample health for `n_servers` from the fault runtime (nominal when
    /// running fault-free) and zero the counters. Called once per run.
    pub(crate) fn reset(&mut self, n_servers: usize, faults: Option<&FaultRuntime>) {
        self.health.clear();
        self.health.extend(
            (0..n_servers).map(|i| faults.map_or_else(ServerHealth::nominal, |rt| rt.server_health(i))),
        );
        self.degraded_reads.clear();
        self.degraded_reads.resize(n_servers, 0);
        self.reconstructed_bytes.clear();
        self.reconstructed_bytes.resize(n_servers, 0);
        self.failovers.clear();
        self.failovers.resize(n_servers, 0);
    }

    /// `(degraded reads, reconstructed bytes, failovers)` for `server`.
    pub(crate) fn server_counters(&self, server: usize) -> (u64, u64, u64) {
        (
            self.degraded_reads.get(server).copied().unwrap_or(0),
            self.reconstructed_bytes.get(server).copied().unwrap_or(0),
            self.failovers.get(server).copied().unwrap_or(0),
        )
    }

    fn alive(&self, server: ServerId) -> bool {
        self.health.get(server.0).is_none_or(|h| !h.down)
    }

    /// Speed factor as orderable bits (factors are positive, so the IEEE
    /// bit pattern orders them like the floats).
    fn speed_bits(&self, server: ServerId) -> u64 {
        self.health.get(server.0).map_or(1.0f64, |h| h.speed_factor).to_bits()
    }

    /// Expand `[offset, offset + len)` of a file laid out by `layout`
    /// into physical sub-requests appended to `out` (cleared first), in
    /// deterministic file order. Returns the number of bytes the client
    /// must feed through erasure decode for this extent (0 unless a
    /// degraded EC read happened).
    pub(crate) fn expand(
        &mut self,
        layout: &LayoutSpec,
        offset: u64,
        len: u64,
        op: IoOp,
        out: &mut Vec<SubExtent>,
    ) -> u64 {
        match layout.placement() {
            // Verbatim historical path: no counters, no extra work.
            Placement::Striped => {
                layout.map_extent_into(offset, len, out);
                0
            }
            Placement::Replicated(k) => {
                self.expand_replicated(layout, offset, len, op, k, out);
                0
            }
            Placement::ErasureCoded(k, m) => self.expand_ec(layout, offset, len, op, k, m, out),
        }
    }

    fn expand_replicated(
        &mut self,
        layout: &LayoutSpec,
        offset: u64,
        len: u64,
        op: IoOp,
        k: usize,
        out: &mut Vec<SubExtent>,
    ) {
        let mut base = std::mem::take(&mut self.base);
        layout.map_extent_into(offset, len, &mut base);
        out.clear();
        let n = layout.segment_count();
        for piece in &base {
            let seg = layout
                .position_of(piece.server)
                .expect("map_extent piece names a layout segment");
            match op {
                IoOp::Write => {
                    // All live copies are written; a dead follower is
                    // simply skipped (it will be rebuilt from a survivor).
                    let mut wrote = false;
                    for r in 0..k {
                        let target = layout.server_at((seg + r) % n);
                        if !self.alive(target) {
                            continue;
                        }
                        let server_offset = if r == 0 {
                            piece.server_offset
                        } else {
                            REDUNDANCY_REGION + piece.server_offset
                        };
                        out.push(SubExtent { server: target, server_offset, len: piece.len });
                        wrote = true;
                    }
                    if !wrote {
                        // Every copy lost: fall back to the primary so the
                        // request keeps the historical timeout semantics.
                        out.push(*piece);
                    }
                }
                IoOp::Read => {
                    // Fastest live copy, primary preferred at equal speed
                    // (so a healthy cluster reads exactly like striping).
                    let mut best: Option<(u64, bool, usize)> = None;
                    for r in 0..k {
                        let target = layout.server_at((seg + r) % n);
                        if !self.alive(target) {
                            continue;
                        }
                        let key = (self.speed_bits(target), r != 0, target.0);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                    match best {
                        // Primary wins (or nothing is alive): historical path.
                        None | Some((_, false, _)) => out.push(*piece),
                        Some((_, true, srv)) => {
                            out.push(SubExtent {
                                server: ServerId(srv),
                                server_offset: REDUNDANCY_REGION + piece.server_offset,
                                len: piece.len,
                            });
                            bump(&mut self.failovers, piece.server.0, 1);
                        }
                    }
                }
            }
        }
        self.base = base;
    }

    /// Parity segment of group `g`, parity index `p`: the `m` segments
    /// immediately after the group's `k` data units, rotating with `g`.
    fn parity_segment(g: u64, p: usize, k: usize, n: usize) -> usize {
        ((g * k as u64 + k as u64 + p as u64) % n as u64) as usize
    }

    fn push_parities(
        &self,
        layout: &LayoutSpec,
        g: u64,
        widest: u64,
        k: usize,
        m: usize,
        out: &mut Vec<SubExtent>,
    ) {
        let n = layout.segment_count();
        let parity_unit = layout.max_stripe();
        for p in 0..m {
            let server = layout.server_at(Self::parity_segment(g, p, k, n));
            if !self.alive(server) {
                continue;
            }
            out.push(SubExtent {
                server,
                server_offset: REDUNDANCY_REGION + g * parity_unit,
                len: widest,
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_ec(
        &mut self,
        layout: &LayoutSpec,
        offset: u64,
        len: u64,
        op: IoOp,
        k: usize,
        m: usize,
        out: &mut Vec<SubExtent>,
    ) -> u64 {
        let mut base = std::mem::take(&mut self.base);
        layout.map_extent_into(offset, len, &mut base);
        out.clear();
        let n = layout.segment_count();
        let parity_unit = layout.max_stripe();
        let mut decode_bytes = 0u64;
        // Delta-parity accumulator: `(group, widest touched run)` of the
        // group currently being walked. Units are numbered in file order,
        // so groups appear consecutively and one pending slot suffices.
        let mut pending: Option<(u64, u64)> = None;
        for piece in &base {
            let seg = layout
                .position_of(piece.server)
                .expect("map_extent piece names a layout segment");
            let stripe = layout.stripe_at(seg);
            let round_idx = piece.server_offset / stripe;
            let within = piece.server_offset % stripe;
            let unit = round_idx * n as u64 + seg as u64;
            let group = unit / k as u64;
            match op {
                IoOp::Write => {
                    if self.alive(piece.server) {
                        out.push(*piece);
                    }
                    // else: degraded write — the data unit's server is
                    // lost; parity still captures the update, and the
                    // rebuild reconstructs the unit onto the spare.
                    pending = match pending {
                        Some((g, w)) if g == group => Some((g, w.max(piece.len))),
                        Some((g, w)) => {
                            self.push_parities(layout, g, w, k, m, out);
                            Some((group, piece.len))
                        }
                        None => Some((group, piece.len)),
                    };
                }
                IoOp::Read => {
                    if self.alive(piece.server) {
                        out.push(*piece);
                        continue;
                    }
                    // Degraded read: any `k` live members of the group
                    // (sibling data units or parities) reconstruct the
                    // lost range. Offsets are clamped to the same
                    // `[within, within + len)` window of each unit.
                    self.cand.clear();
                    for j in 0..k as u64 {
                        let sibling = group * k as u64 + j;
                        if sibling == unit {
                            continue;
                        }
                        let sib_seg = (sibling % n as u64) as usize;
                        let server = layout.server_at(sib_seg);
                        if !self.alive(server) {
                            continue;
                        }
                        let off = (sibling / n as u64) * layout.stripe_at(sib_seg) + within;
                        self.cand.push((self.speed_bits(server), server.0, off));
                    }
                    for p in 0..m {
                        let server = layout.server_at(Self::parity_segment(group, p, k, n));
                        if !self.alive(server) {
                            continue;
                        }
                        let off = REDUNDANCY_REGION + group * parity_unit + within;
                        self.cand.push((self.speed_bits(server), server.0, off));
                    }
                    if self.cand.len() < k {
                        // Beyond the code's loss tolerance: keep the
                        // historical dead-server timeout semantics.
                        out.push(*piece);
                        continue;
                    }
                    self.cand.sort_unstable();
                    for &(_, srv, off) in self.cand.iter().take(k) {
                        out.push(SubExtent {
                            server: ServerId(srv),
                            server_offset: off,
                            len: piece.len,
                        });
                    }
                    bump(&mut self.degraded_reads, piece.server.0, 1);
                    bump(&mut self.reconstructed_bytes, piece.server.0, piece.len);
                    decode_bytes += piece.len * k as u64;
                }
            }
        }
        if op == IoOp::Write {
            if let Some((g, w)) = pending {
                self.push_parities(layout, g, w, k, m, out);
            }
        }
        self.base = base;
        decode_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutSpec;
    use simrt::FaultPlan;

    fn ids(v: std::ops::Range<usize>) -> Vec<ServerId> {
        v.map(ServerId).collect()
    }

    fn state(n: usize, plan: Option<&FaultPlan>) -> RedundancyState {
        let mut s = RedundancyState::default();
        match plan {
            None => s.reset(n, None),
            Some(p) => {
                let rt = FaultRuntime::new(p, n);
                s.reset(n, Some(&rt));
            }
        }
        s
    }

    #[test]
    fn striped_expansion_is_map_extent_verbatim() {
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10);
        let mut s = state(4, None);
        let mut out = Vec::new();
        let dec = s.expand(&l, 7 << 10, 200 << 10, IoOp::Read, &mut out);
        assert_eq!(dec, 0);
        assert_eq!(out, l.map_extent(7 << 10, 200 << 10));
    }

    #[test]
    fn healthy_replicated_reads_match_striped() {
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10)
            .with_placement(Placement::Replicated(3));
        let mut s = state(4, None);
        let mut out = Vec::new();
        s.expand(&l, 0, 256 << 10, IoOp::Read, &mut out);
        assert_eq!(out, l.map_extent(0, 256 << 10), "primary copies serve healthy reads");
        assert_eq!(s.server_counters(0), (0, 0, 0));
    }

    #[test]
    fn replicated_writes_fan_out_k_fold() {
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10)
            .with_placement(Placement::Replicated(3));
        let mut s = state(4, None);
        let mut out = Vec::new();
        s.expand(&l, 0, 256 << 10, IoOp::Write, &mut out);
        // 4 stripe units × 3 copies.
        assert_eq!(out.len(), 12);
        let total: u64 = out.iter().map(|x| x.len).sum();
        assert_eq!(total, 3 * (256 << 10));
        // Copy r of unit homed on segment i lands on segment (i + r) % n,
        // shifted into the redundancy region.
        assert_eq!(out[0], SubExtent { server: ServerId(0), server_offset: 0, len: 64 << 10 });
        assert_eq!(
            out[1],
            SubExtent { server: ServerId(1), server_offset: REDUNDANCY_REGION, len: 64 << 10 }
        );
        assert_eq!(
            out[2],
            SubExtent { server: ServerId(2), server_offset: REDUNDANCY_REGION, len: 64 << 10 }
        );
    }

    #[test]
    fn lost_primary_fails_over_to_a_replica() {
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10)
            .with_placement(Placement::Replicated(2));
        let plan = FaultPlan::none().down(1, 0.0);
        let mut s = state(4, Some(&plan));
        let mut out = Vec::new();
        // Unit on segment 1 (offset 64K) is homed on the dead server.
        s.expand(&l, 64 << 10, 64 << 10, IoOp::Read, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].server, ServerId(2), "copy 1 of segment 1 lives on segment 2");
        assert_eq!(out[0].server_offset, REDUNDANCY_REGION);
        assert_eq!(s.server_counters(1), (0, 0, 1), "failover charged to the lost primary");
        // Writes skip the dead copy but still write the live one.
        s.expand(&l, 64 << 10, 64 << 10, IoOp::Write, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].server, ServerId(2));
    }

    #[test]
    fn replica_reads_prefer_faster_servers() {
        // Primary alive but 4× slowed; replica nominal → replica wins.
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10)
            .with_placement(Placement::Replicated(2));
        let plan = FaultPlan::none().slow_server(0, 4.0);
        let mut s = state(4, Some(&plan));
        let mut out = Vec::new();
        s.expand(&l, 0, 64 << 10, IoOp::Read, &mut out);
        assert_eq!(out[0].server, ServerId(1), "nominal replica beats slowed primary");
        assert_eq!(s.server_counters(0).2, 1);
    }

    #[test]
    fn all_copies_lost_keeps_timeout_semantics() {
        let l = LayoutSpec::fixed(&ids(0..4), 64 << 10)
            .with_placement(Placement::Replicated(2));
        let plan = FaultPlan::none().down(0, 0.0).down(1, 0.0);
        let mut s = state(4, Some(&plan));
        let mut out = Vec::new();
        s.expand(&l, 0, 64 << 10, IoOp::Read, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].server, ServerId(0), "falls back to the (dead) primary");
        s.expand(&l, 0, 64 << 10, IoOp::Write, &mut out);
        assert_eq!(out[0].server, ServerId(0));
    }

    #[test]
    fn ec_writes_add_parity_per_group() {
        let l = LayoutSpec::fixed(&ids(0..8), 64 << 10)
            .with_placement(Placement::ErasureCoded(4, 2));
        let mut s = state(8, None);
        let mut out = Vec::new();
        // One full group: units 0..4 on segments 0..4.
        let dec = s.expand(&l, 0, 256 << 10, IoOp::Write, &mut out);
        assert_eq!(dec, 0);
        assert_eq!(out.len(), 6, "4 data + 2 parity");
        // Group 0's parities live on segments 4 and 5.
        assert_eq!(out[4].server, ServerId(4));
        assert_eq!(out[5].server, ServerId(5));
        assert_eq!(out[4].server_offset, REDUNDANCY_REGION);
        assert_eq!(out[4].len, 64 << 10);
        // Group 1 (units 4..8) parities rotate to segments (8+0)%8, (8+1)%8.
        s.expand(&l, 256 << 10, 256 << 10, IoOp::Write, &mut out);
        let parities: Vec<_> = out.iter().filter(|x| x.server_offset >= REDUNDANCY_REGION).collect();
        assert_eq!(parities.len(), 2);
        assert_eq!(parities[0].server, ServerId(0));
        assert_eq!(parities[1].server, ServerId(1));
        assert_eq!(parities[0].server_offset, REDUNDANCY_REGION + (64 << 10));
    }

    #[test]
    fn ec_degraded_read_reconstructs_from_k_sources() {
        let l = LayoutSpec::fixed(&ids(0..8), 64 << 10)
            .with_placement(Placement::ErasureCoded(4, 2));
        let plan = FaultPlan::none().down(2, 0.0);
        let mut s = state(8, Some(&plan));
        let mut out = Vec::new();
        // Unit 2 (segment 2) is lost: reconstruct from 4 of {0,1,3,parity4,parity5}.
        let dec = s.expand(&l, 128 << 10, 64 << 10, IoOp::Read, &mut out);
        assert_eq!(out.len(), 4, "k reconstruction reads");
        assert!(out.iter().all(|x| x.server != ServerId(2)), "no read hits the lost server");
        assert!(out.iter().all(|x| x.len == 64 << 10));
        assert_eq!(dec, 4 * (64 << 10), "decode over k unit-lengths");
        assert_eq!(s.server_counters(2), (1, 64 << 10, 0));
    }

    #[test]
    fn ec_beyond_tolerance_keeps_timeout_semantics() {
        let l = LayoutSpec::fixed(&ids(0..6), 64 << 10)
            .with_placement(Placement::ErasureCoded(4, 2));
        // Three losses exceed m = 2: group 0 has only 3 live members.
        let plan = FaultPlan::none().down(0, 0.0).down(1, 0.0).down(4, 0.0);
        let mut s = state(6, Some(&plan));
        let mut out = Vec::new();
        let dec = s.expand(&l, 0, 64 << 10, IoOp::Read, &mut out);
        assert_eq!(dec, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].server, ServerId(0), "unrecoverable read falls through to time out");
    }

    #[test]
    fn ec_handles_hybrid_stripe_sizes() {
        // Non-uniform MHA-style layout: parity units are max_stripe wide.
        let l = LayoutSpec::hybrid(&ids(0..6), 32 << 10, &ids(6..8), 96 << 10)
            .with_placement(Placement::ErasureCoded(4, 2));
        let mut s = state(8, None);
        let mut out = Vec::new();
        s.expand(&l, 0, l.round_size(), IoOp::Write, &mut out);
        let data_bytes: u64 =
            out.iter().filter(|x| x.server_offset < REDUNDANCY_REGION).map(|x| x.len).sum();
        assert_eq!(data_bytes, l.round_size(), "every data byte lands once");
        let parities: Vec<_> = out.iter().filter(|x| x.server_offset >= REDUNDANCY_REGION).collect();
        assert_eq!(parities.len(), 4, "8 units = 2 groups × 2 parities");
        // Degraded read of a wide (96K) unit on a lost SServer.
        let plan = FaultPlan::none().down(6, 0.0);
        let mut s = state(8, Some(&plan));
        let pos = 6 * (32 << 10); // start of segment 6's unit in round 0
        let dec = s.expand(&l, pos, 96 << 10, IoOp::Read, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|x| x.server != ServerId(6)));
        assert_eq!(dec, 4 * (96 << 10));
    }

    #[test]
    fn expansion_is_deterministic() {
        let l = LayoutSpec::fixed(&ids(0..8), 64 << 10)
            .with_placement(Placement::ErasureCoded(4, 2));
        let plan = FaultPlan::none().down(3, 0.0).slow_server(5, 2.0);
        let mut a = state(8, Some(&plan));
        let mut b = state(8, Some(&plan));
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        for (off, len, op) in
            [(0u64, 512u64 << 10, IoOp::Read), (7 << 10, 200 << 10, IoOp::Write), (128 << 10, 64 << 10, IoOp::Read)]
        {
            let da = a.expand(&l, off, len, op, &mut oa);
            let db = b.expand(&l, off, len, op, &mut ob);
            assert_eq!(oa, ob);
            assert_eq!(da, db);
        }
    }
}
