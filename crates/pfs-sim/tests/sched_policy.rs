//! Scheduler-policy property suite: `SchedPolicy::SeededShuffle` must be
//! bit-identical to the pre-scheduler replay order, a fault-free
//! `StragglerAware` session must degenerate to exactly that schedule,
//! and the straggler-aware path must stay deterministic and
//! serial/sharded-identical once it actually defers requests.

use iotrace::gen::ior::{generate as gen_ior, IorConfig};
use iotrace::{FileId, Rank, Trace, TraceRecord};
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, FaultPlan, IdentityResolver, LayoutSpec, PhysExtent,
    ReplayError, ReplayInput, ReplayReport, ReplaySession, Resolution, Resolver, SchedPolicy,
    ServerId,
};
use rand::seq::SliceRandom;
use simrt::{SeedSeq, SimDuration, SimTime};
use storage_model::IoOp;

/// Resolver that records the offset of every record it resolves, in
/// dispatch order, then resolves like the identity.
#[derive(Default)]
struct ProbeResolver {
    seen: Vec<u64>,
}

impl Resolver for ProbeResolver {
    fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
        self.seen.push(rec.offset);
        IdentityResolver.resolve(rec)
    }

    fn resolve_into(&mut self, rec: &TraceRecord, out: &mut Vec<PhysExtent>) -> SimDuration {
        self.seen.push(rec.offset);
        IdentityResolver.resolve_into(rec, out)
    }
}

/// A trace whose record offsets are globally unique, so the dispatch
/// order is observable through a [`ProbeResolver`].
fn tagged_trace(phases: u32, per_phase: u32) -> Trace {
    let mut records = Vec::new();
    for phase in 0..phases {
        let ts = SimTime::ZERO + SimDuration::from_millis(10) * u64::from(phase);
        for i in 0..per_phase {
            let tag = u64::from(phase * per_phase + i);
            records.push(TraceRecord {
                pid: 100 + i,
                rank: Rank(i),
                file: FileId(0),
                op: IoOp::Write,
                offset: tag * (256 << 10),
                len: 64 << 10,
                ts,
                phase,
            });
        }
    }
    Trace::from_records(records)
}

/// The pre-scheduler replay order, derived from first principles: group
/// record indices by phase, then shuffle each group with the fixed
/// replay seed. Any change to the default dispatch order breaks this.
fn expected_offsets(trace: &Trace) -> Vec<u64> {
    let records = trace.records();
    let mut order: Vec<usize> = (0..records.len()).collect();
    let mut spans: Vec<(u32, usize, usize)> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        match spans.last_mut() {
            Some((p, _, end)) if *p == rec.phase => *end += 1,
            _ => spans.push((rec.phase, i, i + 1)),
        }
    }
    let seed = SeedSeq::new(0x5EED_0F0F);
    for &(phase, start, end) in &spans {
        let mut rng = seed.derive_idx("phase", u64::from(phase)).rng();
        order[start..end].shuffle(&mut rng);
    }
    order.into_iter().map(|i| records[i].offset).collect()
}

fn dispatch_order(trace: &Trace, policy: SchedPolicy) -> Vec<u64> {
    let mut cluster = Cluster::new(ClusterConfig::paper_default());
    let mut probe = ProbeResolver::default();
    ReplaySession::new()
        .with_sched_policy(policy)
        .run(ReplayInput::trace(&mut cluster, trace, &mut probe), CoreSel::Serial)
        .unwrap();
    probe.seen
}

/// Every observable that must agree for two runs to count as identical.
fn fingerprint(r: &ReplayReport) -> (u64, u64, u64, u64, u64, u64, u64, u64, Vec<u64>) {
    (
        r.makespan.as_nanos(),
        r.total_bytes,
        r.retries,
        r.timeouts,
        r.deferred_requests,
        r.reorder_depth,
        r.request_latency.sum().to_bits(),
        r.request_latency.max().to_bits(),
        r.per_server.iter().map(|s| s.busy.as_nanos()).collect(),
    )
}

#[test]
fn seeded_shuffle_dispatches_in_the_pre_scheduler_order() {
    let trace = tagged_trace(4, 9);
    assert_eq!(
        dispatch_order(&trace, SchedPolicy::SeededShuffle),
        expected_offsets(&trace),
        "default dispatch must be the historical per-phase seeded shuffle"
    );
}

#[test]
fn fault_free_straggler_aware_dispatches_the_same_order() {
    // No fault → no suspect → the adaptive policy replays the blind
    // shuffle exactly, record for record.
    let trace = tagged_trace(4, 9);
    assert_eq!(
        dispatch_order(&trace, SchedPolicy::straggler_aware()),
        expected_offsets(&trace),
    );
}

#[test]
fn fault_free_straggler_aware_report_is_bit_identical_to_seeded_shuffle() {
    let mut cfg = IorConfig::default_run(IoOp::Write);
    cfg.reqs_per_proc = 6;
    cfg.proc_mix = vec![8];
    let trace = gen_ior(&cfg);
    let run = |policy: SchedPolicy, core: CoreSel| {
        let mut cluster = Cluster::new(ClusterConfig::paper_default());
        ReplaySession::new()
            .with_sched_policy(policy)
            .run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), core)
            .unwrap()
    };
    for core in [CoreSel::Serial, CoreSel::Sharded] {
        let base = run(SchedPolicy::SeededShuffle, core);
        let aware = run(SchedPolicy::straggler_aware(), core);
        assert_eq!(fingerprint(&base), fingerprint(&aware), "{core:?}");
        assert_eq!(aware.deferred_requests, 0);
        assert_eq!(aware.reorder_depth, 0);
    }
}

/// Split the shared file namespace onto disjoint server halves: file 0
/// lives on the first four servers, file 1 on the next four. Suspecting
/// server 0 then defers only file-0 records, so the reorder pass has
/// clean file-1 records to move ahead. (Targeting is file-granular — on
/// a single all-server file every record counts as suspect-targeted and
/// the delay ramp is already sorted.)
fn split_layouts(cluster: &mut Cluster) {
    let lo: Vec<ServerId> = (0..4).map(ServerId).collect();
    let hi: Vec<ServerId> = (4..8).map(ServerId).collect();
    cluster.mds_mut().set_layout(FileId(0), LayoutSpec::fixed(&lo, 64 << 10));
    cluster.mds_mut().set_layout(FileId(1), LayoutSpec::fixed(&hi, 64 << 10));
}

/// A long outage placed a third of the way into the fault-free run: the
/// stricken server builds a healthy latency baseline first, then every
/// request it receives observes a latency orders of magnitude above it —
/// the EWMA flags it within one phase. (An outage from t = 0 would *not*
/// trip the self-relative trigger: the server's own baseline would
/// already be the fault-inflated latency.)
fn outage_plan(trace: &Trace) -> FaultPlan {
    let mut cluster = Cluster::new(ClusterConfig::paper_default());
    split_layouts(&mut cluster);
    let healthy = ReplaySession::new()
        .run(ReplayInput::trace(&mut cluster, trace, &mut IdentityResolver), CoreSel::Serial)
        .unwrap();
    FaultPlan::none().outage(0, healthy.makespan.as_secs_f64() / 3.0, 30.0)
}

/// Like [`tagged_trace`] but alternating records between files 0 and 1.
fn two_file_trace(phases: u32, per_phase: u32) -> Trace {
    let mut records = Vec::new();
    for phase in 0..phases {
        let ts = SimTime::ZERO + SimDuration::from_millis(10) * u64::from(phase);
        for i in 0..per_phase {
            let tag = u64::from(phase * per_phase + i);
            records.push(TraceRecord {
                pid: 100 + i,
                rank: Rank(i),
                file: FileId(i % 2),
                op: IoOp::Write,
                offset: tag * (256 << 10),
                len: 64 << 10,
                ts,
                phase,
            });
        }
    }
    Trace::from_records(records)
}

#[test]
fn straggler_aware_defers_under_a_heavy_transient_fault() {
    let trace = two_file_trace(12, 16);
    let plan = outage_plan(&trace);
    let run = |core: CoreSel| {
        let mut cluster = Cluster::new(ClusterConfig::paper_default());
        split_layouts(&mut cluster);
        ReplaySession::new()
            .with_fault_plan(plan.clone())
            .with_sched_policy(SchedPolicy::straggler_aware())
            .run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), core)
            .unwrap()
    };
    let serial = run(CoreSel::Serial);
    let sharded = run(CoreSel::Sharded);
    assert!(serial.deferred_requests > 0, "outage must trip the scheduler");
    assert!(serial.reorder_depth > 0, "deferred records must be reordered");
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&sharded),
        "cores must agree while the scheduler is active"
    );
}

#[test]
fn straggler_aware_reports_are_deterministic_across_reruns() {
    let trace = tagged_trace(10, 12);
    let plan = outage_plan(&trace);
    let run_fresh = || {
        let mut cluster = Cluster::new(ClusterConfig::paper_default());
        ReplaySession::new()
            .with_fault_plan(plan.clone())
            .with_sched_policy(SchedPolicy::straggler_aware())
            .run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), CoreSel::Serial)
            .unwrap()
    };
    let a = run_fresh();
    let b = run_fresh();
    assert_eq!(fingerprint(&a), fingerprint(&b), "fresh sessions");

    // A warm session must not leak EWMA state between runs: back-to-back
    // runs of the same input stay identical to a cold one.
    let mut warm = ReplaySession::new()
        .with_fault_plan(plan)
        .with_sched_policy(SchedPolicy::straggler_aware());
    for round in 0..2 {
        let mut cluster = Cluster::new(ClusterConfig::paper_default());
        let r = warm
            .run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), CoreSel::Serial)
            .unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&r), "warm round {round}");
    }
}

#[test]
fn invalid_policies_are_rejected_at_run() {
    let trace = tagged_trace(1, 2);
    for bad in [
        SchedPolicy::StragglerAware { alpha: 0.0, inflight_cap: 4, reorder_window: 64 },
        SchedPolicy::StragglerAware { alpha: 0.3, inflight_cap: 0, reorder_window: 64 },
        SchedPolicy::StragglerAware { alpha: 0.3, inflight_cap: 4, reorder_window: 0 },
    ] {
        let mut cluster = Cluster::new(ClusterConfig::paper_default());
        let err = ReplaySession::new()
            .with_sched_policy(bad)
            .run(
                ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver),
                CoreSel::Serial,
            )
            .unwrap_err();
        assert!(
            matches!(err, ReplayError::InvalidSchedPolicy(_)),
            "{bad:?} must be rejected, got {err:?}"
        );
    }
}
