//! Property-style equivalence suite: the sharded per-server-lane core
//! must be bit-for-bit identical to the serial replay loop — makespan,
//! per-server statistics, fault accounting and the request-latency
//! stream — across randomized traces, cluster shapes, layout schemes,
//! device-slot counts and fault plans.
//!
//! Cases are generated from a fixed seed (the same cases every run, in
//! every environment), which keeps failures reproducible: a failing
//! trial prints its number, and re-running the test replays it exactly.

use iotrace::gen::{ior, skewed};
use iotrace::{FileId, Rank, RecordBatch, Trace, TraceRecord};
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, FaultPlan, IdentityResolver, LayoutSpec, Placement,
    ReplayInput, ReplayReport, ReplaySession, SchedPolicy, ServerId,
};
use rand::rngs::SmallRng;
use rand::Rng;
use simrt::{SeedSeq, SimDuration, SimTime};
use storage_model::IoOp;

/// Compare every observable of two reports bit for bit.
fn assert_identical(serial: &ReplayReport, sharded: &ReplayReport, trial: usize) {
    assert_eq!(serial.makespan, sharded.makespan, "trial {trial}: makespan");
    assert_eq!(serial.total_bytes, sharded.total_bytes, "trial {trial}");
    assert_eq!(serial.read_bytes, sharded.read_bytes, "trial {trial}");
    assert_eq!(serial.write_bytes, sharded.write_bytes, "trial {trial}");
    assert_eq!(serial.requests, sharded.requests, "trial {trial}");
    assert_eq!(serial.phases, sharded.phases, "trial {trial}");
    assert_eq!(serial.resolve_overhead, sharded.resolve_overhead, "trial {trial}");
    assert_eq!(serial.mds_lookups, sharded.mds_lookups, "trial {trial}");
    assert_eq!(serial.retries, sharded.retries, "trial {trial}: retries");
    assert_eq!(serial.timeouts, sharded.timeouts, "trial {trial}: timeouts");
    assert_eq!(serial.fault_wait, sharded.fault_wait, "trial {trial}: fault_wait");
    assert_eq!(serial.degraded_reads, sharded.degraded_reads, "trial {trial}: degraded");
    assert_eq!(
        serial.reconstructed_bytes, sharded.reconstructed_bytes,
        "trial {trial}: reconstructed"
    );
    assert_eq!(serial.failovers, sharded.failovers, "trial {trial}: failovers");
    assert_eq!(
        serial.deferred_requests, sharded.deferred_requests,
        "trial {trial}: deferred"
    );
    assert_eq!(serial.reorder_depth, sharded.reorder_depth, "trial {trial}: reorder depth");
    assert_eq!(
        serial.request_latency.sum().to_bits(),
        sharded.request_latency.sum().to_bits(),
        "trial {trial}: latency sum"
    );
    assert_eq!(
        serial.request_latency.max().to_bits(),
        sharded.request_latency.max().to_bits(),
        "trial {trial}: latency max"
    );
    assert_eq!(serial.per_server.len(), sharded.per_server.len());
    for (a, b) in serial.per_server.iter().zip(sharded.per_server.iter()) {
        let s = a.server;
        assert_eq!(a.busy, b.busy, "trial {trial}: server {s} busy");
        assert_eq!(a.bytes_read, b.bytes_read, "trial {trial}: server {s}");
        assert_eq!(a.bytes_written, b.bytes_written, "trial {trial}: server {s}");
        assert_eq!(a.served, b.served, "trial {trial}: server {s} served");
        assert_eq!(a.retries, b.retries, "trial {trial}: server {s} retries");
        assert_eq!(a.timeouts, b.timeouts, "trial {trial}: server {s} timeouts");
        assert_eq!(a.down, b.down, "trial {trial}: server {s} down");
        assert_eq!(a.degraded_reads, b.degraded_reads, "trial {trial}: server {s} degraded");
        assert_eq!(a.reconstructed_bytes, b.reconstructed_bytes, "trial {trial}: server {s}");
        assert_eq!(a.failovers, b.failovers, "trial {trial}: server {s} failovers");
    }
}

/// A random barrier-phased trace: 1–6 phases, 1–12 records each, ranks,
/// files, ops, offsets and sizes all drawn at random.
fn random_trace(rng: &mut SmallRng) -> Trace {
    let phases = rng.gen_range(1..=6u32);
    let mut records = Vec::new();
    for phase in 0..phases {
        let ts = SimTime::ZERO + SimDuration::from_millis(10) * u64::from(phase);
        for _ in 0..rng.gen_range(1..=12) {
            let len = rng.gen_range(1..=256u64) * 4096;
            records.push(TraceRecord {
                pid: rng.gen_range(0..1000),
                rank: Rank(rng.gen_range(0..16)),
                file: FileId(rng.gen_range(0..6)),
                op: if rng.gen_bool(0.5) { IoOp::Write } else { IoOp::Read },
                offset: rng.gen_range(0..4096u64) * 4096,
                len,
                ts,
                phase,
            });
        }
    }
    Trace::from_records(records)
}

/// A random cluster: 1–6 HServers, 1–4 SServers, 2–8 clients, and a
/// device-slot count from the extremes the satellite made configurable.
fn random_config(rng: &mut SmallRng) -> ClusterConfig {
    ClusterConfig {
        hservers: rng.gen_range(1..=6),
        sservers: rng.gen_range(1..=4),
        clients: rng.gen_range(2..=8),
        device_slots: [1u64, 8, 40, 160][rng.gen_range(0..4usize)],
        ..ClusterConfig::paper_default()
    }
}

/// Install a random layout scheme for a few files: fixed striping over
/// all servers or a hybrid H/S split, with stripes from 16 KiB to 1 MiB
/// (zero on one side of the hybrid sometimes — SServer-only placement),
/// and a randomly drawn redundancy placement wherever the layout can
/// host it (misfits — e.g. EC(4+2) on a 2-segment layout — stay striped).
fn random_layouts(rng: &mut SmallRng, cluster: &mut Cluster) {
    let h: Vec<ServerId> = cluster.hserver_ids();
    let s: Vec<ServerId> = cluster.sserver_ids();
    let all: Vec<ServerId> = h.iter().chain(s.iter()).copied().collect();
    for f in 0..rng.gen_range(0..4u32) {
        let stripe = 16u64 << (10 + rng.gen_range(0..7u32));
        let spec = match rng.gen_range(0..3) {
            0 => LayoutSpec::fixed(&all, stripe),
            1 => LayoutSpec::hybrid(&h, stripe, &s, stripe * 2),
            _ => LayoutSpec::hybrid(&h, 0, &s, stripe),
        };
        let placement = match rng.gen_range(0..4) {
            0 => Placement::Striped,
            1 => Placement::Replicated(rng.gen_range(2..=3)),
            2 => Placement::ErasureCoded(2, 1),
            _ => Placement::ErasureCoded(4, 2),
        };
        let spec = spec.clone().try_with_placement(placement).unwrap_or(spec);
        cluster.mds_mut().set_layout(FileId(f), spec);
    }
}

/// A random fault plan over `servers` servers; empty about a third of
/// the time so the fault-free path stays covered.
fn random_fault_plan(rng: &mut SmallRng, servers: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if rng.gen_bool(1.0 / 3.0) {
        return plan;
    }
    for _ in 0..rng.gen_range(1..=3) {
        let server = rng.gen_range(0..servers);
        plan = match rng.gen_range(0..4) {
            0 => plan.outage(server, rng.gen_range(0.0..0.02), rng.gen_range(0.01..0.2)),
            1 => plan.down(server, rng.gen_range(0.0..0.05)),
            2 => plan.slow_server(server, rng.gen_range(1.5..4.0)),
            _ => plan.slow_link(server, rng.gen_range(1.5..3.0)),
        };
    }
    plan
}

/// A random dispatch policy, adaptive three times out of four.
fn random_sched_policy(rng: &mut SmallRng) -> SchedPolicy {
    if rng.gen_bool(0.25) {
        SchedPolicy::SeededShuffle
    } else {
        SchedPolicy::StragglerAware {
            alpha: rng.gen_range(0.05..=1.0),
            inflight_cap: rng.gen_range(1..=8),
            reorder_window: rng.gen_range(1..=128),
        }
    }
}

#[test]
fn sharded_replay_is_bit_identical_under_random_sched_policies() {
    // The scheduler axis of the equivalence property: random traces ×
    // clusters × fault plans × dispatch policies. The straggler-aware
    // path mutates per-server EWMA state on every sub-request, so any
    // observation-order divergence between the cores shows up here.
    let mut rng = SeedSeq::new(0x5A_D0E5).derive("sched").rng();
    for trial in 0..24 {
        let trace = random_trace(&mut rng);
        let config = random_config(&mut rng);
        let plan = random_fault_plan(&mut rng, config.servers());
        let policy = random_sched_policy(&mut rng);

        let mut c1 = Cluster::new(config.clone());
        random_layouts(&mut rng.clone(), &mut c1);
        let serial = ReplaySession::new()
            .with_fault_plan(plan.clone())
            .with_sched_policy(policy)
            .run(ReplayInput::trace(&mut c1, &trace, &mut IdentityResolver), CoreSel::Serial)
            .unwrap();

        let mut c2 = Cluster::new(config);
        random_layouts(&mut rng.clone(), &mut c2);
        let sharded = ReplaySession::new()
            .with_fault_plan(plan)
            .with_sched_policy(policy)
            .run(ReplayInput::trace(&mut c2, &trace, &mut IdentityResolver), CoreSel::Sharded)
            .unwrap();

        assert_identical(&serial, &sharded, trial);
    }
}

#[test]
fn sharded_replay_is_bit_identical_to_serial_across_random_scenarios() {
    let mut rng = SeedSeq::new(0x5A_D0E5).derive("equivalence").rng();
    for trial in 0..32 {
        let trace = random_trace(&mut rng);
        let config = random_config(&mut rng);
        let plan = random_fault_plan(&mut rng, config.servers());

        let mut c1 = Cluster::new(config.clone());
        random_layouts(&mut rng.clone(), &mut c1);
        let serial = ReplaySession::new()
            .with_fault_plan(plan.clone())
            .run(ReplayInput::trace(&mut c1, &trace, &mut IdentityResolver), CoreSel::Auto)
            .unwrap();

        let mut c2 = Cluster::new(config);
        random_layouts(&mut rng.clone(), &mut c2);
        let sharded = ReplaySession::new()
            .with_fault_plan(plan)
            .run(ReplayInput::trace(&mut c2, &trace, &mut IdentityResolver), CoreSel::Sharded)
            .unwrap();

        assert_identical(&serial, &sharded, trial);
    }
}

#[test]
fn degraded_redundant_replay_is_bit_identical_and_completes() {
    // The redundancy gate: random layouts × placements × fault plans that
    // always include at least one permanent loss. Redundant layouts must
    // keep serial == sharded bit for bit while sourcing reads off
    // replicas / surviving EC shards, and a cluster whose only fault is
    // one lost server must complete every redundant request without a
    // single timeout (degraded reads instead of abandoned sub-requests).
    let mut rng = SeedSeq::new(0x5A_D0E5).derive("degraded").rng();
    for trial in 0..24 {
        let trace = random_trace(&mut rng);
        let config = random_config(&mut rng);
        let victim = rng.gen_range(0..config.servers());
        let plan = random_fault_plan(&mut rng, config.servers()).down(victim, 0.0);

        let mut c1 = Cluster::new(config.clone());
        random_layouts(&mut rng.clone(), &mut c1);
        let serial = ReplaySession::new()
            .with_fault_plan(plan.clone())
            .run(ReplayInput::trace(&mut c1, &trace, &mut IdentityResolver), CoreSel::Auto)
            .unwrap();

        let mut c2 = Cluster::new(config.clone());
        random_layouts(&mut rng.clone(), &mut c2);
        let sharded = ReplaySession::new()
            .with_fault_plan(plan)
            .run(ReplayInput::trace(&mut c2, &trace, &mut IdentityResolver), CoreSel::Sharded)
            .unwrap();

        assert_identical(&serial, &sharded, trial);

        // Completion guarantee: single permanent loss, every file on a
        // loss-tolerant layout over distinct live servers → no timeouts.
        let only_loss = FaultPlan::none().down(victim, 0.0);
        let mut c3 = Cluster::new(config);
        let all: Vec<ServerId> = c3.hserver_ids().iter().chain(c3.sserver_ids().iter()).copied().collect();
        if all.len() >= 6 {
            for f in 0..6u32 {
                let placement =
                    if f % 2 == 0 { Placement::Replicated(3) } else { Placement::ErasureCoded(4, 2) };
                let spec = LayoutSpec::fixed(&all, 64 << 10).with_placement(placement);
                c3.mds_mut().set_layout(FileId(f), spec);
            }
            let degraded = ReplaySession::new()
                .with_fault_plan(only_loss)
                .run(ReplayInput::trace(&mut c3, &trace, &mut IdentityResolver), CoreSel::Auto)
                .unwrap();
            assert_eq!(degraded.timeouts, 0, "trial {trial}: redundant replay must complete");
            assert_eq!(degraded.total_bytes, trace.total_bytes(), "trial {trial}");
        }
    }
}

#[test]
fn one_warmed_session_stays_identical_across_random_scenarios() {
    // Scratch reuse across wildly different traces and cluster shapes
    // must never leak state between runs.
    let mut rng = SeedSeq::new(0x5A_D0E5).derive("warm").rng();
    let mut session = ReplaySession::new();
    for trial in 0..16 {
        let trace = random_trace(&mut rng);
        let config = random_config(&mut rng);
        let mut c1 = Cluster::new(config.clone());
        let serial =
            ReplaySession::new().run(ReplayInput::trace(&mut c1, &trace, &mut IdentityResolver), CoreSel::Auto).unwrap();
        let mut c2 = Cluster::new(config);
        let sharded = session.run(ReplayInput::trace(&mut c2, &trace, &mut IdentityResolver), CoreSel::Sharded).unwrap();
        assert_identical(&serial, &sharded, trial);
    }
}

#[test]
fn streaming_generators_match_their_materialized_traces() {
    // Random generator configs: the phase-streamed records must equal the
    // materialized trace record for record, and replaying the stream must
    // equal replaying the trace serially.
    let mut rng = SeedSeq::new(0x5A_D0E5).derive("stream").rng();
    for trial in 0..8 {
        let mut cfg = ior::IorConfig::default_run(if rng.gen_bool(0.5) {
            IoOp::Write
        } else {
            IoOp::Read
        });
        cfg.reqs_per_proc = rng.gen_range(1..=6);
        cfg.proc_mix = vec![rng.gen_range(1..=8)];
        let trace = ior::generate(&cfg);

        let mut batch = RecordBatch::new();
        let mut src = ior::stream(&cfg);
        let mut cursor = 0;
        while iotrace::BatchSource::next_phase(&mut src, &mut batch) {
            for i in 0..batch.len() {
                assert_eq!(batch.record(i), trace.records()[cursor], "trial {trial}");
                cursor += 1;
            }
        }
        assert_eq!(cursor, trace.len(), "trial {trial}: stream covers the trace");

        let mut c1 = Cluster::new(ClusterConfig::paper_default());
        let serial =
            ReplaySession::new().run(ReplayInput::trace(&mut c1, &trace, &mut IdentityResolver), CoreSel::Auto).unwrap();
        let mut c2 = Cluster::new(ClusterConfig::paper_default());
        let streamed = ReplaySession::new()
            .run(ReplayInput::stream(&mut c2, &mut ior::stream(&cfg), &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        assert_identical(&serial, &streamed, trial);
    }
}

#[test]
fn skewed_stream_replays_identically_to_its_trace() {
    let mut cfg = skewed::SkewedConfig::default_run(IoOp::Write);
    cfg.phases = 24;
    let trace = skewed::generate(&cfg);
    let mut c1 = Cluster::new(ClusterConfig::paper_default());
    let serial = ReplaySession::new().run(ReplayInput::trace(&mut c1, &trace, &mut IdentityResolver), CoreSel::Auto).unwrap();
    let mut c2 = Cluster::new(ClusterConfig::paper_default());
    let streamed = ReplaySession::new()
        .run(ReplayInput::stream(&mut c2, &mut skewed::stream(&cfg), &mut IdentityResolver), CoreSel::Auto)
        .unwrap();
    assert_identical(&serial, &streamed, 0);
}

#[test]
fn skewed_stream_replays_identically_under_active_fault_plans() {
    // Temporal faults gate sub-request admission by simulated time, so
    // any drift between the streamed and materialized phase order would
    // surface as diverging retry/timeout accounting.
    let mut rng = SeedSeq::new(0x5A_D0E5).derive("skewed-faults").rng();
    for trial in 0..8 {
        let mut cfg = skewed::SkewedConfig::default_run(if rng.gen_bool(0.5) {
            IoOp::Write
        } else {
            IoOp::Read
        });
        cfg.phases = 12;
        cfg.procs = rng.gen_range(2..=8);
        cfg.seed = rng.gen();
        let config = random_config(&mut rng);
        let mut plan = random_fault_plan(&mut rng, config.servers());
        if plan.is_empty() {
            // This test is about the faulted path; force at least one.
            plan = plan.slow_server(0, 2.0);
        }
        let trace = skewed::generate(&cfg);
        let mut c1 = Cluster::new(config.clone());
        let serial = ReplaySession::new()
            .with_fault_plan(plan.clone())
            .run(ReplayInput::trace(&mut c1, &trace, &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        let mut c2 = Cluster::new(config);
        let streamed = ReplaySession::new()
            .with_fault_plan(plan)
            .run(ReplayInput::stream(&mut c2, &mut skewed::stream(&cfg), &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        assert_identical(&serial, &streamed, trial);
    }
}
