//! Byte-level encoding helpers: little-endian integers and CRC32
//! (IEEE 802.3 polynomial, table-driven), implemented locally so the store
//! has no checksum dependency.

/// CRC32 lookup table for polynomial 0xEDB88320 (reflected IEEE).
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 of `data` (IEEE, as used by zlib/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u32` little-endian at `pos`, if in bounds.
pub fn get_u32(buf: &[u8], pos: usize) -> Option<u32> {
    let bytes = buf.get(pos..pos + 4)?;
    Some(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }

    #[test]
    fn u32_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u32(&mut buf, 7);
        assert_eq!(get_u32(&buf, 0), Some(0xDEAD_BEEF));
        assert_eq!(get_u32(&buf, 4), Some(7));
        assert_eq!(get_u32(&buf, 5), None);
    }
}
