//! Error type for store operations.

use std::fmt;
use std::io;

/// Store error.
#[derive(Debug)]
pub enum Error {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A log record failed its integrity check somewhere other than the
    /// tail (tail corruption is silently truncated as a torn write).
    Corrupt {
        /// Byte offset of the bad record.
        offset: u64,
        /// Description of the failure.
        reason: String,
    },
    /// Key or value exceeds the encodable maximum (`u32::MAX` bytes).
    TooLarge,
}

/// Store result.
pub type Result<T> = std::result::Result<T, Error>;

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "kvstore I/O error: {e}"),
            Error::Corrupt { offset, reason } => {
                write!(f, "kvstore corruption at offset {offset}: {reason}")
            }
            Error::TooLarge => write!(f, "kvstore key/value too large"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Corrupt { offset: 42, reason: "bad crc".into() };
        assert!(e.to_string().contains("42"));
        let e: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(Error::TooLarge.to_string().contains("large"));
    }
}
