//! # kvstore — embedded durable hash key-value store
//!
//! The paper implements MHA's two metadata tables — the Data Reordering
//! Table (DRT) and the Region Stripe Table (RST) — on Berkeley DB,
//! configured as a hash table of key-value records, with in-memory hashing
//! of hot entries and synchronous write-through so the tables survive
//! power failures (§IV-A). This crate is the from-scratch substitute:
//!
//! * a write-ahead log (WAL) with per-record CRC32, synced on every
//!   mutation (write-through durability),
//! * an in-memory hash index over the log,
//! * an LRU-bounded value cache (the paper's "list of frequently accessed
//!   reordering entries"); cold values are re-read from the log,
//! * crash recovery that replays the log and truncates a torn tail,
//! * compaction that rewrites the log with only live records.
//!
//! Concurrency: the store is `Sync`; a single [`parking_lot::Mutex`]
//! serializes mutations, mirroring the page-level locking Berkeley DB
//! would provide for this workload.

pub mod codec;
pub mod error;
pub mod lru;
pub mod store;
pub mod wal;

pub use error::{Error, Result};
pub use store::{Store, StoreOptions, StoreStats};
