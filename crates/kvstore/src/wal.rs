//! Write-ahead log encoding and recovery scan.
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! [crc32: u32][klen: u32][vlen: u32][key: klen bytes][value: vlen bytes]
//! ```
//!
//! `vlen == TOMBSTONE` marks a deletion (no value bytes follow). The CRC
//! covers everything after itself. A record that fails its CRC or runs
//! past end-of-file is treated as a torn tail: recovery keeps the valid
//! prefix and truncates the rest, which is the crash-consistency contract
//! the paper needs ("changes ... are synchronously written to the storage
//! in order to survive power failures").

use crate::codec::{crc32, get_u32, put_u32};
use crate::error::{Error, Result};

/// Sentinel `vlen` marking a delete record.
pub const TOMBSTONE: u32 = u32::MAX;

/// Fixed header size: crc + klen + vlen.
pub const HEADER: usize = 12;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Byte offset of the record header in the log.
    pub offset: u64,
    /// The key.
    pub key: Vec<u8>,
    /// The value, or `None` for a tombstone.
    pub value: Option<Vec<u8>>,
}

impl WalRecord {
    /// Byte offset where this record's value bytes start (meaningful only
    /// for puts).
    pub fn value_offset(&self) -> u64 {
        self.offset + HEADER as u64 + self.key.len() as u64
    }
}

/// Encode a put record.
pub fn encode_put(key: &[u8], value: &[u8]) -> Result<Vec<u8>> {
    if key.len() >= u32::MAX as usize || value.len() >= u32::MAX as usize {
        return Err(Error::TooLarge);
    }
    encode(key, Some(value))
}

/// Encode a delete record.
pub fn encode_delete(key: &[u8]) -> Result<Vec<u8>> {
    if key.len() >= u32::MAX as usize {
        return Err(Error::TooLarge);
    }
    encode(key, None)
}

fn encode(key: &[u8], value: Option<&[u8]>) -> Result<Vec<u8>> {
    let vlen = value.map_or(TOMBSTONE, |v| v.len() as u32);
    let body_len = 8 + key.len() + value.map_or(0, <[u8]>::len);
    let mut body = Vec::with_capacity(body_len);
    put_u32(&mut body, key.len() as u32);
    put_u32(&mut body, vlen);
    body.extend_from_slice(key);
    if let Some(v) = value {
        body.extend_from_slice(v);
    }
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    Ok(out)
}

/// Outcome of scanning a log image.
#[derive(Debug)]
pub struct ScanResult {
    /// Valid records in log order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix; bytes past this are a torn tail.
    pub valid_len: u64,
    /// True if a torn tail was detected (and should be truncated).
    pub torn: bool,
}

/// Scan a full log image, stopping at the first invalid record.
pub fn scan(buf: &[u8]) -> ScanResult {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == buf.len() {
            return ScanResult { records, valid_len: pos as u64, torn: false };
        }
        let Some(rec_end) = try_decode_at(buf, pos, &mut records) else {
            return ScanResult { records, valid_len: pos as u64, torn: true };
        };
        pos = rec_end;
    }
}

/// Try to decode one record at `pos`; on success push it and return the
/// next record's offset.
fn try_decode_at(buf: &[u8], pos: usize, out: &mut Vec<WalRecord>) -> Option<usize> {
    let stored_crc = get_u32(buf, pos)?;
    let klen = get_u32(buf, pos + 4)? as usize;
    let vlen_raw = get_u32(buf, pos + 8)?;
    let vlen = if vlen_raw == TOMBSTONE { 0 } else { vlen_raw as usize };
    let body_end = pos.checked_add(HEADER)?.checked_add(klen)?.checked_add(vlen)?;
    if body_end > buf.len() {
        return None;
    }
    let body = &buf[pos + 4..body_end];
    if crc32(body) != stored_crc {
        return None;
    }
    let key = buf[pos + HEADER..pos + HEADER + klen].to_vec();
    let value = if vlen_raw == TOMBSTONE {
        None
    } else {
        Some(buf[pos + HEADER + klen..body_end].to_vec())
    };
    out.push(WalRecord { offset: pos as u64, key, value });
    Some(body_end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_round_trip() {
        let rec = encode_put(b"key", b"value").unwrap();
        let s = scan(&rec);
        assert!(!s.torn);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].key, b"key");
        assert_eq!(s.records[0].value.as_deref(), Some(&b"value"[..]));
        assert_eq!(s.valid_len, rec.len() as u64);
    }

    #[test]
    fn delete_round_trip() {
        let rec = encode_delete(b"gone").unwrap();
        let s = scan(&rec);
        assert_eq!(s.records[0].value, None);
    }

    #[test]
    fn empty_key_and_value_are_legal() {
        let rec = encode_put(b"", b"").unwrap();
        let s = scan(&rec);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].key, b"");
        assert_eq!(s.records[0].value.as_deref(), Some(&b""[..]));
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut_point() {
        let mut log = encode_put(b"a", b"1").unwrap();
        log.extend(encode_put(b"b", b"22").unwrap());
        let first_len = encode_put(b"a", b"1").unwrap().len();
        for cut in 0..log.len() {
            let s = scan(&log[..cut]);
            if cut < first_len {
                assert_eq!(s.records.len(), 0, "cut={cut}");
                assert_eq!(s.valid_len, 0);
            } else if cut < log.len() {
                assert_eq!(s.records.len(), 1, "cut={cut}");
                assert_eq!(s.valid_len, first_len as u64);
                assert!(s.torn || cut == first_len, "cut={cut}");
            }
        }
        let full = scan(&log);
        assert_eq!(full.records.len(), 2);
        assert!(!full.torn);
    }

    #[test]
    fn bit_flip_invalidates_record() {
        let mut log = encode_put(b"k", b"v").unwrap();
        let last = log.len() - 1;
        log[last] ^= 0x01;
        let s = scan(&log);
        assert_eq!(s.records.len(), 0);
        assert!(s.torn);
    }

    #[test]
    fn value_offset_points_at_value_bytes() {
        let mut log = encode_put(b"head", b"x").unwrap();
        log.extend(encode_put(b"kk", b"PAYLOAD").unwrap());
        let s = scan(&log);
        let r = &s.records[1];
        let vo = r.value_offset() as usize;
        assert_eq!(&log[vo..vo + 7], b"PAYLOAD");
    }

    #[test]
    fn huge_declared_length_is_torn_not_panic() {
        // Header claiming a 4 GB value on a short buffer must not overflow.
        let mut buf = Vec::new();
        put_u32(&mut buf, 0); // bogus crc
        put_u32(&mut buf, 10);
        put_u32(&mut buf, u32::MAX - 1);
        buf.extend_from_slice(&[0u8; 32]);
        let s = scan(&buf);
        assert_eq!(s.records.len(), 0);
        assert!(s.torn);
    }
}
