//! The store: WAL-backed hash map with an LRU value cache.

use crate::error::Result;
use crate::lru::LruTracker;
use crate::wal::{self, WalRecord};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// fsync after every mutation (the paper's write-through durability).
    /// Disable only for bulk loads followed by an explicit [`Store::sync`].
    pub sync_on_write: bool,
    /// Maximum number of values kept in memory; older values are evicted
    /// to the log and re-read on demand. `usize::MAX` disables eviction.
    pub max_cached_values: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { sync_on_write: true, max_cached_values: 1 << 16 }
    }
}

/// Operation counters for overhead reporting (Fig. 14 instrumentation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Completed put operations.
    pub puts: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed delete operations.
    pub deletes: u64,
    /// Gets served from the in-memory cache.
    pub cache_hits: u64,
    /// Gets that had to re-read the log.
    pub cache_misses: u64,
    /// Current log length in bytes.
    pub log_bytes: u64,
    /// Live (non-deleted) keys.
    pub live_entries: u64,
}

/// Where a live value can be found.
#[derive(Debug, Clone)]
struct ValueLoc {
    /// Offset of the value bytes within the log.
    offset: u64,
    /// Value length.
    len: u32,
    /// In-memory copy, if cached.
    cached: Option<Bytes>,
}

struct Inner {
    file: File,
    log_len: u64,
    index: HashMap<Vec<u8>, ValueLoc>,
    lru: LruTracker<Vec<u8>>,
    cached_count: usize,
    stats: StoreStats,
}

/// A durable hash key-value store (see crate docs).
pub struct Store {
    path: PathBuf,
    opts: StoreOptions,
    inner: Mutex<Inner>,
}

impl Store {
    /// Open (creating if absent) the store at `path`, recovering from the
    /// existing log. A torn tail from a crash is truncated away.
    pub fn open(path: impl AsRef<Path>, opts: StoreOptions) -> Result<Store> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        let scan = wal::scan(&buf);
        if scan.torn {
            // Drop the torn tail so future appends start on a record edge.
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
        }
        let mut index: HashMap<Vec<u8>, ValueLoc> = HashMap::new();
        for WalRecord { offset, key, value } in scan.records {
            match value {
                Some(v) => {
                    let loc = ValueLoc {
                        offset: offset + wal::HEADER as u64 + key.len() as u64,
                        len: v.len() as u32,
                        cached: None,
                    };
                    index.insert(key, loc);
                }
                None => {
                    index.remove(&key);
                }
            }
        }
        let live = index.len() as u64;
        Ok(Store {
            path,
            opts,
            inner: Mutex::new(Inner {
                file,
                log_len: scan.valid_len,
                index,
                lru: LruTracker::new(),
                cached_count: 0,
                stats: StoreStats {
                    log_bytes: scan.valid_len,
                    live_entries: live,
                    ..StoreStats::default()
                },
            }),
        })
    }

    /// Open with default options.
    pub fn open_default(path: impl AsRef<Path>) -> Result<Store> {
        Self::open(path, StoreOptions::default())
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Insert or overwrite `key` with `value`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let rec = wal::encode_put(key, value)?;
        let mut g = self.inner.lock();
        let offset = g.log_len;
        g.file.write_all(&rec)?;
        if self.opts.sync_on_write {
            g.file.sync_data()?;
        }
        g.log_len += rec.len() as u64;
        let value_off = offset + wal::HEADER as u64 + key.len() as u64;
        let was_cached = g
            .index
            .get(key)
            .is_some_and(|l| l.cached.is_some());
        if g.index
            .insert(
                key.to_vec(),
                ValueLoc {
                    offset: value_off,
                    len: value.len() as u32,
                    cached: Some(Bytes::copy_from_slice(value)),
                },
            )
            .is_none()
        {
            g.stats.live_entries += 1;
        }
        if !was_cached {
            g.cached_count += 1;
        }
        g.lru.touch(key.to_vec());
        g.stats.puts += 1;
        g.stats.log_bytes = g.log_len;
        Self::enforce_cache_cap(&mut g, self.opts.max_cached_values);
        Ok(())
    }

    /// Look up `key`. Cold values are re-read from the log and re-cached.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut g = self.inner.lock();
        g.stats.gets += 1;
        let Some(loc) = g.index.get(key) else {
            return Ok(None);
        };
        if let Some(v) = &loc.cached {
            let out = v.to_vec();
            g.stats.cache_hits += 1;
            g.lru.touch(key.to_vec());
            return Ok(Some(out));
        }
        // Cache miss: read the value back from the log.
        let (offset, len) = (loc.offset, loc.len as usize);
        let mut buf = vec![0u8; len];
        g.file.seek(SeekFrom::Start(offset))?;
        g.file.read_exact(&mut buf)?;
        g.stats.cache_misses += 1;
        if let Some(loc) = g.index.get_mut(key) {
            loc.cached = Some(Bytes::copy_from_slice(&buf));
        }
        g.cached_count += 1;
        g.lru.touch(key.to_vec());
        Self::enforce_cache_cap(&mut g, self.opts.max_cached_values);
        Ok(Some(buf))
    }

    /// Remove `key`. Returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        let mut g = self.inner.lock();
        if !g.index.contains_key(key) {
            return Ok(false);
        }
        let rec = wal::encode_delete(key)?;
        g.file.write_all(&rec)?;
        if self.opts.sync_on_write {
            g.file.sync_data()?;
        }
        g.log_len += rec.len() as u64;
        if let Some(loc) = g.index.remove(key) {
            if loc.cached.is_some() {
                g.cached_count -= 1;
            }
        }
        g.lru.remove(&key.to_vec());
        g.stats.deletes += 1;
        g.stats.live_entries -= 1;
        g.stats.log_bytes = g.log_len;
        Ok(true)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.inner.lock().index.contains_key(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All live keys (unordered).
    pub fn keys(&self) -> Vec<Vec<u8>> {
        self.inner.lock().index.keys().cloned().collect()
    }

    /// Live keys starting with `prefix`, sorted. Tables sharing one store
    /// namespace themselves with key prefixes (`drt:`, `rst:`), so bulk
    /// loads scan only their own records.
    pub fn keys_with_prefix(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = self
            .inner
            .lock()
            .index
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Current operation counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Force all buffered data to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.inner.lock().file.sync_data()?;
        Ok(())
    }

    /// Rewrite the log with only live records, atomically replacing it.
    /// Reclaims space from overwritten and deleted entries.
    pub fn compact(&self) -> Result<()> {
        let mut g = self.inner.lock();
        let tmp_path = self.path.with_extension("compact");
        let mut tmp = File::create(&tmp_path)?;
        // Deterministic order keeps compaction reproducible.
        let mut keys: Vec<Vec<u8>> = g.index.keys().cloned().collect();
        keys.sort_unstable();
        let mut new_len = 0u64;
        let mut new_locs: HashMap<Vec<u8>, ValueLoc> = HashMap::new();
        for key in keys {
            let loc = g.index.get(&key).expect("key just listed").clone();
            let value = match &loc.cached {
                Some(v) => v.to_vec(),
                None => {
                    let mut buf = vec![0u8; loc.len as usize];
                    g.file.seek(SeekFrom::Start(loc.offset))?;
                    g.file.read_exact(&mut buf)?;
                    buf
                }
            };
            let rec = wal::encode_put(&key, &value)?;
            tmp.write_all(&rec)?;
            new_locs.insert(
                key.clone(),
                ValueLoc {
                    offset: new_len + wal::HEADER as u64 + key.len() as u64,
                    len: value.len() as u32,
                    cached: loc.cached.clone(),
                },
            );
            new_len += rec.len() as u64;
        }
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;
        let file = OpenOptions::new().read(true).append(true).open(&self.path)?;
        g.file = file;
        g.log_len = new_len;
        g.index = new_locs;
        g.stats.log_bytes = new_len;
        Ok(())
    }

    /// Evict cached values beyond the cap (LRU first).
    fn enforce_cache_cap(g: &mut Inner, cap: usize) {
        while g.cached_count > cap {
            let Some(victim) = g.lru.pop_lru() else { break };
            if let Some(loc) = g.index.get_mut(&victim) {
                if loc.cached.take().is_some() {
                    g.cached_count -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kvstore-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn put_get_delete_cycle() {
        let path = tmp_path("basic");
        let s = Store::open_default(&path).unwrap();
        assert!(s.is_empty());
        s.put(b"k1", b"v1").unwrap();
        s.put(b"k2", b"v2").unwrap();
        assert_eq!(s.get(b"k1").unwrap().as_deref(), Some(&b"v1"[..]));
        assert_eq!(s.len(), 2);
        assert!(s.delete(b"k1").unwrap());
        assert!(!s.delete(b"k1").unwrap());
        assert_eq!(s.get(b"k1").unwrap(), None);
        assert_eq!(s.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overwrite_returns_latest() {
        let path = tmp_path("overwrite");
        let s = Store::open_default(&path).unwrap();
        s.put(b"k", b"old").unwrap();
        s.put(b"k", b"new").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"new"[..]));
        assert_eq!(s.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_recovers_state() {
        let path = tmp_path("reopen");
        {
            let s = Store::open_default(&path).unwrap();
            s.put(b"a", b"1").unwrap();
            s.put(b"b", b"2").unwrap();
            s.delete(b"a").unwrap();
            s.put(b"c", b"3").unwrap();
        }
        let s = Store::open_default(&path).unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.get(b"b").unwrap().as_deref(), Some(&b"2"[..]));
        assert_eq!(s.get(b"c").unwrap().as_deref(), Some(&b"3"[..]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp_path("torn");
        {
            let s = Store::open_default(&path).unwrap();
            s.put(b"good", b"data").unwrap();
        }
        // Simulate a torn write: append garbage.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB; 7]).unwrap();
        }
        let s = Store::open_default(&path).unwrap();
        assert_eq!(s.get(b"good").unwrap().as_deref(), Some(&b"data"[..]));
        assert_eq!(s.len(), 1);
        // And the store keeps working after truncation.
        s.put(b"more", b"stuff").unwrap();
        drop(s);
        let s = Store::open_default(&path).unwrap();
        assert_eq!(s.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_eviction_still_serves_reads() {
        let path = tmp_path("evict");
        let s = Store::open(
            &path,
            StoreOptions { sync_on_write: false, max_cached_values: 2 },
        )
        .unwrap();
        for i in 0..20u32 {
            s.put(format!("key{i}").as_bytes(), format!("val{i}").as_bytes()).unwrap();
        }
        for i in 0..20u32 {
            let got = s.get(format!("key{i}").as_bytes()).unwrap().unwrap();
            assert_eq!(got, format!("val{i}").as_bytes());
        }
        let st = s.stats();
        assert!(st.cache_misses > 0, "eviction must force log reads");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_shrinks_log_and_preserves_data() {
        let path = tmp_path("compact");
        let s = Store::open(
            &path,
            StoreOptions { sync_on_write: false, ..StoreOptions::default() },
        )
        .unwrap();
        for round in 0..10u32 {
            for i in 0..50u32 {
                s.put(format!("k{i}").as_bytes(), format!("r{round}v{i}").as_bytes())
                    .unwrap();
            }
        }
        let before = s.stats().log_bytes;
        s.compact().unwrap();
        let after = s.stats().log_bytes;
        assert!(after < before / 5, "before={before} after={after}");
        for i in 0..50u32 {
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap().unwrap(),
                format!("r9v{i}").as_bytes()
            );
        }
        // Post-compaction appends and reopen still work.
        s.put(b"post", b"compact").unwrap();
        drop(s);
        let s = Store::open_default(&path).unwrap();
        assert_eq!(s.len(), 51);
        assert_eq!(s.get(b"post").unwrap().as_deref(), Some(&b"compact"[..]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_count_operations() {
        let path = tmp_path("stats");
        let s = Store::open_default(&path).unwrap();
        s.put(b"a", b"1").unwrap();
        s.get(b"a").unwrap();
        s.get(b"missing").unwrap();
        s.delete(b"a").unwrap();
        let st = s.stats();
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 2);
        assert_eq!(st.deletes, 1);
        assert_eq!(st.live_entries, 0);
        assert_eq!(st.cache_hits, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn delete_then_reinsert_same_key() {
        let path = tmp_path("reinsert");
        let s = Store::open_default(&path).unwrap();
        s.put(b"k", b"v1").unwrap();
        s.delete(b"k").unwrap();
        s.put(b"k", b"v2").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        assert_eq!(s.len(), 1);
        drop(s);
        let s = Store::open_default(&path).unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn contains_and_empty_flags() {
        let path = tmp_path("flags");
        let s = Store::open_default(&path).unwrap();
        assert!(s.is_empty());
        assert!(!s.contains(b"x"));
        s.put(b"x", b"").unwrap();
        assert!(s.contains(b"x"));
        assert!(!s.is_empty());
        assert_eq!(s.get(b"x").unwrap().as_deref(), Some(&b""[..]), "empty values are legal");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prefix_scan_isolates_namespaces() {
        let path = tmp_path("prefix");
        let s = Store::open_default(&path).unwrap();
        s.put(b"drt:a", b"1").unwrap();
        s.put(b"drt:b", b"2").unwrap();
        s.put(b"rst:a", b"3").unwrap();
        let drt_keys = s.keys_with_prefix(b"drt:");
        assert_eq!(drt_keys, vec![b"drt:a".to_vec(), b"drt:b".to_vec()]);
        assert_eq!(s.keys_with_prefix(b"rst:").len(), 1);
        assert!(s.keys_with_prefix(b"zzz:").is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_across_threads() {
        let path = tmp_path("threads");
        let s = std::sync::Arc::new(Store::open(
            &path,
            StoreOptions { sync_on_write: false, ..StoreOptions::default() },
        ).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let k = format!("t{t}-{i}");
                    s.put(k.as_bytes(), k.as_bytes()).unwrap();
                    assert_eq!(s.get(k.as_bytes()).unwrap().unwrap(), k.as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 400);
        let _ = std::fs::remove_file(&path);
    }
}
