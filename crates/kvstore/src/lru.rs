//! A small LRU tracker: keys ordered by recency with O(1) amortized touch.
//!
//! Implemented as a monotonically-stamped map plus a lazy min-heap sweep:
//! each touch assigns a fresh stamp; eviction pops the entry with the
//! lowest *current* stamp, skipping stale heap entries. This keeps the
//! implementation compact without an intrusive linked list.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

/// LRU recency tracker over keys of type `K`.
#[derive(Debug)]
pub struct LruTracker<K: Eq + Hash + Clone> {
    stamps: HashMap<K, u64>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    keys: Vec<Option<K>>,
    by_key: HashMap<K, usize>,
    clock: u64,
}

impl<K: Eq + Hash + Clone> Default for LruTracker<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> LruTracker<K> {
    /// Empty tracker.
    pub fn new() -> Self {
        LruTracker {
            stamps: HashMap::new(),
            heap: BinaryHeap::new(),
            keys: Vec::new(),
            by_key: HashMap::new(),
            clock: 0,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Mark `key` as most recently used (inserting it if new).
    pub fn touch(&mut self, key: K) {
        self.clock += 1;
        let stamp = self.clock;
        self.stamps.insert(key.clone(), stamp);
        let slot = match self.by_key.get(&key) {
            Some(&s) => {
                self.keys[s] = Some(key);
                s
            }
            None => {
                self.keys.push(Some(key.clone()));
                let s = self.keys.len() - 1;
                self.by_key.insert(key, s);
                s
            }
        };
        self.heap.push(Reverse((stamp, slot)));
    }

    /// Stop tracking `key`.
    pub fn remove(&mut self, key: &K) {
        self.stamps.remove(key);
        if let Some(slot) = self.by_key.remove(key) {
            self.keys[slot] = None;
        }
    }

    /// Evict and return the least recently used key, if any.
    pub fn pop_lru(&mut self) -> Option<K> {
        while let Some(Reverse((stamp, slot))) = self.heap.pop() {
            let Some(key) = self.keys[slot].clone() else { continue };
            match self.stamps.get(&key) {
                // Only the entry carrying the key's *latest* stamp is live.
                Some(&cur) if cur == stamp => {
                    self.stamps.remove(&key);
                    self.by_key.remove(&key);
                    self.keys[slot] = None;
                    return Some(key);
                }
                _ => continue, // stale heap entry
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_recency_order() {
        let mut lru = LruTracker::new();
        lru.touch("a");
        lru.touch("b");
        lru.touch("c");
        assert_eq!(lru.pop_lru(), Some("a"));
        assert_eq!(lru.pop_lru(), Some("b"));
        assert_eq!(lru.pop_lru(), Some("c"));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut lru = LruTracker::new();
        lru.touch(1);
        lru.touch(2);
        lru.touch(1); // 1 becomes MRU
        assert_eq!(lru.pop_lru(), Some(2));
        assert_eq!(lru.pop_lru(), Some(1));
    }

    #[test]
    fn remove_prevents_eviction() {
        let mut lru = LruTracker::new();
        lru.touch("x");
        lru.touch("y");
        lru.remove(&"x");
        assert_eq!(lru.pop_lru(), Some("y"));
        assert_eq!(lru.pop_lru(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn len_counts_live_keys() {
        let mut lru = LruTracker::new();
        for i in 0..10 {
            lru.touch(i % 3); // only 3 distinct keys
        }
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut lru = LruTracker::new();
        for round in 0..100u32 {
            for k in 0..50u32 {
                lru.touch(k);
            }
            // Evict half each round.
            for expect in 0..25u32 {
                let got = lru.pop_lru().expect("nonempty");
                // After touching 0..50 in order, LRU order is 0, 1, ...
                assert_eq!(got, expect, "round {round}");
            }
            for k in 0..25u32 {
                lru.touch(k);
            }
        }
    }
}
