//! # netsim — interconnect model
//!
//! The paper's cluster connects all nodes with Gigabit Ethernet through a
//! non-blocking switch, and its cost model assumes every server offers the
//! same network bandwidth (the `t` parameter of Table I: unit data network
//! transfer time). We model a star fabric:
//!
//! * every node has one full-duplex NIC with finite bandwidth,
//! * a transfer serializes on the sender's egress and the receiver's
//!   ingress (FIFO), so concurrent flows into one server queue up,
//! * the switch core is non-blocking (no shared backplane contention).
//!
//! This reproduces the client-side and server-side NIC contention that
//! shapes the paper's multi-process results while keeping per-transfer
//! cost O(1).

use serde::{Deserialize, Serialize};
use simrt::{FifoResource, SimDuration, SimTime};

/// Identifier of a fabric endpoint (client or server node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Link parameters for one NIC.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way message latency, seconds (switch + stack).
    pub latency_s: f64,
    /// Usable bandwidth, bytes/second.
    pub bandwidth_bps: f64,
}

impl LinkParams {
    /// Gigabit Ethernet with TCP/IP overheads: ~117 MB/s goodput, ~50 µs
    /// one-way latency — the paper's interconnect class.
    pub fn gigabit_ethernet() -> Self {
        LinkParams { latency_s: 50.0e-6, bandwidth_bps: 117.0e6 }
    }

    /// Unit data transfer time `t` (seconds per byte) as used in the
    /// paper's cost model.
    pub fn unit_transfer_time(&self) -> f64 {
        1.0 / self.bandwidth_bps
    }

    /// Wire time for `bytes` on an uncontended link.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.latency_s + bytes as f64 / self.bandwidth_bps)
    }
}

/// A star fabric over `n` nodes.
#[derive(Debug, Clone)]
pub struct NetFabric {
    params: LinkParams,
    egress: Vec<FifoResource>,
    ingress: Vec<FifoResource>,
    /// Last `(bytes, wire_time(bytes))` computed: wire time is a pure
    /// function of the request size, and replayed traces repeat a handful
    /// of sizes back to back, so a one-entry memo removes the float
    /// division and `SimDuration` conversion from most transfers. Purely
    /// an evaluation cache — results are bit-identical.
    wire_memo: Option<(u64, SimDuration)>,
    /// Per-node wire-time multiplier (fault injection: a degraded NIC or
    /// congested uplink). `None` until the first degradation, so the
    /// healthy fast path does not even index a vector; a transfer pays
    /// the worse of its two endpoints' factors.
    degrade: Option<Vec<f64>>,
}

impl NetFabric {
    /// Fabric with `nodes` endpoints, all using `params` NICs.
    pub fn new(nodes: usize, params: LinkParams) -> Self {
        NetFabric {
            params,
            egress: vec![FifoResource::new(); nodes],
            ingress: vec![FifoResource::new(); nodes],
            wire_memo: None,
            degrade: None,
        }
    }

    /// Stretch every transfer touching `node` by `factor` (≥ 1 is
    /// slower). Factors compose multiplicatively on repeated calls for
    /// one node; a transfer between two degraded endpoints pays the worse
    /// factor, matching a bottleneck link. Degradation survives
    /// [`NetFabric::reset`] — it models hardware, not queue state.
    pub fn degrade_node(&mut self, node: NodeId, factor: f64) {
        assert!(node.0 < self.nodes(), "node out of range");
        assert!(factor.is_finite() && factor > 0.0, "link factor must be positive");
        let n = self.nodes();
        let d = self.degrade.get_or_insert_with(|| vec![1.0; n]);
        d[node.0] *= factor;
    }

    /// Wire-time multiplier currently applied to `node` (1.0 = nominal).
    pub fn node_factor(&self, node: NodeId) -> f64 {
        self.degrade.as_ref().map_or(1.0, |d| d[node.0])
    }

    /// Number of endpoints.
    pub fn nodes(&self) -> usize {
        self.egress.len()
    }

    /// Link parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Transfer `bytes` from `src` to `dst` starting no earlier than `now`.
    /// Returns the completion time. The transfer occupies the sender's
    /// egress and the receiver's ingress for its wire time.
    pub fn transfer(&mut self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> SimTime {
        assert!(src.0 < self.nodes() && dst.0 < self.nodes(), "node out of range");
        if src == dst {
            // Loopback: memory copy, modelled as free.
            return now;
        }
        let service = match self.wire_memo {
            Some((b, s)) if b == bytes => s,
            _ => {
                let s = self.params.wire_time(bytes);
                self.wire_memo = Some((bytes, s));
                s
            }
        };
        let service = match &self.degrade {
            None => service,
            Some(d) => {
                let factor = d[src.0].max(d[dst.0]);
                if factor == 1.0 {
                    service
                } else {
                    SimDuration::from_secs_f64(service.as_secs_f64() * factor)
                }
            }
        };
        // The flow cannot start until both NIC queues drain; model this by
        // aligning the start on the later of the two and occupying both.
        let start = now
            .max(self.egress[src.0].next_free())
            .max(self.ingress[dst.0].next_free());
        let a = self.egress[src.0].submit(start, service);
        let b = self.ingress[dst.0].submit(start, service);
        debug_assert_eq!(a, b);
        a
    }

    /// Busy time of a node's ingress NIC (server-side receive pressure).
    pub fn ingress_busy(&self, node: NodeId) -> SimDuration {
        self.ingress[node.0].busy_time()
    }

    /// Busy time of a node's egress NIC.
    pub fn egress_busy(&self, node: NodeId) -> SimDuration {
        self.egress[node.0].busy_time()
    }

    /// Clear all queue state (new measurement window).
    pub fn reset(&mut self) {
        for r in self.egress.iter_mut().chain(self.ingress.iter_mut()) {
            r.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> NetFabric {
        NetFabric::new(n, LinkParams::gigabit_ethernet())
    }

    #[test]
    fn single_transfer_is_latency_plus_wire_time() {
        let mut f = fabric(2);
        let done = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 117_000_000);
        // 1 s of wire time + 50 µs latency.
        assert!((done.as_secs_f64() - 1.000050).abs() < 1e-6);
    }

    #[test]
    fn loopback_is_free() {
        let mut f = fabric(2);
        let t = SimTime::from_nanos(123);
        assert_eq!(f.transfer(t, NodeId(1), NodeId(1), 1 << 30), t);
    }

    #[test]
    fn flows_into_same_destination_serialize() {
        let mut f = fabric(3);
        let bytes = 11_700_000; // 0.1 s wire time
        let d1 = f.transfer(SimTime::ZERO, NodeId(0), NodeId(2), bytes);
        let d2 = f.transfer(SimTime::ZERO, NodeId(1), NodeId(2), bytes);
        assert!(d2 > d1, "second flow must queue behind the first");
        assert!((d2.as_secs_f64() - 2.0 * (0.1 + 50.0e-6)).abs() < 1e-6);
    }

    #[test]
    fn flows_to_distinct_destinations_run_in_parallel() {
        let mut f = fabric(3);
        let bytes = 11_700_000;
        let d1 = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        // Different source and destination: no shared NIC, no queueing.
        let mut g = fabric(3);
        let solo = g.transfer(SimTime::ZERO, NodeId(2), NodeId(1), bytes);
        let d2 = f.transfer(SimTime::ZERO, NodeId(2), NodeId(1), bytes);
        // d2 shares only the ingress of node 1 with d1 — it queues there.
        assert!(d2 > solo);
        assert_eq!(d1.as_nanos(), solo.as_nanos());
    }

    #[test]
    fn distinct_pairs_do_not_interact() {
        let mut f = fabric(4);
        let bytes = 11_700_000;
        let d1 = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        let d2 = f.transfer(SimTime::ZERO, NodeId(2), NodeId(3), bytes);
        assert_eq!(d1.as_nanos(), d2.as_nanos());
    }

    #[test]
    fn busy_accounting_tracks_transfers() {
        let mut f = fabric(2);
        f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 117_000_000);
        assert!(f.egress_busy(NodeId(0)).as_secs_f64() > 0.9);
        assert!(f.ingress_busy(NodeId(1)).as_secs_f64() > 0.9);
        assert_eq!(f.ingress_busy(NodeId(0)), SimDuration::ZERO);
        f.reset();
        assert_eq!(f.egress_busy(NodeId(0)), SimDuration::ZERO);
    }

    #[test]
    fn memoized_wire_time_is_bit_identical() {
        // Alternating sizes defeat the one-entry memo on every call; the
        // completions must still match a fresh fabric computing each wire
        // time from scratch, nanosecond for nanosecond.
        let mut warm = fabric(2);
        for i in 0..32u64 {
            let bytes = if i % 3 == 0 { 131_072 } else { 16 };
            let mut cold = fabric(2);
            let solo = cold.transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
            let start = warm.egress[0].next_free().max(warm.ingress[1].next_free());
            let queued = warm.transfer(start, NodeId(0), NodeId(1), bytes);
            assert_eq!(
                (queued.as_nanos() - start.as_nanos()),
                solo.as_nanos(),
                "iteration {i}"
            );
        }
    }

    #[test]
    fn degraded_node_stretches_its_transfers() {
        let mut f = fabric(3);
        f.degrade_node(NodeId(1), 4.0);
        let slow = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 11_700_000);
        let fast = f.transfer(slow, NodeId(0), NodeId(2), 11_700_000);
        let wire = 0.1 + 50.0e-6;
        assert!((slow.as_secs_f64() - 4.0 * wire).abs() < 1e-6, "{slow}");
        assert!(((fast.as_secs_f64() - slow.as_secs_f64()) - wire).abs() < 1e-6);
        assert_eq!(f.node_factor(NodeId(1)), 4.0);
        assert_eq!(f.node_factor(NodeId(0)), 1.0);
    }

    #[test]
    fn degradation_composes_and_takes_the_worse_endpoint() {
        let mut f = fabric(2);
        f.degrade_node(NodeId(0), 2.0);
        f.degrade_node(NodeId(0), 1.5);
        f.degrade_node(NodeId(1), 6.0);
        assert!((f.node_factor(NodeId(0)) - 3.0).abs() < 1e-12);
        let done = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 11_700_000);
        assert!((done.as_secs_f64() - 6.0 * (0.1 + 50.0e-6)).abs() < 1e-6);
    }

    #[test]
    fn unit_degradation_is_bit_identical() {
        let mut plain = fabric(2);
        let mut degraded = fabric(2);
        degraded.degrade_node(NodeId(0), 1.0);
        for i in 1..8u64 {
            let a = plain.transfer(SimTime::ZERO, NodeId(0), NodeId(1), i * 12345);
            let b = degraded.transfer(SimTime::ZERO, NodeId(0), NodeId(1), i * 12345);
            assert_eq!(a.as_nanos(), b.as_nanos(), "transfer {i}");
        }
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_node_panics() {
        let mut f = fabric(2);
        f.transfer(SimTime::ZERO, NodeId(0), NodeId(9), 1);
    }

    #[test]
    fn zero_byte_transfer_costs_latency_only() {
        let mut f = fabric(2);
        let done = f.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 0);
        assert!((done.as_secs_f64() - 50.0e-6).abs() < 1e-12);
    }

    #[test]
    fn unit_transfer_time_matches_bandwidth() {
        let p = LinkParams::gigabit_ethernet();
        assert!((p.unit_transfer_time() - 1.0 / 117.0e6).abs() < 1e-18);
    }
}
