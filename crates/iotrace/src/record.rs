//! The trace record schema.

use serde::{Deserialize, Serialize};
use simrt::SimTime;
use storage_model::IoOp;

/// MPI rank of the issuing process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub u32);

/// Identifier of a logical file within a trace (the collector maps file
/// descriptors to stable ids at record time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// Identifier of a tenant in a multi-tenant layout service. Tenant 0 is
/// the implicit single-tenant namespace: every legacy file id already
/// lives there, so single-tenant flows are bit-identical with or without
/// tenancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl FileId {
    /// Bits reserved for the tenant-local file id. The high
    /// `32 - TENANT_SHIFT` bits carry the tenant, so one shared MDS /
    /// DRT key space holds every tenant's files without collisions.
    pub const TENANT_SHIFT: u32 = 24;

    /// The local id `local` inside `tenant`'s namespace.
    ///
    /// # Panics
    /// If `local` already carries tenant bits or `tenant` does not fit
    /// the high bits (at most `2^8 - 1` tenants).
    pub fn with_tenant(tenant: TenantId, local: FileId) -> FileId {
        assert!(
            local.0 < (1 << Self::TENANT_SHIFT),
            "local file id {} overflows the tenant-local namespace",
            local.0
        );
        assert!(
            tenant.0 < (1 << (32 - Self::TENANT_SHIFT)),
            "tenant id {} does not fit the tenant bits",
            tenant.0
        );
        FileId((tenant.0 << Self::TENANT_SHIFT) | local.0)
    }

    /// The tenant this id belongs to (0 for legacy / single-tenant ids).
    pub fn tenant(self) -> TenantId {
        TenantId(self.0 >> Self::TENANT_SHIFT)
    }

    /// The id within its tenant's namespace.
    pub fn local(self) -> FileId {
        FileId(self.0 & ((1 << Self::TENANT_SHIFT) - 1))
    }
}

/// One file operation, as captured by the IOSIG-like collector.
///
/// This mirrors the information the paper lists in §III-C: process ID, MPI
/// rank, file descriptor, request type, file offset, request size, and
/// time stamp. We additionally materialize the I/O `phase`: requests that
/// the application issues simultaneously (one per rank in a parallel I/O
/// call) share a phase, which is what the paper's "request concurrency"
/// feature counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated OS process id of the issuer.
    pub pid: u32,
    /// MPI rank of the issuer.
    pub rank: Rank,
    /// Logical file the request targets.
    pub file: FileId,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset within the file.
    pub offset: u64,
    /// Request length in bytes.
    pub len: u64,
    /// Issue timestamp.
    pub ts: SimTime,
    /// I/O phase index: requests issued concurrently share a phase.
    pub phase: u32,
}

impl TraceRecord {
    /// One-past-the-end byte of the request.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// True if this request's byte range overlaps `other`'s on the same
    /// file. Zero-length requests cover no bytes and never overlap.
    pub fn overlaps(&self, other: &TraceRecord) -> bool {
        self.len > 0
            && other.len > 0
            && self.file == other.file
            && self.offset < other.end()
            && other.offset < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(file: u32, offset: u64, len: u64) -> TraceRecord {
        TraceRecord {
            pid: 1,
            rank: Rank(0),
            file: FileId(file),
            op: IoOp::Read,
            offset,
            len,
            ts: SimTime::ZERO,
            phase: 0,
        }
    }

    #[test]
    fn end_is_exclusive() {
        assert_eq!(rec(0, 10, 5).end(), 15);
    }

    #[test]
    fn overlap_requires_same_file() {
        let a = rec(0, 0, 10);
        let b = rec(1, 0, 10);
        assert!(!a.overlaps(&b));
        let c = rec(0, 5, 10);
        assert!(a.overlaps(&c));
    }

    #[test]
    fn touching_ranges_do_not_overlap() {
        let a = rec(0, 0, 10);
        let b = rec(0, 10, 10);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
    }

    #[test]
    fn zero_length_never_overlaps() {
        let a = rec(0, 5, 0);
        let b = rec(0, 0, 10);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn tenant_zero_is_the_identity_namespace() {
        let f = FileId(12345);
        assert_eq!(FileId::with_tenant(TenantId(0), f), f);
        assert_eq!(f.tenant(), TenantId(0));
        assert_eq!(f.local(), f);
    }

    #[test]
    fn tenant_namespaces_round_trip_and_never_collide() {
        let a = FileId::with_tenant(TenantId(3), FileId(7));
        let b = FileId::with_tenant(TenantId(7), FileId(3));
        assert_ne!(a, b);
        assert_eq!(a.tenant(), TenantId(3));
        assert_eq!(a.local(), FileId(7));
        assert_eq!(b.tenant(), TenantId(7));
        assert_eq!(b.local(), FileId(3));
    }

    #[test]
    #[should_panic(expected = "overflows the tenant-local namespace")]
    fn tenant_bits_in_local_id_rejected() {
        FileId::with_tenant(TenantId(1), FileId(1 << FileId::TENANT_SHIFT));
    }
}
