//! The trace record schema.

use serde::{Deserialize, Serialize};
use simrt::SimTime;
use storage_model::IoOp;

/// MPI rank of the issuing process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub u32);

/// Identifier of a logical file within a trace (the collector maps file
/// descriptors to stable ids at record time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// One file operation, as captured by the IOSIG-like collector.
///
/// This mirrors the information the paper lists in §III-C: process ID, MPI
/// rank, file descriptor, request type, file offset, request size, and
/// time stamp. We additionally materialize the I/O `phase`: requests that
/// the application issues simultaneously (one per rank in a parallel I/O
/// call) share a phase, which is what the paper's "request concurrency"
/// feature counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated OS process id of the issuer.
    pub pid: u32,
    /// MPI rank of the issuer.
    pub rank: Rank,
    /// Logical file the request targets.
    pub file: FileId,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset within the file.
    pub offset: u64,
    /// Request length in bytes.
    pub len: u64,
    /// Issue timestamp.
    pub ts: SimTime,
    /// I/O phase index: requests issued concurrently share a phase.
    pub phase: u32,
}

impl TraceRecord {
    /// One-past-the-end byte of the request.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// True if this request's byte range overlaps `other`'s on the same
    /// file. Zero-length requests cover no bytes and never overlap.
    pub fn overlaps(&self, other: &TraceRecord) -> bool {
        self.len > 0
            && other.len > 0
            && self.file == other.file
            && self.offset < other.end()
            && other.offset < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(file: u32, offset: u64, len: u64) -> TraceRecord {
        TraceRecord {
            pid: 1,
            rank: Rank(0),
            file: FileId(file),
            op: IoOp::Read,
            offset,
            len,
            ts: SimTime::ZERO,
            phase: 0,
        }
    }

    #[test]
    fn end_is_exclusive() {
        assert_eq!(rec(0, 10, 5).end(), 15);
    }

    #[test]
    fn overlap_requires_same_file() {
        let a = rec(0, 0, 10);
        let b = rec(1, 0, 10);
        assert!(!a.overlaps(&b));
        let c = rec(0, 5, 10);
        assert!(a.overlaps(&c));
    }

    #[test]
    fn touching_ranges_do_not_overlap() {
        let a = rec(0, 0, 10);
        let b = rec(0, 10, 10);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
    }

    #[test]
    fn zero_length_never_overlaps() {
        let a = rec(0, 5, 0);
        let b = rec(0, 0, 10);
        assert!(!a.overlaps(&b));
    }
}
