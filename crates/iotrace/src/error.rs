//! Structured errors for trace ingestion.
//!
//! Everything that can go wrong while reading a trace from the outside
//! world — malformed TSV, a record that violates the schema invariants,
//! or plain I/O failure — surfaces as a [`TraceError`] instead of a
//! panic, so tools can report the offending line or record and exit
//! with a proper status code.

use std::fmt;

/// Error ingesting or validating a trace.
#[derive(Debug)]
pub enum TraceError {
    /// A TSV line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A parsed record violates a schema invariant (zero or absurd
    /// length, out-of-range rank, out-of-order timestamp, …).
    InvalidRecord {
        /// 0-based record index within the trace.
        index: usize,
        /// The violated invariant.
        reason: String,
    },
    /// Reading the input failed.
    Io(std::io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::InvalidRecord { index, reason } => {
                write!(f, "invalid trace record #{index}: {reason}")
            }
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_stable() {
        let p = TraceError::Parse { line: 3, message: "bad op 'x'".into() };
        assert_eq!(p.to_string(), "trace parse error at line 3: bad op 'x'");
        let r = TraceError::InvalidRecord { index: 7, reason: "zero-length request".into() };
        assert_eq!(r.to_string(), "invalid trace record #7: zero-length request");
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: TraceError = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(e.to_string().contains("trace I/O error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
