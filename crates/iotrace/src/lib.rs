//! # iotrace — I/O traces, collection, and workload generation
//!
//! MHA is trace-driven: the first run of an application is profiled by an
//! IOSIG-like collector, and the resulting trace feeds the layout
//! optimizer. This crate provides:
//!
//! * [`TraceRecord`] / [`Trace`] — the record schema IOSIG captures
//!   (process id, MPI rank, file descriptor, operation, offset, size,
//!   timestamp) plus an explicit I/O *phase* used to compute request
//!   concurrency,
//! * [`RecordBatch`] / [`BatchSource`] — columnar (SoA) phase batches and
//!   streaming trace sources, so huge synthetic grids never materialize a
//!   full record vector,
//! * [`WindowedSource`] — fixed-phase/fixed-count windows over a batch
//!   stream with incrementally maintained per-window statistics, feeding
//!   the online re-planner,
//! * [`Collector`] — the online profiler the middleware drives,
//! * [`gen`] — six workload generators standing in for the paper's
//!   benchmarks and application traces (IOR, HPIO, BTIO, LANL App2,
//!   out-of-core LU, sparse Cholesky),
//! * [`stats`] — trace summaries (size histogram, r_max, byte totals),
//! * [`tsv`] — a line-oriented interchange format plus JSON via serde.

pub mod analyze;
pub mod batch;
pub mod collector;
pub mod error;
pub mod gen;
pub mod mux;
pub mod record;
pub mod stats;
pub mod trace;
pub mod tsv;
pub mod window;

pub use analyze::{analyze, is_predictable, SpatialPattern, StreamPattern};
pub use batch::{materialize, BatchSource, RecordBatch, TraceBatches};
pub use collector::Collector;
pub use error::TraceError;
pub use mux::{window_in_namespace, WindowMux};
pub use record::{FileId, Rank, TenantId, TraceRecord};
pub use stats::TraceStats;
pub use trace::Trace;
pub use window::{Window, WindowConfig, WindowStats, WindowedSource};

pub use storage_model::IoOp;
