//! Windowed trace ingestion for online re-planning.
//!
//! A [`WindowedSource`] slices any [`BatchSource`] into consecutive
//! *windows* — fixed-phase-count and/or fixed-record-count runs of whole
//! barrier phases — and maintains each window's summary statistics
//! incrementally while the phases stream through, so the online planner
//! can decide whether a window drifted without re-scanning its records.
//!
//! Windows never split a phase: a phase is the unit of barrier
//! synchronization, so the record bound closes a window at the *next*
//! phase boundary after the bound is reached. Concatenating the records
//! of all windows reproduces the source stream exactly.

use crate::batch::{BatchSource, RecordBatch};
use crate::record::TraceRecord;
use crate::trace::Trace;
use simrt::stats::OnlineStats;
use std::collections::HashMap;

/// Window close policy. A window closes at the first phase boundary
/// where either bound is met; at least one bound must be nonzero.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Close a window after this many phases (0 = unbounded).
    pub phases: u32,
    /// Close a window once it holds at least this many records
    /// (0 = unbounded). Checked at phase boundaries only.
    pub max_records: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig { phases: 8, max_records: 0 }
    }
}

/// Summary statistics of one window, maintained incrementally per
/// pushed batch. Field meanings match [`crate::TraceStats`] (the
/// planner's drift detector reads `mean_request` / `size_cv` /
/// `max_concurrency` from either).
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    /// Record count.
    pub requests: usize,
    /// Read record count.
    pub reads: usize,
    /// Write record count.
    pub writes: usize,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Largest request, bytes.
    pub max_request: u64,
    /// Smallest request, bytes (0 for an empty window).
    pub min_request: u64,
    /// Phases in the window.
    pub phases: u32,
    /// Maximum per-(file, phase) request concurrency.
    pub max_concurrency: u32,
    /// Largest request start offset, bytes.
    pub max_offset: u64,
    sizes: OnlineStats,
    offsets: OnlineStats,
}

impl WindowStats {
    /// Mean request size, bytes.
    pub fn mean_request(&self) -> f64 {
        self.sizes.mean()
    }

    /// Mean request start offset, bytes — the spatial signature: a
    /// hot-spot move shifts it even when the size mix is unchanged.
    pub fn mean_offset(&self) -> f64 {
        self.offsets.mean()
    }

    /// Request-size coefficient of variation (population stddev over
    /// mean, the [`crate::TraceStats::size_cv`] convention).
    pub fn size_cv(&self) -> f64 {
        let mean = self.sizes.mean();
        if mean > 0.0 {
            self.sizes.stddev() / mean
        } else {
            0.0
        }
    }

    /// Fold one phase batch in. `per_file` is caller-owned scratch for
    /// the per-file concurrency tally (cleared here).
    fn push_batch(&mut self, batch: &RecordBatch, per_file: &mut HashMap<u32, u32>) {
        self.phases += 1;
        self.requests += batch.len();
        per_file.clear();
        for (i, (&len, &file)) in batch.lens().iter().zip(batch.files()).enumerate() {
            self.sizes.push(len as f64);
            let offset = batch.offsets()[i];
            self.offsets.push(offset as f64);
            self.max_offset = self.max_offset.max(offset);
            self.total_bytes += len;
            self.max_request = self.max_request.max(len);
            self.min_request = if self.min_request == 0 { len } else { self.min_request.min(len) };
            match batch.ops()[i] {
                crate::IoOp::Read => {
                    self.reads += 1;
                    self.read_bytes += len;
                }
                crate::IoOp::Write => {
                    self.writes += 1;
                    self.write_bytes += len;
                }
            }
            *per_file.entry(file).or_insert(0) += 1;
        }
        let batch_max = per_file.values().copied().max().unwrap_or(0);
        self.max_concurrency = self.max_concurrency.max(batch_max);
    }
}

/// One closed window: its records (whole phases, in stream order) and
/// the incrementally maintained statistics.
#[derive(Debug, Clone)]
pub struct Window {
    /// 0-based window sequence number.
    pub index: usize,
    /// Phase id of the window's first record.
    pub first_phase: u32,
    /// The window's records, in stream order.
    pub records: Vec<TraceRecord>,
    /// Summary statistics over exactly `records`.
    pub stats: WindowStats,
}

impl Window {
    /// The window as a standalone trace (records keep their original
    /// phase ids and timestamps).
    pub fn into_trace(self) -> Trace {
        Trace::from_records(self.records)
    }

    /// Move every record's file id into `tenant`'s namespace
    /// ([`crate::FileId::with_tenant`]). The mapping is injective, so
    /// the window's statistics (which only compare file ids for
    /// equality) stay valid; tenant 0 is the identity.
    pub fn retag_tenant(&mut self, tenant: crate::TenantId) {
        if tenant.0 == 0 {
            return;
        }
        for r in &mut self.records {
            r.file = crate::FileId::with_tenant(tenant, r.file);
        }
    }
}

/// Slices a [`BatchSource`] into consecutive [`Window`]s.
pub struct WindowedSource<'a> {
    source: &'a mut dyn BatchSource,
    cfg: WindowConfig,
    batch: RecordBatch,
    scratch: HashMap<u32, u32>,
    next_index: usize,
    exhausted: bool,
}

impl<'a> WindowedSource<'a> {
    /// Window `source` under `cfg`.
    ///
    /// # Panics
    /// If both bounds of `cfg` are zero (the stream would never close a
    /// window before exhausting the source).
    pub fn new(source: &'a mut dyn BatchSource, cfg: WindowConfig) -> Self {
        assert!(
            cfg.phases > 0 || cfg.max_records > 0,
            "window config needs a phase or record bound"
        );
        WindowedSource {
            source,
            cfg,
            batch: RecordBatch::new(),
            scratch: HashMap::new(),
            next_index: 0,
            exhausted: false,
        }
    }

    /// Produce the next window, or `None` when the source is exhausted.
    pub fn next_window(&mut self) -> Option<Window> {
        if self.exhausted {
            return None;
        }
        let mut stats = WindowStats::default();
        let mut records = Vec::new();
        let mut first_phase = 0u32;
        loop {
            if !self.source.next_phase(&mut self.batch) {
                self.exhausted = true;
                break;
            }
            if stats.phases == 0 {
                first_phase = self.batch.phase();
            }
            stats.push_batch(&self.batch, &mut self.scratch);
            records.reserve(self.batch.len());
            for i in 0..self.batch.len() {
                records.push(self.batch.record(i));
            }
            let phase_full = self.cfg.phases > 0 && stats.phases >= self.cfg.phases;
            let count_full = self.cfg.max_records > 0 && records.len() >= self.cfg.max_records;
            if phase_full || count_full {
                break;
            }
        }
        if records.is_empty() {
            return None;
        }
        let index = self.next_index;
        self.next_index += 1;
        Some(Window { index, first_phase, records, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::TraceBatches;
    use crate::gen::skewed::{self, SkewedConfig};
    use crate::stats::TraceStats;
    use crate::IoOp;

    fn sample_trace() -> Trace {
        let mut cfg = SkewedConfig::default_run(IoOp::Write);
        cfg.procs = 4;
        cfg.phases = 21; // deliberately not a multiple of the window size
        skewed::generate(&cfg)
    }

    #[test]
    fn windows_partition_the_stream_exactly() {
        let trace = sample_trace();
        let mut src = TraceBatches::new(&trace);
        let mut windows = WindowedSource::new(&mut src, WindowConfig { phases: 8, max_records: 0 });
        let mut all = Vec::new();
        let mut count = 0;
        while let Some(w) = windows.next_window() {
            assert_eq!(w.index, count);
            count += 1;
            assert!(w.stats.phases <= 8);
            all.extend(w.records);
        }
        assert_eq!(count, 3, "21 phases in windows of 8 = 8+8+5");
        assert_eq!(all, trace.records(), "concatenated windows reproduce the trace");
    }

    #[test]
    fn record_bound_closes_at_phase_boundaries() {
        let trace = sample_trace();
        let per_phase = trace.len() / 21;
        let mut src = TraceBatches::new(&trace);
        let bound = per_phase * 2 + 1; // mid-phase bound -> 3 phases per window
        let mut windows =
            WindowedSource::new(&mut src, WindowConfig { phases: 0, max_records: bound });
        let mut all = Vec::new();
        while let Some(w) = windows.next_window() {
            assert!(w.stats.phases <= 3, "bound met inside phase 3 at the latest");
            assert_eq!(w.records.len() % per_phase, 0, "whole phases only");
            all.extend(w.records);
        }
        assert_eq!(all, trace.records());
    }

    #[test]
    fn incremental_stats_match_a_full_rescan() {
        let trace = sample_trace();
        let mut src = TraceBatches::new(&trace);
        let mut windows = WindowedSource::new(&mut src, WindowConfig { phases: 8, max_records: 0 });
        while let Some(w) = windows.next_window() {
            let stats = w.stats.clone();
            let oracle = TraceStats::of(&w.into_trace());
            assert_eq!(stats.requests, oracle.requests);
            assert_eq!(stats.reads, oracle.reads);
            assert_eq!(stats.writes, oracle.writes);
            assert_eq!(stats.total_bytes, oracle.total_bytes);
            assert_eq!(stats.read_bytes, oracle.read_bytes);
            assert_eq!(stats.write_bytes, oracle.write_bytes);
            assert_eq!(stats.max_request, oracle.max_request);
            assert_eq!(stats.min_request, oracle.min_request);
            assert_eq!(stats.max_concurrency, oracle.max_concurrency);
            assert!((stats.mean_request() - oracle.mean_request).abs() < 1e-6);
            assert!((stats.size_cv() - oracle.size_cv).abs() < 1e-9);
            assert!(
                (stats.mean_offset() - oracle.mean_offset).abs() / oracle.mean_offset.max(1.0)
                    < 1e-12
            );
            assert_eq!(stats.max_offset, oracle.max_offset);
        }
    }

    #[test]
    fn empty_source_yields_no_windows() {
        let trace = Trace::new();
        let mut src = TraceBatches::new(&trace);
        let mut windows = WindowedSource::new(&mut src, WindowConfig::default());
        assert!(windows.next_window().is_none());
        assert!(windows.next_window().is_none(), "stays exhausted");
    }

    #[test]
    #[should_panic(expected = "phase or record bound")]
    fn unbounded_config_is_rejected() {
        let trace = Trace::new();
        let mut src = TraceBatches::new(&trace);
        WindowedSource::new(&mut src, WindowConfig { phases: 0, max_records: 0 });
    }
}
