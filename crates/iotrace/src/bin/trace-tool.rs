//! `trace-tool` — generate, inspect and convert I/O traces.
//!
//! ```text
//! trace-tool gen lanl --loops 32 > lanl.tsv        # generate a workload
//! trace-tool gen ior --sizes 128,256 > ior.tsv
//! trace-tool stats < lanl.tsv                      # summarize a trace
//! trace-tool to-json < lanl.tsv > lanl.json        # TSV → JSON
//! trace-tool from-json < lanl.json > lanl.tsv      # JSON → TSV
//! ```
//!
//! Exit codes: 0 on success, 1 when the input trace is malformed or I/O
//! fails, 2 on usage errors.

use iotrace::gen::{btio, cholesky, hpio, ior, lanl, lu};
use iotrace::{tsv, Trace, TraceError, TraceStats};
use std::io::Read as _;
use storage_model::IoOp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(),
        Some("to-json") => cmd_to_json(),
        Some("from-json") => cmd_from_json(),
        _ => {
            eprintln!(
                "usage: trace-tool gen <lanl|ior|hpio|btio|lu|cholesky> [options]\n\
                 \x20      trace-tool stats      (reads TSV on stdin)\n\
                 \x20      trace-tool to-json    (TSV → JSON)\n\
                 \x20      trace-tool from-json  (JSON → TSV)\n\
                 gen options: --loops N --procs N --sizes a,b,c(KiB) --op read|write --steps N --panels N"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("{e}");
        std::process::exit(1);
    }
}

fn read_stdin() -> Result<String, TraceError> {
    let mut text = String::new();
    std::io::stdin().read_to_string(&mut text)?;
    Ok(text)
}

fn read_tsv_stdin() -> Result<Trace, TraceError> {
    tsv::from_tsv(&read_stdin()?)
}

fn cmd_to_json() -> Result<(), TraceError> {
    let trace = read_tsv_stdin()?;
    let json = serde_json::to_string_pretty(&trace)
        .map_err(|e| TraceError::Io(std::io::Error::other(e)))?;
    println!("{json}");
    Ok(())
}

fn cmd_from_json() -> Result<(), TraceError> {
    let text = read_stdin()?;
    let trace: Trace = serde_json::from_str(&text).map_err(|e| TraceError::Parse {
        line: e.line(),
        message: format!("bad JSON trace: {e}"),
    })?;
    trace.validate()?;
    print!("{}", tsv::to_tsv(&trace));
    Ok(())
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn num(args: &[String], name: &str, default: u32) -> u32 {
    opt(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn op_of(args: &[String]) -> IoOp {
    match opt(args, "--op").as_deref() {
        Some("read") => IoOp::Read,
        _ => IoOp::Write,
    }
}

fn cmd_gen(args: &[String]) -> Result<(), TraceError> {
    let trace = match args.first().map(String::as_str) {
        Some("lanl") => lanl::generate(&lanl::LanlConfig {
            procs: num(args, "--procs", 8),
            loops: num(args, "--loops", 16),
            op: op_of(args),
        }),
        Some("ior") => {
            let sizes: Vec<u64> = opt(args, "--sizes")
                .unwrap_or_else(|| "64".into())
                .split(',')
                .filter_map(|s| s.parse::<u64>().ok())
                .map(|kb| kb << 10)
                .collect();
            if sizes.is_empty() {
                eprintln!("--sizes must list at least one KiB value");
                std::process::exit(2);
            }
            let mut cfg = ior::IorConfig::mixed_sizes(&sizes, op_of(args));
            cfg.proc_mix = vec![num(args, "--procs", 16)];
            ior::generate(&cfg)
        }
        Some("hpio") => hpio::generate(&hpio::HpioConfig::paper(num(args, "--procs", 16), op_of(args))),
        Some("btio") => btio::generate(&btio::BtioConfig::paper(num(args, "--procs", 9), op_of(args))),
        Some("lu") => lu::generate(&lu::LuConfig {
            procs: num(args, "--procs", 8),
            steps: num(args, "--steps", 128),
        }),
        Some("cholesky") => cholesky::generate(&cholesky::CholeskyConfig {
            procs: num(args, "--procs", 8),
            panels: num(args, "--panels", 96),
            ..Default::default()
        }),
        other => {
            eprintln!("unknown workload: {other:?}");
            std::process::exit(2);
        }
    };
    print!("{}", tsv::to_tsv(&trace));
    Ok(())
}

fn cmd_stats() -> Result<(), TraceError> {
    let trace = read_tsv_stdin()?;
    let s = TraceStats::of(&trace);
    println!("requests        {}", s.requests);
    println!("reads/writes    {}/{}", s.reads, s.writes);
    println!("total bytes     {}", s.total_bytes);
    println!("read bytes      {}", s.read_bytes);
    println!("write bytes     {}", s.write_bytes);
    println!("request sizes   min {}  mean {:.0}  max {}", s.min_request, s.mean_request, s.max_request);
    println!("distinct sizes  {}", s.distinct_sizes);
    println!("size CV         {:.3}", s.size_cv);
    println!("phases          {}", s.phases);
    println!("max concurrency {}", s.max_concurrency);
    println!("heterogeneous   {}", s.is_heterogeneous());
    println!("size histogram (log2 buckets):");
    for (floor, count) in s.size_histogram.iter() {
        println!("  >= {floor:>10} B : {count}");
    }
    Ok(())
}
