//! `trace-tool` — generate, inspect and convert I/O traces.
//!
//! ```text
//! trace-tool gen lanl --loops 32 > lanl.tsv        # generate a workload
//! trace-tool gen ior --sizes 128,256 > ior.tsv
//! trace-tool stats < lanl.tsv                      # summarize a trace
//! trace-tool to-json < lanl.tsv > lanl.json        # TSV → JSON
//! trace-tool from-json < lanl.json > lanl.tsv      # JSON → TSV
//! ```

use iotrace::gen::{btio, cholesky, hpio, ior, lanl, lu};
use iotrace::{tsv, Trace, TraceStats};
use std::io::Read as _;
use storage_model::IoOp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(),
        Some("to-json") => {
            let trace = read_tsv_stdin();
            println!("{}", serde_json::to_string_pretty(&trace).expect("serialize"));
        }
        Some("from-json") => {
            let mut text = String::new();
            std::io::stdin().read_to_string(&mut text).expect("read stdin");
            let trace: Trace = serde_json::from_str(&text).expect("parse JSON trace");
            print!("{}", tsv::to_tsv(&trace));
        }
        _ => {
            eprintln!(
                "usage: trace-tool gen <lanl|ior|hpio|btio|lu|cholesky> [options]\n\
                 \x20      trace-tool stats      (reads TSV on stdin)\n\
                 \x20      trace-tool to-json    (TSV → JSON)\n\
                 \x20      trace-tool from-json  (JSON → TSV)\n\
                 gen options: --loops N --procs N --sizes a,b,c(KiB) --op read|write --steps N --panels N"
            );
            std::process::exit(2);
        }
    }
}

fn read_tsv_stdin() -> Trace {
    let mut text = String::new();
    std::io::stdin().read_to_string(&mut text).expect("read stdin");
    tsv::from_tsv(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn num(args: &[String], name: &str, default: u32) -> u32 {
    opt(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn op_of(args: &[String]) -> IoOp {
    match opt(args, "--op").as_deref() {
        Some("read") => IoOp::Read,
        _ => IoOp::Write,
    }
}

fn cmd_gen(args: &[String]) {
    let trace = match args.first().map(String::as_str) {
        Some("lanl") => lanl::generate(&lanl::LanlConfig {
            procs: num(args, "--procs", 8),
            loops: num(args, "--loops", 16),
            op: op_of(args),
        }),
        Some("ior") => {
            let sizes: Vec<u64> = opt(args, "--sizes")
                .unwrap_or_else(|| "64".into())
                .split(',')
                .filter_map(|s| s.parse::<u64>().ok())
                .map(|kb| kb << 10)
                .collect();
            let mut cfg = ior::IorConfig::mixed_sizes(&sizes, op_of(args));
            cfg.proc_mix = vec![num(args, "--procs", 16)];
            ior::generate(&cfg)
        }
        Some("hpio") => hpio::generate(&hpio::HpioConfig::paper(num(args, "--procs", 16), op_of(args))),
        Some("btio") => btio::generate(&btio::BtioConfig::paper(num(args, "--procs", 9), op_of(args))),
        Some("lu") => lu::generate(&lu::LuConfig {
            procs: num(args, "--procs", 8),
            steps: num(args, "--steps", 128),
        }),
        Some("cholesky") => cholesky::generate(&cholesky::CholeskyConfig {
            procs: num(args, "--procs", 8),
            panels: num(args, "--panels", 96),
            ..Default::default()
        }),
        other => {
            eprintln!("unknown workload: {other:?}");
            std::process::exit(2);
        }
    };
    print!("{}", tsv::to_tsv(&trace));
}

fn cmd_stats() {
    let trace = read_tsv_stdin();
    let s = TraceStats::of(&trace);
    println!("requests        {}", s.requests);
    println!("reads/writes    {}/{}", s.reads, s.writes);
    println!("total bytes     {}", s.total_bytes);
    println!("read bytes      {}", s.read_bytes);
    println!("write bytes     {}", s.write_bytes);
    println!("request sizes   min {}  mean {:.0}  max {}", s.min_request, s.mean_request, s.max_request);
    println!("distinct sizes  {}", s.distinct_sizes);
    println!("size CV         {:.3}", s.size_cv);
    println!("phases          {}", s.phases);
    println!("max concurrency {}", s.max_concurrency);
    println!("heterogeneous   {}", s.is_heterogeneous());
    println!("size histogram (log2 buckets):");
    for (floor, count) in s.size_histogram.iter() {
        println!("  >= {floor:>10} B : {count}");
    }
}
