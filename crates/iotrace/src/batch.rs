//! Columnar (structure-of-arrays) record batches and streaming sources.
//!
//! A [`RecordBatch`] holds one barrier phase of records as parallel
//! columns instead of a `Vec<TraceRecord>`. The sharded replay consumes
//! phases column-wise — every pass touches only the two or three columns
//! it needs, so a 10 M-record phase streams through cache-sized slabs
//! instead of striding over 64-byte record structs.
//!
//! A [`BatchSource`] yields phases one batch at a time. Generators
//! implement it directly (emitting each phase as they compute it), so a
//! 10 M-record grid run never materializes the full record vector; a
//! borrowed [`TraceBatches`] adapts any existing [`Trace`]. The two views
//! are interchangeable: [`materialize`] collects a source back into a
//! `Trace`, and generators promise `generate(cfg)` equals
//! `materialize(stream(cfg))` bit for bit.

use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use simrt::SimTime;
use storage_model::IoOp;

/// One barrier phase of trace records, stored as parallel columns.
///
/// All columns always have equal length; the phase id is a scalar
/// because a batch spans exactly one phase. Buffers are retained across
/// [`RecordBatch::begin`] calls, so a streaming loop reusing one batch
/// is allocation-free at steady state.
#[derive(Debug, Clone, Default)]
pub struct RecordBatch {
    phase: u32,
    pids: Vec<u32>,
    ranks: Vec<u32>,
    files: Vec<u32>,
    ops: Vec<IoOp>,
    offsets: Vec<u64>,
    lens: Vec<u64>,
    timestamps: Vec<SimTime>,
}

impl RecordBatch {
    /// Empty batch for phase 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all columns and start a batch for `phase`, keeping the
    /// allocated capacity.
    pub fn begin(&mut self, phase: u32) {
        self.phase = phase;
        self.pids.clear();
        self.ranks.clear();
        self.files.clear();
        self.ops.clear();
        self.offsets.clear();
        self.lens.clear();
        self.timestamps.clear();
    }

    /// Append one record.
    pub fn push(&mut self, rec: &TraceRecord) {
        debug_assert_eq!(rec.phase, self.phase, "batch spans exactly one phase");
        self.pids.push(rec.pid);
        self.ranks.push(rec.rank.0);
        self.files.push(rec.file.0);
        self.ops.push(rec.op);
        self.offsets.push(rec.offset);
        self.lens.push(rec.len);
        self.timestamps.push(rec.ts);
    }

    /// Reconstruct record `i` from the columns.
    pub fn record(&self, i: usize) -> TraceRecord {
        TraceRecord {
            pid: self.pids[i],
            rank: Rank(self.ranks[i]),
            file: FileId(self.files[i]),
            op: self.ops[i],
            offset: self.offsets[i],
            len: self.lens[i],
            ts: self.timestamps[i],
            phase: self.phase,
        }
    }

    /// Records in the batch.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// The phase every record of this batch belongs to.
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Process id column.
    pub fn pids(&self) -> &[u32] {
        &self.pids
    }

    /// MPI rank column.
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// File id column.
    pub fn files(&self) -> &[u32] {
        &self.files
    }

    /// Operation column.
    pub fn ops(&self) -> &[IoOp] {
        &self.ops
    }

    /// Byte offset column.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Request length column.
    pub fn lens(&self) -> &[u64] {
        &self.lens
    }

    /// Timestamp column.
    pub fn timestamps(&self) -> &[SimTime] {
        &self.timestamps
    }

    /// Bytes moved by this batch.
    pub fn total_bytes(&self) -> u64 {
        self.lens.iter().sum()
    }
}

/// A stream of barrier phases.
///
/// Each call to [`BatchSource::next_phase`] fills `batch` with the next
/// phase's records (replacing its previous contents) and returns `true`,
/// or returns `false` when the stream is exhausted (leaving `batch`
/// empty). Phases arrive in issue order, exactly as the equivalent
/// materialized [`Trace`] would order them.
pub trait BatchSource {
    /// Produce the next phase into `batch`; `false` when exhausted.
    fn next_phase(&mut self, batch: &mut RecordBatch) -> bool;

    /// Total records remaining, when the source knows it (sizing hint
    /// only — consumers must not rely on it for correctness).
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

/// Borrowed phase-by-phase view of a [`Trace`]: each batch is one
/// consecutive run of records sharing a phase id, matching how the
/// replay schedule spans a trace.
#[derive(Debug, Clone)]
pub struct TraceBatches<'a> {
    records: &'a [TraceRecord],
    pos: usize,
}

impl<'a> TraceBatches<'a> {
    /// Stream `trace` from its first record.
    pub fn new(trace: &'a Trace) -> Self {
        TraceBatches { records: trace.records(), pos: 0 }
    }
}

impl BatchSource for TraceBatches<'_> {
    fn next_phase(&mut self, batch: &mut RecordBatch) -> bool {
        let Some(first) = self.records.get(self.pos) else {
            batch.begin(0);
            return false;
        };
        batch.begin(first.phase);
        while let Some(rec) = self.records.get(self.pos) {
            if rec.phase != first.phase {
                break;
            }
            batch.push(rec);
            self.pos += 1;
        }
        true
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.records.len() - self.pos)
    }
}

/// Collect a whole source into a materialized [`Trace`].
pub fn materialize<S: BatchSource + ?Sized>(source: &mut S) -> Trace {
    let mut records = Vec::with_capacity(source.len_hint().unwrap_or(0));
    let mut batch = RecordBatch::new();
    while source.next_phase(&mut batch) {
        for i in 0..batch.len() {
            records.push(batch.record(i));
        }
    }
    Trace::from_records(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ior::{generate, IorConfig};

    #[test]
    fn push_and_record_round_trip() {
        let rec = TraceRecord {
            pid: 7,
            rank: Rank(3),
            file: FileId(11),
            op: IoOp::Read,
            offset: 4096,
            len: 512,
            ts: SimTime::from_nanos(99),
            phase: 2,
        };
        let mut b = RecordBatch::new();
        b.begin(2);
        b.push(&rec);
        assert_eq!(b.len(), 1);
        assert_eq!(b.record(0), rec);
        assert_eq!(b.phase(), 2);
        assert_eq!(b.total_bytes(), 512);
        b.begin(5);
        assert!(b.is_empty(), "begin clears the previous phase");
        assert_eq!(b.phase(), 5);
    }

    #[test]
    fn trace_batches_split_on_phase_boundaries() {
        let t = generate(&{
            let mut c = IorConfig::default_run(IoOp::Write);
            c.reqs_per_proc = 3;
            c.proc_mix = vec![4];
            c
        });
        let mut src = TraceBatches::new(&t);
        assert_eq!(src.len_hint(), Some(12));
        let mut batch = RecordBatch::new();
        let mut phases = Vec::new();
        let mut total = 0;
        while src.next_phase(&mut batch) {
            assert_eq!(batch.len(), 4);
            phases.push(batch.phase());
            total += batch.len();
        }
        assert_eq!(phases, vec![0, 1, 2]);
        assert_eq!(total, t.len());
        assert_eq!(src.len_hint(), Some(0));
        assert!(!src.next_phase(&mut batch), "exhausted source stays exhausted");
        assert!(batch.is_empty());
    }

    #[test]
    fn materialize_round_trips_a_trace() {
        let t = generate(&IorConfig::default_run(IoOp::Read));
        let round = materialize(&mut TraceBatches::new(&t));
        assert_eq!(round.records(), t.records());
    }

    #[test]
    fn empty_trace_streams_no_batches() {
        let t = Trace::new();
        let mut src = TraceBatches::new(&t);
        let mut batch = RecordBatch::new();
        assert!(!src.next_phase(&mut batch));
        assert!(materialize(&mut TraceBatches::new(&t)).is_empty());
    }
}
