//! Access-pattern analysis: classify how each (file, rank, op) stream
//! moves through the file.
//!
//! MHA's premise is that HPC access patterns are *predictable* — mostly
//! determined by the numerical method, not the input (§III-A). This
//! module makes that checkable: it classifies each stream as sequential,
//! strided, mostly-strided or random, and reports the dominant request
//! size. The dynamic controller and diagnostics build on it.

use crate::record::{FileId, Rank};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use storage_model::IoOp;

/// Spatial classification of one access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpatialPattern {
    /// Each request starts where the previous one ended.
    Sequential,
    /// Constant start-to-start distance.
    Strided {
        /// The constant stride, bytes.
        stride: u64,
    },
    /// One stride dominates but is not universal (fraction in per-mille).
    MostlyStrided {
        /// The dominant stride, bytes.
        stride: u64,
        /// Fraction of deltas matching it, per-mille.
        permille: u16,
    },
    /// No dominant structure.
    Random,
}

/// Analysis of one (file, rank, op) stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamPattern {
    /// File accessed.
    pub file: FileId,
    /// Issuing rank.
    pub rank: Rank,
    /// Operation of the stream.
    pub op: IoOp,
    /// Number of requests.
    pub requests: usize,
    /// Spatial classification.
    pub pattern: SpatialPattern,
    /// Request size covering ≥ half the stream, if any.
    pub dominant_size: Option<u64>,
}

/// Threshold for "mostly" strided: ≥ 80 % of deltas share a stride.
const MOSTLY_PERMILLE: u16 = 800;

/// Classify every (file, rank, op) stream of a trace, in stream order.
pub fn analyze(trace: &Trace) -> Vec<StreamPattern> {
    let mut streams: BTreeMap<(FileId, Rank, bool), Vec<(u64, u64)>> = BTreeMap::new();
    for r in trace.records() {
        streams
            .entry((r.file, r.rank, r.op == IoOp::Write))
            .or_default()
            .push((r.offset, r.len));
    }
    streams
        .into_iter()
        .map(|((file, rank, is_write), reqs)| {
            let op = if is_write { IoOp::Write } else { IoOp::Read };
            StreamPattern {
                file,
                rank,
                op,
                requests: reqs.len(),
                pattern: classify(&reqs),
                dominant_size: dominant_size(&reqs),
            }
        })
        .collect()
}

fn classify(reqs: &[(u64, u64)]) -> SpatialPattern {
    if reqs.len() < 2 {
        return SpatialPattern::Sequential;
    }
    // Sequential: every request starts at the previous end.
    if reqs.windows(2).all(|w| w[0].0 + w[0].1 == w[1].0) {
        return SpatialPattern::Sequential;
    }
    // Stride histogram over start-to-start deltas (signed deltas are
    // folded: backward jumps count as distinct strides).
    let mut counts: BTreeMap<i128, usize> = BTreeMap::new();
    for w in reqs.windows(2) {
        let delta = i128::from(w[1].0) - i128::from(w[0].0);
        *counts.entry(delta).or_insert(0) += 1;
    }
    let total = reqs.len() - 1;
    // reqs.len() >= 2 here, so the histogram is non-empty; classify
    // defensively anyway rather than panicking on a logic slip.
    let Some((&mode, &mode_count)) = counts.iter().max_by_key(|&(_, &c)| c) else {
        return SpatialPattern::Random;
    };
    if mode <= 0 {
        return SpatialPattern::Random;
    }
    let permille = (mode_count * 1000 / total) as u16;
    if mode_count == total {
        SpatialPattern::Strided { stride: mode as u64 }
    } else if permille >= MOSTLY_PERMILLE {
        SpatialPattern::MostlyStrided { stride: mode as u64, permille }
    } else {
        SpatialPattern::Random
    }
}

fn dominant_size(reqs: &[(u64, u64)]) -> Option<u64> {
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for &(_, len) in reqs {
        *counts.entry(len).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .filter(|&(_, c)| c * 2 >= reqs.len())
        .map(|(len, _)| len)
}

/// Aggregate: does the whole trace look predictable (every stream
/// sequential or strided)?
pub fn is_predictable(trace: &Trace) -> bool {
    analyze(trace).iter().all(|s| {
        matches!(
            s.pattern,
            SpatialPattern::Sequential
                | SpatialPattern::Strided { .. }
                | SpatialPattern::MostlyStrided { .. }
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ior, lanl, lu};
    use crate::record::TraceRecord;
    use simrt::SimTime;

    fn stream(offsets_lens: &[(u64, u64)]) -> Vec<(u64, u64)> {
        offsets_lens.to_vec()
    }

    #[test]
    fn sequential_stream_detected() {
        let s = stream(&[(0, 100), (100, 100), (200, 50), (250, 100)]);
        assert_eq!(classify(&s), SpatialPattern::Sequential);
    }

    #[test]
    fn strided_stream_detected() {
        let s = stream(&[(0, 100), (1000, 100), (2000, 100), (3000, 100)]);
        assert_eq!(classify(&s), SpatialPattern::Strided { stride: 1000 });
    }

    #[test]
    fn mostly_strided_tolerates_outliers() {
        // 9 strides of 1000 and one outlier = 900 permille.
        let mut s: Vec<(u64, u64)> = (0..10).map(|i| (i * 1000, 100)).collect();
        s.push((50_000, 100));
        let p = classify(&s);
        assert!(
            matches!(p, SpatialPattern::MostlyStrided { stride: 1000, permille } if permille >= 800),
            "expected mostly-strided, got {p:?}"
        );
    }

    #[test]
    fn random_stream_detected() {
        let s = stream(&[(0, 10), (5000, 10), (100, 10), (90_000, 10), (7, 10), (1234, 10)]);
        assert_eq!(classify(&s), SpatialPattern::Random);
    }

    #[test]
    fn single_request_counts_as_sequential() {
        assert_eq!(classify(&[(42, 10)]), SpatialPattern::Sequential);
    }

    #[test]
    fn dominant_size_requires_majority() {
        assert_eq!(dominant_size(&[(0, 10), (0, 10), (0, 20)]), Some(10));
        assert_eq!(dominant_size(&[(0, 10), (0, 20), (0, 30)]), None);
    }

    #[test]
    fn lu_streams_are_strided_and_predictable() {
        let t = lu::generate(&lu::LuConfig { procs: 2, steps: 32 });
        let analysis = analyze(&t);
        // Per rank: one read stream and one write stream per file.
        assert_eq!(analysis.len(), 4);
        for s in &analysis {
            // Slab writes tile the file back to back (sequential); panel
            // reads shrink by an integer-rounded amount per step, so
            // their deltas are near-constant (strided/mostly-strided).
            assert!(
                matches!(
                    (s.op, s.pattern),
                    (IoOp::Write, SpatialPattern::Sequential)
                        | (IoOp::Read, SpatialPattern::Strided { .. })
                        | (IoOp::Read, SpatialPattern::MostlyStrided { .. })
                ),
                "unexpected LU stream {:?}",
                (s.op, s.pattern)
            );
            if s.op == IoOp::Write {
                assert_eq!(s.dominant_size, Some(lu::WRITE_SIZE));
            }
        }
        assert!(is_predictable(&t));
    }

    #[test]
    fn lanl_streams_are_predictable() {
        let t = lanl::generate(&lanl::LanlConfig::paper(4, IoOp::Write));
        // Each rank cycles three request sizes through strided slots: the
        // per-stream deltas cycle, so streams are not singly-strided, but
        // the trace is structured — verify analysis runs and finds the
        // right stream count (8 ranks) and no dominant size (three sizes
        // tie at 1/3 each).
        let analysis = analyze(&t);
        assert_eq!(analysis.len(), 8);
        for s in &analysis {
            assert_eq!(s.dominant_size, None, "three equal size classes");
        }
    }

    #[test]
    fn random_ior_is_not_predictable() {
        let mut cfg = ior::IorConfig::default_run(IoOp::Write);
        cfg.reqs_per_proc = 32;
        let t = ior::generate(&cfg);
        assert!(!is_predictable(&t), "random-offset IOR must classify random");
    }

    #[test]
    fn streams_split_by_op() {
        let recs = vec![
            TraceRecord {
                pid: 0,
                rank: Rank(0),
                file: FileId(0),
                op: IoOp::Read,
                offset: 0,
                len: 10,
                ts: SimTime::ZERO,
                phase: 0,
            },
            TraceRecord {
                pid: 0,
                rank: Rank(0),
                file: FileId(0),
                op: IoOp::Write,
                offset: 100,
                len: 10,
                ts: SimTime::ZERO,
                phase: 0,
            },
        ];
        let analysis = analyze(&Trace::from_records(recs));
        assert_eq!(analysis.len(), 2);
    }
}
