//! Out-of-core LU decomposition trace synthesizer.
//!
//! The paper replays an LU trace (Maryland HPSL `mambo` suite): dense LU
//! of an 8192×8192 double-precision matrix with a 64-column slab, data
//! spread over 8 files (one per process), synchronous I/O. The write
//! request size is fixed at 524 544 bytes; read sizes range from 6 272 to
//! 524 544 bytes because the panel read at step `k` only covers the
//! trailing (unfactored) rows, which shrink as elimination proceeds.

use crate::gen::PhaseClock;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use storage_model::IoOp;

/// Fixed write (slab flush) size, bytes — from the paper.
pub const WRITE_SIZE: u64 = 524_544;
/// Smallest read (last panel), bytes — from the paper.
pub const READ_MIN: u64 = 6_272;
/// Largest read (first panel), bytes — equals the slab size.
pub const READ_MAX: u64 = 524_544;
/// Number of elimination steps: 8192 columns / 64-column slabs.
pub const STEPS: u32 = 128;

/// LU trace configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LuConfig {
    /// Number of processes = number of files (the paper uses 8).
    pub procs: u32,
    /// Number of elimination steps to emit (≤ [`STEPS`]; full run by default).
    pub steps: u32,
}

impl Default for LuConfig {
    fn default() -> Self {
        LuConfig { procs: 8, steps: STEPS }
    }
}

/// Read size at elimination step `k`: shrinks linearly from [`READ_MAX`]
/// at step 0 to [`READ_MIN`] at the final step.
pub fn read_size_at(k: u32) -> u64 {
    if STEPS <= 1 {
        return READ_MAX;
    }
    let span = READ_MAX - READ_MIN;
    READ_MAX - span * u64::from(k.min(STEPS - 1)) / u64::from(STEPS - 1)
}

/// Generate the LU trace.
///
/// Step `k`: every process reads the current panel from its own file
/// (shrinking size), then writes back the updated slab (fixed size) at the
/// slab's position. Each (step, stage) is one phase across processes —
/// the application uses synchronous, loosely-coupled I/O.
pub fn generate(cfg: &LuConfig) -> Trace {
    assert!(cfg.procs > 0 && cfg.steps > 0 && cfg.steps <= STEPS, "bad LU config");
    let mut clock = PhaseClock::new();
    let mut records = Vec::with_capacity(cfg.procs as usize * cfg.steps as usize * 2);
    for k in 0..cfg.steps {
        let slab_off = u64::from(k) * WRITE_SIZE;
        let rsize = read_size_at(k);
        // Panel read: the trailing rows, i.e. the tail of the slab.
        let read_off = slab_off + (WRITE_SIZE - rsize);
        let (rphase, rts) = clock.tick();
        for p in 0..cfg.procs {
            records.push(TraceRecord {
                pid: 5000 + p,
                rank: Rank(p),
                file: FileId(p),
                op: IoOp::Read,
                offset: read_off,
                len: rsize,
                ts: rts,
                phase: rphase,
            });
        }
        let (wphase, wts) = clock.tick();
        for p in 0..cfg.procs {
            records.push(TraceRecord {
                pid: 5000 + p,
                rank: Rank(p),
                file: FileId(p),
                op: IoOp::Write,
                offset: slab_off,
                len: WRITE_SIZE,
                ts: wts,
                phase: wphase,
            });
        }
    }
    Trace::from_records(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn read_sizes_span_documented_range() {
        assert_eq!(read_size_at(0), READ_MAX);
        assert_eq!(read_size_at(STEPS - 1), READ_MIN);
        for k in 1..STEPS {
            assert!(read_size_at(k) <= read_size_at(k - 1), "monotone shrink");
        }
    }

    #[test]
    fn writes_are_fixed_size() {
        let t = generate(&LuConfig::default());
        for r in t.records().iter().filter(|r| r.op == IoOp::Write) {
            assert_eq!(r.len, WRITE_SIZE);
        }
    }

    #[test]
    fn one_file_per_process() {
        let cfg = LuConfig::default();
        let t = generate(&cfg);
        assert_eq!(t.files().len(), cfg.procs as usize);
        for r in t.records() {
            assert_eq!(r.file.0, r.rank.0, "each rank owns its file");
        }
    }

    #[test]
    fn trace_is_heterogeneous_in_sizes() {
        let s = TraceStats::of(&generate(&LuConfig::default()));
        assert!(s.distinct_sizes > 50, "many distinct read sizes");
        assert_eq!(s.max_request, WRITE_SIZE);
        assert_eq!(s.min_request, READ_MIN);
        assert!(s.is_heterogeneous());
    }

    #[test]
    fn reads_stay_within_written_slabs() {
        let t = generate(&LuConfig::default());
        for r in t.records().iter().filter(|r| r.op == IoOp::Read) {
            let slab = r.offset / WRITE_SIZE;
            assert!(r.end() <= (slab + 1) * WRITE_SIZE, "panel read inside its slab");
        }
    }

    #[test]
    fn record_count_is_two_per_proc_per_step() {
        let cfg = LuConfig { procs: 8, steps: 10 };
        assert_eq!(generate(&cfg).len(), 8 * 10 * 2);
    }

    #[test]
    #[should_panic(expected = "bad LU config")]
    fn too_many_steps_rejected() {
        generate(&LuConfig { procs: 8, steps: STEPS + 1 });
    }
}
