//! BTIO-like workload generator (NAS BT solver, I/O subtype `simple`).
//!
//! BTIO appends one solution dump per time step; each of the P processes
//! (P must be a perfect square) writes its sub-block of the 5-variable
//! grid. The paper modifies BTIO to interleave **class B** and **class C**
//! sized requests against one new file of 1.69 GB + 6.8 GB (the class B
//! and class C solution-history sizes), so each process alternates between
//! a B-sized and a C-sized request across I/O steps (Fig. 12a).

use crate::gen::PhaseClock;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use storage_model::IoOp;

/// Class B solution history total, bytes (≈1.69 GB).
pub const CLASS_B_BYTES: u64 = 1_690_000_000;
/// Class C solution history total, bytes (≈6.8 GB).
pub const CLASS_C_BYTES: u64 = 6_800_000_000;
/// Number of solution dumps (BTIO writes every 5th of 200 steps).
pub const IO_STEPS: u32 = 40;

/// BTIO run configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BtioConfig {
    /// Process count; must be a perfect square (BTIO requirement).
    pub procs: u32,
    /// Operation (BTIO writes during the run, then reads back to verify;
    /// the paper reports the write phase).
    pub op: IoOp,
}

impl BtioConfig {
    /// Paper configuration for a given square process count.
    pub fn paper(procs: u32, op: IoOp) -> Self {
        BtioConfig { procs, op }
    }
}

/// True iff `n` is a perfect square.
fn is_square(n: u32) -> bool {
    let r = (n as f64).sqrt().round() as u32;
    r * r == n
}

/// Generate a BTIO trace.
///
/// Step `s` writes either a class-B-sized or class-C-sized request per
/// process (alternating), at the step's append position with processes
/// interleaved round-robin — BTIO `simple` subtype issues one contiguous
/// chunk per process per dump.
pub fn generate(cfg: &BtioConfig) -> Trace {
    assert!(cfg.procs > 0 && is_square(cfg.procs), "BTIO needs a square process count");
    let p64 = u64::from(cfg.procs);
    let req_b = CLASS_B_BYTES / (u64::from(IO_STEPS) / 2) / p64;
    let req_c = CLASS_C_BYTES / (u64::from(IO_STEPS) / 2) / p64;
    let mut clock = PhaseClock::new();
    let mut records = Vec::with_capacity(IO_STEPS as usize * cfg.procs as usize);
    let mut base = 0u64;
    for s in 0..IO_STEPS {
        let size = if s % 2 == 0 { req_b } else { req_c };
        let (phase, ts) = clock.tick();
        for p in 0..cfg.procs {
            records.push(TraceRecord {
                pid: 3000 + p,
                rank: Rank(p),
                file: FileId(0),
                op: cfg.op,
                offset: base + u64::from(p) * size,
                len: size,
                ts,
                phase,
            });
        }
        base += p64 * size;
    }
    Trace::from_records(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn total_volume_matches_classes() {
        let t = generate(&BtioConfig::paper(9, IoOp::Write));
        let total = t.total_bytes();
        // Integer division loses at most procs*steps bytes.
        let expect = CLASS_B_BYTES + CLASS_C_BYTES;
        assert!(expect - total < 10_000, "total={total} expect={expect}");
    }

    #[test]
    fn two_request_sizes_interleaved() {
        let t = generate(&BtioConfig::paper(16, IoOp::Write));
        let s = TraceStats::of(&t);
        assert_eq!(s.distinct_sizes, 2);
        assert!(s.is_heterogeneous());
        // C-sized requests are ~4x B-sized.
        let ratio = s.max_request as f64 / s.min_request as f64;
        assert!((ratio - 4.02).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    fn writes_tile_the_file_densely() {
        let t = generate(&BtioConfig::paper(4, IoOp::Write));
        let mut spans: Vec<(u64, u64)> = t.records().iter().map(|r| (r.offset, r.len)).collect();
        spans.sort_unstable();
        let mut cursor = 0;
        for (o, l) in spans {
            assert_eq!(o, cursor, "gap or overlap at {o}");
            cursor = o + l;
        }
    }

    #[test]
    fn concurrency_equals_procs() {
        let t = generate(&BtioConfig::paper(25, IoOp::Write));
        assert_eq!(TraceStats::of(&t).max_concurrency, 25);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_procs_rejected() {
        generate(&BtioConfig::paper(10, IoOp::Write));
    }
}
