//! Workload generators standing in for the paper's benchmarks and traces.
//!
//! Each generator emits a [`Trace`](crate::Trace) with the request-size,
//! offset, operation and concurrency structure documented for the original
//! workload. All generators are deterministic given their seed.

pub mod btio;
pub mod burst;
pub mod cholesky;
pub mod hpio;
pub mod ior;
pub mod lanl;
pub mod lu;
pub mod skewed;

use simrt::{SimDuration, SimTime};

/// Hands out phase indices and their timestamps. Every record in a phase
/// shares a timestamp; consecutive phases are spaced far enough apart that
/// a collector with the default window would reconstruct them.
#[derive(Debug, Clone)]
pub struct PhaseClock {
    next_phase: u32,
    gap: SimDuration,
}

impl Default for PhaseClock {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseClock {
    /// Phases spaced 10 ms apart.
    pub fn new() -> Self {
        PhaseClock { next_phase: 0, gap: SimDuration::from_millis(10) }
    }

    /// Allocate the next phase; returns `(phase, timestamp)`.
    pub fn tick(&mut self) -> (u32, SimTime) {
        let phase = self.next_phase;
        self.next_phase += 1;
        (phase, SimTime::ZERO + self.gap * u64::from(phase))
    }

    /// Number of phases allocated so far.
    pub fn phases(&self) -> u32 {
        self.next_phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_clock_monotone() {
        let mut c = PhaseClock::new();
        let (p0, t0) = c.tick();
        let (p1, t1) = c.tick();
        assert_eq!((p0, p1), (0, 1));
        assert!(t1 > t0);
        assert_eq!(c.phases(), 2);
    }
}
