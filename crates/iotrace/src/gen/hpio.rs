//! HPIO-like workload generator (Northwestern/Sandia parallel I/O
//! benchmark).
//!
//! HPIO is parameterized by *region count*, *region spacing* and *region
//! size*; the paper runs it with region count 4096, spacing 0, and region
//! sizes mixed from {16, 32, 64} KiB while varying the process count from
//! 16 to 64 (Fig. 11). Each process owns every `procs`-th region in a
//! round-robin interleaving — HPIO's contiguous/noncontiguous pattern with
//! zero spacing degenerates to a dense interleave, which is what we emit.

use crate::gen::PhaseClock;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use storage_model::IoOp;

/// HPIO run configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HpioConfig {
    /// Number of regions each process accesses.
    pub region_count: u32,
    /// Gap between consecutive regions, bytes.
    pub region_spacing: u64,
    /// Region sizes cycled across the region index (bytes).
    pub region_sizes: Vec<u64>,
    /// Number of processes.
    pub procs: u32,
    /// Operation of the pass.
    pub op: IoOp,
}

impl HpioConfig {
    /// The paper's Fig. 11 setting: 4096 regions, spacing 0, sizes
    /// {16, 32, 64} KiB.
    pub fn paper(procs: u32, op: IoOp) -> Self {
        HpioConfig {
            region_count: 4096,
            region_spacing: 0,
            region_sizes: vec![16 << 10, 32 << 10, 64 << 10],
            procs,
            op,
        }
    }
}

/// Generate an HPIO trace.
///
/// Region `i` of process `p` starts where the previous region ends;
/// regions are laid out `[r0p0, r0p1, ..., r0pN, r1p0, ...]` with the
/// region size cycling through `region_sizes` by region index `i`.
pub fn generate(cfg: &HpioConfig) -> Trace {
    assert!(!cfg.region_sizes.is_empty(), "empty region size mix");
    assert!(cfg.procs > 0 && cfg.region_count > 0, "degenerate HPIO config");
    let mut clock = PhaseClock::new();
    let mut records = Vec::with_capacity(cfg.region_count as usize * cfg.procs as usize);
    let mut base = 0u64;
    for i in 0..cfg.region_count {
        let size = cfg.region_sizes[i as usize % cfg.region_sizes.len()];
        let (phase, ts) = clock.tick();
        for p in 0..cfg.procs {
            let offset = base + u64::from(p) * (size + cfg.region_spacing);
            records.push(TraceRecord {
                pid: 2000 + p,
                rank: Rank(p),
                file: FileId(0),
                op: cfg.op,
                offset,
                len: size,
                ts,
                phase,
            });
        }
        base += u64::from(cfg.procs) * (size + cfg.region_spacing);
    }
    Trace::from_records(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn paper_config_shape() {
        let t = generate(&HpioConfig::paper(16, IoOp::Write));
        let s = TraceStats::of(&t);
        assert_eq!(s.requests, 4096 * 16);
        assert_eq!(s.distinct_sizes, 3);
        assert_eq!(s.max_request, 64 << 10);
        assert_eq!(s.min_request, 16 << 10);
        assert!(s.is_heterogeneous());
        assert_eq!(s.max_concurrency, 16);
    }

    #[test]
    fn zero_spacing_is_dense() {
        let cfg = HpioConfig {
            region_count: 3,
            region_spacing: 0,
            region_sizes: vec![100],
            procs: 2,
            op: IoOp::Read,
        };
        let t = generate(&cfg);
        // Offsets must tile [0, 600) without gaps.
        let mut offs: Vec<(u64, u64)> = t.records().iter().map(|r| (r.offset, r.len)).collect();
        offs.sort_unstable();
        let mut cursor = 0;
        for (o, l) in offs {
            assert_eq!(o, cursor);
            cursor = o + l;
        }
        assert_eq!(cursor, 600);
    }

    #[test]
    fn spacing_creates_holes() {
        let cfg = HpioConfig {
            region_count: 2,
            region_spacing: 50,
            region_sizes: vec![100],
            procs: 1,
            op: IoOp::Read,
        };
        let t = generate(&cfg);
        let r: Vec<u64> = t.records().iter().map(|r| r.offset).collect();
        assert_eq!(r, vec![0, 150]);
    }

    #[test]
    fn sizes_cycle_by_region_index() {
        let t = generate(&HpioConfig::paper(1, IoOp::Read));
        let lens: Vec<u64> = t.records().iter().take(6).map(|r| r.len).collect();
        assert_eq!(
            lens,
            vec![16 << 10, 32 << 10, 64 << 10, 16 << 10, 32 << 10, 64 << 10]
        );
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_procs_rejected() {
        generate(&HpioConfig {
            region_count: 1,
            region_spacing: 0,
            region_sizes: vec![1],
            procs: 0,
            op: IoOp::Read,
        });
    }
}
