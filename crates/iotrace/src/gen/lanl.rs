//! LANL anonymous application ("App2") trace synthesizer.
//!
//! The paper (Fig. 3) documents the per-loop I/O of this application
//! exactly: every loop issues three requests — a 16-byte header, a
//! (128 KiB − 16)-byte body, and a 128 KiB block — so one loop moves
//! 256 KiB per process. Requests of the same size recur *across* the file
//! rather than in a contiguous run, which is precisely the heterogeneity
//! MHA's reordering targets.

use crate::batch::{materialize, BatchSource, RecordBatch};
use crate::gen::PhaseClock;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use storage_model::IoOp;

/// The three request sizes of one LANL loop, in issue order.
pub const LOOP_SIZES: [u64; 3] = [16, 128 * 1024 - 16, 128 * 1024];
/// Bytes moved by one loop of one process.
pub const LOOP_BYTES: u64 = 256 * 1024;

/// LANL trace configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LanlConfig {
    /// Number of client processes (the paper replays with 8).
    pub procs: u32,
    /// Number of loops per process.
    pub loops: u32,
    /// Operation (the application writes; replays may read).
    pub op: IoOp,
}

impl LanlConfig {
    /// The paper's replay setting: 8 clients.
    pub fn paper(loops: u32, op: IoOp) -> Self {
        LanlConfig { procs: 8, loops, op }
    }
}

/// Generate the LANL App2 trace.
///
/// Loop `i` of process `p` owns the 256 KiB slot `(i * procs + p)` of the
/// shared file; within the slot the three requests are laid out
/// back-to-back. Each request position in the loop is its own I/O phase
/// across processes (all ranks emit their 16-byte header together, etc.).
pub fn generate(cfg: &LanlConfig) -> Trace {
    materialize(&mut stream(cfg))
}

/// Stream the LANL run one phase (= one loop position across all ranks)
/// at a time; `generate` is `materialize(stream(cfg))`.
pub fn stream(cfg: &LanlConfig) -> LanlStream {
    assert!(cfg.procs > 0 && cfg.loops > 0, "degenerate LANL config");
    LanlStream { cfg: cfg.clone(), clock: PhaseClock::new(), looop: 0, slot_idx: 0 }
}

/// Streaming LANL App2 generator: each [`BatchSource::next_phase`] emits
/// one of the three per-loop request positions across all ranks.
#[derive(Debug, Clone)]
pub struct LanlStream {
    cfg: LanlConfig,
    clock: PhaseClock,
    looop: u32,
    slot_idx: usize,
}

impl BatchSource for LanlStream {
    fn next_phase(&mut self, batch: &mut RecordBatch) -> bool {
        if self.looop >= self.cfg.loops {
            batch.begin(0);
            return false;
        }
        let cfg = &self.cfg;
        let size = LOOP_SIZES[self.slot_idx];
        let rel: u64 = LOOP_SIZES[..self.slot_idx].iter().sum();
        let (phase, ts) = self.clock.tick();
        batch.begin(phase);
        for p in 0..cfg.procs {
            let slot = u64::from(self.looop) * u64::from(cfg.procs) + u64::from(p);
            batch.push(&TraceRecord {
                pid: 4000 + p,
                rank: Rank(p),
                file: FileId(0),
                op: cfg.op,
                offset: slot * LOOP_BYTES + rel,
                len: size,
                ts,
                phase,
            });
        }
        self.slot_idx += 1;
        if self.slot_idx == LOOP_SIZES.len() {
            self.slot_idx = 0;
            self.looop += 1;
        }
        true
    }

    fn len_hint(&self) -> Option<usize> {
        let done =
            self.looop as usize * LOOP_SIZES.len() + self.slot_idx;
        let total = self.cfg.loops as usize * LOOP_SIZES.len();
        Some((total - done) * self.cfg.procs as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn loop_sizes_sum_to_loop_bytes() {
        assert_eq!(LOOP_SIZES.iter().sum::<u64>(), LOOP_BYTES);
    }

    #[test]
    fn per_process_sequence_matches_fig3() {
        let t = generate(&LanlConfig { procs: 1, loops: 3, op: IoOp::Write });
        let sizes: Vec<u64> = t.records().iter().map(|r| r.len).collect();
        assert_eq!(
            sizes,
            vec![16, 131_056, 131_072, 16, 131_056, 131_072, 16, 131_056, 131_072]
        );
    }

    #[test]
    fn same_size_requests_are_not_contiguous_in_file() {
        // The paper's observation: requests with the same size exist across
        // the file, not in a successive byte run.
        let t = generate(&LanlConfig::paper(4, IoOp::Write));
        let mut headers: Vec<u64> = t
            .records()
            .iter()
            .filter(|r| r.len == 16)
            .map(|r| r.offset)
            .collect();
        headers.sort_unstable();
        for w in headers.windows(2) {
            assert!(w[1] - w[0] >= LOOP_BYTES, "headers separated by whole loops");
        }
    }

    #[test]
    fn writes_tile_the_file() {
        let cfg = LanlConfig::paper(5, IoOp::Write);
        let t = generate(&cfg);
        let mut spans: Vec<(u64, u64)> = t.records().iter().map(|r| (r.offset, r.len)).collect();
        spans.sort_unstable();
        let mut cursor = 0;
        for (o, l) in spans {
            assert_eq!(o, cursor);
            cursor = o + l;
        }
        assert_eq!(cursor, u64::from(cfg.procs) * 5 * LOOP_BYTES);
    }

    #[test]
    fn streaming_phases_match_materialized_records() {
        let cfg = LanlConfig::paper(6, IoOp::Write);
        let t = generate(&cfg);
        let mut src = stream(&cfg);
        let mut batch = RecordBatch::new();
        let mut cursor = 0;
        while src.next_phase(&mut batch) {
            assert_eq!(batch.len(), cfg.procs as usize);
            for i in 0..batch.len() {
                assert_eq!(batch.record(i), t.records()[cursor]);
                cursor += 1;
            }
        }
        assert_eq!(cursor, t.len());
    }

    #[test]
    fn stats_show_three_sizes_and_full_concurrency() {
        let t = generate(&LanlConfig::paper(10, IoOp::Write));
        let s = TraceStats::of(&t);
        assert_eq!(s.distinct_sizes, 3);
        assert_eq!(s.max_concurrency, 8);
        assert!(s.is_heterogeneous());
    }
}
