//! Seeded Zipfian workload with a shifting hot set.
//!
//! Production PFS traces are rarely uniform: a few file regions are hot
//! (checkpoint headers, index blocks) and the hot set drifts over time as
//! the application moves through its working set. This generator
//! reproduces that shape: the file is divided into equal regions, each
//! phase draws every rank's request region from a Zipf(θ) distribution,
//! and every `shift_every` phases the region ranking rotates by one — the
//! previously hottest region cools off and its neighbour heats up.
//!
//! Like every generator in [`crate::gen`], output is deterministic per
//! seed, and `generate(cfg)` is `materialize(stream(cfg))` bit for bit.

use crate::batch::{materialize, BatchSource, RecordBatch};
use crate::gen::PhaseClock;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simrt::SeedSeq;
use storage_model::IoOp;

/// Skewed-workload configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkewedConfig {
    /// Number of client processes (one request per process per phase).
    pub procs: u32,
    /// Number of barrier phases.
    pub phases: usize,
    /// Shared file size, bytes.
    pub file_size: u64,
    /// Request size, bytes.
    pub request_size: u64,
    /// Number of equal file regions the Zipf ranking runs over.
    pub regions: u64,
    /// Zipf exponent θ: 0 = uniform, ~0.99 = classic web-trace skew.
    pub theta: f64,
    /// Phases between hot-set rotations; 0 disables the shift.
    pub shift_every: usize,
    /// Operation type.
    pub op: IoOp,
    /// Workload seed.
    pub seed: u64,
}

impl SkewedConfig {
    /// A hot/cold-shifting default: 16 processes, 64 KiB requests over a
    /// 16 GB file in 64 regions, θ = 0.99, hot set rotating every 8
    /// phases.
    pub fn default_run(op: IoOp) -> Self {
        SkewedConfig {
            procs: 16,
            phases: 64,
            file_size: 16 << 30,
            request_size: 64 << 10,
            regions: 64,
            theta: 0.99,
            shift_every: 8,
            op,
            seed: 0x21F,
        }
    }
}

/// Generate the full skewed trace (`materialize(stream(cfg))`).
pub fn generate(cfg: &SkewedConfig) -> Trace {
    materialize(&mut stream(cfg))
}

/// Stream the skewed workload one phase at a time.
pub fn stream(cfg: &SkewedConfig) -> SkewedStream {
    assert!(cfg.procs > 0 && cfg.regions > 0, "degenerate skewed config");
    assert!(cfg.request_size > 0 && cfg.file_size >= cfg.request_size, "request exceeds file");
    // Precompute the Zipf CDF over region ranks once; each draw is then
    // one uniform variate plus a binary search.
    let mut cdf = Vec::with_capacity(cfg.regions as usize);
    let mut acc = 0.0f64;
    for rank in 0..cfg.regions {
        acc += 1.0 / ((rank + 1) as f64).powf(cfg.theta);
        cdf.push(acc);
    }
    let total = acc;
    for w in &mut cdf {
        *w /= total;
    }
    SkewedStream {
        cfg: cfg.clone(),
        cdf,
        rng: SeedSeq::new(cfg.seed).derive("skewed").rng(),
        clock: PhaseClock::new(),
        phase: 0,
    }
}

/// Streaming Zipfian generator (see module docs).
#[derive(Debug, Clone)]
pub struct SkewedStream {
    cfg: SkewedConfig,
    /// Normalized cumulative Zipf weights over region ranks.
    cdf: Vec<f64>,
    rng: SmallRng,
    clock: PhaseClock,
    phase: usize,
}

impl SkewedStream {
    /// Map a uniform draw to a region rank via the CDF.
    fn draw_rank(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c <= u) as u64
    }
}

impl BatchSource for SkewedStream {
    fn next_phase(&mut self, batch: &mut RecordBatch) -> bool {
        if self.phase >= self.cfg.phases {
            batch.begin(0);
            return false;
        }
        let (phase, ts) = self.clock.tick();
        batch.begin(phase);
        // Hot-set rotation: epoch e maps Zipf rank r to region (r + e),
        // so the hottest region steps through the file one region per
        // epoch while the skew shape stays fixed.
        let epoch = match self.cfg.shift_every {
            0 => 0,
            n => (self.phase / n) as u64,
        };
        let regions = self.cfg.regions;
        let region_size = (self.cfg.file_size / regions).max(self.cfg.request_size);
        let size = self.cfg.request_size;
        let slots = (region_size / size).max(1);
        for p in 0..self.cfg.procs {
            let rank = self.draw_rank();
            let region = (rank + epoch) % regions;
            let slot = self.rng.gen_range(0..slots);
            let offset = (region * region_size + slot * size)
                .min(self.cfg.file_size - size);
            batch.push(&TraceRecord {
                pid: 6000 + p,
                rank: Rank(p),
                file: FileId(0),
                op: self.cfg.op,
                offset,
                len: size,
                ts,
                phase,
            });
        }
        self.phase += 1;
        true
    }

    fn len_hint(&self) -> Option<usize> {
        Some((self.cfg.phases - self.phase) * self.cfg.procs as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = SkewedConfig::default_run(IoOp::Write);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.records(), b.records());
        let mut other = cfg.clone();
        other.seed = 7;
        assert_ne!(generate(&other).records(), a.records());
    }

    #[test]
    fn streaming_phases_match_materialized_records() {
        let cfg = SkewedConfig::default_run(IoOp::Read);
        let t = generate(&cfg);
        let mut src = stream(&cfg);
        let mut batch = RecordBatch::new();
        let mut cursor = 0;
        while src.next_phase(&mut batch) {
            assert_eq!(batch.len(), cfg.procs as usize);
            for i in 0..batch.len() {
                assert_eq!(batch.record(i), t.records()[cursor]);
                cursor += 1;
            }
        }
        assert_eq!(cursor, t.len());
    }

    /// Requests per region within one epoch; region ids are derived from
    /// offsets so the test observes exactly what a server would.
    fn region_histogram(t: &Trace, cfg: &SkewedConfig, phase_lo: u32, phase_hi: u32) -> Vec<u64> {
        let region_size = (cfg.file_size / cfg.regions).max(cfg.request_size);
        let mut hist = vec![0u64; cfg.regions as usize];
        for r in t.records() {
            if r.phase >= phase_lo && r.phase < phase_hi {
                hist[((r.offset / region_size) % cfg.regions) as usize] += 1;
            }
        }
        hist
    }

    #[test]
    fn zipf_concentrates_on_the_hot_region() {
        let mut cfg = SkewedConfig::default_run(IoOp::Write);
        cfg.shift_every = 0;
        cfg.phases = 128;
        let t = generate(&cfg);
        let hist = region_histogram(&t, &cfg, 0, cfg.phases as u32);
        let total: u64 = hist.iter().sum();
        let uniform_share = total / cfg.regions;
        // θ ≈ 1 over 64 regions gives the top region ~21% of the mass —
        // more than 10x its uniform 1/64 share.
        assert!(
            hist[0] > 8 * uniform_share,
            "hot region got {} of {total}, uniform share {uniform_share}",
            hist[0]
        );
        let max = *hist.iter().max().unwrap();
        assert_eq!(hist[0], max, "region 0 is the unshifted hot spot");
    }

    #[test]
    fn zipf_top_k_regions_hold_the_bulk_of_the_mass() {
        // The headline property the online experiments lean on: a small
        // top-k of regions carries most of the traffic, and the mass
        // profile is monotone in rank.
        let mut cfg = SkewedConfig::default_run(IoOp::Write);
        cfg.shift_every = 0;
        cfg.phases = 256;
        let t = generate(&cfg);
        let mut hist = region_histogram(&t, &cfg, 0, cfg.phases as u32);
        let total: u64 = hist.iter().sum();
        hist.sort_unstable_by(|a, b| b.cmp(a));
        let top = |k: usize| -> f64 {
            hist[..k].iter().sum::<u64>() as f64 / total as f64
        };
        // θ = 0.99 over 64 regions: H ≈ 14.6, so the analytic shares are
        // ~32% for the top 4 and ~55% for the top 16. Assert loose
        // sampled bounds around them, plus dominance over uniform.
        assert!(top(4) > 0.25, "top-4 share {:.3} too flat", top(4));
        assert!(top(16) > 0.45, "top-16 share {:.3} too flat", top(16));
        assert!(top(16) < 0.95, "top-16 share {:.3} too peaked for θ<1", top(16));
        let uniform_top16 = 16.0 / cfg.regions as f64;
        assert!(top(16) > 2.0 * uniform_top16, "must dwarf the uniform share");
        assert!(hist.windows(2).all(|w| w[0] >= w[1]), "sorted view is monotone");
    }

    #[test]
    fn hot_set_shifts_between_epochs() {
        let mut cfg = SkewedConfig::default_run(IoOp::Write);
        cfg.phases = 32;
        cfg.shift_every = 16;
        let t = generate(&cfg);
        let first = region_histogram(&t, &cfg, 0, 16);
        let second = region_histogram(&t, &cfg, 16, 32);
        let hot = |h: &[u64]| h.iter().enumerate().max_by_key(|&(_, &c)| c).unwrap().0;
        assert_eq!(hot(&first), 0);
        assert_eq!(hot(&second), 1, "hot region rotated by one");
    }

    #[test]
    fn offsets_stay_in_file_and_stats_are_sane() {
        let cfg = SkewedConfig::default_run(IoOp::Write);
        let t = generate(&cfg);
        assert!(t.validate().is_ok());
        for r in t.records() {
            assert!(r.end() <= cfg.file_size);
        }
        let s = TraceStats::of(&t);
        assert_eq!(s.requests, cfg.phases * cfg.procs as usize);
        assert_eq!(s.max_request, cfg.request_size);
    }
}
