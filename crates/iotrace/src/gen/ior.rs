//! IOR-like workload generator (LLNL parallel file system benchmark).
//!
//! The paper runs IOR through MPI-IO on a shared file, modified to issue
//! *mixed request sizes* (Fig. 7), *mixed process counts* (Fig. 9) and
//! small/large mixes for the overhead study (Fig. 14). Requests are
//! random-offset within the shared file, one request per active process
//! per phase, with the size (or the number of active processes) cycling
//! between the configured mix values by file region — reproducing the
//! paper's "large at one file chunk, small at another" heterogeneity.

use crate::batch::{materialize, BatchSource, RecordBatch};
use crate::gen::PhaseClock;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simrt::SeedSeq;
use storage_model::IoOp;

/// IOR run configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IorConfig {
    /// Number of processes in each interleaved process group. Fig. 7 uses
    /// one entry (e.g. `[32]`); Fig. 9 mixes entries (e.g. `[8, 32]`).
    pub proc_mix: Vec<u32>,
    /// Request sizes cycled across file chunks (bytes). Fig. 7 mixes e.g.
    /// `[128 KiB, 256 KiB]`; uniform runs use one entry.
    pub size_mix: Vec<u64>,
    /// Shared file size, bytes.
    pub file_size: u64,
    /// Requests issued per process.
    pub reqs_per_proc: usize,
    /// Operation type of the run (IOR does separate read and write passes).
    pub op: IoOp,
    /// Random (true, the paper's setting) or sequential offsets.
    pub random_offsets: bool,
    /// Workload seed.
    pub seed: u64,
}

impl IorConfig {
    /// The paper's default: 16 processes, 64 KiB transfers, shared file.
    pub fn default_run(op: IoOp) -> Self {
        IorConfig {
            proc_mix: vec![16],
            size_mix: vec![64 * 1024],
            file_size: 16 << 30,
            reqs_per_proc: 64,
            op,
            random_offsets: true,
            seed: 0x10b,
        }
    }

    /// Fig. 7 configuration: 32 processes, mixed request sizes, 16 GB file.
    pub fn mixed_sizes(sizes: &[u64], op: IoOp) -> Self {
        IorConfig {
            proc_mix: vec![32],
            size_mix: sizes.to_vec(),
            file_size: 16 << 30,
            reqs_per_proc: 64,
            op,
            random_offsets: true,
            seed: 0x10b,
        }
    }

    /// Fig. 9 configuration: 256 KiB requests, mixed process counts.
    pub fn mixed_procs(procs: &[u32], op: IoOp) -> Self {
        IorConfig {
            proc_mix: procs.to_vec(),
            size_mix: vec![256 * 1024],
            file_size: 16 << 30,
            reqs_per_proc: 64,
            op,
            random_offsets: true,
            seed: 0x10b,
        }
    }
}

/// Generate an IOR trace.
///
/// The file is split into as many chunks as there are mix combinations;
/// chunk `c` is accessed with `size_mix[c % sizes]` by
/// `proc_mix[c % procs]` processes, so pattern heterogeneity is tied to
/// file location exactly as in the paper's modified IOR.
///
/// Equivalent to collecting [`stream`] — this is literally
/// `materialize(stream(cfg))`, so the streaming and materialized views
/// of one config are bit-identical by construction.
pub fn generate(cfg: &IorConfig) -> Trace {
    materialize(&mut stream(cfg))
}

/// Stream an IOR run one phase at a time (see [`IorStream`]).
pub fn stream(cfg: &IorConfig) -> IorStream {
    assert!(!cfg.proc_mix.is_empty() && !cfg.size_mix.is_empty(), "empty mix");
    assert!(cfg.file_size > 0, "empty file");
    IorStream {
        cfg: cfg.clone(),
        rng: SeedSeq::new(cfg.seed).derive("ior").rng(),
        clock: PhaseClock::new(),
        iter: 0,
        variants: cfg.proc_mix.len().max(cfg.size_mix.len()),
        max_procs: cfg.proc_mix.iter().copied().max().unwrap_or(1),
    }
}

/// Streaming IOR generator: each [`BatchSource::next_phase`] emits one
/// iteration (= one barrier phase) of the run, so grid-scale runs
/// (millions of records) are replayed without ever holding the full
/// record vector. The RNG is a single stream across phases, exactly as
/// the materializing generator consumed it.
#[derive(Debug, Clone)]
pub struct IorStream {
    cfg: IorConfig,
    rng: SmallRng,
    clock: PhaseClock,
    iter: usize,
    variants: usize,
    max_procs: u32,
}

impl BatchSource for IorStream {
    fn next_phase(&mut self, batch: &mut RecordBatch) -> bool {
        if self.iter >= self.cfg.reqs_per_proc {
            batch.begin(0);
            return false;
        }
        let cfg = &self.cfg;
        let iter = self.iter;
        let variant = iter % self.variants;
        let procs = cfg.proc_mix[variant % cfg.proc_mix.len()];
        let size = cfg.size_mix[variant % cfg.size_mix.len()];
        // Partition the file into one contiguous chunk per pattern variant.
        let chunk = cfg.file_size / self.variants as u64;
        let lo = variant as u64 * chunk;
        let span = chunk.saturating_sub(size).max(1);
        let (phase, ts) = self.clock.tick();
        batch.begin(phase);
        for p in 0..procs {
            let offset = if cfg.random_offsets {
                // Align to the request size like IOR's transferSize blocks.
                let slot = self.rng.gen_range(0..span / size.max(1) + 1);
                lo + slot * size
            } else {
                lo + (iter as u64 * u64::from(self.max_procs) + u64::from(p)) * size
            };
            batch.push(&TraceRecord {
                pid: 1000 + p,
                rank: Rank(p),
                file: FileId(0),
                op: cfg.op,
                offset: offset.min(cfg.file_size.saturating_sub(size)),
                len: size,
                ts,
                phase,
            });
        }
        self.iter += 1;
        true
    }

    fn len_hint(&self) -> Option<usize> {
        // Upper bound: every remaining iteration at the widest mix entry.
        let left = self.cfg.reqs_per_proc.saturating_sub(self.iter);
        Some(left * self.max_procs as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn default_run_is_uniform() {
        let t = generate(&IorConfig::default_run(IoOp::Write));
        let s = TraceStats::of(&t);
        assert_eq!(s.distinct_sizes, 1);
        assert_eq!(s.max_request, 64 * 1024);
        assert_eq!(s.requests, 16 * 64);
        assert!(!s.is_heterogeneous());
    }

    #[test]
    fn mixed_sizes_produces_both_sizes() {
        let t = generate(&IorConfig::mixed_sizes(&[128 << 10, 256 << 10], IoOp::Read));
        let s = TraceStats::of(&t);
        assert_eq!(s.distinct_sizes, 2);
        assert!(s.is_heterogeneous());
        assert_eq!(s.max_request, 256 << 10);
    }

    #[test]
    fn sizes_are_tied_to_file_chunks() {
        let cfg = IorConfig::mixed_sizes(&[128 << 10, 256 << 10], IoOp::Read);
        let t = generate(&cfg);
        let half = cfg.file_size / 2;
        for r in t.records() {
            if r.offset < half {
                assert_eq!(r.len, 128 << 10, "small chunk holds small requests");
            } else {
                assert_eq!(r.len, 256 << 10);
            }
        }
    }

    #[test]
    fn mixed_procs_varies_concurrency() {
        let t = generate(&IorConfig::mixed_procs(&[8, 32], IoOp::Write));
        let conc = t.concurrency();
        let mut distinct: Vec<u32> = conc.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct, vec![8, 32]);
    }

    #[test]
    fn offsets_stay_in_file() {
        let cfg = IorConfig::mixed_sizes(&[256 << 10, 1 << 20], IoOp::Write);
        let t = generate(&cfg);
        for r in t.records() {
            assert!(r.end() <= cfg.file_size, "request escapes file: {r:?}");
        }
    }

    #[test]
    fn streaming_phases_match_materialized_records() {
        let cfg = IorConfig::mixed_sizes(&[128 << 10, 256 << 10], IoOp::Write);
        let t = generate(&cfg);
        let mut src = stream(&cfg);
        let mut batch = crate::batch::RecordBatch::new();
        let mut cursor = 0;
        while src.next_phase(&mut batch) {
            for i in 0..batch.len() {
                assert_eq!(batch.record(i), t.records()[cursor]);
                cursor += 1;
            }
        }
        assert_eq!(cursor, t.len(), "stream covers the whole run");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = IorConfig::default_run(IoOp::Read);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = IorConfig::default_run(IoOp::Read);
        let a = generate(&cfg);
        cfg.seed = 999;
        let b = generate(&cfg);
        assert_ne!(a.records(), b.records());
    }

    #[test]
    #[should_panic(expected = "empty mix")]
    fn empty_mix_rejected() {
        let mut cfg = IorConfig::default_run(IoOp::Read);
        cfg.size_mix.clear();
        generate(&cfg);
    }
}
