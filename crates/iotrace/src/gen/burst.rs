//! Seeded temporal-burst arrival generator (Harmonia-style on/off load).
//!
//! Real PFS clients do not submit at a steady rate: checkpoint storms and
//! analysis sweeps arrive in *bursts* separated by quiet stretches. This
//! generator layers a two-state on/off arrival modulator over the
//! building blocks the other generators already use — per-process
//! Poisson request counts for volume and a Zipf(θ) region distribution
//! for spatial skew. Each phase the modulator is either *off* (baseline
//! load, `mean_reqs` expected requests per process) or *on* (burst load,
//! `on_mult × mean_reqs`); state dwell times are geometric with means
//! `mean_off` / `mean_on` phases, the textbook Markov on/off source.
//!
//! Like every generator in [`crate::gen`], output is deterministic per
//! seed, and `generate(cfg)` is `materialize(stream(cfg))` bit for bit.

use crate::batch::{materialize, BatchSource, RecordBatch};
use crate::gen::PhaseClock;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simrt::SeedSeq;
use storage_model::IoOp;

/// Bursty-workload configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Number of client processes.
    pub procs: u32,
    /// Number of barrier phases.
    pub phases: usize,
    /// Shared file size, bytes.
    pub file_size: u64,
    /// Request size, bytes.
    pub request_size: u64,
    /// Number of equal file regions the Zipf ranking runs over.
    pub regions: u64,
    /// Zipf exponent θ over regions: 0 = uniform spatial load.
    pub theta: f64,
    /// Expected requests per process per off-phase (Poisson mean).
    pub mean_reqs: f64,
    /// Load multiplier while a burst is on.
    pub on_mult: f64,
    /// Mean burst length, phases (geometric dwell).
    pub mean_on: f64,
    /// Mean quiet-stretch length, phases (geometric dwell).
    pub mean_off: f64,
    /// Operation type.
    pub op: IoOp,
    /// Workload seed.
    pub seed: u64,
}

impl BurstConfig {
    /// A checkpoint-storm default: 16 processes over a 16 GB file in 64
    /// regions (θ = 0.9), ~1 request per process per quiet phase, 8x
    /// bursts averaging 4 phases on / 12 phases off.
    pub fn default_run(op: IoOp) -> Self {
        BurstConfig {
            procs: 16,
            phases: 64,
            file_size: 16 << 30,
            request_size: 64 << 10,
            regions: 64,
            theta: 0.9,
            mean_reqs: 1.0,
            on_mult: 8.0,
            mean_on: 4.0,
            mean_off: 12.0,
            op,
            seed: 0xB57,
        }
    }
}

/// Generate the full bursty trace (`materialize(stream(cfg))`).
pub fn generate(cfg: &BurstConfig) -> Trace {
    materialize(&mut stream(cfg))
}

/// Stream the bursty workload one phase at a time.
pub fn stream(cfg: &BurstConfig) -> BurstStream {
    assert!(cfg.procs > 0 && cfg.regions > 0, "degenerate burst config");
    assert!(cfg.request_size > 0 && cfg.file_size >= cfg.request_size, "request exceeds file");
    assert!(cfg.mean_reqs > 0.0 && cfg.on_mult >= 1.0, "burst must not thin the load");
    assert!(cfg.mean_on >= 1.0 && cfg.mean_off >= 1.0, "dwell means are in phases");
    // Zipf CDF over region ranks, same normalization as gen::skewed.
    let mut cdf = Vec::with_capacity(cfg.regions as usize);
    let mut acc = 0.0f64;
    for rank in 0..cfg.regions {
        acc += 1.0 / ((rank + 1) as f64).powf(cfg.theta);
        cdf.push(acc);
    }
    let total = acc;
    for w in &mut cdf {
        *w /= total;
    }
    BurstStream {
        cfg: cfg.clone(),
        cdf,
        rng: SeedSeq::new(cfg.seed).derive("burst").rng(),
        clock: PhaseClock::new(),
        phase: 0,
        on: false,
    }
}

/// Streaming on/off burst generator (see module docs).
#[derive(Debug, Clone)]
pub struct BurstStream {
    cfg: BurstConfig,
    /// Normalized cumulative Zipf weights over region ranks.
    cdf: Vec<f64>,
    rng: SmallRng,
    clock: PhaseClock,
    phase: usize,
    /// Current modulator state (starts off: traces open quiet).
    on: bool,
}

impl BurstStream {
    /// Map a uniform draw to a region rank via the CDF.
    fn draw_rank(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c <= u) as u64
    }

    /// One Poisson(λ) draw (Knuth multiplication; λ stays small here).
    fn draw_poisson(&mut self, lambda: f64) -> u64 {
        let floor = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= self.rng.gen_range(0.0..1.0f64);
            if p <= floor {
                return k;
            }
            k += 1;
        }
    }
}

impl BatchSource for BurstStream {
    fn next_phase(&mut self, batch: &mut RecordBatch) -> bool {
        if self.phase >= self.cfg.phases {
            batch.begin(0);
            return false;
        }
        let (phase, ts) = self.clock.tick();
        batch.begin(phase);
        // Markov on/off modulator: geometric dwells with the configured
        // means (P(switch) = 1/mean). Advanced before emission so a
        // mean_off of 1 can burst from the very first phase.
        let flip = 1.0
            / if self.on {
                self.cfg.mean_on
            } else {
                self.cfg.mean_off
            };
        if self.rng.gen_range(0.0..1.0f64) < flip {
            self.on = !self.on;
        }
        let lambda = if self.on {
            self.cfg.mean_reqs * self.cfg.on_mult
        } else {
            self.cfg.mean_reqs
        };
        let regions = self.cfg.regions;
        let region_size = (self.cfg.file_size / regions).max(self.cfg.request_size);
        let size = self.cfg.request_size;
        let slots = (region_size / size).max(1);
        for p in 0..self.cfg.procs {
            let count = self.draw_poisson(lambda);
            for _ in 0..count {
                let region = self.draw_rank() % regions;
                let slot = self.rng.gen_range(0..slots);
                let offset = (region * region_size + slot * size)
                    .min(self.cfg.file_size - size);
                batch.push(&TraceRecord {
                    pid: 7000 + p,
                    rank: Rank(p),
                    file: FileId(0),
                    op: self.cfg.op,
                    offset,
                    len: size,
                    ts,
                    phase,
                });
            }
        }
        self.phase += 1;
        true
    }

    fn len_hint(&self) -> Option<usize> {
        // Request counts are random per phase; no exact hint exists.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = BurstConfig::default_run(IoOp::Write);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.records(), b.records());
        let mut other = cfg.clone();
        other.seed = 99;
        assert_ne!(generate(&other).records(), a.records());
    }

    #[test]
    fn streaming_phases_match_materialized_records() {
        let cfg = BurstConfig::default_run(IoOp::Read);
        let t = generate(&cfg);
        let mut src = stream(&cfg);
        let mut batch = RecordBatch::new();
        let mut cursor = 0;
        while src.next_phase(&mut batch) {
            for i in 0..batch.len() {
                assert_eq!(batch.record(i), t.records()[cursor]);
                cursor += 1;
            }
        }
        assert_eq!(cursor, t.len());
    }

    #[test]
    fn bursts_carry_far_more_load_than_quiet_phases() {
        let mut cfg = BurstConfig::default_run(IoOp::Write);
        cfg.phases = 512;
        let t = generate(&cfg);
        let mut per_phase = vec![0u64; cfg.phases];
        for r in t.records() {
            per_phase[r.phase as usize] += 1;
        }
        // Split phases into heavy and light halves around the midpoint
        // between the two regimes' expected per-phase counts.
        let base = cfg.mean_reqs * f64::from(cfg.procs);
        let cut = (base * (1.0 + cfg.on_mult) / 2.0) as u64;
        let heavy: Vec<u64> = per_phase.iter().copied().filter(|&c| c > cut).collect();
        let light: Vec<u64> = per_phase.iter().copied().filter(|&c| c <= cut).collect();
        assert!(!heavy.is_empty(), "no burst phase observed in 512 phases");
        assert!(light.len() > heavy.len(), "off dwell (12) outweighs on dwell (4)");
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&heavy) > 4.0 * mean(&light).max(1.0),
            "bursts must dominate: heavy {:.1} vs light {:.1}",
            mean(&heavy),
            mean(&light)
        );
    }

    #[test]
    fn offsets_stay_in_file_and_trace_validates() {
        let cfg = BurstConfig::default_run(IoOp::Write);
        let t = generate(&cfg);
        assert!(t.validate().is_ok());
        for r in t.records() {
            assert!(r.end() <= cfg.file_size);
        }
        let s = TraceStats::of(&t);
        assert!(s.requests > 0);
        assert_eq!(s.max_request, cfg.request_size);
    }
}
