//! Sparse Cholesky factorization trace synthesizer.
//!
//! The paper replays a sparse Cholesky trace (Maryland HPSL `mambo`
//! suite): panel-oriented synchronous I/O from 8 clients, one file per
//! client. Read sizes range from 2 bytes to 4 206 976 bytes and write
//! sizes from 131 556 to 4 206 976 bytes; the paper notes the size
//! distribution "varies more considerably and only has a small number of
//! large requests" — i.e. heavy-tailed with mostly small requests. We
//! draw sizes log-uniformly (deterministically seeded), which produces
//! exactly that many-small/few-large mix within the documented bounds.

use crate::gen::PhaseClock;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simrt::SeedSeq;
use storage_model::IoOp;

/// Smallest read, bytes — from the paper.
pub const READ_MIN: u64 = 2;
/// Largest read/write, bytes — from the paper.
pub const SIZE_MAX: u64 = 4_206_976;
/// Smallest write, bytes — from the paper.
pub const WRITE_MIN: u64 = 131_556;

/// Cholesky trace configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CholeskyConfig {
    /// Number of client processes = files (the paper uses 8).
    pub procs: u32,
    /// Number of panels to factor.
    pub panels: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for CholeskyConfig {
    fn default() -> Self {
        CholeskyConfig { procs: 8, panels: 96, seed: 0xc401e5 }
    }
}

/// Draw a log-uniform size in `[lo, hi]`.
fn log_uniform(rng: &mut impl Rng, lo: u64, hi: u64) -> u64 {
    let (l, h) = ((lo as f64).ln(), (hi as f64).ln());
    let x = rng.gen_range(l..=h).exp();
    (x.round() as u64).clamp(lo, hi)
}

/// Generate the Cholesky trace.
///
/// Panel `j`: each process reads two supernode panels (log-uniform sizes)
/// from its file and writes back one factored panel. Files grow
/// append-style per process; offsets are the running per-process cursor,
/// so requests land at varied, panel-dependent positions.
pub fn generate(cfg: &CholeskyConfig) -> Trace {
    assert!(cfg.procs > 0 && cfg.panels > 0, "degenerate Cholesky config");
    let mut clock = PhaseClock::new();
    let mut records = Vec::with_capacity(cfg.procs as usize * cfg.panels as usize * 3);
    let mut cursor = vec![0u64; cfg.procs as usize];
    for j in 0..cfg.panels {
        for stage in 0..3u32 {
            let (phase, ts) = clock.tick();
            for p in 0..cfg.procs {
                let mut rng = SeedSeq::new(cfg.seed)
                    .derive_idx("chol", u64::from(j) << 34 | u64::from(stage) << 32 | u64::from(p))
                    .rng();
                let (op, len) = if stage < 2 {
                    (IoOp::Read, log_uniform(&mut rng, READ_MIN, SIZE_MAX))
                } else {
                    (IoOp::Write, log_uniform(&mut rng, WRITE_MIN, SIZE_MAX))
                };
                let off = cursor[p as usize];
                cursor[p as usize] += len;
                records.push(TraceRecord {
                    pid: 6000 + p,
                    rank: Rank(p),
                    file: FileId(p),
                    op,
                    offset: off,
                    len,
                    ts,
                    phase,
                });
            }
        }
    }
    Trace::from_records(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn sizes_respect_documented_bounds() {
        let t = generate(&CholeskyConfig::default());
        for r in t.records() {
            match r.op {
                IoOp::Read => assert!(r.len >= READ_MIN && r.len <= SIZE_MAX),
                IoOp::Write => assert!(r.len >= WRITE_MIN && r.len <= SIZE_MAX),
            }
        }
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        let t = generate(&CholeskyConfig::default());
        let reads: Vec<u64> = t
            .records()
            .iter()
            .filter(|r| r.op == IoOp::Read)
            .map(|r| r.len)
            .collect();
        let small = reads.iter().filter(|&&l| l < 64 << 10).count();
        let large = reads.iter().filter(|&&l| l > 1 << 20).count();
        // Log-uniform over [2, 4.2 MB]: most mass below 64 KiB.
        assert!(small > reads.len() / 2, "small={small}/{}", reads.len());
        assert!(large > 0, "some large requests must exist");
        assert!(small > 3 * large, "many small, few large");
    }

    #[test]
    fn per_process_files_are_append_ordered() {
        let t = generate(&CholeskyConfig::default());
        for p in 0..8u32 {
            let mut cursor = 0u64;
            for r in t.records().iter().filter(|r| r.rank.0 == p) {
                assert_eq!(r.offset, cursor, "append-style offsets");
                cursor = r.end();
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&CholeskyConfig::default());
        let b = generate(&CholeskyConfig::default());
        assert_eq!(a.records(), b.records());
        let c = generate(&CholeskyConfig { seed: 1, ..CholeskyConfig::default() });
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn high_size_variance() {
        let s = TraceStats::of(&generate(&CholeskyConfig::default()));
        assert!(s.size_cv > 1.0, "cv={}", s.size_cv);
        assert!(s.is_heterogeneous());
    }
}
