//! Tenant-tagged window multiplexing.
//!
//! A [`WindowMux`] interleaves the windowed streams of several tenants
//! into one deterministic sequence of `(tenant, window)` pairs. Each
//! tenant's stream keeps its own [`WindowedSource`] cursor, and every
//! emitted window is retagged into the tenant's file-id namespace
//! ([`crate::FileId::with_tenant`]), so the merged sequence can feed one shared
//! metadata service without id collisions.
//!
//! The interleaving is round-robin in tenant-registration order and
//! depends only on the streams themselves — two muxes built from the
//! same sources yield identical sequences, which is what the layout
//! service's determinism guarantee rests on.

use crate::batch::BatchSource;
use crate::record::TenantId;
use crate::window::{Window, WindowConfig, WindowedSource};

/// One tenant's windowed stream inside a [`WindowMux`].
struct TenantStream<'a> {
    tenant: TenantId,
    windows: WindowedSource<'a>,
    exhausted: bool,
}

/// Round-robin interleaver over per-tenant windowed streams.
#[derive(Default)]
pub struct WindowMux<'a> {
    streams: Vec<TenantStream<'a>>,
    next: usize,
}

impl<'a> WindowMux<'a> {
    /// An empty mux; add streams with [`WindowMux::add`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `tenant`'s stream, windowed under `cfg`. Tenants are
    /// served in registration order.
    ///
    /// # Panics
    /// If `tenant` is already registered (its windows would interleave
    /// with themselves), or if `cfg` has no bound (see
    /// [`WindowedSource::new`]).
    pub fn add(&mut self, tenant: TenantId, source: &'a mut dyn BatchSource, cfg: WindowConfig) {
        assert!(
            self.streams.iter().all(|s| s.tenant != tenant),
            "tenant {} registered twice",
            tenant.0
        );
        self.streams.push(TenantStream {
            tenant,
            windows: WindowedSource::new(source, cfg),
            exhausted: false,
        });
    }

    /// Registered tenants, in service order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.streams.iter().map(|s| s.tenant).collect()
    }

    /// The next `(tenant, window)` pair: round-robin over live streams,
    /// skipping exhausted tenants; `None` once every stream is dry. The
    /// window's file ids are already retagged into the tenant's
    /// namespace.
    pub fn next_window(&mut self) -> Option<(TenantId, Window)> {
        let n = self.streams.len();
        for probe in 0..n {
            let i = (self.next + probe) % n;
            let stream = &mut self.streams[i];
            if stream.exhausted {
                continue;
            }
            match stream.windows.next_window() {
                Some(mut w) => {
                    w.retag_tenant(stream.tenant);
                    self.next = (i + 1) % n;
                    return Some((stream.tenant, w));
                }
                None => stream.exhausted = true,
            }
        }
        None
    }

    /// Drain the mux into a vector (tenant, window) pairs.
    pub fn collect_all(mut self) -> Vec<(TenantId, Window)> {
        let mut out = Vec::new();
        while let Some(pair) = self.next_window() {
            out.push(pair);
        }
        out
    }
}

/// Convenience check used by services: every file of `window` must sit
/// inside `tenant`'s namespace.
pub fn window_in_namespace(tenant: TenantId, window: &Window) -> bool {
    window.records.iter().all(|r| r.file.tenant() == tenant)
}

impl std::fmt::Debug for WindowMux<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowMux")
            .field("tenants", &self.streams.iter().map(|s| s.tenant.0).collect::<Vec<_>>())
            .field("next", &self.next)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::TraceBatches;
    use crate::gen::ior::{generate, IorConfig};
    use crate::trace::Trace;
    use storage_model::IoOp;

    fn small(op: IoOp, phases: usize) -> Trace {
        let mut cfg = IorConfig::default_run(op);
        cfg.reqs_per_proc = phases;
        cfg.proc_mix = vec![4];
        generate(&cfg)
    }

    #[test]
    fn round_robin_interleaves_and_retags() {
        let (ta, tb) = (small(IoOp::Write, 4), small(IoOp::Read, 2));
        let mut sa = TraceBatches::new(&ta);
        let mut sb = TraceBatches::new(&tb);
        let mut mux = WindowMux::new();
        let cfg = WindowConfig { phases: 1, max_records: 0 };
        mux.add(TenantId(1), &mut sa, cfg);
        mux.add(TenantId(2), &mut sb, cfg);
        let seq = mux.collect_all();
        let tenants: Vec<u32> = seq.iter().map(|(t, _)| t.0).collect();
        // Tenant 2 dries up after two windows; tenant 1 keeps going.
        assert_eq!(tenants, vec![1, 2, 1, 2, 1, 1]);
        for (t, w) in &seq {
            assert!(window_in_namespace(*t, w), "window escaped tenant {}", t.0);
        }
        // The concatenation of each tenant's windows reproduces its
        // stream, modulo the namespace retag.
        let tenant1: Vec<_> = seq
            .iter()
            .filter(|(t, _)| *t == TenantId(1))
            .flat_map(|(_, w)| w.records.iter())
            .collect();
        assert_eq!(tenant1.len(), ta.len());
        for (got, want) in tenant1.iter().zip(ta.records()) {
            assert_eq!(got.file.local(), want.file);
            assert_eq!((got.offset, got.len, got.phase), (want.offset, want.len, want.phase));
        }
    }

    #[test]
    fn same_sources_same_sequence() {
        let t = small(IoOp::Write, 3);
        let run = || {
            let mut s0 = TraceBatches::new(&t);
            let mut s1 = TraceBatches::new(&t);
            let mut mux = WindowMux::new();
            let cfg = WindowConfig { phases: 2, max_records: 0 };
            mux.add(TenantId(0), &mut s0, cfg);
            mux.add(TenantId(3), &mut s1, cfg);
            mux.collect_all()
                .into_iter()
                .map(|(tn, w)| (tn.0, w.first_phase, w.records))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "deterministic interleaving");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_tenant_rejected() {
        let t = small(IoOp::Write, 1);
        let mut s0 = TraceBatches::new(&t);
        let mut s1 = TraceBatches::new(&t);
        let mut mux = WindowMux::new();
        let cfg = WindowConfig { phases: 1, max_records: 0 };
        mux.add(TenantId(1), &mut s0, cfg);
        mux.add(TenantId(1), &mut s1, cfg);
    }
}
