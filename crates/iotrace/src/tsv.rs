//! Line-oriented trace interchange (tab-separated), mirroring the trace
//! files IOSIG writes, plus JSON via serde on [`Trace`] itself.
//!
//! Format, one record per line:
//! `pid<TAB>rank<TAB>file<TAB>op<TAB>offset<TAB>len<TAB>ts_ns<TAB>phase`
//! Lines starting with `#` are comments.

use crate::error::TraceError;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use simrt::SimTime;
use std::fmt::Write as _;
use storage_model::IoOp;

/// Serialize a trace to TSV.
pub fn to_tsv(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 48 + 64);
    out.push_str("# pid\trank\tfile\top\toffset\tlen\tts_ns\tphase\n");
    for r in trace.records() {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.pid,
            r.rank.0,
            r.file.0,
            r.op.name(),
            r.offset,
            r.len,
            r.ts.as_nanos(),
            r.phase
        );
    }
    out
}

/// Parse a trace from TSV and [validate](Trace::validate) it: malformed
/// lines report [`TraceError::Parse`] with the 1-based line number, and a
/// trace that parses but violates a schema invariant (zero-length request,
/// out-of-range rank, out-of-order timestamps, …) reports
/// [`TraceError::InvalidRecord`].
pub fn from_tsv(text: &str) -> Result<Trace, TraceError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 8 {
            return Err(TraceError::Parse {
                line: lineno,
                message: format!("expected 8 fields, found {}", fields.len()),
            });
        }
        let num = |s: &str, what: &str| -> Result<u64, TraceError> {
            s.parse::<u64>().map_err(|e| TraceError::Parse {
                line: lineno,
                message: format!("bad {what} '{s}': {e}"),
            })
        };
        let op = match fields[3] {
            "read" => IoOp::Read,
            "write" => IoOp::Write,
            other => {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("bad op '{other}' (expected read/write)"),
                })
            }
        };
        records.push(TraceRecord {
            pid: num(fields[0], "pid")? as u32,
            rank: Rank(num(fields[1], "rank")? as u32),
            file: FileId(num(fields[2], "file")? as u32),
            op,
            offset: num(fields[4], "offset")?,
            len: num(fields[5], "len")?,
            ts: SimTime::from_nanos(num(fields[6], "ts")?),
            phase: num(fields[7], "phase")? as u32,
        });
    }
    let trace = Trace::from_records(records);
    trace.validate()?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_records(vec![
            TraceRecord {
                pid: 11,
                rank: Rank(0),
                file: FileId(0),
                op: IoOp::Write,
                offset: 0,
                len: 16,
                ts: SimTime::from_nanos(100),
                phase: 0,
            },
            TraceRecord {
                pid: 12,
                rank: Rank(1),
                file: FileId(0),
                op: IoOp::Read,
                offset: 16,
                len: 131_056,
                ts: SimTime::from_nanos(200),
                phase: 1,
            },
        ])
    }

    #[test]
    fn tsv_round_trip() {
        let t = sample();
        let text = to_tsv(&t);
        let back = from_tsv(&text).unwrap();
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n11\t0\t0\twrite\t0\t16\t100\t0\n";
        let t = from_tsv(text).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bad_field_count_reports_line() {
        let err = from_tsv("1\t2\t3\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::Parse { line: 1, message } if message.contains("8 fields")),
            "{err}"
        );
    }

    #[test]
    fn bad_op_rejected() {
        let err = from_tsv("1\t0\t0\tappend\t0\t16\t0\t0\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::Parse { message, .. } if message.contains("bad op")),
            "{err}"
        );
    }

    #[test]
    fn bad_number_rejected() {
        let err = from_tsv("x\t0\t0\tread\t0\t16\t0\t0\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::Parse { message, .. } if message.contains("bad pid")),
            "{err}"
        );
    }

    #[test]
    fn negative_size_rejected_at_parse() {
        // A negative length never parses as u64, so it fails at the
        // parse stage rather than slipping through reinterpreted.
        let err = from_tsv("1\t0\t0\tread\t0\t-16\t0\t0\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::Parse { message, .. } if message.contains("bad len")),
            "{err}"
        );
    }

    #[test]
    fn zero_length_record_rejected_by_validation() {
        let err = from_tsv("1\t0\t0\tread\t0\t0\t0\t0\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 0, reason } if reason.contains("zero-length")),
            "{err}"
        );
    }

    #[test]
    fn out_of_order_timestamps_rejected_by_validation() {
        let text = "1\t0\t0\tread\t0\t16\t200\t0\n1\t0\t0\tread\t16\t16\t100\t1\n";
        let err = from_tsv(text).unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 1, reason } if reason.contains("issue order")),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_rank_rejected_by_validation() {
        let text = format!("1\t{}\t0\tread\t0\t16\t0\t0\n", crate::trace::MAX_RANK);
        let err = from_tsv(&text).unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { reason, .. } if reason.contains("rank")),
            "{err}"
        );
    }

    #[test]
    fn json_round_trip_via_serde() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records(), t.records());
    }
}
