//! Line-oriented trace interchange (tab-separated), mirroring the trace
//! files IOSIG writes, plus JSON via serde on [`Trace`] itself.
//!
//! Format, one record per line:
//! `pid<TAB>rank<TAB>file<TAB>op<TAB>offset<TAB>len<TAB>ts_ns<TAB>phase`
//! Lines starting with `#` are comments.

use crate::error::TraceError;
use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use simrt::SimTime;
use std::fmt::Write as _;
use storage_model::IoOp;

/// Serialize a trace to TSV.
pub fn to_tsv(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 48 + 64);
    out.push_str("# pid\trank\tfile\top\toffset\tlen\tts_ns\tphase\n");
    for r in trace.records() {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.pid,
            r.rank.0,
            r.file.0,
            r.op.name(),
            r.offset,
            r.len,
            r.ts.as_nanos(),
            r.phase
        );
    }
    out
}

/// Parse a trace from TSV and [validate](Trace::validate) it: malformed
/// lines report [`TraceError::Parse`] with the 1-based line number, and a
/// trace that parses but violates a schema invariant (zero-length request,
/// out-of-range rank, out-of-order timestamps, …) reports
/// [`TraceError::InvalidRecord`].
///
/// The parser streams: fields are walked as byte slices into a fixed
/// array (no per-line `Vec<&str>`), numbers take a digit fast path that
/// defers to `str::parse` for anything unusual (so error text is the std
/// library's verbatim), and the record vector is reserved once from a
/// newline count instead of regrowing mid-parse.
pub fn from_tsv(text: &str) -> Result<Trace, TraceError> {
    // Every record costs one line, so the newline count (plus an
    // unterminated tail) bounds the record total.
    let line_upper = text.as_bytes().iter().filter(|&&b| b == b'\n').count()
        + usize::from(!text.is_empty() && !text.ends_with('\n'));
    let mut records = Vec::with_capacity(line_upper);
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split8(line).map_err(|found| TraceError::Parse {
            line: lineno,
            message: format!("expected 8 fields, found {found}"),
        })?;
        let num = |s: &str, what: &str| -> Result<u64, TraceError> {
            parse_u64(s).map_err(|e| TraceError::Parse {
                line: lineno,
                message: format!("bad {what} '{s}': {e}"),
            })
        };
        let op = match fields[3] {
            "read" => IoOp::Read,
            "write" => IoOp::Write,
            other => {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("bad op '{other}' (expected read/write)"),
                })
            }
        };
        records.push(TraceRecord {
            pid: num(fields[0], "pid")? as u32,
            rank: Rank(num(fields[1], "rank")? as u32),
            file: FileId(num(fields[2], "file")? as u32),
            op,
            offset: num(fields[4], "offset")?,
            len: num(fields[5], "len")?,
            ts: SimTime::from_nanos(num(fields[6], "ts")?),
            phase: num(fields[7], "phase")? as u32,
        });
    }
    let trace = Trace::from_records(records);
    trace.validate()?;
    Ok(trace)
}

/// Split a line on tabs into exactly eight borrowed fields. Returns the
/// actual field count on mismatch so the error message stays identical to
/// the old `split('\t').collect::<Vec<_>>()` path.
fn split8(line: &str) -> Result<[&str; 8], usize> {
    let mut fields = [""; 8];
    let mut n = 0usize;
    let mut rest = line;
    loop {
        match rest.as_bytes().iter().position(|&b| b == b'\t') {
            Some(t) => {
                if n < 8 {
                    fields[n] = &rest[..t];
                }
                n += 1;
                rest = &rest[t + 1..];
            }
            None => {
                if n < 8 {
                    fields[n] = rest;
                }
                n += 1;
                break;
            }
        }
    }
    if n == 8 {
        Ok(fields)
    } else {
        Err(n)
    }
}

/// `s.parse::<u64>()` with an all-digit fast path. Nineteen decimal
/// digits can never overflow a u64, so anything longer — and anything
/// containing a non-digit, including signs and leading whitespace — falls
/// back to the std parser for its exact semantics and error values.
fn parse_u64(s: &str) -> Result<u64, std::num::ParseIntError> {
    let b = s.as_bytes();
    if b.is_empty() || b.len() > 19 {
        return s.parse();
    }
    let mut v = 0u64;
    for &c in b {
        let d = c.wrapping_sub(b'0');
        if d > 9 {
            return s.parse();
        }
        v = v * 10 + u64::from(d);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_records(vec![
            TraceRecord {
                pid: 11,
                rank: Rank(0),
                file: FileId(0),
                op: IoOp::Write,
                offset: 0,
                len: 16,
                ts: SimTime::from_nanos(100),
                phase: 0,
            },
            TraceRecord {
                pid: 12,
                rank: Rank(1),
                file: FileId(0),
                op: IoOp::Read,
                offset: 16,
                len: 131_056,
                ts: SimTime::from_nanos(200),
                phase: 1,
            },
        ])
    }

    #[test]
    fn tsv_round_trip() {
        let t = sample();
        let text = to_tsv(&t);
        let back = from_tsv(&text).unwrap();
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n11\t0\t0\twrite\t0\t16\t100\t0\n";
        let t = from_tsv(text).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bad_field_count_reports_line() {
        let err = from_tsv("1\t2\t3\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::Parse { line: 1, message } if message.contains("8 fields")),
            "{err}"
        );
    }

    #[test]
    fn bad_op_rejected() {
        let err = from_tsv("1\t0\t0\tappend\t0\t16\t0\t0\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::Parse { message, .. } if message.contains("bad op")),
            "{err}"
        );
    }

    #[test]
    fn bad_number_rejected() {
        let err = from_tsv("x\t0\t0\tread\t0\t16\t0\t0\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::Parse { message, .. } if message.contains("bad pid")),
            "{err}"
        );
    }

    #[test]
    fn negative_size_rejected_at_parse() {
        // A negative length never parses as u64, so it fails at the
        // parse stage rather than slipping through reinterpreted.
        let err = from_tsv("1\t0\t0\tread\t0\t-16\t0\t0\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::Parse { message, .. } if message.contains("bad len")),
            "{err}"
        );
    }

    #[test]
    fn zero_length_record_rejected_by_validation() {
        let err = from_tsv("1\t0\t0\tread\t0\t0\t0\t0\n").unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 0, reason } if reason.contains("zero-length")),
            "{err}"
        );
    }

    #[test]
    fn out_of_order_timestamps_rejected_by_validation() {
        let text = "1\t0\t0\tread\t0\t16\t200\t0\n1\t0\t0\tread\t16\t16\t100\t1\n";
        let err = from_tsv(text).unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 1, reason } if reason.contains("issue order")),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_rank_rejected_by_validation() {
        let text = format!("1\t{}\t0\tread\t0\t16\t0\t0\n", crate::trace::MAX_RANK);
        let err = from_tsv(&text).unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { reason, .. } if reason.contains("rank")),
            "{err}"
        );
    }

    #[test]
    fn json_round_trip_via_serde() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: JSON codec is the offline stub");
            return;
        }
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records(), t.records());
    }

    /// The pre-streaming parser, kept verbatim as the oracle the
    /// streaming parser is property-tested against.
    fn from_tsv_oracle(text: &str) -> Result<Trace, TraceError> {
        let mut records = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 8 {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("expected 8 fields, found {}", fields.len()),
                });
            }
            let num = |s: &str, what: &str| -> Result<u64, TraceError> {
                s.parse::<u64>().map_err(|e| TraceError::Parse {
                    line: lineno,
                    message: format!("bad {what} '{s}': {e}"),
                })
            };
            let op = match fields[3] {
                "read" => IoOp::Read,
                "write" => IoOp::Write,
                other => {
                    return Err(TraceError::Parse {
                        line: lineno,
                        message: format!("bad op '{other}' (expected read/write)"),
                    })
                }
            };
            records.push(TraceRecord {
                pid: num(fields[0], "pid")? as u32,
                rank: Rank(num(fields[1], "rank")? as u32),
                file: FileId(num(fields[2], "file")? as u32),
                op,
                offset: num(fields[4], "offset")?,
                len: num(fields[5], "len")?,
                ts: SimTime::from_nanos(num(fields[6], "ts")?),
                phase: num(fields[7], "phase")? as u32,
            });
        }
        let trace = Trace::from_records(records);
        trace.validate()?;
        Ok(trace)
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_trace(s: &mut u64, n: usize) -> Trace {
        let mut ts = 0u64;
        let recs = (0..n)
            .map(|i| {
                ts += xorshift(s) % 1000;
                TraceRecord {
                    pid: (xorshift(s) % 10_000) as u32,
                    rank: Rank((xorshift(s) % 1024) as u32),
                    file: FileId((xorshift(s) % 16) as u32),
                    op: if xorshift(s).is_multiple_of(2) { IoOp::Read } else { IoOp::Write },
                    offset: xorshift(s) % (1 << 40),
                    len: 1 + xorshift(s) % (1 << 20),
                    ts: SimTime::from_nanos(ts),
                    phase: (i / 4) as u32,
                }
            })
            .collect();
        Trace::from_records(recs)
    }

    #[test]
    fn streaming_parser_round_trips_randomized_traces() {
        let mut s = 0xDEAD_BEEF_0BAD_F00Du64;
        for trial in 0..50 {
            let n = 1 + (xorshift(&mut s) % 200) as usize;
            let t = random_trace(&mut s, n);
            let text = to_tsv(&t);
            let new = from_tsv(&text).unwrap();
            let old = from_tsv_oracle(&text).unwrap();
            assert_eq!(new.records(), t.records(), "trial {trial}");
            assert_eq!(new.records(), old.records(), "trial {trial}");
            assert_eq!(to_tsv(&new), text, "trial {trial}: byte-identical round trip");
        }
    }

    #[test]
    fn malformed_lines_report_identical_errors() {
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        for trial in 0..120 {
            let n = 1 + (xorshift(&mut s) % 20) as usize;
            let t = random_trace(&mut s, n);
            let mut lines: Vec<String> = to_tsv(&t).lines().map(String::from).collect();
            // Line 0 is the header comment; corrupt one record line.
            let victim = 1 + (xorshift(&mut s) as usize) % (lines.len() - 1);
            let mode = xorshift(&mut s) % 6;
            lines[victim] = {
                let mut f: Vec<String> =
                    lines[victim].split('\t').map(String::from).collect();
                match mode {
                    0 => lines[victim].replace('\t', " "), // too few fields
                    1 => format!("{}\textra", lines[victim]), // too many fields
                    2 => {
                        f[3] = "append".into(); // bad op
                        f.join("\t")
                    }
                    3 => {
                        f[0] = format!("x{}", f[0]); // non-digit pid
                        f.join("\t")
                    }
                    4 => {
                        // Overflows u64 and exceeds the 19-digit fast
                        // path — must fall back to std's error.
                        f[4] = "99999999999999999999999999".into();
                        f.join("\t")
                    }
                    _ => {
                        f[5] = format!("-{}", f[5]); // negative length
                        f.join("\t")
                    }
                }
            };
            let text = lines.join("\n");
            match (from_tsv(&text), from_tsv_oracle(&text)) {
                (
                    Err(TraceError::Parse { line: la, message: ma }),
                    Err(TraceError::Parse { line: lb, message: mb }),
                ) => {
                    assert_eq!((la, &ma), (lb, &mb), "trial {trial} mode {mode}");
                    assert_eq!(la, victim + 1, "trial {trial}: 1-based line number");
                }
                (a, b) => panic!("parsers disagree on trial {trial} mode {mode}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn fast_number_path_matches_std_on_oddities() {
        for s in ["0", "42", "18446744073709551615", "18446744073709551616", "+7", "007", "", " 3", "3 ", "1e3", "0x10", "99999999999999999999999999", "000000000000000000000000007"] {
            assert_eq!(parse_u64(s), s.parse::<u64>(), "input {s:?}");
        }
    }
}
