//! Trace summaries used in reports and by the layout planners.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use simrt::stats::{Log2Histogram, OnlineStats};
use storage_model::IoOp;

/// Summary statistics of a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    /// Record count.
    pub requests: usize,
    /// Read record count.
    pub reads: usize,
    /// Write record count.
    pub writes: usize,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Largest request, bytes (`r_max`).
    pub max_request: u64,
    /// Smallest request, bytes.
    pub min_request: u64,
    /// Mean request size, bytes.
    pub mean_request: f64,
    /// Request-size coefficient of variation — the paper's notion of
    /// "heterogeneous request sizes" corresponds to a large value here.
    pub size_cv: f64,
    /// Number of distinct I/O phases.
    pub phases: u32,
    /// Maximum per-phase concurrency.
    pub max_concurrency: u32,
    /// Mean request start offset, bytes — the cheap spatial signature
    /// online drift detection compares across windows (a hot-spot move
    /// shifts it even when the size mix is unchanged).
    pub mean_offset: f64,
    /// Largest request start offset, bytes — the span that normalizes
    /// spatial drift comparisons.
    pub max_offset: u64,
    /// log2 histogram of request sizes.
    pub size_histogram: Log2Histogram,
    /// Number of distinct request sizes.
    pub distinct_sizes: usize,
}

impl TraceStats {
    /// Compute statistics for `trace`.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut sizes = OnlineStats::new();
        let mut offsets = OnlineStats::new();
        let mut hist = Log2Histogram::new();
        let mut distinct: Vec<u64> = Vec::new();
        let mut reads = 0usize;
        let mut writes = 0usize;
        for r in trace.records() {
            sizes.push(r.len as f64);
            offsets.push(r.offset as f64);
            hist.record(r.len);
            distinct.push(r.len);
            match r.op {
                IoOp::Read => reads += 1,
                IoOp::Write => writes += 1,
            }
        }
        distinct.sort_unstable();
        distinct.dedup();
        let mean = sizes.mean();
        TraceStats {
            requests: trace.len(),
            reads,
            writes,
            total_bytes: trace.total_bytes(),
            read_bytes: trace.bytes_for(IoOp::Read),
            write_bytes: trace.bytes_for(IoOp::Write),
            max_request: trace.max_request_size(),
            min_request: trace.records().iter().map(|r| r.len).min().unwrap_or(0),
            mean_request: mean,
            size_cv: if mean > 0.0 { sizes.stddev() / mean } else { 0.0 },
            phases: trace.phase_count(),
            max_concurrency: trace.concurrency().into_iter().max().unwrap_or(0),
            mean_offset: offsets.mean(),
            max_offset: trace.records().iter().map(|r| r.offset).max().unwrap_or(0),
            size_histogram: hist,
            distinct_sizes: distinct.len(),
        }
    }

    /// Heuristic: does this trace exhibit heterogeneous access patterns
    /// (multiple distinct sizes or notable size dispersion)?
    pub fn is_heterogeneous(&self) -> bool {
        self.distinct_sizes > 1 && self.size_cv > 0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FileId, Rank, TraceRecord};
    use simrt::SimTime;

    fn rec(off: u64, len: u64, phase: u32, op: IoOp) -> TraceRecord {
        TraceRecord {
            pid: 0,
            rank: Rank(0),
            file: FileId(0),
            op,
            offset: off,
            len,
            ts: SimTime::from_nanos(phase as u64),
            phase,
        }
    }

    #[test]
    fn stats_of_uniform_trace() {
        let t = Trace::from_records(vec![
            rec(0, 64, 0, IoOp::Read),
            rec(64, 64, 0, IoOp::Read),
            rec(128, 64, 1, IoOp::Write),
        ]);
        let s = TraceStats::of(&t);
        assert_eq!(s.requests, 3);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total_bytes, 192);
        assert_eq!(s.max_request, 64);
        assert_eq!(s.min_request, 64);
        assert_eq!(s.distinct_sizes, 1);
        assert_eq!(s.size_cv, 0.0);
        assert!(!s.is_heterogeneous());
        assert_eq!(s.max_concurrency, 2);
    }

    #[test]
    fn stats_of_mixed_trace_flags_heterogeneity() {
        let t = Trace::from_records(vec![
            rec(0, 16, 0, IoOp::Write),
            rec(16, 131_056, 1, IoOp::Write),
            rec(131_072, 131_072, 2, IoOp::Write),
        ]);
        let s = TraceStats::of(&t);
        assert_eq!(s.distinct_sizes, 3);
        assert!(s.is_heterogeneous());
        assert_eq!(s.max_request, 131_072);
        assert_eq!(s.min_request, 16);
    }

    #[test]
    fn empty_trace_stats_are_zeroed() {
        let s = TraceStats::of(&Trace::new());
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_request, 0.0);
        assert_eq!(s.size_cv, 0.0);
        assert!(!s.is_heterogeneous());
    }
}
