//! IOSIG-like online trace collector.
//!
//! The paper profiles the application's first run with IOSIG, a pluggable
//! MPI-IO layer library (§III-C). Our middleware ([`mpiio-sim`]) calls
//! [`Collector::record`] on every file operation; phases are inferred from
//! timestamps: records issued within `phase_window` of the phase's first
//! record belong to the same phase (one parallel I/O call).

use crate::record::{FileId, Rank, TraceRecord};
use crate::trace::Trace;
use simrt::{SimDuration, SimTime};
use storage_model::IoOp;

/// Online trace collector.
#[derive(Debug)]
pub struct Collector {
    records: Vec<TraceRecord>,
    phase_window: SimDuration,
    phase_start: SimTime,
    phase: u32,
    enabled: bool,
}

impl Collector {
    /// Collector with a phase window of `window` (records closer together
    /// than this are one concurrent I/O phase).
    pub fn new(window: SimDuration) -> Self {
        Collector {
            records: Vec::new(),
            phase_window: window,
            phase_start: SimTime::ZERO,
            phase: 0,
            enabled: true,
        }
    }

    /// Collector with a 1 ms phase window (suits the simulated MPI-IO
    /// layer, which issues one phase per collective call).
    pub fn with_default_window() -> Self {
        Self::new(SimDuration::from_millis(1))
    }

    /// Pause/resume collection (the paper's tracer is only active during
    /// the first run).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the collector is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one file operation. No-op while disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        pid: u32,
        rank: Rank,
        file: FileId,
        op: IoOp,
        offset: u64,
        len: u64,
        ts: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        if self.records.is_empty() {
            self.phase_start = ts;
        } else if ts.since(self.phase_start) > self.phase_window {
            self.phase += 1;
            self.phase_start = ts;
        }
        self.records.push(TraceRecord {
            pid,
            rank,
            file,
            op,
            offset,
            len,
            ts,
            phase: self.phase,
        });
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finish collection and hand over the trace.
    pub fn finish(self) -> Trace {
        Trace::from_records(self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_ms(c: &mut Collector, ms: u64, rank: u32, off: u64) {
        c.record(
            100 + rank,
            Rank(rank),
            FileId(0),
            IoOp::Write,
            off,
            4096,
            SimTime::from_nanos(ms * 1_000_000),
        );
    }

    #[test]
    fn close_records_share_a_phase() {
        let mut c = Collector::with_default_window();
        at_ms(&mut c, 0, 0, 0);
        at_ms(&mut c, 0, 1, 4096);
        at_ms(&mut c, 0, 2, 8192);
        let t = c.finish();
        assert_eq!(t.phase_count(), 1);
        assert_eq!(t.concurrency(), vec![3, 3, 3]);
    }

    #[test]
    fn distant_records_split_phases() {
        let mut c = Collector::with_default_window();
        at_ms(&mut c, 0, 0, 0);
        at_ms(&mut c, 10, 0, 4096);
        at_ms(&mut c, 20, 0, 8192);
        let t = c.finish();
        assert_eq!(t.phase_count(), 3);
    }

    #[test]
    fn window_is_anchored_at_phase_start() {
        // Records at 0, 0.9ms, 1.8ms: the third is 1.8ms after phase start,
        // outside the 1ms window even though it is only 0.9ms after its
        // predecessor — phases anchor on the first record.
        let mut c = Collector::new(SimDuration::from_millis(1));
        c.record(1, Rank(0), FileId(0), IoOp::Read, 0, 1, SimTime::from_nanos(0));
        c.record(1, Rank(0), FileId(0), IoOp::Read, 1, 1, SimTime::from_nanos(900_000));
        c.record(1, Rank(0), FileId(0), IoOp::Read, 2, 1, SimTime::from_nanos(1_800_000));
        let t = c.finish();
        assert_eq!(t.phase_count(), 2);
    }

    #[test]
    fn disabled_collector_drops_records() {
        let mut c = Collector::with_default_window();
        at_ms(&mut c, 0, 0, 0);
        c.set_enabled(false);
        at_ms(&mut c, 1, 0, 4096);
        c.set_enabled(true);
        at_ms(&mut c, 2, 0, 8192);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_collector_finishes_empty() {
        let c = Collector::with_default_window();
        assert!(c.is_empty());
        assert!(c.finish().is_empty());
    }
}
