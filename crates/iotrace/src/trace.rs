//! A trace: an ordered collection of records plus derived views.

use crate::error::TraceError;
use crate::record::{FileId, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use storage_model::IoOp;

/// Largest request length [`Trace::validate`] accepts (4 TiB). A length
/// above this almost certainly came from a negative size reinterpreted
/// as unsigned during ingestion.
pub const MAX_REQUEST_LEN: u64 = 1 << 42;

/// One past the largest MPI rank [`Trace::validate`] accepts.
pub const MAX_RANK: u32 = 1 << 20;

/// An application I/O trace in issue order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { records: Vec::new() }
    }

    /// Build from records already in issue order.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// Append one record (must not be earlier than the last — issue order).
    pub fn push(&mut self, rec: TraceRecord) {
        debug_assert!(
            self.records.last().map_or(true, |l| rec.ts >= l.ts),
            "trace records must be appended in issue order"
        );
        self.records.push(rec);
    }

    /// Records in issue order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Check the invariants a well-formed ingested trace must satisfy:
    /// every request has a positive, plausible length ([`MAX_REQUEST_LEN`])
    /// and an in-file byte range, ranks are in range ([`MAX_RANK`]), and
    /// timestamps are non-decreasing (the issue-order rule [`Trace::push`]
    /// debug-asserts). Ingestion paths ([`crate::tsv::from_tsv`],
    /// `trace-tool`) run this on every trace they accept.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut last_ts = None;
        for (index, r) in self.records.iter().enumerate() {
            let fail = |reason: String| TraceError::InvalidRecord { index, reason };
            if r.len == 0 {
                return Err(fail("zero-length request".into()));
            }
            if r.len > MAX_REQUEST_LEN {
                return Err(fail(format!(
                    "request length {} exceeds {} bytes (negative size reinterpreted as unsigned?)",
                    r.len, MAX_REQUEST_LEN
                )));
            }
            if r.offset.checked_add(r.len).is_none() {
                return Err(fail(format!(
                    "offset {} + length {} overflows the byte range",
                    r.offset, r.len
                )));
            }
            if r.rank.0 >= MAX_RANK {
                return Err(fail(format!("rank {} out of range (max {})", r.rank.0, MAX_RANK - 1)));
            }
            if let Some(prev) = last_ts {
                if r.ts < prev {
                    return Err(fail(format!(
                        "timestamp {} ns precedes its predecessor at {} ns (records must be in issue order)",
                        r.ts.as_nanos(),
                        prev.as_nanos()
                    )));
                }
            }
            last_ts = Some(r.ts);
        }
        Ok(())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records sorted ascending by (file, offset) — the order the paper's
    /// collector emits for the layout-optimization phases (§III-C).
    pub fn sorted_by_offset(&self) -> Vec<TraceRecord> {
        let mut v = self.records.clone();
        v.sort_by_key(|r| (r.file, r.offset, r.ts, r.rank));
        v
    }

    /// Largest request size in the trace (the `r_max` of Algorithm 2);
    /// zero for an empty trace.
    pub fn max_request_size(&self) -> u64 {
        self.records.iter().map(|r| r.len).max().unwrap_or(0)
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len).sum()
    }

    /// Total bytes moved by `op` requests.
    pub fn bytes_for(&self, op: IoOp) -> u64 {
        self.records.iter().filter(|r| r.op == op).map(|r| r.len).sum()
    }

    /// Distinct files touched, in id order.
    pub fn files(&self) -> Vec<FileId> {
        let mut v: Vec<FileId> = self.records.iter().map(|r| r.file).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Required size of each file (max end offset), keyed by file.
    pub fn file_extents(&self) -> BTreeMap<FileId, u64> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            let e = m.entry(r.file).or_insert(0u64);
            *e = (*e).max(r.end());
        }
        m
    }

    /// Per-record concurrency: for record `i`, the number of records that
    /// share its phase (including itself). This is the paper's "request
    /// concurrency" feature — the number of requests simultaneously issued
    /// to the file.
    pub fn concurrency(&self) -> Vec<u32> {
        let mut phase_count: BTreeMap<(FileId, u32), u32> = BTreeMap::new();
        for r in &self.records {
            *phase_count.entry((r.file, r.phase)).or_insert(0) += 1;
        }
        self.records
            .iter()
            .map(|r| phase_count[&(r.file, r.phase)])
            .collect()
    }

    /// Number of distinct phases.
    pub fn phase_count(&self) -> u32 {
        self.records
            .iter()
            .map(|r| r.phase)
            .max()
            .map_or(0, |p| p + 1)
    }

    /// Restrict to one file.
    pub fn for_file(&self, file: FileId) -> Trace {
        Trace {
            records: self.records.iter().filter(|r| r.file == file).copied().collect(),
        }
    }

    /// Concatenate another trace after this one (phases are shifted so they
    /// stay distinct).
    pub fn extend_with(&mut self, other: &Trace) {
        let shift = self.phase_count();
        for r in &other.records {
            let mut r = *r;
            r.phase += shift;
            self.records.push(r);
        }
        self.records.sort_by_key(|r| (r.ts, r.phase, r.rank, r.offset));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Rank;
    use simrt::SimTime;

    fn rec(file: u32, off: u64, len: u64, phase: u32, op: IoOp) -> TraceRecord {
        TraceRecord {
            pid: 1,
            rank: Rank(0),
            file: FileId(file),
            op,
            offset: off,
            len,
            ts: SimTime::from_nanos(phase as u64),
            phase,
        }
    }

    #[test]
    fn totals_and_rmax() {
        let t = Trace::from_records(vec![
            rec(0, 0, 100, 0, IoOp::Read),
            rec(0, 100, 300, 0, IoOp::Write),
            rec(0, 400, 200, 1, IoOp::Read),
        ]);
        assert_eq!(t.total_bytes(), 600);
        assert_eq!(t.max_request_size(), 300);
        assert_eq!(t.bytes_for(IoOp::Read), 300);
        assert_eq!(t.bytes_for(IoOp::Write), 300);
    }

    #[test]
    fn sorted_by_offset_orders_per_file() {
        let t = Trace::from_records(vec![
            rec(1, 500, 10, 0, IoOp::Read),
            rec(0, 900, 10, 0, IoOp::Read),
            rec(0, 100, 10, 1, IoOp::Read),
        ]);
        let s = t.sorted_by_offset();
        assert_eq!(
            s.iter().map(|r| (r.file.0, r.offset)).collect::<Vec<_>>(),
            vec![(0, 100), (0, 900), (1, 500)]
        );
    }

    #[test]
    fn concurrency_counts_phase_mates() {
        let t = Trace::from_records(vec![
            rec(0, 0, 10, 0, IoOp::Read),
            rec(0, 10, 10, 0, IoOp::Read),
            rec(0, 20, 10, 0, IoOp::Read),
            rec(0, 30, 10, 1, IoOp::Read),
        ]);
        assert_eq!(t.concurrency(), vec![3, 3, 3, 1]);
        assert_eq!(t.phase_count(), 2);
    }

    #[test]
    fn concurrency_is_per_file() {
        let t = Trace::from_records(vec![
            rec(0, 0, 10, 0, IoOp::Read),
            rec(1, 0, 10, 0, IoOp::Read),
        ]);
        assert_eq!(t.concurrency(), vec![1, 1]);
    }

    #[test]
    fn file_extents_track_max_end() {
        let t = Trace::from_records(vec![
            rec(0, 0, 10, 0, IoOp::Read),
            rec(0, 90, 10, 0, IoOp::Read),
            rec(2, 5, 5, 0, IoOp::Read),
        ]);
        let e = t.file_extents();
        assert_eq!(e[&FileId(0)], 100);
        assert_eq!(e[&FileId(2)], 10);
        assert_eq!(t.files(), vec![FileId(0), FileId(2)]);
    }

    #[test]
    fn extend_with_shifts_phases() {
        let mut a = Trace::from_records(vec![rec(0, 0, 10, 0, IoOp::Read)]);
        let b = Trace::from_records(vec![rec(0, 10, 10, 0, IoOp::Read)]);
        a.extend_with(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.phase_count(), 2);
        // Both singleton phases → concurrency 1 each.
        assert_eq!(a.concurrency(), vec![1, 1]);
    }

    #[test]
    fn for_file_filters_records() {
        let t = Trace::from_records(vec![
            rec(0, 0, 10, 0, IoOp::Read),
            rec(1, 0, 20, 0, IoOp::Read),
            rec(0, 10, 30, 1, IoOp::Write),
        ]);
        let f0 = t.for_file(FileId(0));
        assert_eq!(f0.len(), 2);
        assert_eq!(f0.total_bytes(), 40);
        assert!(t.for_file(FileId(9)).is_empty());
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.max_request_size(), 0);
        assert_eq!(t.phase_count(), 0);
        assert!(t.concurrency().is_empty());
    }

    #[test]
    fn validate_accepts_well_formed_traces() {
        let t = Trace::from_records(vec![
            rec(0, 0, 100, 0, IoOp::Read),
            rec(0, 100, 300, 0, IoOp::Write),
            rec(0, 400, 200, 1, IoOp::Read),
        ]);
        assert!(t.validate().is_ok());
        assert!(Trace::new().validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_length_requests() {
        let t = Trace::from_records(vec![rec(0, 0, 10, 0, IoOp::Read), rec(0, 10, 0, 0, IoOp::Read)]);
        let err = t.validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 1, reason } if reason.contains("zero-length")),
            "{err}"
        );
    }

    #[test]
    fn validate_rejects_reinterpreted_negative_sizes() {
        // -4096 as i64, reinterpreted as u64 — the classic ingestion bug.
        let mut r = rec(0, 0, 10, 0, IoOp::Write);
        r.len = (-4096i64) as u64;
        let err = Trace::from_records(vec![r]).validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 0, reason } if reason.contains("exceeds")),
            "{err}"
        );
    }

    #[test]
    fn validate_rejects_overflowing_byte_ranges() {
        let mut r = rec(0, u64::MAX - 100, 10, 0, IoOp::Write);
        r.len = 200;
        let err = Trace::from_records(vec![r]).validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { reason, .. } if reason.contains("overflows")),
            "{err}"
        );
    }

    #[test]
    fn validate_rejects_out_of_range_ranks() {
        let mut r = rec(0, 0, 10, 0, IoOp::Read);
        r.rank = Rank(MAX_RANK);
        let err = Trace::from_records(vec![r]).validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { reason, .. } if reason.contains("rank")),
            "{err}"
        );
    }

    #[test]
    fn validate_rejects_non_monotonic_timestamps() {
        // rec() derives ts from the phase, so phase 1 before phase 0 is
        // exactly the out-of-issue-order shape push() debug-asserts on.
        let t = Trace::from_records(vec![rec(0, 0, 10, 1, IoOp::Read), rec(0, 10, 10, 0, IoOp::Read)]);
        let err = t.validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 1, reason } if reason.contains("issue order")),
            "{err}"
        );
    }

    #[test]
    fn generated_workloads_validate_clean() {
        let t = crate::gen::lanl::generate(&crate::gen::lanl::LanlConfig::paper(4, IoOp::Write));
        assert!(t.validate().is_ok());
        let t = crate::gen::lu::generate(&crate::gen::lu::LuConfig { procs: 2, steps: 16 });
        assert!(t.validate().is_ok());
    }
}
