//! A trace: an ordered collection of records plus derived views.

use crate::error::TraceError;
use crate::record::{FileId, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use storage_model::IoOp;

/// Largest request length [`Trace::validate`] accepts (4 TiB). A length
/// above this almost certainly came from a negative size reinterpreted
/// as unsigned during ingestion.
pub const MAX_REQUEST_LEN: u64 = 1 << 42;

/// One past the largest MPI rank [`Trace::validate`] accepts.
pub const MAX_RANK: u32 = 1 << 20;

/// An application I/O trace in issue order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { records: Vec::new() }
    }

    /// Build from records already in issue order.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// Append one record (must not be earlier than the last — issue order).
    pub fn push(&mut self, rec: TraceRecord) {
        debug_assert!(
            self.records.last().is_none_or(|l| rec.ts >= l.ts),
            "trace records must be appended in issue order"
        );
        self.records.push(rec);
    }

    /// Records in issue order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Check the invariants a well-formed ingested trace must satisfy:
    /// every request has a positive, plausible length ([`MAX_REQUEST_LEN`])
    /// and an in-file byte range, ranks are in range ([`MAX_RANK`]), and
    /// timestamps are non-decreasing (the issue-order rule [`Trace::push`]
    /// debug-asserts). Ingestion paths ([`crate::tsv::from_tsv`],
    /// `trace-tool`) run this on every trace they accept.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut last_ts = None;
        for (index, r) in self.records.iter().enumerate() {
            let fail = |reason: String| TraceError::InvalidRecord { index, reason };
            if r.len == 0 {
                return Err(fail("zero-length request".into()));
            }
            if r.len > MAX_REQUEST_LEN {
                return Err(fail(format!(
                    "request length {} exceeds {} bytes (negative size reinterpreted as unsigned?)",
                    r.len, MAX_REQUEST_LEN
                )));
            }
            if r.offset.checked_add(r.len).is_none() {
                return Err(fail(format!(
                    "offset {} + length {} overflows the byte range",
                    r.offset, r.len
                )));
            }
            if r.rank.0 >= MAX_RANK {
                return Err(fail(format!("rank {} out of range (max {})", r.rank.0, MAX_RANK - 1)));
            }
            if let Some(prev) = last_ts {
                if r.ts < prev {
                    return Err(fail(format!(
                        "timestamp {} ns precedes its predecessor at {} ns (records must be in issue order)",
                        r.ts.as_nanos(),
                        prev.as_nanos()
                    )));
                }
            }
            last_ts = Some(r.ts);
        }
        Ok(())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records sorted ascending by (file, offset) — the order the paper's
    /// collector emits for the layout-optimization phases (§III-C).
    pub fn sorted_by_offset(&self) -> Vec<TraceRecord> {
        let mut v = self.records.clone();
        v.sort_by_key(|r| (r.file, r.offset, r.ts, r.rank));
        v
    }

    /// Largest request size in the trace (the `r_max` of Algorithm 2);
    /// zero for an empty trace.
    pub fn max_request_size(&self) -> u64 {
        self.records.iter().map(|r| r.len).max().unwrap_or(0)
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len).sum()
    }

    /// Total bytes moved by `op` requests.
    pub fn bytes_for(&self, op: IoOp) -> u64 {
        self.records.iter().filter(|r| r.op == op).map(|r| r.len).sum()
    }

    /// Distinct files touched, in id order.
    pub fn files(&self) -> Vec<FileId> {
        let mut v: Vec<FileId> = self.records.iter().map(|r| r.file).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Required size of each file (max end offset), keyed by file.
    pub fn file_extents(&self) -> BTreeMap<FileId, u64> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            let e = m.entry(r.file).or_insert(0u64);
            *e = (*e).max(r.end());
        }
        m
    }

    /// Per-record concurrency: for record `i`, the number of records that
    /// share its phase (including itself). This is the paper's "request
    /// concurrency" feature — the number of requests simultaneously issued
    /// to the file.
    ///
    /// Dense-index counting pass: record indices are bucketed by phase
    /// with one counting sort, then each phase's per-file tallies
    /// accumulate in a flat table reused (and re-zeroed via the bucket)
    /// across phases — O(n + phases + files) with five flat allocations,
    /// replacing a `BTreeMap<(file, phase), count>` walk per record.
    /// Traces whose file or phase ids are too sparse to index densely
    /// fall back to the original map-based pass.
    pub fn concurrency(&self) -> Vec<u32> {
        let n = self.records.len();
        if n == 0 {
            return Vec::new();
        }
        let mut max_file = 0u32;
        let mut max_phase = 0u32;
        for r in &self.records {
            max_file = max_file.max(r.file.0);
            max_phase = max_phase.max(r.phase);
        }
        let limit = 4 * n + 1024;
        if n >= u32::MAX as usize
            || (max_file as usize) >= limit
            || (max_phase as usize) >= limit
        {
            return self.concurrency_sparse();
        }
        let phases = max_phase as usize + 1;
        let files = max_file as usize + 1;
        // Counting-sort record indices by phase.
        let mut starts = vec![0u32; phases + 1];
        for r in &self.records {
            starts[r.phase as usize + 1] += 1;
        }
        for p in 0..phases {
            starts[p + 1] += starts[p];
        }
        let mut cursor: Vec<u32> = starts[..phases].to_vec();
        let mut order = vec![0u32; n];
        for (i, r) in self.records.iter().enumerate() {
            let c = &mut cursor[r.phase as usize];
            order[*c as usize] = i as u32;
            *c += 1;
        }
        // Per phase: tally per-file counts, emit them, zero the touched
        // slots — three linear sweeps over the phase's bucket.
        let mut per_file = vec![0u32; files];
        let mut out = vec![0u32; n];
        for p in 0..phases {
            let bucket = &order[starts[p] as usize..starts[p + 1] as usize];
            for &i in bucket {
                per_file[self.records[i as usize].file.0 as usize] += 1;
            }
            for &i in bucket {
                out[i as usize] = per_file[self.records[i as usize].file.0 as usize];
            }
            for &i in bucket {
                per_file[self.records[i as usize].file.0 as usize] = 0;
            }
        }
        out
    }

    /// The original `BTreeMap<(file, phase), count>` pass — the fallback
    /// for degenerate id ranges and the oracle [`Trace::concurrency`] is
    /// tested against.
    fn concurrency_sparse(&self) -> Vec<u32> {
        let mut phase_count: BTreeMap<(FileId, u32), u32> = BTreeMap::new();
        for r in &self.records {
            *phase_count.entry((r.file, r.phase)).or_insert(0) += 1;
        }
        self.records
            .iter()
            .map(|r| phase_count[&(r.file, r.phase)])
            .collect()
    }

    /// Number of distinct phases.
    pub fn phase_count(&self) -> u32 {
        self.records
            .iter()
            .map(|r| r.phase)
            .max()
            .map_or(0, |p| p + 1)
    }

    /// Records touching `file`, borrowed, in issue order.
    pub fn records_for_file(&self, file: FileId) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.records.iter().filter(move |r| r.file == file)
    }

    /// Concatenate another trace after this one (phases are shifted so they
    /// stay distinct).
    ///
    /// Equivalent to pushing `other`'s shifted records and stable-sorting
    /// the whole vector by `(ts, phase, rank, offset)` — but O(n) when the
    /// halves already concatenate in order (the common multi-job assembly
    /// loop, which used to pay a full re-sort per appended job) and a
    /// single merge of the two sorted halves otherwise.
    pub fn extend_with(&mut self, other: &Trace) {
        let shift = self.phase_count();
        let split = self.records.len();
        self.records.reserve(other.records.len());
        for r in &other.records {
            let mut r = *r;
            r.phase += shift;
            self.records.push(r);
        }
        let key = |r: &TraceRecord| (r.ts, r.phase, r.rank, r.offset);
        let is_sorted =
            |v: &[TraceRecord]| v.windows(2).all(|w| key(&w[0]) <= key(&w[1]));
        let left_ok = is_sorted(&self.records[..split]);
        let right_ok = is_sorted(&self.records[split..]);
        if left_ok
            && right_ok
            && (split == 0
                || split == self.records.len()
                || key(&self.records[split - 1]) <= key(&self.records[split]))
        {
            return;
        }
        // Stable-sorting each half keeps equal keys in push order, exactly
        // as one stable sort of the concatenation would.
        if !left_ok {
            self.records[..split].sort_by_key(key);
        }
        if !right_ok {
            self.records[split..].sort_by_key(key);
        }
        let mut merged = Vec::with_capacity(self.records.len());
        let (left, right) = self.records.split_at(split);
        let (mut i, mut j) = (0, 0);
        // Left-preferring merge: ties resolve to the left half, matching
        // the stability of sorting the concatenation.
        while i < left.len() && j < right.len() {
            if key(&left[i]) <= key(&right[j]) {
                merged.push(left[i]);
                i += 1;
            } else {
                merged.push(right[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&left[i..]);
        merged.extend_from_slice(&right[j..]);
        self.records = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Rank;
    use simrt::SimTime;

    fn rec(file: u32, off: u64, len: u64, phase: u32, op: IoOp) -> TraceRecord {
        TraceRecord {
            pid: 1,
            rank: Rank(0),
            file: FileId(file),
            op,
            offset: off,
            len,
            ts: SimTime::from_nanos(phase as u64),
            phase,
        }
    }

    #[test]
    fn totals_and_rmax() {
        let t = Trace::from_records(vec![
            rec(0, 0, 100, 0, IoOp::Read),
            rec(0, 100, 300, 0, IoOp::Write),
            rec(0, 400, 200, 1, IoOp::Read),
        ]);
        assert_eq!(t.total_bytes(), 600);
        assert_eq!(t.max_request_size(), 300);
        assert_eq!(t.bytes_for(IoOp::Read), 300);
        assert_eq!(t.bytes_for(IoOp::Write), 300);
    }

    #[test]
    fn sorted_by_offset_orders_per_file() {
        let t = Trace::from_records(vec![
            rec(1, 500, 10, 0, IoOp::Read),
            rec(0, 900, 10, 0, IoOp::Read),
            rec(0, 100, 10, 1, IoOp::Read),
        ]);
        let s = t.sorted_by_offset();
        assert_eq!(
            s.iter().map(|r| (r.file.0, r.offset)).collect::<Vec<_>>(),
            vec![(0, 100), (0, 900), (1, 500)]
        );
    }

    #[test]
    fn concurrency_counts_phase_mates() {
        let t = Trace::from_records(vec![
            rec(0, 0, 10, 0, IoOp::Read),
            rec(0, 10, 10, 0, IoOp::Read),
            rec(0, 20, 10, 0, IoOp::Read),
            rec(0, 30, 10, 1, IoOp::Read),
        ]);
        assert_eq!(t.concurrency(), vec![3, 3, 3, 1]);
        assert_eq!(t.phase_count(), 2);
    }

    #[test]
    fn concurrency_is_per_file() {
        let t = Trace::from_records(vec![
            rec(0, 0, 10, 0, IoOp::Read),
            rec(1, 0, 10, 0, IoOp::Read),
        ]);
        assert_eq!(t.concurrency(), vec![1, 1]);
    }

    #[test]
    fn file_extents_track_max_end() {
        let t = Trace::from_records(vec![
            rec(0, 0, 10, 0, IoOp::Read),
            rec(0, 90, 10, 0, IoOp::Read),
            rec(2, 5, 5, 0, IoOp::Read),
        ]);
        let e = t.file_extents();
        assert_eq!(e[&FileId(0)], 100);
        assert_eq!(e[&FileId(2)], 10);
        assert_eq!(t.files(), vec![FileId(0), FileId(2)]);
    }

    #[test]
    fn extend_with_shifts_phases() {
        let mut a = Trace::from_records(vec![rec(0, 0, 10, 0, IoOp::Read)]);
        let b = Trace::from_records(vec![rec(0, 10, 10, 0, IoOp::Read)]);
        a.extend_with(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.phase_count(), 2);
        // Both singleton phases → concurrency 1 each.
        assert_eq!(a.concurrency(), vec![1, 1]);
    }

    /// The merge-based `extend_with` must match the old "push everything,
    /// stable-sort the whole vector" behaviour exactly — including the
    /// phase shift that keeps the two halves' phases distinct — on sorted,
    /// unsorted and interleaved-timestamp halves alike.
    #[test]
    fn extend_with_matches_full_sort_oracle() {
        let mut s = 0xFEED_FACE_CAFE_BEEFu64;
        for trial in 0..60 {
            let na = (xorshift(&mut s) % 40) as usize;
            let nb = (xorshift(&mut s) % 40) as usize;
            let mut ra = random_records(&mut s, na, 4, 6);
            let rb = random_records(&mut s, nb, 4, 6);
            // Half the trials get a pre-sorted left half (the fast path).
            if trial % 2 == 0 {
                ra.sort_by_key(|r| (r.ts, r.phase, r.rank, r.offset));
            }
            let mut got = Trace::from_records(ra.clone());
            let b = Trace::from_records(rb.clone());
            got.extend_with(&b);

            // Oracle: the original implementation.
            let shift = Trace::from_records(ra.clone()).phase_count();
            let mut all = ra;
            all.extend(rb.into_iter().map(|mut r| {
                r.phase += shift;
                r
            }));
            all.sort_by_key(|r| (r.ts, r.phase, r.rank, r.offset));
            assert_eq!(got.records(), &all[..], "trial {trial} (na={na}, nb={nb})");
            assert!(got.phase_count() >= shift, "phases stay distinct");
        }
    }

    #[test]
    fn records_for_file_filters_records() {
        let t = Trace::from_records(vec![
            rec(0, 0, 10, 0, IoOp::Read),
            rec(1, 0, 20, 0, IoOp::Read),
            rec(0, 10, 30, 1, IoOp::Write),
        ]);
        let f0: Vec<&TraceRecord> = t.records_for_file(FileId(0)).collect();
        assert_eq!(f0.len(), 2);
        assert_eq!(f0.iter().map(|r| r.len).sum::<u64>(), 40);
        assert!(f0.iter().all(|r| r.file == FileId(0)));
        assert_eq!(t.records_for_file(FileId(9)).count(), 0);
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_records(s: &mut u64, n: usize, files: u64, phases: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|_| TraceRecord {
                pid: 1,
                rank: Rank((xorshift(s) % 64) as u32),
                file: FileId((xorshift(s) % files) as u32),
                op: IoOp::Read,
                offset: xorshift(s) % 1_000_000,
                len: 1 + xorshift(s) % 4096,
                ts: SimTime::from_nanos(xorshift(s) % 1000),
                phase: (xorshift(s) % phases) as u32,
            })
            .collect()
    }

    #[test]
    fn concurrency_dense_matches_sparse_oracle() {
        let mut s = 0xC0FF_EE00_1234_5678u64;
        for trial in 0..40 {
            let n = 1 + (xorshift(&mut s) % 300) as usize;
            let files = 1 + xorshift(&mut s) % 12;
            let phases = 1 + xorshift(&mut s) % 40;
            let t = Trace::from_records(random_records(&mut s, n, files, phases));
            assert_eq!(t.concurrency(), t.concurrency_sparse(), "trial {trial}");
        }
    }

    #[test]
    fn concurrency_sparse_ids_fall_back_correctly() {
        // File and phase ids far beyond 4n force the sparse path; the
        // answer must not change.
        let mut seed = 0x5EEDu64;
        let mut recs = random_records(&mut seed, 50, 4, 8);
        for (i, r) in recs.iter_mut().enumerate() {
            if i % 3 == 0 {
                r.file = FileId(3_000_000_000);
            }
            if i % 5 == 0 {
                r.phase = 2_000_000_000;
            }
        }
        let t = Trace::from_records(recs);
        assert_eq!(t.concurrency(), t.concurrency_sparse());
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.max_request_size(), 0);
        assert_eq!(t.phase_count(), 0);
        assert!(t.concurrency().is_empty());
    }

    #[test]
    fn validate_accepts_well_formed_traces() {
        let t = Trace::from_records(vec![
            rec(0, 0, 100, 0, IoOp::Read),
            rec(0, 100, 300, 0, IoOp::Write),
            rec(0, 400, 200, 1, IoOp::Read),
        ]);
        assert!(t.validate().is_ok());
        assert!(Trace::new().validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_length_requests() {
        let t = Trace::from_records(vec![rec(0, 0, 10, 0, IoOp::Read), rec(0, 10, 0, 0, IoOp::Read)]);
        let err = t.validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 1, reason } if reason.contains("zero-length")),
            "{err}"
        );
    }

    #[test]
    fn validate_rejects_reinterpreted_negative_sizes() {
        // -4096 as i64, reinterpreted as u64 — the classic ingestion bug.
        let mut r = rec(0, 0, 10, 0, IoOp::Write);
        r.len = (-4096i64) as u64;
        let err = Trace::from_records(vec![r]).validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 0, reason } if reason.contains("exceeds")),
            "{err}"
        );
    }

    #[test]
    fn validate_rejects_overflowing_byte_ranges() {
        let mut r = rec(0, u64::MAX - 100, 10, 0, IoOp::Write);
        r.len = 200;
        let err = Trace::from_records(vec![r]).validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { reason, .. } if reason.contains("overflows")),
            "{err}"
        );
    }

    #[test]
    fn validate_rejects_out_of_range_ranks() {
        let mut r = rec(0, 0, 10, 0, IoOp::Read);
        r.rank = Rank(MAX_RANK);
        let err = Trace::from_records(vec![r]).validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { reason, .. } if reason.contains("rank")),
            "{err}"
        );
    }

    #[test]
    fn validate_rejects_non_monotonic_timestamps() {
        // rec() derives ts from the phase, so phase 1 before phase 0 is
        // exactly the out-of-issue-order shape push() debug-asserts on.
        let t = Trace::from_records(vec![rec(0, 0, 10, 1, IoOp::Read), rec(0, 10, 10, 0, IoOp::Read)]);
        let err = t.validate().unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidRecord { index: 1, reason } if reason.contains("issue order")),
            "{err}"
        );
    }

    #[test]
    fn generated_workloads_validate_clean() {
        let t = crate::gen::lanl::generate(&crate::gen::lanl::LanlConfig::paper(4, IoOp::Write));
        assert!(t.validate().is_ok());
        let t = crate::gen::lu::generate(&crate::gen::lu::LuConfig { procs: 2, steps: 16 });
        assert!(t.validate().is_ok());
    }
}
