//! # mpiio-sim — the MPI-IO middleware layer
//!
//! The MPICH2 substitute: MHA lives at the I/O middleware layer (§III-B),
//! so this crate provides the pieces the paper modifies in MPICH2:
//!
//! * [`job`] — an `MPI_File`-shaped programmatic API: a job with a world
//!   size, `open`/`read_at`/`write_at`/`barrier`, building the I/O stream
//!   an application would issue (each barrier closes one I/O phase),
//! * [`hints`] — `MPI_Info`-style key/value hints selecting the layout
//!   scheme and its knobs,
//! * [`middleware`] — the five-phase lifecycle: the first run profiles
//!   through the IOSIG-like collector (`MPI_Init` arms it,
//!   `MPI_Finalize` flushes), planning runs off-line, the DRT/RST persist
//!   through kvstore, and subsequent runs redirect through the DRT.

pub mod collective;
pub mod hints;
pub mod job;
pub mod middleware;

pub use collective::{lower_collective, CollectiveConfig, Piece};
pub use hints::Hints;
pub use job::{FileHandle, MpiJob};
pub use middleware::{Middleware, RunOutcome};
