//! Two-phase collective I/O (ROMIO-style), lowered at the middleware.
//!
//! `MPI_File_write_at_all` lets the middleware see every rank's piece of
//! a collective access at once. ROMIO's two-phase implementation
//! (a) merges the pieces into contiguous runs, (b) splits the covered
//! range into one contiguous *file domain* per aggregator rank, and
//! (c) has each aggregator issue a single large request for its domain
//! after an in-memory exchange. The exchange overlaps the I/O and is
//! cheap on a fast interconnect, so the lowering emits only the
//! aggregator I/O requests (documented approximation).
//!
//! Collectives interact with MHA in an interesting way the test suite
//! pins down: aggregation homogenizes small interleaved requests into
//! large uniform ones, which *reduces* the pattern heterogeneity MHA
//! exploits — after aggregation, MHA degenerates toward HARL, exactly as
//! the paper predicts for uniform patterns.

use crate::job::{FileHandle, MpiJob};
use serde::{Deserialize, Serialize};

/// One rank's piece of a collective access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Piece {
    /// Issuing rank.
    pub rank: u32,
    /// File offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Collective buffering configuration (the `cb_nodes` hint).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CollectiveConfig {
    /// Number of aggregator ranks issuing the merged I/O.
    pub aggregators: u32,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        CollectiveConfig { aggregators: 4 }
    }
}

/// A contiguous file domain assigned to one aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileDomain {
    /// Aggregator rank that issues the I/O.
    pub aggregator: u32,
    /// Domain start offset.
    pub offset: u64,
    /// Domain length.
    pub len: u64,
}

/// Merge pieces into maximal contiguous runs (holes are preserved — no
/// data sieving), then split each run across aggregators into balanced
/// contiguous domains.
pub fn lower_collective(pieces: &[Piece], cfg: &CollectiveConfig) -> Vec<FileDomain> {
    if pieces.is_empty() {
        return Vec::new();
    }
    let aggs = cfg.aggregators.max(1);
    // Merge.
    let mut sorted: Vec<(u64, u64)> = pieces.iter().map(|p| (p.offset, p.len)).collect();
    sorted.sort_unstable();
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for (off, len) in sorted {
        if len == 0 {
            continue;
        }
        match runs.last_mut() {
            Some((ro, rl)) if *ro + *rl >= off => {
                // Adjacent or overlapping: extend the run.
                let end = (off + len).max(*ro + *rl);
                *rl = end - *ro;
            }
            _ => runs.push((off, len)),
        }
    }
    // Split across aggregators proportionally to run length.
    let total: u64 = runs.iter().map(|&(_, l)| l).sum();
    if total == 0 {
        return Vec::new();
    }
    let per_agg = total.div_ceil(u64::from(aggs));
    let mut domains = Vec::new();
    let mut agg = 0u32;
    let mut agg_left = per_agg;
    for (mut off, mut len) in runs {
        while len > 0 {
            let take = len.min(agg_left);
            domains.push(FileDomain { aggregator: agg, offset: off, len: take });
            off += take;
            len -= take;
            agg_left -= take;
            if agg_left == 0 && agg + 1 < aggs {
                agg += 1;
                agg_left = per_agg;
            } else if agg_left == 0 {
                agg_left = u64::MAX; // last aggregator absorbs the rest
            }
        }
    }
    domains
}

impl MpiJob {
    /// Collective write: all `pieces` belong to one `MPI_File_write_at_all`
    /// call; the middleware lowers them to aggregator requests and closes
    /// the phase (collectives synchronize).
    pub fn write_at_all(&mut self, fh: FileHandle, pieces: &[Piece], cfg: &CollectiveConfig) {
        for d in lower_collective(pieces, cfg) {
            self.write_at(d.aggregator % self.world_size(), fh, d.offset, d.len);
        }
        self.barrier();
    }

    /// Collective read (see [`MpiJob::write_at_all`]).
    pub fn read_at_all(&mut self, fh: FileHandle, pieces: &[Piece], cfg: &CollectiveConfig) {
        for d in lower_collective(pieces, cfg) {
            self.read_at(d.aggregator % self.world_size(), fh, d.offset, d.len);
        }
        self.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pieces_dense(n: u32, size: u64) -> Vec<Piece> {
        (0..n)
            .map(|r| Piece { rank: r, offset: u64::from(r) * size, len: size })
            .collect()
    }

    #[test]
    fn dense_pieces_merge_into_one_run() {
        let d = lower_collective(&pieces_dense(8, 1000), &CollectiveConfig { aggregators: 1 });
        assert_eq!(d.len(), 1);
        assert_eq!(d[0], FileDomain { aggregator: 0, offset: 0, len: 8000 });
    }

    #[test]
    fn domains_balance_across_aggregators() {
        let d = lower_collective(&pieces_dense(8, 1000), &CollectiveConfig { aggregators: 4 });
        assert_eq!(d.len(), 4);
        let total: u64 = d.iter().map(|x| x.len).sum();
        assert_eq!(total, 8000);
        for dom in &d {
            assert_eq!(dom.len, 2000);
        }
        let aggs: Vec<u32> = d.iter().map(|x| x.aggregator).collect();
        assert_eq!(aggs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn holes_are_preserved() {
        let pieces = [
            Piece { rank: 0, offset: 0, len: 100 },
            Piece { rank: 1, offset: 500, len: 100 },
        ];
        let d = lower_collective(&pieces, &CollectiveConfig { aggregators: 1 });
        assert_eq!(d.len(), 2, "no data sieving across holes");
        assert_eq!(d[0].offset, 0);
        assert_eq!(d[1].offset, 500);
    }

    #[test]
    fn overlapping_pieces_coalesce() {
        let pieces = [
            Piece { rank: 0, offset: 0, len: 150 },
            Piece { rank: 1, offset: 100, len: 100 },
        ];
        let d = lower_collective(&pieces, &CollectiveConfig { aggregators: 1 });
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].len, 200);
    }

    #[test]
    fn last_aggregator_absorbs_remainder() {
        let pieces = pieces_dense(7, 1000); // 7000 bytes over 4 aggregators
        let d = lower_collective(&pieces, &CollectiveConfig { aggregators: 4 });
        let total: u64 = d.iter().map(|x| x.len).sum();
        assert_eq!(total, 7000);
        assert!(d.iter().all(|x| x.aggregator < 4));
    }

    #[test]
    fn empty_and_zero_pieces_are_safe() {
        assert!(lower_collective(&[], &CollectiveConfig::default()).is_empty());
        let zeros = [Piece { rank: 0, offset: 10, len: 0 }];
        assert!(lower_collective(&zeros, &CollectiveConfig::default()).is_empty());
    }

    #[test]
    fn collective_job_emits_aggregator_phases() {
        let mut job = MpiJob::new(8);
        let f = job.open("coll");
        let pieces: Vec<Piece> = (0..8)
            .map(|r| Piece { rank: r, offset: u64::from(r) * 4096, len: 4096 })
            .collect();
        job.write_at_all(f, &pieces, &CollectiveConfig { aggregators: 2 });
        job.write_at_all(
            f,
            &pieces
                .iter()
                .map(|p| Piece { offset: p.offset + 32768, ..*p })
                .collect::<Vec<_>>(),
            &CollectiveConfig { aggregators: 2 },
        );
        let t = job.finish();
        assert_eq!(t.phase_count(), 2);
        assert_eq!(t.len(), 4, "two aggregator requests per collective");
        assert!(t.records().iter().all(|r| r.len == 16384));
    }

    #[test]
    fn read_at_all_mirrors_write_at_all() {
        use storage_model::IoOp;
        let mut job = MpiJob::new(4);
        let f = job.open("readback");
        let pieces: Vec<Piece> = (0..4)
            .map(|r| Piece { rank: r, offset: u64::from(r) * 8192, len: 8192 })
            .collect();
        job.read_at_all(f, &pieces, &CollectiveConfig { aggregators: 2 });
        let t = job.finish();
        assert_eq!(t.len(), 2);
        assert!(t.records().iter().all(|r| r.op == IoOp::Read));
        assert_eq!(t.total_bytes(), 4 * 8192);
    }

    #[test]
    fn aggregation_homogenizes_heterogeneous_requests() {
        // The LANL loop issued collectively: the 16 B / 131 056 B /
        // 131 072 B pieces of a loop merge into uniform large domains.
        let mut job = MpiJob::new(8);
        let f = job.open("lanl-coll");
        for i in 0..4u64 {
            let mut pieces = Vec::new();
            for p in 0..8u64 {
                let base = (i * 8 + p) * 262_144;
                pieces.push(Piece { rank: p as u32, offset: base, len: 16 });
                pieces.push(Piece { rank: p as u32, offset: base + 16, len: 131_056 });
                pieces.push(Piece { rank: p as u32, offset: base + 131_072, len: 131_072 });
            }
            job.write_at_all(f, &pieces, &CollectiveConfig { aggregators: 8 });
        }
        let t = job.finish();
        let stats = iotrace::TraceStats::of(&t);
        assert_eq!(stats.distinct_sizes, 1, "aggregation produced uniform requests");
        assert_eq!(stats.max_request, 262_144);
    }
}
