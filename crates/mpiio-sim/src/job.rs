//! The MPI-IO-shaped programmatic API.
//!
//! An [`MpiJob`] is a recorded parallel program: `world_size` ranks issue
//! `read_at`/`write_at` calls against opened files; [`MpiJob::barrier`]
//! closes an I/O phase (everything issued since the previous barrier is
//! considered concurrent, as in a collective I/O call or a loosely
//! synchronized compute loop). `finish` yields the trace the middleware
//! profiles and replays.

use iotrace::record::{FileId, Rank};
use iotrace::{Trace, TraceRecord};
use simrt::{SimDuration, SimTime};
use std::collections::BTreeMap;
use storage_model::IoOp;

/// Handle to an open file within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHandle(FileId);

impl FileHandle {
    /// The underlying file id.
    pub fn file_id(self) -> FileId {
        self.0
    }
}

/// A recorded MPI job.
#[derive(Debug)]
pub struct MpiJob {
    world_size: u32,
    files: BTreeMap<String, FileId>,
    records: Vec<TraceRecord>,
    phase: u32,
    phase_dirty: bool,
    phase_gap: SimDuration,
}

impl MpiJob {
    /// A job with `world_size` ranks.
    ///
    /// # Panics
    /// If `world_size` is zero.
    pub fn new(world_size: u32) -> Self {
        assert!(world_size > 0, "MPI world needs at least one rank");
        MpiJob {
            world_size,
            files: BTreeMap::new(),
            records: Vec::new(),
            phase: 0,
            phase_dirty: false,
            phase_gap: SimDuration::from_millis(10),
        }
    }

    /// Number of ranks.
    pub fn world_size(&self) -> u32 {
        self.world_size
    }

    /// Open (or re-open) a named file; the same name returns the same
    /// handle, as `MPI_File_open` on the same path would.
    pub fn open(&mut self, name: &str) -> FileHandle {
        let next = self.files.len() as u32;
        FileHandle(*self.files.entry(name.to_string()).or_insert(FileId(next)))
    }

    /// Rank `rank` writes `len` bytes at `offset`.
    ///
    /// # Panics
    /// If `rank` is outside the world.
    pub fn write_at(&mut self, rank: u32, fh: FileHandle, offset: u64, len: u64) {
        self.record(rank, fh, IoOp::Write, offset, len);
    }

    /// Rank `rank` reads `len` bytes at `offset`.
    pub fn read_at(&mut self, rank: u32, fh: FileHandle, offset: u64, len: u64) {
        self.record(rank, fh, IoOp::Read, offset, len);
    }

    /// Close the current I/O phase (collective synchronization point).
    /// A barrier with no I/O since the last one is a no-op.
    pub fn barrier(&mut self) {
        if self.phase_dirty {
            self.phase += 1;
            self.phase_dirty = false;
        }
    }

    /// Number of operations recorded so far.
    pub fn ops(&self) -> usize {
        self.records.len()
    }

    /// Finish the job, producing its trace.
    pub fn finish(self) -> Trace {
        Trace::from_records(self.records)
    }

    fn record(&mut self, rank: u32, fh: FileHandle, op: IoOp, offset: u64, len: u64) {
        assert!(rank < self.world_size, "rank {rank} outside world of {}", self.world_size);
        let ts = SimTime::ZERO + self.phase_gap * u64::from(self.phase);
        self.records.push(TraceRecord {
            pid: 7000 + rank,
            rank: Rank(rank),
            file: fh.0,
            op,
            offset,
            len,
            ts,
            phase: self.phase,
        });
        self.phase_dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_is_idempotent_per_name() {
        let mut j = MpiJob::new(4);
        let a = j.open("data.bin");
        let b = j.open("data.bin");
        let c = j.open("other.bin");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn barriers_separate_phases() {
        let mut j = MpiJob::new(2);
        let f = j.open("f");
        j.write_at(0, f, 0, 100);
        j.write_at(1, f, 100, 100);
        j.barrier();
        j.write_at(0, f, 200, 100);
        let t = j.finish();
        assert_eq!(t.phase_count(), 2);
        assert_eq!(t.concurrency(), vec![2, 2, 1]);
    }

    #[test]
    fn empty_barriers_collapse() {
        let mut j = MpiJob::new(1);
        let f = j.open("f");
        j.barrier();
        j.barrier();
        j.write_at(0, f, 0, 10);
        j.barrier();
        j.barrier();
        j.read_at(0, f, 0, 10);
        let t = j.finish();
        assert_eq!(t.phase_count(), 2);
    }

    #[test]
    fn timestamps_grow_with_phases() {
        let mut j = MpiJob::new(1);
        let f = j.open("f");
        j.write_at(0, f, 0, 1);
        j.barrier();
        j.write_at(0, f, 1, 1);
        let t = j.finish();
        assert!(t.records()[1].ts > t.records()[0].ts);
    }

    #[test]
    #[should_panic(expected = "outside world")]
    fn out_of_world_rank_panics() {
        let mut j = MpiJob::new(2);
        let f = j.open("f");
        j.write_at(2, f, 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_world_rejected() {
        MpiJob::new(0);
    }
}
