//! `MPI_Info`-style hints controlling the middleware.
//!
//! ROMIO exposes layout knobs (`striping_unit`, `striping_factor`, ...)
//! through `MPI_Info`; our middleware follows the same convention for the
//! MHA controls the paper adds.

use mha_core::schemes::Scheme;
use std::collections::BTreeMap;

/// Parsed hint set.
#[derive(Debug, Clone, Default)]
pub struct Hints {
    map: BTreeMap<String, String>,
}

impl Hints {
    /// Empty hint set (all defaults).
    pub fn new() -> Self {
        Hints::default()
    }

    /// Set a hint (returns self for chaining, like `MPI_Info_set`).
    pub fn set(mut self, key: &str, value: &str) -> Self {
        self.map.insert(key.to_string(), value.to_string());
        self
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// `mha_scheme`: one of `def`, `aal`, `harl`, `mha` (default `mha`).
    pub fn scheme(&self) -> Scheme {
        match self.get("mha_scheme").unwrap_or("mha") {
            "def" => Scheme::Def,
            "aal" => Scheme::Aal,
            "harl" => Scheme::Harl,
            _ => Scheme::Mha,
        }
    }

    /// `mha_group_bound`: the k cap of Algorithm 1 (default 8).
    pub fn group_bound(&self) -> usize {
        self.parsed("mha_group_bound", 8)
    }

    /// `mha_step`: the RSSD search step in bytes (default 4096).
    pub fn step(&self) -> u64 {
        self.parsed("mha_step", 4096)
    }

    /// `mha_harl_regions`: HARL's fixed region count (default 8).
    pub fn harl_regions(&self) -> u32 {
        self.parsed("mha_harl_regions", 8)
    }

    /// `mha_lookup_us`: redirection lookup cost in microseconds
    /// (default 5).
    pub fn lookup_us(&self) -> u64 {
        self.parsed("mha_lookup_us", 5)
    }

    /// `mha_selective_gain`: minimum predicted cost improvement (as a
    /// fraction) a request group must show before its data is migrated
    /// (default 0 = migrate all groups).
    pub fn selective_gain(&self) -> f64 {
        self.parsed("mha_selective_gain", 0.0)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_mha() {
        let h = Hints::new();
        assert_eq!(h.scheme(), Scheme::Mha);
        assert_eq!(h.group_bound(), 8);
        assert_eq!(h.step(), 4096);
        assert_eq!(h.harl_regions(), 8);
        assert_eq!(h.lookup_us(), 5);
    }

    #[test]
    fn hints_parse() {
        let h = Hints::new()
            .set("mha_scheme", "harl")
            .set("mha_group_bound", "4")
            .set("mha_step", "16384");
        assert_eq!(h.scheme(), Scheme::Harl);
        assert_eq!(h.group_bound(), 4);
        assert_eq!(h.step(), 16384);
    }

    #[test]
    fn garbage_values_fall_back_to_defaults() {
        let h = Hints::new().set("mha_group_bound", "lots").set("mha_scheme", "magic");
        assert_eq!(h.group_bound(), 8);
        assert_eq!(h.scheme(), Scheme::Mha, "unknown scheme falls back to mha");
    }

    #[test]
    fn all_scheme_names_parse() {
        for (name, scheme) in [
            ("def", Scheme::Def),
            ("aal", Scheme::Aal),
            ("harl", Scheme::Harl),
            ("mha", Scheme::Mha),
        ] {
            assert_eq!(Hints::new().set("mha_scheme", name).scheme(), scheme);
        }
    }
}
