//! The middleware lifecycle: profile → plan → persist → redirect.
//!
//! This is the paper's five-phase flow wired end to end:
//!
//! 1. **Tracing** — the first run executes against the default layout
//!    with the IOSIG-like collector armed (the paper reports 2–6 %
//!    profiling overhead; we charge it as a per-op latency).
//! 2. **Reordering + determination** — off-line planning through the
//!    scheme selected by hints.
//! 3. **Persistence** — the plan (DRT, RST, layouts) commits atomically
//!    through the crash-consistent [`PipelineStore`] in the job's working
//!    directory, as the modified `MPI_Init`/`MPI_Finalize` keep their
//!    Berkeley DB file in the paper — a crash mid-save leaves the
//!    previous committed plan intact.
//! 4. **Placement** — region layouts install into the cluster's MDS.
//! 5. **Redirection** — subsequent runs resolve through the DRT.

use iotrace::{Collector, Trace};
use mha_core::persist::PipelineStore;
use mha_core::region::{Drt, Rst};
use mha_core::schemes::{apply_plan, Plan, PlanResolver, PlannerContext, Scheme};
use mha_core::{DrtResolver, GroupingConfig, RssdConfig};
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, IdentityResolver, ReplayInput, ReplayReport, ReplaySession,
};
use simrt::SimDuration;
use std::path::{Path, PathBuf};

use crate::hints::Hints;

/// Outcome of one middleware-driven run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Replay measurements.
    pub report: ReplayReport,
    /// Scheme that was active.
    pub scheme: Scheme,
    /// Requests redirected through the DRT (0 for identity plans).
    pub redirected: u64,
}

/// The MHA middleware instance for one application.
pub struct Middleware {
    hints: Hints,
    table_path: Option<PathBuf>,
    plan: Option<Plan>,
    profile: Option<Trace>,
}

impl Middleware {
    /// Middleware with the given hints, keeping tables in memory only.
    pub fn new(hints: Hints) -> Self {
        Middleware { hints, table_path: None, plan: None, profile: None }
    }

    /// Persist the DRT/RST in a kvstore file at `path` (the paper keeps
    /// the Berkeley DB file in the MPI program's directory).
    pub fn with_table_store(mut self, path: impl AsRef<Path>) -> Self {
        self.table_path = Some(path.as_ref().to_path_buf());
        self
    }

    /// Hints in effect.
    pub fn hints(&self) -> &Hints {
        &self.hints
    }

    /// The trace captured by the profiling run, if any.
    pub fn profile(&self) -> Option<&Trace> {
        self.profile.as_ref()
    }

    /// The computed plan, if planning has happened.
    pub fn plan(&self) -> Option<&Plan> {
        self.plan.as_ref()
    }

    /// Phase 1: the application's first run. Executes `trace` against the
    /// cluster's default layout with the collector armed, stores the
    /// captured profile, and returns the (unoptimized) measurements.
    pub fn profile_run(&mut self, cluster_cfg: &ClusterConfig, trace: &Trace) -> RunOutcome {
        let mut cluster = Cluster::new(cluster_cfg.clone());
        // Re-collect through the IOSIG layer: in a real deployment the
        // collector sees the live calls; here the trace *is* the call
        // stream, so collection is a faithful copy with phase inference.
        let mut collector = Collector::with_default_window();
        for r in trace.records() {
            collector.record(r.pid, r.rank, r.file, r.op, r.offset, r.len, r.ts);
        }
        let report = ReplaySession::new()
            .run(ReplayInput::trace(&mut cluster, trace, &mut IdentityResolver), CoreSel::Auto)
            .expect("fault-free replay cannot fail");
        self.profile = Some(collector.finish());
        RunOutcome { report, scheme: Scheme::Def, redirected: 0 }
    }

    /// Phases 2–4: off-line planning from the captured profile, then
    /// persist the tables. Requires a prior [`Middleware::profile_run`].
    pub fn plan_from_profile(&mut self, cluster_cfg: &ClusterConfig) -> &Plan {
        let trace = self.profile.as_ref().expect("profile_run must precede planning");
        let ctx = self.context(cluster_cfg);
        let plan = self.hints.scheme().planner().plan(trace, &ctx);
        if let Some(path) = &self.table_path {
            let store = PipelineStore::open(path).expect("open table store");
            store.save_plan(&plan).expect("persist plan");
        }
        self.plan = Some(plan);
        self.plan.as_ref().expect("just set")
    }

    /// Phase 5: a subsequent run — install the planned layouts and replay
    /// with redirection.
    pub fn optimized_run(&self, cluster_cfg: &ClusterConfig, trace: &Trace) -> RunOutcome {
        let plan = self.plan.as_ref().expect("plan_from_profile must precede optimized_run");
        let mut cluster = Cluster::new(cluster_cfg.clone());
        apply_plan(&mut cluster, plan);
        let lookup = SimDuration::from_micros(self.hints.lookup_us());
        match &plan.resolver {
            PlanResolver::Identity => {
                let report = ReplaySession::new()
                    .run(ReplayInput::trace(&mut cluster, trace, &mut IdentityResolver), CoreSel::Auto)
                    .expect("fault-free replay cannot fail");
                RunOutcome { report, scheme: plan.scheme, redirected: 0 }
            }
            PlanResolver::Drt(drt) => {
                let mut resolver = DrtResolver::new(drt.clone(), lookup);
                let report = ReplaySession::new()
                    .run(ReplayInput::trace(&mut cluster, trace, &mut resolver), CoreSel::Auto)
                    .expect("fault-free replay cannot fail");
                RunOutcome { report, scheme: plan.scheme, redirected: resolver.redirected() }
            }
        }
    }

    /// Reload the committed tables (what the modified `MPI_Init` does at
    /// the start of a subsequent run). Returns the tables read back, or
    /// `None` when no generation has committed or the store is damaged.
    pub fn load_tables(&self) -> Option<(Drt, Rst)> {
        let path = self.table_path.as_ref()?;
        let store = PipelineStore::open(path).ok()?;
        store.load_tables().ok()?
    }

    /// Reload the whole committed plan — tables plus scheme, layouts and
    /// region descriptors.
    pub fn load_plan(&self) -> Option<Plan> {
        let path = self.table_path.as_ref()?;
        let store = PipelineStore::open(path).ok()?;
        store.load_plan().ok()?
    }

    /// Restart path: adopt the committed plan from the table store as the
    /// active plan, as a middleware restarted after a crash (or a clean
    /// exit) would. Returns `false` when the store holds no committed
    /// plan.
    pub fn resume_from_store(&mut self) -> bool {
        match self.load_plan() {
            Some(plan) => {
                self.plan = Some(plan);
                true
            }
            None => false,
        }
    }

    fn context(&self, cluster_cfg: &ClusterConfig) -> PlannerContext {
        let mut ctx = PlannerContext::for_cluster(cluster_cfg);
        ctx.grouping = GroupingConfig { k: self.hints.group_bound(), ..ctx.grouping };
        ctx.rssd = RssdConfig { step: self.hints.step(), ..ctx.rssd };
        ctx.harl_regions = self.hints.harl_regions();
        ctx.lookup_cost = SimDuration::from_micros(self.hints.lookup_us());
        ctx.selective_min_gain = self.hints.selective_gain();
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MpiJob;
    use iotrace::gen::lanl::LOOP_SIZES;

    fn lanl_job(loops: u32) -> Trace {
        // Build the LANL pattern through the MPI-IO API rather than the
        // generator: exercises the job layer end to end.
        let procs = 8u32;
        let mut job = MpiJob::new(procs);
        let f = job.open("lanl.dat");
        for i in 0..loops {
            let mut rel = 0u64;
            for &size in &LOOP_SIZES {
                for p in 0..procs {
                    let slot = u64::from(i) * u64::from(procs) + u64::from(p);
                    job.write_at(p, f, slot * 262_144 + rel, size);
                }
                job.barrier();
                rel += size;
            }
        }
        job.finish()
    }

    fn table_path(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("mha-mw-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn full_lifecycle_improves_bandwidth() {
        let cfg = ClusterConfig::paper_default();
        let mut mw = Middleware::new(Hints::new());
        let trace = lanl_job(8);
        let first = mw.profile_run(&cfg, &trace);
        mw.plan_from_profile(&cfg);
        let second = mw.optimized_run(&cfg, &trace);
        assert_eq!(second.scheme, Scheme::Mha);
        assert!(second.redirected > 0, "MHA must redirect");
        assert!(
            second.report.bandwidth_mbps() > first.report.bandwidth_mbps(),
            "optimized {} <= first {}",
            second.report.bandwidth_mbps(),
            first.report.bandwidth_mbps()
        );
    }

    #[test]
    fn job_trace_matches_generator_shape() {
        let trace = lanl_job(3);
        let stats = iotrace::TraceStats::of(&trace);
        assert_eq!(stats.distinct_sizes, 3);
        assert_eq!(stats.max_concurrency, 8);
        assert_eq!(stats.requests, 3 * 3 * 8);
    }

    #[test]
    fn tables_persist_and_reload() {
        let cfg = ClusterConfig::paper_default();
        let path = table_path("persist");
        let mut mw = Middleware::new(Hints::new()).with_table_store(&path);
        let trace = lanl_job(4);
        mw.profile_run(&cfg, &trace);
        let plan = mw.plan_from_profile(&cfg);
        let expected_rst = plan.rst.clone();
        let PlanResolver::Drt(expected_drt) = plan.resolver.clone() else {
            panic!("MHA plan must carry a DRT")
        };
        let (drt, rst) = mw.load_tables().expect("tables readable");
        assert_eq!(drt, expected_drt);
        assert_eq!(rst, expected_rst);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restarted_middleware_reproduces_the_optimized_run_bit_for_bit() {
        let cfg = ClusterConfig::paper_default();
        let path = table_path("resume");
        let trace = lanl_job(4);
        let first = {
            let mut mw = Middleware::new(Hints::new()).with_table_store(&path);
            mw.profile_run(&cfg, &trace);
            mw.plan_from_profile(&cfg);
            mw.optimized_run(&cfg, &trace)
        };
        // A fresh middleware (restarted process) adopts the committed
        // plan and must replay identically — the acceptance bar for the
        // persisted format.
        let mut mw2 = Middleware::new(Hints::new()).with_table_store(&path);
        assert!(mw2.profile().is_none(), "fresh middleware has no profile");
        assert!(mw2.resume_from_store(), "committed plan must be adoptable");
        let second = mw2.optimized_run(&cfg, &trace);
        assert_eq!(second.scheme, first.scheme);
        assert_eq!(second.redirected, first.redirected);
        assert_eq!(first.report.makespan, second.report.makespan);
        assert_eq!(first.report.server_busy_secs(), second.report.server_busy_secs());
        assert_eq!(
            first.report.request_latency.sum().to_bits(),
            second.report.request_latency.sum().to_bits()
        );
        assert_eq!(first.report.mds_lookups, second.report.mds_lookups);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn def_hints_produce_identity_plan() {
        let cfg = ClusterConfig::paper_default();
        let mut mw = Middleware::new(Hints::new().set("mha_scheme", "def"));
        let trace = lanl_job(2);
        mw.profile_run(&cfg, &trace);
        mw.plan_from_profile(&cfg);
        let run = mw.optimized_run(&cfg, &trace);
        assert_eq!(run.scheme, Scheme::Def);
        assert_eq!(run.redirected, 0);
    }

    #[test]
    #[should_panic(expected = "profile_run must precede")]
    fn planning_without_profile_panics() {
        let cfg = ClusterConfig::paper_default();
        Middleware::new(Hints::new()).plan_from_profile(&cfg);
    }

    #[test]
    fn hints_flow_into_planner() {
        let cfg = ClusterConfig::paper_default();
        let mut mw = Middleware::new(
            Hints::new().set("mha_scheme", "harl").set("mha_harl_regions", "3"),
        );
        let trace = lanl_job(2);
        mw.profile_run(&cfg, &trace);
        let plan = mw.plan_from_profile(&cfg);
        assert_eq!(plan.scheme, Scheme::Harl);
        assert_eq!(plan.regions.len(), 3);
    }
}
