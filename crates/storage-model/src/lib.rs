//! # storage-model — HDD and SSD service-time models
//!
//! The paper's testbed pairs 250 GB SATA-II hard disks (HServers) with
//! PCI-E X4 100 GB SSDs (SServers). Neither is available here, so this
//! crate provides calibrated request-level service-time models that
//! reproduce the properties MHA exploits:
//!
//! * HDDs pay a large, locality-dependent positioning cost (seek +
//!   rotational latency) and then stream at a moderate rate; random small
//!   I/O is therefore an order of magnitude slower than on SSD.
//! * SSDs have tiny startup latencies, much higher streaming rates, and
//!   **asymmetric read/write** behaviour (writes are slower and degrade
//!   under pressure), which is why the cost model of the paper carries
//!   separate `(α_sr, β_sr)` and `(α_sw, β_sw)` parameters.
//!
//! Models are deterministic given their seed; jitter is optional and off by
//! default so unit tests can assert exact durations.

pub mod calibrate;
pub mod degrade;
pub mod device;
pub mod hdd;
pub mod ssd;

pub use calibrate::{calibrate, LinearFit};
pub use degrade::ScaledDevice;
pub use device::{BoxedDevice, Device, DeviceKind, IoOp};
pub use hdd::{HddModel, HddParams};
pub use ssd::{SsdModel, SsdParams};
