//! Flash SSD service-time model.
//!
//! Calibrated to the paper's PCI-E X4 100 GB SSDs (Fusion-io era). The
//! properties MHA relies on:
//!
//! * startup latency is tiny compared to an HDD seek (tens of µs),
//! * streaming rates are several times the HDD's,
//! * **reads and writes differ**: writes have higher startup cost and a
//!   lower sustained rate, and sustained write bursts periodically stall
//!   for garbage collection.
//!
//! Small requests cannot fill all flash channels, so the effective
//! transfer rate ramps up with request size until `channel_saturation`.

use crate::device::{BoxedDevice, Device, DeviceKind, IoOp};
use serde::{Deserialize, Serialize};
use simrt::SimDuration;

/// SSD model parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdParams {
    /// Read startup latency, seconds.
    pub read_startup_s: f64,
    /// Write startup latency, seconds.
    pub write_startup_s: f64,
    /// Peak read transfer rate, bytes/second (all channels busy).
    pub read_bps: f64,
    /// Peak write transfer rate, bytes/second.
    pub write_bps: f64,
    /// Request size at which all channels are saturated, bytes.
    pub channel_saturation: u64,
    /// Fraction of peak rate a single-page request achieves.
    pub min_rate_frac: f64,
    /// Bytes of writes between garbage-collection stalls.
    pub gc_interval_bytes: u64,
    /// Length of one garbage-collection stall, seconds.
    pub gc_pause_s: f64,
}

impl SsdParams {
    /// The paper's testbed SSD: PCI-E X4 100 GB card.
    pub fn pcie_100gb() -> Self {
        SsdParams {
            read_startup_s: 60.0e-6,
            write_startup_s: 150.0e-6,
            read_bps: 700.0e6,
            write_bps: 450.0e6,
            channel_saturation: 256 * 1024,
            min_rate_frac: 0.25,
            gc_interval_bytes: 512 << 20,
            gc_pause_s: 2.0e-3,
        }
    }

    /// The same card after heavy wear: the write cliff. Sustained write
    /// rate collapses, write startups stretch, and garbage collection
    /// fires an order of magnitude more often with longer stalls. Read
    /// behaviour is nearly untouched — which is exactly what makes a worn
    /// SServer treacherous for write-heavy placements.
    pub fn worn_pcie_100gb() -> Self {
        SsdParams {
            write_startup_s: 450.0e-6,
            write_bps: 150.0e6,
            gc_interval_bytes: 48 << 20,
            gc_pause_s: 12.0e-3,
            ..Self::pcie_100gb()
        }
    }
}

/// Stateful SSD: tracks write volume for periodic GC stalls.
#[derive(Debug, Clone)]
pub struct SsdModel {
    params: SsdParams,
    written_since_gc: u64,
    /// Last `(is_write, len, base seconds, base service)` computed: the
    /// pre-GC service time is a pure function of `(op, len)`, and replayed
    /// traces repeat sizes back to back. Requests crossing a GC interval
    /// extend the memoized base exactly as the uncached code would.
    /// Purely an evaluation cache — results are bit-identical.
    memo: Option<(bool, u64, f64, SimDuration)>,
}

impl SsdModel {
    /// New SSD with the given parameters.
    pub fn new(params: SsdParams) -> Self {
        SsdModel { params, written_since_gc: 0, memo: None }
    }

    /// Convenience: the calibrated testbed SSD.
    pub fn pcie_100gb() -> Self {
        Self::new(SsdParams::pcie_100gb())
    }

    /// Access to the parameters (for calibration reports).
    pub fn params(&self) -> &SsdParams {
        &self.params
    }

    /// Effective transfer rate for a request of `len` bytes: ramps from
    /// `min_rate_frac * peak` (one channel) to `peak` at saturation.
    fn effective_rate(&self, peak: f64, len: u64) -> f64 {
        let p = &self.params;
        if len >= p.channel_saturation {
            return peak;
        }
        let fill = len as f64 / p.channel_saturation as f64;
        peak * (p.min_rate_frac + (1.0 - p.min_rate_frac) * fill)
    }
}

impl Device for SsdModel {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Ssd
    }

    fn service_time(&mut self, op: IoOp, _offset: u64, len: u64) -> SimDuration {
        let is_write = op == IoOp::Write;
        let (base, service) = match self.memo {
            Some((w, l, base, service)) if w == is_write && l == len => (base, service),
            _ => {
                let p = &self.params;
                let (startup, peak) = match op {
                    IoOp::Read => (p.read_startup_s, p.read_bps),
                    IoOp::Write => (p.write_startup_s, p.write_bps),
                };
                let rate = self.effective_rate(peak, len.max(1));
                let base = startup + len as f64 / rate;
                let service = SimDuration::from_secs_f64(base);
                self.memo = Some((is_write, len, base, service));
                (base, service)
            }
        };
        if is_write {
            self.written_since_gc += len;
            if self.written_since_gc >= self.params.gc_interval_bytes {
                // Emit one stall per full GC interval crossed by this request.
                let mut t = base;
                while self.written_since_gc >= self.params.gc_interval_bytes {
                    self.written_since_gc -= self.params.gc_interval_bytes;
                    t += self.params.gc_pause_s;
                }
                return SimDuration::from_secs_f64(t);
            }
        }
        service
    }

    fn reset(&mut self) {
        self.written_since_gc = 0;
    }

    fn clone_box(&self) -> BoxedDevice {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(m: &mut SsdModel, op: IoOp, len: u64) -> f64 {
        m.service_time(op, 0, len).as_secs_f64()
    }

    #[test]
    fn reads_are_cheaper_than_writes() {
        let mut m = SsdModel::pcie_100gb();
        let r = svc(&mut m, IoOp::Read, 65536);
        let w = svc(&mut m, IoOp::Write, 65536);
        assert!(r < w, "read={r} write={w}");
    }

    #[test]
    fn startup_dominates_tiny_requests() {
        let mut m = SsdModel::pcie_100gb();
        let t = svc(&mut m, IoOp::Read, 16);
        assert!((60.0e-6..100.0e-6).contains(&t));
    }

    #[test]
    fn large_requests_hit_peak_rate() {
        let mut m = SsdModel::pcie_100gb();
        let len = 4 << 20;
        let t = svc(&mut m, IoOp::Read, len);
        let expect = 60.0e-6 + len as f64 / 700.0e6;
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn small_requests_run_below_peak() {
        let m = SsdModel::pcie_100gb();
        let r4k = m.effective_rate(700.0e6, 4096);
        assert!(r4k < 700.0e6 * 0.3, "4 KiB should use ~one channel");
        let rsat = m.effective_rate(700.0e6, 256 * 1024);
        assert_eq!(rsat, 700.0e6);
    }

    #[test]
    fn gc_stall_fires_each_interval() {
        let mut m = SsdModel::pcie_100gb();
        let chunk = 64 << 20;
        let mut stalls = 0;
        // Write 2 GiB in 64 MiB chunks; expect 4 stalls at the 512 MiB interval.
        let base = svc(&mut SsdModel::pcie_100gb(), IoOp::Write, chunk);
        for _ in 0..32 {
            let t = svc(&mut m, IoOp::Write, chunk);
            if t > base + 1.0e-3 {
                stalls += 1;
            }
        }
        assert_eq!(stalls, 4);
    }

    #[test]
    fn memo_hits_match_fresh_computation() {
        // Warm model with repeated (op, len) pairs vs a cold model in the
        // same GC state: identical charges, including across op flips.
        let mut warm = SsdModel::pcie_100gb();
        for i in 0..24u64 {
            let op = if i % 4 == 3 { IoOp::Read } else { IoOp::Write };
            let len = if i % 2 == 0 { 131_072 } else { 16_384 };
            let mut cold = SsdModel::pcie_100gb();
            cold.written_since_gc = warm.written_since_gc;
            let a = warm.service_time(op, 0, len);
            let b = cold.service_time(op, 0, len);
            assert_eq!(a.as_nanos(), b.as_nanos(), "request {i}");
        }
    }

    #[test]
    fn worn_ssd_hits_the_write_cliff_but_reads_hold_up() {
        let mut worn = SsdModel::new(SsdParams::worn_pcie_100gb());
        let mut fresh = SsdModel::pcie_100gb();
        let w_worn = svc(&mut worn, IoOp::Write, 1 << 20);
        let w_fresh = svc(&mut fresh, IoOp::Write, 1 << 20);
        assert!(w_worn > 2.0 * w_fresh, "worn={w_worn} fresh={w_fresh}");
        let r_worn = svc(&mut worn, IoOp::Read, 1 << 20);
        let r_fresh = svc(&mut fresh, IoOp::Read, 1 << 20);
        assert!((r_worn - r_fresh).abs() < 1e-12, "reads unaffected");
    }

    #[test]
    fn reset_drains_write_pressure() {
        let mut m = SsdModel::pcie_100gb();
        svc(&mut m, IoOp::Write, 500 << 20);
        m.reset();
        let t = svc(&mut m, IoOp::Write, 1 << 20);
        let fresh = svc(&mut SsdModel::pcie_100gb(), IoOp::Write, 1 << 20);
        assert!((t - fresh).abs() < 1e-12);
    }

    #[test]
    fn ssd_random_small_io_beats_hdd_by_an_order_of_magnitude() {
        use crate::hdd::HddModel;
        let mut ssd = SsdModel::pcie_100gb();
        let mut hdd = HddModel::sata2_250gb();
        let s = ssd.service_time(IoOp::Read, 0, 4096).as_secs_f64();
        // Random 4 KiB on a cold disk.
        let h = hdd.service_time(IoOp::Read, 0, 4096).as_secs_f64();
        assert!(h / s > 10.0, "hdd={h} ssd={s}");
    }
}
