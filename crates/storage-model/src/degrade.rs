//! Straggler wrapper: a device whose every service time is stretched by a
//! constant factor.
//!
//! This is how a [`simrt::fault::FaultKind::Slowdown`] fault materializes
//! on a storage server: the inner model keeps its full state machine
//! (head position, GC pressure, memos), and only the final duration is
//! scaled. A factor of exactly `1.0` never wraps — callers are expected
//! to skip the wrapper then, preserving the bit-identical fault-free
//! path, but the scaling itself is also exact for `1.0` inputs.

use crate::device::{BoxedDevice, Device, DeviceKind, IoOp};
use simrt::SimDuration;

/// A device slowed down by a constant multiplicative factor.
pub struct ScaledDevice {
    inner: BoxedDevice,
    factor: f64,
}

impl ScaledDevice {
    /// Wrap `inner`, stretching every service time by `factor` (> 0).
    pub fn new(inner: BoxedDevice, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "slowdown factor must be positive");
        ScaledDevice { inner, factor }
    }

    /// The slowdown factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    fn scale(&self, d: SimDuration) -> SimDuration {
        if self.factor == 1.0 {
            return d;
        }
        SimDuration::from_secs_f64(d.as_secs_f64() * self.factor)
    }
}

impl Device for ScaledDevice {
    fn kind(&self) -> DeviceKind {
        self.inner.kind()
    }

    fn service_time(&mut self, op: IoOp, offset: u64, len: u64) -> SimDuration {
        let d = self.inner.service_time(op, offset, len);
        self.scale(d)
    }

    fn service_time_arrival(
        &mut self,
        op: IoOp,
        offset: u64,
        len: u64,
        idle_arrival: bool,
    ) -> SimDuration {
        let d = self.inner.service_time_arrival(op, offset, len, idle_arrival);
        self.scale(d)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn clone_box(&self) -> BoxedDevice {
        Box::new(ScaledDevice { inner: self.inner.clone_box(), factor: self.factor })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::HddModel;
    use crate::ssd::SsdModel;

    #[test]
    fn scales_service_times_by_the_factor() {
        let mut plain = SsdModel::pcie_100gb();
        let mut slow = ScaledDevice::new(Box::new(SsdModel::pcie_100gb()), 3.0);
        let a = plain.service_time(IoOp::Read, 0, 65536).as_secs_f64();
        let b = slow.service_time(IoOp::Read, 0, 65536).as_secs_f64();
        assert!((b - 3.0 * a).abs() < 1e-9, "a={a} b={b}");
        assert_eq!(slow.kind(), DeviceKind::Ssd);
        assert_eq!(slow.factor(), 3.0);
    }

    #[test]
    fn unit_factor_is_bit_identical() {
        let mut plain = HddModel::sata2_250gb();
        let mut wrapped = ScaledDevice::new(Box::new(HddModel::sata2_250gb()), 1.0);
        for i in 0..16u64 {
            let a = plain.service_time_arrival(IoOp::Write, i * 999_331, 8192, i % 3 == 0);
            let b = wrapped.service_time_arrival(IoOp::Write, i * 999_331, 8192, i % 3 == 0);
            assert_eq!(a.as_nanos(), b.as_nanos(), "request {i}");
        }
    }

    #[test]
    fn inner_state_machine_survives_wrapping() {
        // Sequential continuation must still be recognized by the inner
        // HDD head tracking: the second request pays no positioning.
        let mut slow = ScaledDevice::new(Box::new(HddModel::sata2_250gb()), 2.0);
        slow.service_time(IoOp::Read, 0, 65536);
        let seq = slow.service_time(IoOp::Read, 65536, 65536).as_secs_f64();
        assert!((seq - 2.0 * 65536.0 / 90.0e6).abs() < 1e-9);
    }

    #[test]
    fn clone_box_preserves_factor_and_state() {
        let mut slow = ScaledDevice::new(Box::new(HddModel::sata2_250gb()), 4.0);
        slow.service_time(IoOp::Read, 0, 65536);
        let mut cloned = slow.clone_box();
        let a = slow.service_time(IoOp::Read, 65536, 4096);
        let b = cloned.service_time(IoOp::Read, 65536, 4096);
        assert_eq!(a.as_nanos(), b.as_nanos());
    }

    #[test]
    #[should_panic(expected = "slowdown factor must be positive")]
    fn zero_factor_rejected() {
        ScaledDevice::new(Box::new(SsdModel::pcie_100gb()), 0.0);
    }
}
