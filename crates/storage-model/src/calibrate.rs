//! Calibration of the paper's linear cost-model parameters from devices.
//!
//! The MHA cost model (Table I of the paper) describes each server type by
//! an affine service time `α + β·bytes`. Real devices are not exactly
//! affine (HDD seeks depend on locality, SSD rates ramp with size), so the
//! paper measures α and β empirically. We do the same: probe a device with
//! a spread of request sizes at random offsets and least-squares fit a
//! line. `mha-core` then builds its [`CostParams`]-equivalent from these
//! fits — the model sees only the fit, never the simulator internals,
//! preserving the model/ground-truth separation.

use crate::device::{Device, IoOp};
use rand::Rng;
use serde::{Deserialize, Serialize};
use simrt::SeedSeq;

/// Result of an affine fit `t(bytes) ≈ alpha + beta * bytes`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinearFit {
    /// Startup time, seconds.
    pub alpha: f64,
    /// Per-byte transfer time, seconds/byte.
    pub beta: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
}

impl LinearFit {
    /// Predicted service time for `bytes`, seconds.
    pub fn predict(&self, bytes: u64) -> f64 {
        self.alpha + self.beta * bytes as f64
    }
}

/// Probe `device` with `reps` requests of each size in `sizes` at uniformly
/// random offsets within `extent` bytes, and least-squares fit
/// `time = alpha + beta * size`.
///
/// Random offsets make HDD probes include worst-case seek costs.
pub fn calibrate(
    device: &mut dyn Device,
    op: IoOp,
    sizes: &[u64],
    reps: usize,
    extent: u64,
    seed: SeedSeq,
) -> LinearFit {
    calibrate_with_locality(device, op, sizes, reps, extent, seed, 0.0)
}

/// [`calibrate`] with a locality mix: each probe request continues the
/// previous one sequentially with probability `seq_frac`, otherwise it
/// jumps to a random offset.
///
/// A data server under a parallel file system sees neither pure random
/// nor pure sequential I/O — striped requests produce runs of contiguous
/// stripe units interleaved with jumps. Measuring `α` under a realistic
/// mix (the paper measures its servers under live OrangeFS load) keeps
/// the cost model from over-pricing HServer startups and excluding HDDs
/// from layouts they can actually help.
pub fn calibrate_with_locality(
    device: &mut dyn Device,
    op: IoOp,
    sizes: &[u64],
    reps: usize,
    extent: u64,
    seed: SeedSeq,
    seq_frac: f64,
) -> LinearFit {
    assert!(!sizes.is_empty() && reps > 0, "calibration needs samples");
    let mut rng = seed.derive("calibrate").rng();
    let mut xs: Vec<f64> = Vec::with_capacity(sizes.len());
    let mut ys: Vec<f64> = Vec::with_capacity(sizes.len());
    let mut cursor = 0u64;
    for &size in sizes {
        let mut acc = 0.0;
        for _ in 0..reps {
            let offset = if rng.gen_bool(seq_frac.clamp(0.0, 1.0)) {
                cursor
            } else {
                let max_off = extent.saturating_sub(size).max(1);
                rng.gen_range(0..max_off)
            };
            acc += device.service_time(op, offset, size).as_secs_f64();
            cursor = offset + size;
        }
        xs.push(size as f64);
        ys.push(acc / reps as f64);
    }
    fit_line(&xs, &ys)
}

/// Ordinary least squares for `y = alpha + beta * x`.
fn fit_line(xs: &[f64], ys: &[f64]) -> LinearFit {
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    let beta = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let alpha = (mean_y - beta * mean_x).max(0.0);
    let r2 = if syy > 0.0 && sxx > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0
    };
    LinearFit { alpha, beta, r2 }
}

/// Standard probe sizes: 4 KiB .. 4 MiB, doubling. The wide range keeps
/// the transfer term visible above HDD seek noise in the fit.
pub fn default_probe_sizes() -> Vec<u64> {
    (0..11).map(|i| 4096u64 << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::HddModel;
    use crate::ssd::SsdModel;

    #[test]
    fn fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 + 2.0 * x).collect();
        let f = fit_line(&xs, &ys);
        assert!((f.alpha - 5.0).abs() < 1e-9);
        assert!((f.beta - 2.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hdd_calibration_finds_big_alpha() {
        let mut hdd = HddModel::sata2_250gb();
        let fit = calibrate(
            &mut hdd,
            IoOp::Read,
            &default_probe_sizes(),
            32,
            200_000_000_000,
            SeedSeq::new(1),
        );
        // α should be near seek+rotation (≈12.7 ms), β near 1/90 MB/s.
        assert!(fit.alpha > 5e-3 && fit.alpha < 20e-3, "alpha={}", fit.alpha);
        assert!(
            (fit.beta - 1.0 / 90.0e6).abs() < 0.5 / 90.0e6,
            "beta={}",
            fit.beta
        );
        assert!(fit.r2 > 0.95);
    }

    #[test]
    fn ssd_calibration_alpha_much_smaller_than_hdd() {
        let mut ssd = SsdModel::pcie_100gb();
        let fit = calibrate(
            &mut ssd,
            IoOp::Read,
            &default_probe_sizes(),
            8,
            90_000_000_000,
            SeedSeq::new(1),
        );
        assert!(fit.alpha < 1e-3, "alpha={}", fit.alpha);
        assert!(fit.beta < 1.0 / 200.0e6, "beta={}", fit.beta);
    }

    #[test]
    fn ssd_write_fit_slower_than_read_fit() {
        let mut ssd = SsdModel::pcie_100gb();
        let sizes = default_probe_sizes();
        let r = calibrate(&mut ssd, IoOp::Read, &sizes, 4, 1 << 30, SeedSeq::new(2));
        ssd.reset();
        let w = calibrate(&mut ssd, IoOp::Write, &sizes, 4, 1 << 30, SeedSeq::new(2));
        assert!(w.alpha > r.alpha);
        assert!(w.beta > r.beta);
    }

    #[test]
    fn predict_is_affine() {
        let f = LinearFit { alpha: 1.0, beta: 2.0, r2: 1.0 };
        assert_eq!(f.predict(0), 1.0);
        assert_eq!(f.predict(3), 7.0);
    }

    #[test]
    fn degenerate_single_size_fit_is_safe() {
        let f = fit_line(&[4096.0], &[0.001]);
        assert_eq!(f.beta, 0.0);
        assert!((f.alpha - 0.001).abs() < 1e-12);
    }
}
