//! Rotating-disk service-time model.
//!
//! Calibrated to the paper's testbed disks (250 GB SATA-II, 7200 rpm):
//! ~8.5 ms average seek, ~4.17 ms average rotational latency, ~90 MB/s
//! sustained streaming. The model is positional: a request landing where
//! the head already is streams at full rate; a request elsewhere pays a
//! distance-dependent seek plus half a revolution on average.

use crate::device::{BoxedDevice, Device, DeviceKind, IoOp};
use serde::{Deserialize, Serialize};
use simrt::SimDuration;

/// HDD model parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HddParams {
    /// Capacity in bytes (seek distance is normalized by this).
    pub capacity: u64,
    /// Track-to-track (minimum) seek, seconds.
    pub seek_min_s: f64,
    /// Average seek, seconds.
    pub seek_avg_s: f64,
    /// Full-stroke (maximum) seek, seconds.
    pub seek_max_s: f64,
    /// Average rotational latency, seconds (half a revolution).
    pub rot_latency_s: f64,
    /// Sustained media transfer rate, bytes/second.
    pub transfer_bps: f64,
    /// Byte distance below which a move counts as a near-track reposition
    /// (pays `seek_min_s` only, no rotational wait).
    pub near_window: u64,
    /// Rotational miss charged to a *synchronous write* that arrives at an
    /// idle disk, even when it continues a sequential run: with the write
    /// cache disabled (as on PFS data servers) the head has rotated past
    /// the target sector during the gap and waits for the platter to come
    /// around. Back-to-back queued writes stream and skip this. Reads are
    /// exempt (drive read-ahead covers sequential gaps).
    pub idle_write_miss_s: f64,
    /// Fraction of 4 MiB block groups remapped to the spare area (grown
    /// defects on an aged disk). `0.0` — the pristine default — disables
    /// the remap path entirely, keeping service times bit-identical to a
    /// model without these fields. Which block groups are remapped is a
    /// deterministic hash of the group index.
    #[serde(default)]
    pub remap_frac: f64,
    /// Extra latency an access to a remapped block group pays (head
    /// excursion to the spare area and back), seconds.
    #[serde(default)]
    pub remap_latency_s: f64,
}

impl HddParams {
    /// The paper's testbed disk: 250 GB SATA-II, 7200 rpm class.
    pub fn sata2_250gb() -> Self {
        HddParams {
            capacity: 250 * 1_000_000_000,
            seek_min_s: 0.8e-3,
            seek_avg_s: 8.5e-3,
            seek_max_s: 18.0e-3,
            rot_latency_s: 4.17e-3,
            transfer_bps: 90.0e6,
            near_window: 1 << 20,
            idle_write_miss_s: 4.17e-3,
            remap_frac: 0.0,
            remap_latency_s: 0.0,
        }
    }

    /// The same disk aged badly: 6% of block groups remapped to the spare
    /// area, each access there paying roughly a full-stroke excursion —
    /// the "HDD remap latency" degraded profile.
    pub fn aged_sata2_250gb() -> Self {
        HddParams {
            remap_frac: 0.06,
            remap_latency_s: 22.0e-3,
            ..Self::sata2_250gb()
        }
    }
}

/// Stateful HDD: remembers head position between requests.
#[derive(Debug, Clone)]
pub struct HddModel {
    params: HddParams,
    /// Byte address one past the end of the last serviced request, or
    /// `None` when the head is parked (power-on state).
    head: Option<u64>,
    /// Last `(positioning + miss bits, len, service)` computed. Replay
    /// streams are dominated by sequential same-size requests (zero
    /// positioning, repeated lengths), so a one-entry memo skips the float
    /// pipeline on most calls; the head update still happens every call.
    /// Purely an evaluation cache — results are bit-identical.
    memo: Option<(u64, u64, SimDuration)>,
}

impl HddModel {
    /// New disk with the given parameters, head parked.
    pub fn new(params: HddParams) -> Self {
        HddModel { params, head: None, memo: None }
    }

    /// Convenience: the calibrated testbed disk.
    pub fn sata2_250gb() -> Self {
        Self::new(HddParams::sata2_250gb())
    }

    /// Access to the parameters (for calibration reports).
    pub fn params(&self) -> &HddParams {
        &self.params
    }

    /// Seek time for a head move of `dist` bytes.
    ///
    /// Uses the classic square-root seek curve: short moves cost the
    /// track-to-track minimum, the average distance (1/3 stroke) costs
    /// `seek_avg_s`, and a full stroke costs `seek_max_s`.
    fn seek_time(&self, dist: u64) -> f64 {
        let p = &self.params;
        if dist == 0 {
            return 0.0;
        }
        if dist <= p.near_window {
            return p.seek_min_s;
        }
        let frac = (dist as f64 / p.capacity as f64).min(1.0);
        // sqrt curve through (1/3, seek_avg) and (1, seek_max):
        // seek(frac) = a + b*sqrt(frac), solve a, b from the two anchors.
        let s3 = (1.0f64 / 3.0).sqrt();
        let b = (p.seek_max_s - p.seek_avg_s) / (1.0 - s3);
        let a = p.seek_max_s - b;
        (a + b * frac.sqrt()).max(p.seek_min_s)
    }

    /// Is the 4 MiB block group holding `offset` remapped to the spare
    /// area? Deterministic golden-ratio hash of the group index compared
    /// against `remap_frac`, so the same offsets are remapped run to run.
    fn remapped(&self, offset: u64) -> bool {
        let group = offset >> 22;
        let hash = group.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11;
        (hash as f64 / (1u64 << 53) as f64) < self.params.remap_frac
    }
}

impl Device for HddModel {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Hdd
    }

    fn service_time(&mut self, op: IoOp, offset: u64, len: u64) -> SimDuration {
        // No arrival context: assume back-to-back arrival (no idle miss).
        self.service_time_arrival(op, offset, len, false)
    }

    fn service_time_arrival(
        &mut self,
        op: IoOp,
        offset: u64,
        len: u64,
        idle_arrival: bool,
    ) -> SimDuration {
        let p = &self.params;
        // (positioning cost, does it already include a rotational wait?)
        let (positioning, rot_included) = match self.head {
            // Sequential continuation: the head is already there.
            Some(h) if h == offset => (0.0, false),
            // Known position: distance-dependent seek + rotational wait
            // (skip the rotational wait for a near-track nudge).
            Some(h) => {
                let dist = h.abs_diff(offset);
                let seek = self.seek_time(dist);
                if dist <= p.near_window {
                    (seek, false)
                } else {
                    (seek + p.rot_latency_s, true)
                }
            }
            // Parked head: average positioning cost.
            None => (p.seek_avg_s + p.rot_latency_s, true),
        };
        // Synchronous write arriving at an idle disk: the rotational
        // window was missed during the gap (see `idle_write_miss_s`).
        let miss = if idle_arrival && op == IoOp::Write && !rot_included {
            p.idle_write_miss_s
        } else {
            0.0
        };
        let remap = if p.remap_frac > 0.0 && self.remapped(offset) {
            p.remap_latency_s
        } else {
            0.0
        };
        self.head = Some(offset + len);
        let fixed = positioning + miss + remap;
        match self.memo {
            Some((f, l, s)) if f == fixed.to_bits() && l == len => s,
            _ => {
                let transfer = len as f64 / self.params.transfer_bps;
                let s = SimDuration::from_secs_f64(fixed + transfer);
                self.memo = Some((fixed.to_bits(), len, s));
                s
            }
        }
    }

    fn reset(&mut self) {
        self.head = None;
    }

    fn clone_box(&self) -> BoxedDevice {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(m: &mut HddModel, off: u64, len: u64) -> f64 {
        m.service_time(IoOp::Read, off, len).as_secs_f64()
    }

    #[test]
    fn first_access_pays_average_positioning() {
        let mut m = HddModel::sata2_250gb();
        let t = svc(&mut m, 0, 0);
        assert!((t - (8.5e-3 + 4.17e-3)).abs() < 1e-9);
    }

    #[test]
    fn sequential_run_streams() {
        let mut m = HddModel::sata2_250gb();
        svc(&mut m, 0, 65536); // position the head
        let t = svc(&mut m, 65536, 65536);
        // Pure transfer: 64 KiB / 90 MB/s ≈ 0.728 ms, no positioning.
        let expect = 65536.0 / 90.0e6;
        assert!((t - expect).abs() < 1e-9, "t={t} expect={expect}");
    }

    #[test]
    fn random_access_is_much_slower_than_sequential() {
        let mut m = HddModel::sata2_250gb();
        svc(&mut m, 0, 4096);
        let seq = svc(&mut m, 4096, 4096);
        let rnd = svc(&mut m, 100_000_000_000, 4096);
        assert!(rnd > 50.0 * seq, "rnd={rnd} seq={seq}");
    }

    #[test]
    fn seek_grows_with_distance() {
        let m = HddModel::sata2_250gb();
        let near = m.seek_time(10 << 20);
        let mid = m.seek_time(m.params.capacity / 3);
        let far = m.seek_time(m.params.capacity);
        assert!(near < mid && mid < far);
        assert!((mid - m.params.seek_avg_s).abs() < 1e-9);
        assert!((far - m.params.seek_max_s).abs() < 1e-9);
    }

    #[test]
    fn near_window_pays_minimum_seek_only() {
        let mut m = HddModel::sata2_250gb();
        svc(&mut m, 0, 4096);
        let t = svc(&mut m, 4096 + 1000, 4096); // 1000 B gap: near-track
        let expect = m.params.seek_min_s + 4096.0 / m.params.transfer_bps;
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn reset_parks_the_head() {
        let mut m = HddModel::sata2_250gb();
        svc(&mut m, 0, 4096);
        m.reset();
        let t = svc(&mut m, 4096, 0);
        assert!((t - (8.5e-3 + 4.17e-3)).abs() < 1e-9);
    }

    #[test]
    fn memo_hits_match_fresh_computation() {
        // A warm model (memo populated by repeated same-shape requests)
        // must charge exactly what a cold model in the same head state
        // computes from scratch.
        let mut warm = HddModel::sata2_250gb();
        warm.service_time(IoOp::Write, 0, 65536);
        for i in 1..16u64 {
            let mut cold = HddModel::sata2_250gb();
            cold.head = warm.head;
            let (off, len) = if i % 5 == 0 { (i << 30, 4096) } else { (i * 65536, 65536) };
            let a = warm.service_time(IoOp::Write, off, len);
            let b = cold.service_time(IoOp::Write, off, len);
            assert_eq!(a.as_nanos(), b.as_nanos(), "request {i}");
        }
    }

    #[test]
    fn transfer_scales_linearly() {
        let mut m = HddModel::sata2_250gb();
        svc(&mut m, 0, 0);
        let t1 = svc(&mut m, 0, 1 << 20);
        let t2 = svc(&mut m, 1 << 20, 2 << 20);
        assert!((t2 / t1 - 2.0).abs() < 1e-6);
    }
}

#[cfg(test)]
mod idle_miss_tests {
    use super::*;

    #[test]
    fn idle_sequential_write_pays_rotational_miss() {
        let mut m = HddModel::sata2_250gb();
        m.service_time(IoOp::Write, 0, 65536);
        let queued = m
            .clone()
            .service_time_arrival(IoOp::Write, 65536, 65536, false)
            .as_secs_f64();
        let idle = m
            .service_time_arrival(IoOp::Write, 65536, 65536, true)
            .as_secs_f64();
        assert!((idle - queued - 4.17e-3).abs() < 1e-9, "idle={idle} queued={queued}");
    }

    #[test]
    fn idle_sequential_read_is_free_of_miss() {
        let mut m = HddModel::sata2_250gb();
        m.service_time(IoOp::Read, 0, 65536);
        let idle = m
            .service_time_arrival(IoOp::Read, 65536, 65536, true)
            .as_secs_f64();
        assert!((idle - 65536.0 / 90.0e6).abs() < 1e-9, "read-ahead covers the gap");
    }

    #[test]
    fn aged_disk_charges_remap_latency_deterministically() {
        let mut aged = HddModel::new(HddParams::aged_sata2_250gb());
        let mut fresh = HddModel::sata2_250gb();
        // Scan block groups until one remapped group shows up; its
        // surcharge must be exactly `remap_latency_s` over the pristine
        // disk in the same head state.
        let mut hit = false;
        for g in 0..256u64 {
            let off = g << 22;
            aged.reset();
            fresh.reset();
            let a = aged.service_time(IoOp::Read, off, 4096).as_secs_f64();
            let f = fresh.service_time(IoOp::Read, off, 4096).as_secs_f64();
            if a > f {
                assert!((a - f - 22.0e-3).abs() < 1e-9, "off={off} a={a} f={f}");
                hit = true;
            }
        }
        assert!(hit, "6% of 256 groups must include a remapped one");
    }

    #[test]
    fn zero_remap_frac_is_bit_identical_to_seed_params() {
        // The pristine default must not even perturb float rounding.
        let mut with_fields = HddModel::new(HddParams::sata2_250gb());
        let mut probe = HddModel::sata2_250gb();
        for g in 0..64u64 {
            let a = with_fields.service_time(IoOp::Write, g * 123_457, 8192);
            let b = probe.service_time(IoOp::Write, g * 123_457, 8192);
            assert_eq!(a.as_nanos(), b.as_nanos());
        }
    }

    #[test]
    fn far_seek_never_double_charges_rotation() {
        let mut a = HddModel::sata2_250gb();
        a.service_time(IoOp::Write, 0, 4096);
        let mut b = a.clone();
        let idle = a
            .service_time_arrival(IoOp::Write, 100_000_000_000, 4096, true)
            .as_secs_f64();
        let queued = b
            .service_time_arrival(IoOp::Write, 100_000_000_000, 4096, false)
            .as_secs_f64();
        assert!((idle - queued).abs() < 1e-12, "seek already includes rotation");
    }
}
