//! The device abstraction shared by HDD and SSD models.

use serde::{Deserialize, Serialize};
use simrt::SimDuration;

/// Read or write. The distinction matters on SSDs (asymmetric performance)
/// and feeds the paper's split `(α_sr, β_sr)` / `(α_sw, β_sw)` parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// Data read.
    Read,
    /// Data write.
    Write,
}

impl IoOp {
    /// Short lowercase name ("read"/"write") for reports.
    pub fn name(self) -> &'static str {
        match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
        }
    }
}

/// What physical medium backs a device — the H/S distinction of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Rotating hard disk (HServer backing store).
    Hdd,
    /// Flash SSD (SServer backing store).
    Ssd,
}

impl DeviceKind {
    /// Short name ("hdd"/"ssd").
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Hdd => "hdd",
            DeviceKind::Ssd => "ssd",
        }
    }
}

/// A storage device that can estimate the service time of one request.
///
/// Implementations are *stateful*: an HDD remembers its head position so
/// sequential runs avoid seeks, and an SSD tracks write pressure. Service
/// times therefore depend on request order, as on real hardware.
pub trait Device: Send {
    /// Medium of this device.
    fn kind(&self) -> DeviceKind;

    /// Service time for one request of `len` bytes at byte `offset`.
    /// Advances internal state (head position, pressure).
    fn service_time(&mut self, op: IoOp, offset: u64, len: u64) -> SimDuration;

    /// Service time with arrival context: `idle_arrival` is true when the
    /// device had drained its queue before this request arrived.
    ///
    /// Matters for disks doing synchronous writes: a write that continues
    /// a sequential run *back-to-back* streams at media rate, but after an
    /// idle gap the head has rotated past the target sector and the write
    /// waits for the platter to come around again (the classic
    /// sync-sequential-write rotational miss). Electronic media ignore
    /// arrival context, so the default forwards to [`Device::service_time`].
    fn service_time_arrival(
        &mut self,
        op: IoOp,
        offset: u64,
        len: u64,
        idle_arrival: bool,
    ) -> SimDuration {
        let _ = idle_arrival;
        self.service_time(op, offset, len)
    }

    /// Reset internal state to power-on (head parked, pressure drained).
    fn reset(&mut self);

    /// Clone into a boxed trait object (devices are replicated per server).
    fn clone_box(&self) -> BoxedDevice;
}

/// Owned dynamic device handle.
pub type BoxedDevice = Box<dyn Device>;

impl Clone for BoxedDevice {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(IoOp::Read.name(), "read");
        assert_eq!(IoOp::Write.name(), "write");
        assert_eq!(DeviceKind::Hdd.name(), "hdd");
        assert_eq!(DeviceKind::Ssd.name(), "ssd");
    }
}
