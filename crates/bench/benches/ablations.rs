//! Ablation benches for the design choices called out in DESIGN.md §7.
//! Each reports the *simulated bandwidth* consequence of a design toggle
//! as a Criterion throughput-style comparison of the full evaluate path.
//!
//! 1. concurrency feature in clustering (vs size-only),
//! 2. adaptive RSSD bounds (vs fixed r_max),
//! 3. grouping k cap,
//! 4. RSSD step granularity,
//! 5. concurrency-aware cost model (vs HARL-style, exercised via HARL).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mha_bench::workloads::{self, Scale};
use mha_core::schemes::{Evaluation, Scheme};
use mha_core::{GroupingConfig, RssdConfig};

fn bench(c: &mut Criterion) {
    let cluster = workloads::paper_cluster();
    let trace = workloads::ior_mixed_procs(&[8, 32], storage_model::IoOp::Write, Scale::Quick);
    let base = workloads::context_for(&trace, &cluster);

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    for k in [1usize, 2, 4, 8, 16] {
        let ctx = {
            let mut ctx = base.clone();
            ctx.grouping = GroupingConfig { k, ..ctx.grouping };
            ctx
        };
        group.bench_with_input(BenchmarkId::new("kcap", k), &trace, |b, trace| {
            b.iter(|| Evaluation::of(Scheme::Mha, trace, &cluster).context(&ctx).report().bandwidth_mbps())
        });
    }

    for (name, adaptive) in [("adaptive", true), ("fixed_rmax", false)] {
        let ctx = {
            let mut ctx = base.clone();
            ctx.rssd = RssdConfig { adaptive_bounds: adaptive, ..ctx.rssd };
            ctx
        };
        group.bench_with_input(BenchmarkId::new("bounds", name), &trace, |b, trace| {
            b.iter(|| Evaluation::of(Scheme::Mha, trace, &cluster).context(&ctx).report().bandwidth_mbps())
        });
    }

    for step_kb in [4u64, 16, 64] {
        let ctx = {
            let mut ctx = base.clone();
            ctx.rssd = RssdConfig { step: step_kb << 10, ..ctx.rssd };
            ctx
        };
        group.bench_with_input(BenchmarkId::new("step_kb", step_kb), &trace, |b, trace| {
            b.iter(|| Evaluation::of(Scheme::Mha, trace, &cluster).context(&ctx).report().bandwidth_mbps())
        });
    }

    // Cost model without the concurrency extension ≈ HARL's model; the
    // scheme-level comparison doubles as the cost-model ablation.
    for scheme in [Scheme::Harl, Scheme::Mha] {
        group.bench_with_input(
            BenchmarkId::new("costmodel", scheme.name()),
            &trace,
            |b, trace| {
                b.iter(|| Evaluation::of(scheme, trace, &cluster).context(&base).report().bandwidth_mbps())
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
