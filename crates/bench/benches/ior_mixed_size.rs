//! Fig. 7 micro-bench: IOR mixed-request-size bandwidth per scheme.
//! Each benchmark measures the wall-clock cost of plan + replay; the
//! *simulated* bandwidth shape (MHA ≥ HARL ≥ AAL/DEF) is reported by the
//! `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mha_bench::workloads::{self, Scale};
use mha_core::schemes::{Evaluation, Scheme};
use storage_model::IoOp;

fn bench(c: &mut Criterion) {
    let cluster = workloads::paper_cluster();
    let mut group = c.benchmark_group("ior_mixed_size");
    group.sample_size(10);
    for (label, sizes) in [("128+256", &[128u64, 256][..]), ("64+512", &[64, 512][..])] {
        let trace = workloads::ior_mixed_sizes(sizes, IoOp::Write, Scale::Quick);
        let ctx = workloads::context_for(&trace, &cluster);
        for scheme in Scheme::all() {
            group.bench_with_input(
                BenchmarkId::new(scheme.name(), label),
                &trace,
                |b, trace| {
                    b.iter(|| Evaluation::of(scheme, trace, &cluster).context(&ctx).report().bandwidth_mbps())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
