//! Fig. 11 micro-bench: HPIO runs per scheme and process count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mha_bench::workloads::{self, Scale};
use mha_core::schemes::{Evaluation, Scheme};
use storage_model::IoOp;

fn bench(c: &mut Criterion) {
    let cluster = workloads::paper_cluster();
    let mut group = c.benchmark_group("hpio");
    group.sample_size(10);
    for procs in [16u32, 32] {
        let trace = workloads::hpio_trace(procs, IoOp::Write, Scale::Quick);
        let ctx = workloads::context_for(&trace, &cluster);
        for scheme in [Scheme::Def, Scheme::Harl, Scheme::Mha] {
            group.bench_with_input(
                BenchmarkId::new(scheme.name(), procs),
                &trace,
                |b, trace| {
                    b.iter(|| Evaluation::of(scheme, trace, &cluster).context(&ctx).report().bandwidth_mbps())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
