//! Planning front-end stage benches: trace ingest (TSV parse),
//! concurrency annotation, request grouping (serial vs rayon), region/DRT
//! construction, and the chained end-to-end plan. These quantify the PR 5
//! front-end rework; `results/BENCH_plan.json` records the old-vs-new
//! numbers (the pre-rework code is gone from the tree, so the comparison
//! lives in the results file, not here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotrace::{tsv, IoOp};
use mha_bench::workloads::{self, Scale};
use mha_core::cost::views_of;
use mha_core::region::build_regions_aligned;
use mha_core::schemes::{LayoutPlanner, MhaPlanner};
use mha_core::{group_requests_parallel, group_requests_serial, GroupingConfig, ReqFeature};

fn bench(c: &mut Criterion) {
    let cluster = workloads::paper_cluster();
    let trace = workloads::lanl_trace(Scale::Quick);
    let ctx = workloads::context_for(&trace, &cluster);
    let text = tsv::to_tsv(&trace);
    let views = views_of(&trace);
    let feats: Vec<ReqFeature> = views.iter().map(ReqFeature::of).collect();
    let cfg = GroupingConfig::default();
    let grouping = group_requests_serial(&feats, &cfg);

    let mut group = c.benchmark_group("plan");
    group.sample_size(10);

    group.bench_function("parse_tsv", |b| b.iter(|| tsv::from_tsv(&text).unwrap()));

    group.bench_function("concurrency", |b| b.iter(|| trace.concurrency()));

    group.bench_function("grouping_serial", |b| b.iter(|| group_requests_serial(&feats, &cfg)));
    group.bench_function("grouping_parallel", |b| b.iter(|| group_requests_parallel(&feats, &cfg)));

    group.bench_function("build_regions", |b| {
        b.iter(|| build_regions_aligned(&trace, &grouping, 1000, 128 << 10))
    });

    // The chained front end as the planner drives it: parse the trace
    // back in, then run the full MHA plan (grouping + two region builds
    // + RSSD) against the paper cluster.
    group.bench_function("end_to_end_quick_lanl", |b| {
        b.iter(|| {
            let t = tsv::from_tsv(&text).unwrap();
            MhaPlanner.plan(&t, &ctx)
        })
    });

    // IOR mixed-size grid: the other workload recorded in BENCH_plan.json.
    for sizes in [&[128u64, 256][..], &[64, 512][..]] {
        let ior = workloads::ior_mixed_sizes(sizes, IoOp::Write, Scale::Quick);
        let ior_ctx = workloads::context_for(&ior, &cluster);
        group.bench_with_input(
            BenchmarkId::new("end_to_end_ior", format!("{}k-{}k", sizes[0], sizes[1])),
            &(ior, ior_ctx),
            |b, (t, cx)| b.iter(|| MhaPlanner.plan(t, cx)),
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
