//! Replay hot-loop micro-bench: the allocation-free fast path (a pinned
//! [`ReplaySchedule`] + `CompactDrt` translation + borrowed layouts in a
//! reused [`ReplaySession`]) against a fresh session per replay, with
//! planning hoisted out so the numbers isolate the per-record loop.
//! Throughput is records/sec — the figure the before/after record in
//! `results/BENCH_replay.json` tracks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iotrace::Trace;
use mha_bench::workloads::{self, Scale};
use mha_core::schemes::{apply_plan, Scheme};
use pfs_sim::{Cluster, CoreSel, IdentityResolver, ReplayInput, ReplaySchedule, ReplaySession};
use storage_model::IoOp;

fn bench(c: &mut Criterion) {
    let cluster_cfg = workloads::paper_cluster();
    let set: [(&str, Trace); 2] = [
        ("lanl", workloads::lanl_trace(Scale::Quick)),
        ("ior_mixed", workloads::ior_mixed_sizes(&[128, 256], IoOp::Write, Scale::Quick)),
    ];
    let mut group = c.benchmark_group("replay");
    group.sample_size(20);
    for (name, trace) in &set {
        let ctx = workloads::context_for(trace, &cluster_cfg);
        let plan = Scheme::Mha.planner().plan(trace, &ctx);
        let schedule = ReplaySchedule::for_trace(trace);
        group.throughput(Throughput::Elements(trace.records().len() as u64));

        // Identity resolution: the loop body minus DRT translation. The
        // cluster is built once and reset per iteration (as the grid's
        // repeated replays do); the schedule is pinned in the session.
        group.bench_with_input(BenchmarkId::new("identity", *name), trace, |b, trace| {
            let mut session = ReplaySession::new().with_schedule(schedule.clone());
            let mut cl = Cluster::new(cluster_cfg.clone());
            b.iter(|| {
                session
                    .run(ReplayInput::trace(&mut cl, trace, &mut IdentityResolver), CoreSel::Auto)
                    .expect("fault-free replay cannot fail")
                    .total_bytes
            })
        });

        // The full MHA runtime path, session (scratch + schedule) reused.
        group.bench_with_input(BenchmarkId::new("mha_scratch", *name), trace, |b, trace| {
            let mut session = ReplaySession::new().with_schedule(schedule.clone());
            let mut cl = Cluster::new(cluster_cfg.clone());
            apply_plan(&mut cl, &plan);
            let mut resolver = plan.make_resolver(ctx.lookup_cost);
            b.iter(|| {
                session
                    .run(ReplayInput::trace(&mut cl, trace, resolver.as_mut()), CoreSel::Auto)
                    .expect("fault-free replay cannot fail")
                    .total_bytes
            })
        });

        // Same path through a fresh session per replay (schedule rebuilt,
        // scratch reallocated) — the cost of not reusing buffers.
        group.bench_with_input(BenchmarkId::new("mha_fresh", *name), trace, |b, trace| {
            b.iter(|| {
                let mut cl = Cluster::new(cluster_cfg.clone());
                apply_plan(&mut cl, &plan);
                let mut resolver = plan.make_resolver(ctx.lookup_cost);
                ReplaySession::new()
                    .run(ReplayInput::trace(&mut cl, trace, resolver.as_mut()), CoreSel::Auto)
                    .expect("fault-free replay cannot fail")
                    .total_bytes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
