//! Figs. 12b/13 micro-bench: application trace replays per scheme
//! (LANL, LU, Cholesky — BTIO is exercised by the `figures` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotrace::Trace;
use mha_bench::workloads::{self, Scale};
use mha_core::schemes::{Evaluation, Scheme};

fn bench(c: &mut Criterion) {
    let cluster = workloads::paper_cluster();
    let traces: [(&str, Trace); 3] = [
        ("lanl", workloads::lanl_trace(Scale::Quick)),
        ("lu", workloads::lu_trace(Scale::Quick)),
        ("cholesky", workloads::cholesky_trace(Scale::Quick)),
    ];
    let mut group = c.benchmark_group("traces");
    group.sample_size(10);
    for (name, trace) in &traces {
        let ctx = workloads::context_for(trace, &cluster);
        for scheme in [Scheme::Def, Scheme::Harl, Scheme::Mha] {
            group.bench_with_input(BenchmarkId::new(*name, scheme.name()), trace, |b, trace| {
                b.iter(|| Evaluation::of(scheme, trace, &cluster).context(&ctx).report().bandwidth_mbps())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
