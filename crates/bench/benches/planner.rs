//! Off-line planner micro-benches: Algorithm 1 (grouping), Algorithm 2
//! (RSSD) and the full MHA plan. The paper argues these costs are
//! acceptable because planning runs once, off-line — these benches
//! quantify that claim on the reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mha_bench::workloads::{self, Scale};
use mha_core::cost::views_of;
use mha_core::schemes::{LayoutPlanner, MhaPlanner};
use mha_core::{group_requests, rssd, GroupingConfig, ReqFeature, RssdConfig};
use pfs_sim::{LayoutSpec, LoadScratch, ServerId};

fn bench(c: &mut Criterion) {
    let cluster = workloads::paper_cluster();
    let trace = workloads::lanl_trace(Scale::Quick);
    let ctx = workloads::context_for(&trace, &cluster);
    let views = views_of(&trace);
    let feats: Vec<ReqFeature> = views.iter().map(ReqFeature::of).collect();

    let mut group = c.benchmark_group("planner");
    group.sample_size(10);

    for k in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("grouping", k), &feats, |b, feats| {
            let cfg = GroupingConfig { k, ..Default::default() };
            b.iter(|| group_requests(feats, &cfg))
        });
    }

    group.bench_function("rssd_region", |b| {
        b.iter(|| rssd(&views, &ctx.params, &ctx.rssd))
    });

    // The same search with branch-and-bound off: isolates what the
    // admissible pruning buys on top of the closed-form kernel (results
    // are bit-identical either way — see planner_smoke).
    group.bench_function("rssd_region_unpruned", |b| {
        let cfg = RssdConfig { pruning: false, ..ctx.rssd.clone() };
        b.iter(|| rssd(&views, &ctx.params, &cfg))
    });

    group.bench_function("mha_full_plan", |b| {
        b.iter(|| MhaPlanner.plan(&trace, &ctx))
    });

    // The decomposition kernel itself, on the LANL body request under a
    // fine candidate layout (32 stripe units per request — the case the
    // closed form collapses to O(servers)): oracle walk vs closed form.
    let layout = LayoutSpec::hybrid(
        &(0..6).map(ServerId).collect::<Vec<_>>(),
        4 << 10,
        &(6..8).map(ServerId).collect::<Vec<_>>(),
        8 << 10,
    );
    group.bench_function("per_server_load_oracle", |b| {
        b.iter(|| layout.per_server_load(256 << 10, 128 << 10))
    });
    group.bench_function("per_server_load_closed_form", |b| {
        let mut scratch = LoadScratch::new();
        b.iter(|| {
            layout.per_server_load_into(256 << 10, 128 << 10, &mut scratch);
            scratch.entries().map(|(_, bytes, _)| bytes).sum::<u64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
