//! Off-line planner micro-benches: Algorithm 1 (grouping), Algorithm 2
//! (RSSD) and the full MHA plan. The paper argues these costs are
//! acceptable because planning runs once, off-line — these benches
//! quantify that claim on the reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mha_bench::workloads::{self, Scale};
use mha_core::cost::views_of;
use mha_core::schemes::{LayoutPlanner, MhaPlanner};
use mha_core::{group_requests, rssd, GroupingConfig, ReqFeature};

fn bench(c: &mut Criterion) {
    let cluster = workloads::paper_cluster();
    let trace = workloads::lanl_trace(Scale::Quick);
    let ctx = workloads::context_for(&trace, &cluster);
    let views = views_of(&trace);
    let feats: Vec<ReqFeature> = views.iter().map(ReqFeature::of).collect();

    let mut group = c.benchmark_group("planner");
    group.sample_size(10);

    for k in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("grouping", k), &feats, |b, feats| {
            let cfg = GroupingConfig { k, ..Default::default() };
            b.iter(|| group_requests(feats, &cfg))
        });
    }

    group.bench_function("rssd_region", |b| {
        b.iter(|| rssd(&views, &ctx.params, &ctx.rssd))
    });

    group.bench_function("mha_full_plan", |b| {
        b.iter(|| MhaPlanner.plan(&trace, &ctx))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
