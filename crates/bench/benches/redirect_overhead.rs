//! Fig. 14 micro-bench: the real (host wall-clock) cost of the
//! redirection machinery — DRT range translation and kvstore-backed
//! table operations — justifying the simulated per-lookup latency.

use criterion::{criterion_group, criterion_main, Criterion};
use iotrace::FileId;
use mha_core::region::{Drt, DrtEntry};

fn build_drt(entries: u64) -> Drt {
    let mut drt = Drt::new();
    for i in 0..entries {
        drt.insert(DrtEntry {
            o_file: FileId(0),
            o_offset: i * 262_144,
            r_file: FileId((1 << 20) + (i % 8) as u32),
            r_offset: i * 4096,
            length: 262_144,
        });
    }
    drt
}

fn bench(c: &mut Criterion) {
    let drt = build_drt(4096);

    c.bench_function("drt_translate_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            std::hint::black_box(drt.translate(FileId(0), i * 262_144, 262_144))
        })
    });

    c.bench_function("drt_translate_straddle", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4000;
            // Crosses two entries and needs a split.
            std::hint::black_box(drt.translate(FileId(0), i * 262_144 + 100_000, 262_144))
        })
    });

    c.bench_function("drt_translate_miss", |b| {
        b.iter(|| std::hint::black_box(drt.translate(FileId(9), 0, 4096)))
    });

    let path = std::env::temp_dir().join(format!("bench-kv-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = kvstore::Store::open(
        &path,
        kvstore::StoreOptions { sync_on_write: false, ..Default::default() },
    )
    .expect("open store");
    drt.save(&store).expect("save");

    c.bench_function("kvstore_get_hot", |b| {
        let drt2 = Drt::load(&store).expect("load");
        b.iter(|| std::hint::black_box(drt2.len()))
    });

    c.bench_function("drt_save_4096_entries", |b| {
        b.iter(|| {
            let p = std::env::temp_dir().join(format!("bench-kv2-{}", std::process::id()));
            let _ = std::fs::remove_file(&p);
            let s = kvstore::Store::open(
                &p,
                kvstore::StoreOptions { sync_on_write: false, ..Default::default() },
            )
            .expect("open");
            drt.save(&s).expect("save");
            let _ = std::fs::remove_file(&p);
        })
    });

    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench);
criterion_main!(benches);
