//! Fig. 9 micro-bench: IOR mixed-process-count runs per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mha_bench::workloads::{self, Scale};
use mha_core::schemes::{Evaluation, Scheme};
use storage_model::IoOp;

fn bench(c: &mut Criterion) {
    let cluster = workloads::paper_cluster();
    let mut group = c.benchmark_group("ior_mixed_procs");
    group.sample_size(10);
    for (label, procs) in [("8+32", &[8u32, 32][..]), ("16+64", &[16, 64][..])] {
        let trace = workloads::ior_mixed_procs(procs, IoOp::Write, Scale::Quick);
        let ctx = workloads::context_for(&trace, &cluster);
        for scheme in [Scheme::Def, Scheme::Mha] {
            group.bench_with_input(
                BenchmarkId::new(scheme.name(), label),
                &trace,
                |b, trace| {
                    b.iter(|| Evaluation::of(scheme, trace, &cluster).context(&ctx).report().bandwidth_mbps())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
