//! The online re-planning study: plan-while-running (windowed
//! incremental replans + lazy on-access migration) versus the offline
//! plan-then-rerun flow on a phase-shifting workload.
//!
//! ```text
//! cargo run --release -p mha-bench --bin online            # full study
//! cargo run --release -p mha-bench --bin online -- --smoke # CI gate
//! ```
//!
//! The full study prints the three figures and writes
//! `results/BENCH_online.json`. Both modes assert the acceptance bars:
//! the online loop must recover to 80% of its post-shift steady
//! bandwidth at least 2x sooner than plan-then-rerun, a quiet window
//! must cost under 10% of a cold plan, and the recovered bandwidth must
//! clearly beat the unplanned default layout.

use mha_bench::online::{figures_json, study};
use mha_bench::workloads::Scale;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::Full };
    let s = study(scale);
    for fig in &s.figures {
        println!("{fig}");
    }
    println!(
        "recovery speedup {:.2}x | quiet check {:.4}% of a cold plan | \
         steady {:.1} MB/s vs DEF {:.1} MB/s",
        s.recovery_speedup, s.quiet_cost_pct, s.online_steady_mbps, s.def_post_shift_mbps
    );
    assert!(
        s.recovery_speedup >= 2.0,
        "online must recover at least 2x sooner than plan-then-rerun: {:.2}x",
        s.recovery_speedup
    );
    assert!(
        s.quiet_cost_pct < 10.0,
        "a quiet window must cost <10% of a cold plan: {:.4}%",
        s.quiet_cost_pct
    );
    assert!(
        s.online_steady_mbps > 1.2 * s.def_post_shift_mbps,
        "recovered online bandwidth {:.1} must clearly beat unplanned {:.1}",
        s.online_steady_mbps,
        s.def_post_shift_mbps
    );
    if smoke {
        println!("smoke ok");
    } else {
        let path = "results/BENCH_online.json";
        let json = figures_json(&s.figures).expect("study figures are finite");
        std::fs::write(path, json).expect("write results");
        println!("wrote {path}");
    }
}
