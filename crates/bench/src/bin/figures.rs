//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p mha-bench --release --bin figures -- all
//! cargo run -p mha-bench --release --bin figures -- fig7 fig8 --quick
//! cargo run -p mha-bench --release --bin figures -- all --json results/
//! ```

use mha_bench::experiments;
use mha_bench::workloads::Scale;
use rayon::prelude::*;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != json_dir.as_deref())
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        experiments::all_ids().to_vec()
    } else {
        ids
    };
    let scale = if quick { Scale::Quick } else { Scale::Full };

    // Figure ids fan out over rayon (each experiment's scheme grid is
    // itself parallel; work-stealing composes the two levels), while
    // printing and JSON output stay serial and in id order so runs are
    // byte-identical regardless of thread count.
    let results: Vec<(&str, Vec<mha_bench::Figure>, f64)> = ids
        .par_iter()
        .map(|id| {
            let t0 = std::time::Instant::now();
            let figs = experiments::run(id, scale);
            (*id, figs, t0.elapsed().as_secs_f64())
        })
        .collect();

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (id, figs, elapsed) in results {
        for fig in &figs {
            writeln!(out, "{fig}").expect("stdout");
            summarize(&mut out, fig);
            if let Some(dir) = &json_dir {
                std::fs::create_dir_all(dir).expect("create json dir");
                let path = std::path::Path::new(dir).join(format!("{}.json", fig.id));
                std::fs::write(&path, fig.to_json()).expect("write json");
            }
        }
        writeln!(out, "  [{id} took {elapsed:.1}s]\n").expect("stdout");
    }
}

/// Print MHA-vs-baseline improvements when the figure has scheme series.
fn summarize(out: &mut impl std::io::Write, fig: &mha_bench::Figure) {
    if !fig.series.iter().any(|s| s == "MHA") {
        return;
    }
    for base in ["DEF", "AAL", "HARL"] {
        let ratios: Vec<String> = fig
            .rows
            .iter()
            .filter_map(|r| {
                let ratio = fig.ratio(&r.label, "MHA", base)?;
                Some(format!("{}: {:+.1}%", r.label, (ratio - 1.0) * 100.0))
            })
            .collect();
        if !ratios.is_empty() {
            writeln!(out, "  MHA vs {base}:  {}", ratios.join("  ")).expect("stdout");
        }
    }
}
