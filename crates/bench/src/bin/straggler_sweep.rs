//! Offline regime sweep for the straggler study (dev tool).

use mha_bench::straggler::{probe, Regime};
use mha_bench::workloads::Scale;
use pfs_sim::RetryPolicy;

fn show(tag: &str, scale: Scale, regime: &Regime) -> f64 {
    let o = probe(scale, regime);
    let bb = o.base.bandwidth_mbps();
    let sb = o.sched.bandwidth_mbps();
    println!(
        "{tag} P={} duty={} retry=({},{},{}) cap={} alpha={} mig={} per={} \
         | base {bb:.1} (to={}) sched {sb:.1} (to={} def={}) ratio {:.2}",
        regime.period_s,
        regime.duty_down,
        regime.retry.backoff_s,
        regime.retry.max_retries,
        regime.retry.timeout_s,
        regime.inflight_cap,
        regime.alpha,
        regime.migrate_every,
        regime.periods,
        o.base.timeouts,
        o.sched.timeouts,
        o.sched.deferred_requests,
        sb / bb
    );
    sb / bb
}

fn main() {
    let mut ranked: Vec<(f64, Regime)> = Vec::new();
    for &period_s in &[1.5, 2.0, 2.5, 3.0] {
        for &duty_down in &[0.4, 0.5, 0.6] {
            for &inflight_cap in &[32u32, 48, 64] {
                for &alpha in &[0.2, 0.3, 0.5] {
                    let regime = Regime {
                        period_s,
                        duty_down,
                        migrate_every: 8,
                        periods: (480.0 / period_s) as usize,
                        retry: RetryPolicy { backoff_s: 0.05, max_retries: 4, timeout_s: 4.0 },
                        alpha,
                        inflight_cap,
                        reorder_window: 64,
                    };
                    let r = show("Q", Scale::Quick, &regime);
                    ranked.push((r, regime));
                }
            }
        }
    }
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\n--- top 8 at Full scale ---");
    for (qr, regime) in ranked.iter().take(8) {
        print!("(quick {qr:.2}) ");
        show("F", Scale::Full, regime);
    }
}
