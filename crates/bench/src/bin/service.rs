//! The multi-tenant layout-service study: eight tenants, each with its
//! own online planner and lazy migrator over one shared store, under
//! seeded open-loop arrivals on one shared cluster.
//!
//! ```text
//! cargo run --release -p mha-bench --bin service            # full study
//! cargo run --release -p mha-bench --bin service -- --smoke # CI gate
//! ```
//!
//! The full study writes `results/BENCH_service.json` (sustained
//! aggregate MB/s plus p50/p95/p99 completion latency per tenant over
//! 64 interleaved jobs). Both modes assert the service's properties:
//! the same seed reproduces the run bit-for-bit, co-tenants never
//! perturb a tenant's replay reports, and a 1-tenant service is
//! bit-identical to a plain streaming replay.

use mha_bench::online::figures_json;
use mha_bench::service::study;
use mha_bench::workloads::Scale;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::Full };
    let s = study(scale);
    for fig in &s.figures {
        println!("{fig}");
    }
    println!(
        "{} tenants | {} jobs completed, {} rejected | {:.1} MB/s aggregate",
        s.tenants, s.jobs, s.rejected, s.aggregate_mbps
    );
    if smoke {
        println!("smoke ok");
    } else {
        assert!(s.jobs >= 64, "full study must complete >= 64 jobs, got {}", s.jobs);
        std::fs::create_dir_all("results").expect("create results dir");
        let path = "results/BENCH_service.json";
        let json = figures_json(&s.figures).expect("study figures are finite");
        std::fs::write(path, json).expect("write results");
        println!("wrote {path}");
    }
}
