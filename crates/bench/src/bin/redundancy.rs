//! Redundant layouts under permanent server loss: replication and
//! erasure coding versus plain striping, healthy / degraded / rebuilding.
//!
//! ```text
//! cargo run --release -p mha-bench --bin redundancy            # full study
//! cargo run --release -p mha-bench --bin redundancy -- --smoke # CI gate
//! ```
//!
//! The full study writes `results/BENCH_redundancy.json`. Both modes
//! assert the acceptance bars inside the study itself: every degraded
//! redundant replay completes with zero timeouts, serial and sharded
//! cores agree bit-for-bit on every cell (counters included), healthy
//! redundant replays are bit-identical to striped MHA, and the
//! journaled rebuild swaps every affected layout onto the spare.

use mha_bench::online::figures_json;
use mha_bench::redundancy::study;
use mha_bench::workloads::Scale;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::Full };
    let s = study(scale);
    for fig in &s.figures {
        println!("{fig}");
    }
    println!(
        "{} region layouts | rebuild read {:.1} MB, wrote {:.1} MB onto the spare",
        s.layouts,
        s.rebuild_read as f64 / 1e6,
        s.rebuild_written as f64 / 1e6,
    );
    if smoke {
        println!("smoke ok");
    } else {
        std::fs::create_dir_all("results").expect("create results dir");
        let path = "results/BENCH_redundancy.json";
        let json = figures_json(&s.figures).expect("study figures are finite");
        std::fs::write(path, json).expect("write results");
        println!("wrote {path}");
    }
}
