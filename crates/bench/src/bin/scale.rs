//! Scale experiment behind `results/BENCH_scale.json`: replay-core
//! throughput (records/sec) versus cluster size on the sharded versus
//! serial cores, plus the bounded-memory 10M-record streaming run.
//!
//! ```bash
//! cargo run -p mha-bench --release --bin scale            # full grid
//! cargo run -p mha-bench --release --bin scale -- --smoke # CI gate
//! ```
//!
//! The grid weak-scales the paper's IOR write workload with the
//! cluster: 16 processes per server issuing 64 KiB random-offset
//! requests against one shared 64 GiB file (the paper's §V client :
//! server proportions, scaled out), at 64 / 256 / 1024 servers. Before
//! any timing, the serial and sharded cores replay the same trace and
//! the full reports are asserted identical — makespan, busy seconds and
//! the request-latency sum compared by bit pattern. Timing is best of
//! 10 (the suite runs on shared boxes; minimum is robust to steal
//! time). The streaming case replays ~10 M generated records through
//! `run_stream` without ever materializing a `Vec<TraceRecord>`, and
//! reports the process high-water mark (`VmHWM`) as evidence the run
//! stayed in bounded memory.
//!
//! `--smoke` is the CI gate: a 1024-server, ~1 M-record streaming run
//! with the same identity assertion on a materialized prefix — it
//! catches panics, identity drift and memory blow-ups in about a
//! minute, without the full grid's runtime.

use iotrace::gen::ior::{self, generate, IorConfig};
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, IdentityResolver, ReplayInput, ReplayReport, ReplaySession,
};
use std::time::Instant;
use storage_model::IoOp;

/// Process high-water resident set in KiB (Linux); 0 where unreadable.
fn vm_hwm_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// The weak-scaled IOR write workload: `procs` ranks, 64 KiB requests
/// at random offsets in one shared 64 GiB file, `reqs` barrier phases.
fn workload(procs: u32, reqs: usize) -> IorConfig {
    let mut cfg = IorConfig::default_run(IoOp::Write);
    cfg.proc_mix = vec![procs];
    cfg.reqs_per_proc = reqs;
    cfg.file_size = 64 << 30;
    cfg
}

fn cluster_of(servers: usize, clients: usize) -> Cluster {
    // The paper's 3:1 HServer:SServer ratio, scaled out.
    Cluster::new(ClusterConfig {
        clients,
        ..ClusterConfig::with_ratio(servers * 3 / 4, servers / 4)
    })
}

/// Every observable of the two reports must match — by bit pattern for
/// the float statistics. Identity is the precondition for timing: a
/// fast wrong core is worthless.
fn assert_identical(serial: &ReplayReport, sharded: &ReplayReport, what: &str) {
    assert_eq!(serial.makespan, sharded.makespan, "{what}: makespan");
    assert_eq!(serial.requests, sharded.requests, "{what}: requests");
    assert_eq!(serial.total_bytes, sharded.total_bytes, "{what}: bytes");
    assert_eq!(serial.mds_lookups, sharded.mds_lookups, "{what}: mds");
    assert_eq!(
        serial.server_busy_secs(),
        sharded.server_busy_secs(),
        "{what}: busy"
    );
    assert_eq!(
        serial.request_latency.sum().to_bits(),
        sharded.request_latency.sum().to_bits(),
        "{what}: latency sum"
    );
    assert_eq!(
        serial.request_latency.max().to_bits(),
        sharded.request_latency.max().to_bits(),
        "{what}: latency max"
    );
}

/// One grid row: identity check, then best-of-10 of each core.
fn grid_row(servers: usize, procs: u32, reqs: usize) {
    let cfg = workload(procs, reqs);
    let trace = generate(&cfg);
    let mut cluster = cluster_of(servers, (procs / 4) as usize);
    let mut session = ReplaySession::new();

    let serial = session.run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), CoreSel::Auto).unwrap();
    let sharded = session.run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), CoreSel::Sharded).unwrap();
    assert_identical(&serial, &sharded, "grid");

    let mut dt_serial = f64::MAX;
    let mut dt_sharded = f64::MAX;
    for _ in 0..10 {
        let t = Instant::now();
        session.run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), CoreSel::Auto).unwrap();
        dt_serial = dt_serial.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        session.run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), CoreSel::Sharded).unwrap();
        dt_sharded = dt_sharded.min(t.elapsed().as_secs_f64());
    }
    let n = trace.len() as f64;
    println!(
        "[grid] servers={servers:5} records={:9} serial={:9.0} rec/s  sharded={:9.0} rec/s  (identity asserted)",
        trace.len(),
        n / dt_serial,
        n / dt_sharded,
    );
}

/// The streaming case: generate-and-replay `procs * reqs` records with
/// no full-trace materialization, report throughput and peak memory.
fn streaming_case(servers: usize, procs: u32, reqs: usize, iters: usize) {
    let cfg = workload(procs, reqs);
    let mut cluster = cluster_of(servers, (procs / 4) as usize);
    let mut session = ReplaySession::new();
    let mut dt = f64::MAX;
    let mut n = 0usize;
    for _ in 0..iters {
        let t = Instant::now();
        let r = session
            .run(ReplayInput::stream(&mut cluster, &mut ior::stream(&cfg), &mut IdentityResolver), CoreSel::Auto)
            .unwrap();
        dt = dt.min(t.elapsed().as_secs_f64());
        n = r.requests;
    }
    println!(
        "[stream] servers={servers:4} records={n:9} e2e={:9.0} rec/s  vm_hwm={} KiB",
        n as f64 / dt,
        vm_hwm_kib(),
    );
}

/// CI smoke: identity on a materialized prefix, then a ~1M-record
/// 1024-server streaming run. Panics (and so fails the gate) on any
/// divergence; prints the throughput and high-water mark it saw.
fn smoke() {
    let servers = 1024;
    let procs = 16384u32;

    // Identity gate on a materialized prefix of the same workload.
    let cfg = workload(procs, 3);
    let trace = generate(&cfg);
    let mut cluster = cluster_of(servers, (procs / 4) as usize);
    let mut session = ReplaySession::new();
    let serial = session.run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), CoreSel::Auto).unwrap();
    let sharded = session.run(ReplayInput::trace(&mut cluster, &trace, &mut IdentityResolver), CoreSel::Sharded).unwrap();
    assert_identical(&serial, &sharded, "smoke");
    let streamed = session
        .run(ReplayInput::stream(&mut cluster, &mut ior::stream(&cfg), &mut IdentityResolver), CoreSel::Auto)
        .unwrap();
    assert_identical(&serial, &streamed, "smoke stream");
    println!("[smoke] identity: serial == sharded == streamed on {} records", trace.len());

    // ~1M records, streamed, single pass.
    streaming_case(servers, procs, 60, 1);
    println!("[smoke] ok");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    // Weak-scaling grid: 16 processes per server, 25 barrier phases.
    grid_row(64, 1024, 25);
    grid_row(256, 4096, 25);
    grid_row(1024, 16384, 25);
    // The tentpole target: ~10M records at 1024 servers, streamed.
    streaming_case(1024, 16384, 600, 3);
}
