//! Client-side straggler-aware dispatch versus layout replanning under
//! a transient 8x straggler (a duty-cycled outage train).
//!
//! ```text
//! cargo run --release -p mha-bench --bin straggler            # full study
//! cargo run --release -p mha-bench --bin straggler -- --smoke # CI gate
//! ```
//!
//! The full study writes `results/BENCH_straggler.json`. Both modes
//! assert the acceptance bars inside the study itself: fault-free sched
//! cells are bit-identical to blind dispatch, serial and sharded cores
//! agree bit-for-bit on every cell (scheduler counters included), and
//! straggler-aware dispatch never loses to — and at full scale beats —
//! the blind baseline under the straggler.

use mha_bench::online::figures_json;
use mha_bench::straggler::study;
use mha_bench::workloads::Scale;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::Full };
    let s = study(scale);
    for fig in &s.figures {
        println!("{fig}");
    }
    println!(
        "scheduler recovered {:.1}% of the straggler-induced bandwidth loss \
         ({} requests deferred)",
        s.recovered_pct, s.deferred
    );
    if smoke {
        println!("smoke ok");
    } else {
        std::fs::create_dir_all("results").expect("create results dir");
        let path = "results/BENCH_straggler.json";
        let json = figures_json(&s.figures).expect("study figures are finite");
        std::fs::write(path, json).expect("write results");
        println!("wrote {path}");
    }
}
