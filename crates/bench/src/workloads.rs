//! Canonical workload and context constructors shared by the figure
//! harness, the Criterion benches and the integration tests.

use iotrace::gen::{btio, cholesky, hpio, ior, lanl, lu};
use iotrace::Trace;
use mha_core::schemes::PlannerContext;
use pfs_sim::ClusterConfig;
use storage_model::IoOp;

/// Scale factor: `quick` workloads shrink request counts so the whole
/// figure set runs in seconds; full workloads follow the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized runs.
    Full,
    /// Reduced runs for smoke tests and Criterion.
    Quick,
}

impl Scale {
    /// Scale an iteration count.
    pub fn reqs(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 4).max(4),
        }
    }
}

/// Planner context for a cluster, with the RSSD step adapted to the
/// workload's largest request: the paper's 4 KiB default is kept for
/// small-request workloads, while multi-megabyte workloads (BTIO,
/// Cholesky) coarsen the step so the candidate grid stays tractable —
/// the paper notes the step "can be configured by the user".
pub fn context_for(trace: &Trace, cluster: &ClusterConfig) -> PlannerContext {
    PlannerContext::for_cluster(cluster).with_step_for(trace)
}

/// Fig. 7 workload: IOR, 32 processes, mixed request sizes, one op pass.
pub fn ior_mixed_sizes(sizes_kb: &[u64], op: IoOp, scale: Scale) -> Trace {
    let sizes: Vec<u64> = sizes_kb.iter().map(|k| k << 10).collect();
    let mut cfg = ior::IorConfig::mixed_sizes(&sizes, op);
    cfg.reqs_per_proc = scale.reqs(64);
    ior::generate(&cfg)
}

/// Fig. 9 workload: IOR, 256 KiB requests, mixed process counts.
pub fn ior_mixed_procs(procs: &[u32], op: IoOp, scale: Scale) -> Trace {
    let mut cfg = ior::IorConfig::mixed_procs(procs, op);
    cfg.reqs_per_proc = scale.reqs(64);
    ior::generate(&cfg)
}

/// Fig. 14 workload: IOR, small 4 KiB + 64 KiB mix at a process count.
pub fn ior_overhead(procs: u32, op: IoOp, scale: Scale) -> Trace {
    let mut cfg = ior::IorConfig::mixed_sizes(&[4 << 10, 64 << 10], op);
    cfg.proc_mix = vec![procs];
    cfg.reqs_per_proc = scale.reqs(64);
    ior::generate(&cfg)
}

/// Fig. 11 workload: HPIO with the paper's parameters.
pub fn hpio_trace(procs: u32, op: IoOp, scale: Scale) -> Trace {
    let mut cfg = hpio::HpioConfig::paper(procs, op);
    cfg.region_count = scale.reqs(4096) as u32;
    hpio::generate(&cfg)
}

/// Fig. 12a workload: BTIO class B + C interleaved.
pub fn btio_trace(procs: u32, op: IoOp) -> Trace {
    btio::generate(&btio::BtioConfig::paper(procs, op))
}

/// Fig. 12b workload: the LANL App2 trace.
pub fn lanl_trace(scale: Scale) -> Trace {
    lanl::generate(&lanl::LanlConfig::paper(scale.reqs(64) as u32, IoOp::Write))
}

/// Fig. 13a workload: out-of-core LU.
pub fn lu_trace(scale: Scale) -> Trace {
    lu::generate(&lu::LuConfig { procs: 8, steps: scale.reqs(128) as u32 })
}

/// Fig. 13b workload: sparse Cholesky.
pub fn cholesky_trace(scale: Scale) -> Trace {
    cholesky::generate(&cholesky::CholeskyConfig {
        panels: scale.reqs(96) as u32,
        ..cholesky::CholeskyConfig::default()
    })
}

/// The paper's cluster (6 HServers, 2 SServers, 8 clients).
pub fn paper_cluster() -> ClusterConfig {
    ClusterConfig::paper_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scales_down() {
        assert_eq!(Scale::Quick.reqs(64), 16);
        assert_eq!(Scale::Full.reqs(64), 64);
        assert_eq!(Scale::Quick.reqs(8), 4, "floor at 4");
    }

    #[test]
    fn context_step_tracks_request_size() {
        let small = ior_mixed_sizes(&[16], IoOp::Read, Scale::Quick);
        let ctx = context_for(&small, &paper_cluster());
        assert_eq!(ctx.rssd.step, 4096, "small workloads keep the 4 KiB step");

        let big = btio_trace(9, IoOp::Write);
        let ctx = context_for(&big, &paper_cluster());
        assert!(ctx.rssd.step > 4096, "BTIO coarsens the step");
        assert_eq!(ctx.rssd.step % 4096, 0);
    }

    #[test]
    fn workloads_are_nonempty() {
        assert!(!ior_mixed_sizes(&[128, 256], IoOp::Write, Scale::Quick).is_empty());
        assert!(!ior_mixed_procs(&[8, 32], IoOp::Read, Scale::Quick).is_empty());
        assert!(!hpio_trace(16, IoOp::Write, Scale::Quick).is_empty());
        assert!(!btio_trace(9, IoOp::Write).is_empty());
        assert!(!lanl_trace(Scale::Quick).is_empty());
        assert!(!lu_trace(Scale::Quick).is_empty());
        assert!(!cholesky_trace(Scale::Quick).is_empty());
        assert!(!ior_overhead(8, IoOp::Write, Scale::Quick).is_empty());
    }
}
