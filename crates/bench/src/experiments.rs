//! One experiment per paper artifact (see crate docs for the index).

use crate::report::Figure;
use crate::workloads::{self, Scale};
use iotrace::gen::lanl;
use iotrace::Trace;
use mha_core::redirect::NullRedirectResolver;
use mha_core::schemes::{Evaluation, PlannerContext, Scheme};
use mha_core::CostParams;
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, DeviceProfile, FaultPlan, IdentityResolver, ReplayInput,
    ReplayReport, ReplaySchedule, ReplaySession,
};
use rayon::prelude::*;
use storage_model::IoOp;

/// Run the experiment(s) named by `id` (`all` runs everything) at the
/// given scale. Returns the reproduced figures in paper order.
pub fn run(id: &str, scale: Scale) -> Vec<Figure> {
    let all = id == "all";
    let mut figs = Vec::new();
    if all || id == "fig3" {
        figs.push(fig3());
    }
    if all || id == "fig7" {
        figs.extend(fig7(scale));
    }
    if all || id == "fig8" {
        figs.push(fig8(scale));
    }
    if all || id == "fig9" {
        figs.extend(fig9(scale));
    }
    if all || id == "fig10" {
        figs.extend(fig10(scale));
    }
    if all || id == "fig11" {
        figs.push(fig11(scale));
    }
    if all || id == "fig12a" {
        figs.push(fig12a(scale));
    }
    if all || id == "fig12b" {
        figs.push(fig12b(scale));
    }
    if all || id == "fig13a" {
        figs.push(fig13a(scale));
    }
    if all || id == "fig13b" {
        figs.push(fig13b(scale));
    }
    if all || id == "fig14" {
        figs.push(fig14(scale));
    }
    if all || id == "tab1" {
        figs.push(tab1());
    }
    if all || id == "ovh" {
        figs.push(ovh());
    }
    if all || id == "ablations" {
        figs.extend(ablations(scale));
    }
    if all || id == "sens" {
        figs.extend(sensitivity(scale));
    }
    if all || id == "coll" {
        figs.push(collective(scale));
    }
    if all || id == "dyn" {
        figs.push(dynamic(scale));
    }
    if all || id == "fault" {
        figs.push(fault(scale));
    }
    if all || id == "online" {
        figs.extend(crate::online::study(scale).figures);
    }
    assert!(!figs.is_empty(), "unknown experiment id: {id}");
    figs
}

/// All experiment ids, in paper order (plus the ablation, sensitivity,
/// collective-I/O, dynamic-controller, fault-injection and online
/// re-planning studies).
pub fn all_ids() -> &'static [&'static str] {
    &[
        "fig3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12a", "fig12b", "fig13a",
        "fig13b", "fig14", "tab1", "ovh", "ablations", "sens", "coll", "dyn", "fault", "online",
    ]
}

const SCHEMES: [Scheme; 4] = [Scheme::Def, Scheme::Aal, Scheme::Harl, Scheme::Mha];
const SCHEME_NAMES: [&str; 4] = ["DEF", "AAL", "HARL", "MHA"];

/// Replay reports of every scheme on one workload/cluster, scheme-
/// parallel: each cell builds its own cluster, plan, resolver and
/// scratch, the trace's replay schedule is built once and shared (it is
/// read-only), and the indexed collect keeps scheme order, so the grid
/// is deterministic — reports are identical to [`scheme_reports_serial`]
/// at any thread count (the replay determinism test compares them field
/// by field).
pub fn scheme_reports(trace: &Trace, cluster: &ClusterConfig) -> Vec<ReplayReport> {
    let ctx = workloads::context_for(trace, cluster);
    let schedule = ReplaySchedule::for_trace(trace);
    SCHEMES
        .par_iter()
        .map(|&s| {
            let mut session = ReplaySession::new().with_schedule(schedule.clone());
            Evaluation::of(s, trace, cluster)
                .context(&ctx)
                .run_in(&mut session)
                .expect("scheduled fault-free replay cannot fail")
        })
        .collect()
}

/// Single-thread reference for [`scheme_reports`], threading one replay
/// session (and its scratch) through all four schemes and rebuilding the
/// schedule inline per cell — so the bit-for-bit grid test simultaneously
/// pins the pinned-schedule path against the per-replay rebuild.
pub fn scheme_reports_serial(trace: &Trace, cluster: &ClusterConfig) -> Vec<ReplayReport> {
    let ctx = workloads::context_for(trace, cluster);
    let mut session = ReplaySession::new();
    SCHEMES
        .iter()
        .map(|&s| {
            Evaluation::of(s, trace, cluster)
                .context(&ctx)
                .run_in(&mut session)
                .expect("fault-free replay cannot fail")
        })
        .collect()
}

/// Bandwidth of one scheme on one workload, through the builder — the
/// figure bodies below all funnel through here.
fn bandwidth(scheme: Scheme, trace: &Trace, cluster: &ClusterConfig, ctx: &PlannerContext) -> f64 {
    Evaluation::of(scheme, trace, cluster)
        .context(ctx)
        .report()
        .bandwidth_mbps()
}

/// Bandwidth of every scheme on one workload/cluster (fresh cluster and
/// calibration per scheme).
fn scheme_bandwidths(trace: &Trace, cluster: &ClusterConfig) -> Vec<f64> {
    scheme_reports(trace, cluster)
        .iter()
        .map(ReplayReport::bandwidth_mbps)
        .collect()
}

/// Fig. 3: the data access sequence of one LANL loop iteration set.
pub fn fig3() -> Figure {
    let trace = lanl::generate(&lanl::LanlConfig { procs: 1, loops: 3, op: IoOp::Write });
    let mut fig = Figure::new(
        "fig3",
        "Data access sequence in a loop of LANL application",
        &["request size"],
        "bytes",
    );
    for (i, rec) in trace.records().iter().enumerate() {
        fig.push_row(format!("req {i}"), vec![rec.len as f64]);
    }
    fig
}

/// Fig. 7: IOR bandwidth with mixed request sizes (one figure per op).
pub fn fig7(scale: Scale) -> Vec<Figure> {
    let mixes: [(&str, &[u64]); 4] = [
        ("16", &[16]),
        ("128+256", &[128, 256]),
        ("64+512", &[64, 512]),
        ("256+1024", &[256, 1024]),
    ];
    let cluster = workloads::paper_cluster();
    [IoOp::Read, IoOp::Write]
        .into_iter()
        .map(|op| {
            let id = if op == IoOp::Read { "fig7r" } else { "fig7w" };
            let mut fig = Figure::new(
                id,
                &format!("IOR {} bandwidth with mixed request sizes", op.name()),
                &SCHEME_NAMES,
                "MB/s",
            );
            // Rows are independent (workload generation included), so
            // they fan out too; the indexed collect keeps paper order.
            let rows: Vec<Vec<f64>> = mixes
                .par_iter()
                .map(|(_, sizes)| {
                    let trace = workloads::ior_mixed_sizes(sizes, op, scale);
                    scheme_bandwidths(&trace, &cluster)
                })
                .collect();
            for ((label, _), row) in mixes.into_iter().zip(rows) {
                fig.push_row(label, row);
            }
            fig
        })
        .collect()
}

/// Fig. 8: per-server I/O time under each scheme (IOR write, 128+256 KiB),
/// normalized to the smallest positive server time under MHA.
pub fn fig8(scale: Scale) -> Figure {
    let cluster = workloads::paper_cluster();
    let trace = workloads::ior_mixed_sizes(&[128, 256], IoOp::Write, scale);
    let reports = scheme_reports(&trace, &cluster);
    let mha_busy = reports[3].server_busy_secs();
    let norm = mha_busy
        .iter()
        .copied()
        .filter(|&b| b > 0.0)
        .fold(f64::INFINITY, f64::min);
    let norm = if norm.is_finite() { norm } else { 1.0 };
    let mut fig = Figure::new(
        "fig8",
        "I/O time of each server (S0-S5 HServers, S6-S7 SServers), normalized",
        &SCHEME_NAMES,
        "x (norm. to min server under MHA)",
    );
    for server in 0..reports[0].per_server.len() {
        let values = reports
            .iter()
            .map(|r| r.server_busy_secs()[server] / norm)
            .collect();
        fig.push_row(format!("S{server}"), values);
    }
    fig
}

/// Fig. 9: IOR bandwidth with mixed process counts (one figure per op).
pub fn fig9(scale: Scale) -> Vec<Figure> {
    let mixes: [(&str, &[u32]); 4] =
        [("8", &[8]), ("8+32", &[8, 32]), ("16+64", &[16, 64]), ("32+128", &[32, 128])];
    let cluster = workloads::paper_cluster();
    [IoOp::Read, IoOp::Write]
        .into_iter()
        .map(|op| {
            let id = if op == IoOp::Read { "fig9r" } else { "fig9w" };
            let mut fig = Figure::new(
                id,
                &format!("IOR {} bandwidth with mixed process numbers", op.name()),
                &SCHEME_NAMES,
                "MB/s",
            );
            let rows: Vec<Vec<f64>> = mixes
                .par_iter()
                .map(|(_, procs)| {
                    let trace = workloads::ior_mixed_procs(procs, op, scale);
                    scheme_bandwidths(&trace, &cluster)
                })
                .collect();
            for ((label, _), row) in mixes.into_iter().zip(rows) {
                fig.push_row(label, row);
            }
            fig
        })
        .collect()
}

/// Fig. 10: IOR bandwidth across H:S server ratios (one figure per op).
pub fn fig10(scale: Scale) -> Vec<Figure> {
    let ratios = [(7usize, 1usize), (6, 2), (5, 3), (4, 4)];
    [IoOp::Read, IoOp::Write]
        .into_iter()
        .map(|op| {
            let id = if op == IoOp::Read { "fig10r" } else { "fig10w" };
            let mut fig = Figure::new(
                id,
                &format!("IOR {} bandwidth with various server ratios", op.name()),
                &SCHEME_NAMES,
                "MB/s",
            );
            let trace = workloads::ior_mixed_sizes(&[128, 256], op, scale);
            let rows: Vec<Vec<f64>> = ratios
                .par_iter()
                .map(|&(h, s)| {
                    let cluster = ClusterConfig::with_ratio(h, s);
                    scheme_bandwidths(&trace, &cluster)
                })
                .collect();
            for ((h, s), row) in ratios.into_iter().zip(rows) {
                fig.push_row(format!("{h}h:{s}s"), row);
            }
            fig
        })
        .collect()
}

/// Fig. 11: HPIO write bandwidth vs process count.
pub fn fig11(scale: Scale) -> Figure {
    let cluster = workloads::paper_cluster();
    let mut fig = Figure::new(
        "fig11",
        "HPIO bandwidth with various process numbers",
        &SCHEME_NAMES,
        "MB/s",
    );
    let procs_axis = [16u32, 32, 64];
    let rows: Vec<Vec<f64>> = procs_axis
        .par_iter()
        .map(|&procs| {
            let trace = workloads::hpio_trace(procs, IoOp::Write, scale);
            scheme_bandwidths(&trace, &cluster)
        })
        .collect();
    for (procs, row) in procs_axis.into_iter().zip(rows) {
        fig.push_row(format!("{procs} procs"), row);
    }
    fig
}

/// Fig. 12a: BTIO aggregate bandwidth (class B + C interleaved).
pub fn fig12a(_scale: Scale) -> Figure {
    let cluster = workloads::paper_cluster();
    let mut fig = Figure::new("fig12a", "BTIO aggregate bandwidth", &SCHEME_NAMES, "MB/s");
    let procs_axis = [9u32, 16, 25];
    let rows: Vec<Vec<f64>> = procs_axis
        .par_iter()
        .map(|&procs| {
            let trace = workloads::btio_trace(procs, IoOp::Write);
            scheme_bandwidths(&trace, &cluster)
        })
        .collect();
    for (procs, row) in procs_axis.into_iter().zip(rows) {
        fig.push_row(format!("{procs} procs"), row);
    }
    fig
}

/// Fig. 12b: LANL application trace replay.
pub fn fig12b(scale: Scale) -> Figure {
    let cluster = workloads::paper_cluster();
    let trace = workloads::lanl_trace(scale);
    let mut fig = Figure::new("fig12b", "LANL application bandwidth", &SCHEME_NAMES, "MB/s");
    fig.push_row("LANL", scheme_bandwidths(&trace, &cluster));
    fig
}

/// Fig. 13a: LU decomposition trace replay.
pub fn fig13a(scale: Scale) -> Figure {
    let cluster = workloads::paper_cluster();
    let trace = workloads::lu_trace(scale);
    let mut fig = Figure::new("fig13a", "LU decomposition bandwidth", &SCHEME_NAMES, "MB/s");
    fig.push_row("LU", scheme_bandwidths(&trace, &cluster));
    fig
}

/// Fig. 13b: sparse Cholesky trace replay.
pub fn fig13b(scale: Scale) -> Figure {
    let cluster = workloads::paper_cluster();
    let trace = workloads::cholesky_trace(scale);
    let mut fig = Figure::new("fig13b", "Sparse Cholesky bandwidth", &SCHEME_NAMES, "MB/s");
    fig.push_row("Cholesky", scheme_bandwidths(&trace, &cluster));
    fig
}

/// Fig. 14: redirection overhead — IOR 4 KiB + 64 KiB, redirecting every
/// request back to the original system (no reordering) vs direct access.
pub fn fig14(scale: Scale) -> Figure {
    let cluster = workloads::paper_cluster();
    let mut fig = Figure::new(
        "fig14",
        "MHA redirection overhead (no data reordering)",
        &["direct", "redirect", "overhead %"],
        "MB/s (first two)",
    );
    let mut session = ReplaySession::new();
    for procs in [8u32, 32, 128] {
        let trace = workloads::ior_overhead(procs, IoOp::Write, scale);
        let mut c1 = Cluster::new(cluster.clone());
        let direct = session
            .run(ReplayInput::trace(&mut c1, &trace, &mut IdentityResolver), CoreSel::Auto)
            .expect("fault-free replay cannot fail");
        let mut c2 = Cluster::new(cluster.clone());
        let mut null = NullRedirectResolver::with_default_cost();
        let redirect = session
            .run(ReplayInput::trace(&mut c2, &trace, &mut null), CoreSel::Auto)
            .expect("fault-free replay cannot fail");
        let d = direct.bandwidth_mbps();
        let r = redirect.bandwidth_mbps();
        fig.push_row(format!("{procs} procs"), vec![d, r, (d / r - 1.0) * 100.0]);
    }
    fig
}

/// Table I: the calibrated cost-model parameters.
pub fn tab1() -> Figure {
    let p = CostParams::paper_default();
    let mut fig = Figure::new(
        "tab1",
        "Calibrated cost model parameters (Table I)",
        &["value"],
        "seconds / seconds-per-byte / count",
    );
    fig.push_row("M (HServers)", vec![p.m as f64]);
    fig.push_row("N (SServers)", vec![p.n as f64]);
    fig.push_row("t (net s/B)", vec![p.t]);
    fig.push_row("alpha_h", vec![p.alpha_h]);
    fig.push_row("beta_h", vec![p.beta_h]);
    fig.push_row("alpha_sr", vec![p.alpha_sr]);
    fig.push_row("beta_sr", vec![p.beta_sr]);
    fig.push_row("alpha_sw", vec![p.alpha_sw]);
    fig.push_row("beta_sw", vec![p.beta_sw]);
    fig
}

/// §V-E.2: DRT meta-data space overhead for the worst case (all requests
/// 4 KiB), measured from the real kvstore encoding.
pub fn ovh() -> Figure {
    use mha_core::region::{Drt, DrtEntry};
    let path = std::env::temp_dir().join(format!("mha-ovh-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = kvstore::Store::open(
        &path,
        kvstore::StoreOptions { sync_on_write: false, ..Default::default() },
    )
    .expect("open overhead store");
    let mut drt = Drt::new();
    let entries = 4096u64;
    for i in 0..entries {
        drt.insert(DrtEntry {
            o_file: iotrace::FileId(0),
            o_offset: i * 4096,
            r_file: iotrace::FileId(1 << 20),
            r_offset: i * 4096,
            length: 4096,
        });
    }
    drt.save(&store).expect("save DRT");
    let log_bytes = store.stats().log_bytes;
    let _ = std::fs::remove_file(&path);
    let data_bytes = entries * 4096;
    let per_entry = log_bytes as f64 / entries as f64;
    let mut fig = Figure::new(
        "ovh",
        "DRT meta-data space overhead, all-4KiB worst case",
        &["value"],
        "mixed",
    );
    fig.push_row("bytes per entry (on disk)", vec![per_entry]);
    fig.push_row("bytes per entry (paper, in memory)", vec![24.0]);
    fig.push_row("entries per GB of data", vec![(1u64 << 30) as f64 / 4096.0]);
    fig.push_row(
        "space overhead %",
        vec![log_bytes as f64 / data_bytes as f64 * 100.0],
    );
    fig
}

/// Ablation study (DESIGN.md §8): the simulated-bandwidth consequence of
/// each MHA design choice, on two contrasting workloads (LANL: mixed
/// sizes at fixed concurrency; IOR mixed-procs: fixed size at mixed
/// concurrency).
pub fn ablations(scale: Scale) -> Vec<Figure> {
    use mha_core::{GroupingConfig, RssdConfig};

    let cluster = workloads::paper_cluster();
    let workload_set: Vec<(&str, Trace)> = vec![
        ("LANL", workloads::lanl_trace(scale)),
        ("IOR 8+32 procs", workloads::ior_mixed_procs(&[8, 32], IoOp::Write, scale)),
    ];

    let mha_with = |trace: &Trace, tweak: &dyn Fn(&mut PlannerContext)| -> f64 {
        let mut ctx = workloads::context_for(trace, &cluster);
        tweak(&mut ctx);
        bandwidth(Scheme::Mha, trace, &cluster, &ctx)
    };

    let mut figs = Vec::new();

    // 1. k cap of Algorithm 1.
    let mut kfig = Figure::new(
        "abl_kcap",
        "Ablation: group bound k (regions available to MHA)",
        &["k=1", "k=2", "k=4", "k=8", "k=16"],
        "MB/s",
    );
    for (name, trace) in &workload_set {
        let row: Vec<f64> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&k| {
                mha_with(trace, &|ctx| {
                    ctx.grouping = GroupingConfig { k, ..ctx.grouping.clone() }
                })
            })
            .collect();
        kfig.push_row(*name, row);
    }
    figs.push(kfig);

    // 2. Adaptive vs fixed-r_max RSSD bounds.
    let mut bfig = Figure::new(
        "abl_bounds",
        "Ablation: adaptive RSSD bounds vs fixed r_max",
        &["adaptive", "fixed r_max"],
        "MB/s",
    );
    for (name, trace) in &workload_set {
        let row = vec![
            mha_with(trace, &|_| {}),
            mha_with(trace, &|ctx| {
                ctx.rssd = RssdConfig { adaptive_bounds: false, ..ctx.rssd.clone() }
            }),
        ];
        bfig.push_row(*name, row);
    }
    figs.push(bfig);

    // 3. RSSD step granularity.
    let mut sfig = Figure::new(
        "abl_step",
        "Ablation: RSSD search step",
        &["4 KiB", "16 KiB", "64 KiB"],
        "MB/s",
    );
    for (name, trace) in &workload_set {
        let row: Vec<f64> = [4u64 << 10, 16 << 10, 64 << 10]
            .iter()
            .map(|&step| {
                mha_with(trace, &|ctx| {
                    ctx.rssd = RssdConfig { step, ..ctx.rssd.clone() };
                })
            })
            .collect();
        sfig.push_row(*name, row);
    }
    figs.push(sfig);

    // 4. Concurrency feature in clustering: flatten concurrency to 1 so
    //    grouping sees size only (and the cost model loses phase depth).
    let mut cfig = Figure::new(
        "abl_features",
        "Ablation: (size, concurrency) features vs size-only",
        &["size+concurrency", "size only"],
        "MB/s",
    );
    for (name, trace) in &workload_set {
        let full = mha_with(trace, &|_| {});
        // Rewrite the trace so every record sits in its own phase:
        // concurrency collapses to 1 everywhere.
        let flattened = Trace::from_records(
            trace
                .records()
                .iter()
                .enumerate()
                .map(|(i, r)| iotrace::TraceRecord { phase: i as u32, ..*r })
                .collect(),
        );
        let flat = {
            let mut ctx = workloads::context_for(&flattened, &cluster);
            let plan = Scheme::Mha.planner().plan(&flattened, &ctx);
            // Replay the REAL trace under the size-only plan.
            let mut c = Cluster::new(cluster.clone());
            mha_core::schemes::apply_plan(&mut c, &plan);
            ctx.lookup_cost = simrt::SimDuration::from_micros(5);
            let mut resolver = plan.make_resolver(ctx.lookup_cost);
            ReplaySession::new()
                .run(ReplayInput::trace(&mut c, trace, resolver.as_mut()), CoreSel::Auto)
                .expect("fault-free replay cannot fail")
                .bandwidth_mbps()
        };
        cfig.push_row(*name, vec![full, flat]);
    }
    figs.push(cfig);

    // 5. Concurrency-aware cost model vs HARL's concurrency-free model —
    //    the scheme comparison doubles as the cost-model ablation.
    let mut mfig = Figure::new(
        "abl_costmodel",
        "Ablation: concurrency-aware cost (MHA) vs concurrency-free (HARL)",
        &["MHA", "HARL"],
        "MB/s",
    );
    for (name, trace) in &workload_set {
        let ctx = workloads::context_for(trace, &cluster);
        mfig.push_row(
            *name,
            vec![
                bandwidth(Scheme::Mha, trace, &cluster, &ctx),
                bandwidth(Scheme::Harl, trace, &cluster, &ctx),
            ],
        );
    }
    figs.push(mfig);

    figs
}

/// Sensitivity study: how the MHA-vs-DEF margin and RSSD's HServer
/// engagement respond to the hardware ratios the paper's testbed fixed —
/// the "where do crossovers fall" record for EXPERIMENTS.md.
pub fn sensitivity(scale: Scale) -> Vec<Figure> {
    use mha_core::schemes::{LayoutPlanner, MhaPlanner};

    let trace = workloads::ior_mixed_sizes(&[128, 256], IoOp::Write, scale);

    let eval = |cluster: &ClusterConfig| -> (f64, f64, f64, f64) {
        let ctx = workloads::context_for(&trace, cluster);
        let def = bandwidth(Scheme::Def, &trace, cluster, &ctx);
        let harl = bandwidth(Scheme::Harl, &trace, cluster, &ctx);
        let mha = bandwidth(Scheme::Mha, &trace, cluster, &ctx);
        // Fraction of regions whose optimized pair engages HServers.
        let plan = MhaPlanner.plan(&trace, &ctx);
        let regions = plan.rst.len().max(1);
        let engaged = plan.rst.iter().filter(|(_, p)| p.h > 0).count();
        (def, harl, mha, engaged as f64 / regions as f64)
    };

    let mut figs = Vec::new();

    // SSD speed multiplier: slower SSDs shrink the H/S gap until HServers
    // re-enter the layouts (the paper's testbed sat nearer that point).
    let mut fig = Figure::new(
        "sens_ssd",
        "Sensitivity: SSD speed multiplier (IOR write, 128+256 KiB mix)",
        &["DEF", "HARL", "MHA", "h>0 region frac"],
        "MB/s (first three)",
    );
    for mult in [0.25f64, 0.5, 1.0, 2.0] {
        let mut cluster = workloads::paper_cluster();
        cluster.ssd.read_bps *= mult;
        cluster.ssd.write_bps *= mult;
        let (def, harl, mha, frac) = eval(&cluster);
        fig.push_row(format!("{mult}x"), vec![def, harl, mha, frac]);
    }
    figs.push(fig);

    // Network bandwidth multiplier: faster NICs raise the SSD ceiling and
    // widen MHA's margin; slower NICs compress every scheme together.
    let mut fig = Figure::new(
        "sens_net",
        "Sensitivity: network bandwidth multiplier (same workload)",
        &["DEF", "HARL", "MHA", "h>0 region frac"],
        "MB/s (first three)",
    );
    for mult in [0.5f64, 1.0, 2.0, 4.0] {
        let mut cluster = workloads::paper_cluster();
        cluster.link.bandwidth_bps *= mult;
        let (def, harl, mha, frac) = eval(&cluster);
        fig.push_row(format!("{mult}x"), vec![def, harl, mha, frac]);
    }
    figs.push(fig);

    figs
}

/// Collective-I/O study: the LANL loop issued independently vs through
/// two-phase collective buffering, under DEF and MHA. Aggregation
/// homogenizes the pattern, so it narrows the gap MHA exploits — and the
/// two optimizations compose.
pub fn collective(scale: Scale) -> Figure {
    use mpiio_sim::{CollectiveConfig, MpiJob, Piece};

    let loops = scale.reqs(32) as u64;
    let procs = 8u64;
    let cluster = workloads::paper_cluster();

    let independent = workloads::lanl_trace(scale);
    let collective = {
        let mut job = MpiJob::new(procs as u32);
        let f = job.open("lanl-coll");
        for i in 0..loops {
            let mut pieces = Vec::new();
            for p in 0..procs {
                let base = (i * procs + p) * 262_144;
                pieces.push(Piece { rank: p as u32, offset: base, len: 16 });
                pieces.push(Piece { rank: p as u32, offset: base + 16, len: 131_056 });
                pieces.push(Piece { rank: p as u32, offset: base + 131_072, len: 131_072 });
            }
            job.write_at_all(f, &pieces, &CollectiveConfig { aggregators: 8 });
        }
        job.finish()
    };

    let mut fig = Figure::new(
        "coll",
        "Collective (two-phase) vs independent I/O on the LANL loop",
        &["DEF", "MHA"],
        "MB/s",
    );
    for (label, trace) in [("independent", &independent), ("collective", &collective)] {
        let ctx = workloads::context_for(trace, &cluster);
        fig.push_row(
            label,
            vec![
                bandwidth(Scheme::Def, trace, &cluster, &ctx),
                bandwidth(Scheme::Mha, trace, &cluster, &ctx),
            ],
        );
    }
    fig
}

/// Dynamic-controller study (the paper's future work): DEF vs online MHA
/// vs the offline oracle on a drifting workload.
pub fn dynamic(scale: Scale) -> Figure {
    use iotrace::gen::ior::{generate as gen_ior, IorConfig};
    use mha_core::dynamic::{run_dynamic, DynamicConfig};

    let cluster = workloads::paper_cluster();
    let mut trace = workloads::lanl_trace(scale);
    let mut readback = IorConfig::default_run(IoOp::Read);
    readback.size_mix = vec![1 << 20];
    readback.reqs_per_proc = scale.reqs(64);
    trace.extend_with(&gen_ior(&readback));

    let ctx = workloads::context_for(&trace, &cluster);
    let def = bandwidth(Scheme::Def, &trace, &cluster, &ctx);
    let dynamic = run_dynamic(&cluster, &trace, &ctx, &DynamicConfig::default());
    let oracle = bandwidth(Scheme::Mha, &trace, &cluster, &ctx);

    let mut fig = Figure::new(
        "dyn",
        "Dynamic (online) MHA on a drifting workload (LANL writes → 1 MiB reads)",
        &["MB/s", "replans", "migrated MiB"],
        "mixed",
    );
    fig.push_row("DEF (never plan)", vec![def, 0.0, 0.0]);
    fig.push_row(
        "dynamic MHA",
        vec![
            dynamic.bandwidth_mbps(),
            dynamic.replans as f64,
            (dynamic.migrated_bytes >> 20) as f64,
        ],
    );
    fig.push_row("oracle MHA (offline)", vec![oracle, 0.0, 0.0]);
    fig
}

/// Fault-injection study (DESIGN.md §11): the four schemes plus a
/// health-aware MHA — re-planned around the servers the fault plan
/// degrades — across a matrix of degraded-cluster scenarios on the LANL
/// trace. The straggler and outage scenarios target an SServer because
/// MHA's LANL layouts lean on the SServers for the trace's small
/// requests; a degraded HServer barely moves a scheme that placed no
/// data there.
pub fn fault(scale: Scale) -> Figure {
    let cluster = workloads::paper_cluster();
    let trace = workloads::lanl_trace(scale);
    let ctx = workloads::context_for(&trace, &cluster);

    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("healthy", FaultPlan::none()),
        ("SServer straggler 8x", FaultPlan::none().slow_server(6, 8.0)),
        ("SServer outage 0-1s", FaultPlan::none().outage(6, 0.0, 1.0)),
        ("HServer down", FaultPlan::none().down(2, 0.0)),
        (
            "worn SSDs",
            FaultPlan::none()
                .degraded(6, DeviceProfile::WornSsd)
                .degraded(7, DeviceProfile::WornSsd),
        ),
    ];

    let mut fig = Figure::new(
        "fault",
        "Degraded-cluster bandwidth (LANL trace): static plans vs health-aware MHA",
        &["DEF", "AAL", "HARL", "MHA", "MHA+replan"],
        "MB/s",
    );
    // Scenario × scheme cells are independent; fan the scenarios out and
    // keep scheme order within each row.
    let rows: Vec<Vec<f64>> = scenarios
        .par_iter()
        .map(|(_, plan)| {
            let mut row: Vec<f64> = SCHEMES
                .iter()
                .map(|&s| {
                    Evaluation::of(s, &trace, &cluster)
                        .context(&ctx)
                        .faults(plan)
                        .report()
                        .bandwidth_mbps()
                })
                .collect();
            row.push(
                Evaluation::of(Scheme::Mha, &trace, &cluster)
                    .context(&ctx)
                    .faults(plan)
                    .replan_around_faults(true)
                    .report()
                    .bandwidth_mbps(),
            );
            row
        })
        .collect();
    for ((label, _), row) in scenarios.into_iter().zip(rows) {
        fig.push_row(label, row);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_aggregation_helps_def_and_homogenizes_the_pattern() {
        let f = collective(Scale::Quick);
        let ind_def = f.value("independent", "DEF").unwrap();
        let ind_mha = f.value("independent", "MHA").unwrap();
        let col_def = f.value("collective", "DEF").unwrap();
        let col_mha = f.value("collective", "MHA").unwrap();
        assert!(col_def > ind_def, "aggregation must help DEF");
        assert!(ind_mha > ind_def, "MHA shines on the heterogeneous stream");
        // Aggregation homogenizes the pattern: layout choice matters far
        // less, so MHA's margin collapses (it lands within the same band
        // as DEF rather than far above it).
        assert!(
            col_mha > col_def * 0.6 && col_mha < col_def * 1.6,
            "collective MHA {col_mha} vs DEF {col_def} should be in the same band"
        );
    }

    #[test]
    fn dynamic_quick_is_between_def_and_oracle() {
        let f = dynamic(Scale::Quick);
        let def = f.value("DEF (never plan)", "MB/s").unwrap();
        let dynb = f.value("dynamic MHA", "MB/s").unwrap();
        let oracle = f.value("oracle MHA (offline)", "MB/s").unwrap();
        assert!(dynb > def, "dynamic {dynb} vs DEF {def}");
        assert!(dynb <= oracle * 1.05, "dynamic {dynb} vs oracle {oracle}");
    }

    #[test]
    fn sensitivity_quick_runs_and_mha_leads_at_default() {
        let figs = sensitivity(Scale::Quick);
        assert_eq!(figs.len(), 2);
        let ssd = &figs[0];
        let mha = ssd.value("1x", "MHA").unwrap();
        let def = ssd.value("1x", "DEF").unwrap();
        assert!(mha > def, "MHA {mha} vs DEF {def} at default hardware");
        // Slower SSDs must pull HServers back into the layouts.
        let frac_slow = ssd.value("0.25x", "h>0 region frac").unwrap();
        let frac_fast = ssd.value("2x", "h>0 region frac").unwrap();
        assert!(
            frac_slow >= frac_fast,
            "HServer engagement should not grow with faster SSDs: slow={frac_slow} fast={frac_fast}"
        );
    }

    #[test]
    fn ablations_quick_produces_five_figures() {
        let figs = ablations(Scale::Quick);
        assert_eq!(figs.len(), 5);
        for f in &figs {
            assert_eq!(f.rows.len(), 2, "{}: two workloads", f.id);
            for row in &f.rows {
                assert!(row.values.iter().all(|&v| v > 0.0), "{}: {row:?}", f.id);
            }
        }
    }

    #[test]
    fn kcap_one_is_no_worse_than_none_but_loses_to_eight() {
        // With k = 1 every request lands in one region (no pattern
        // separation); k = 8 must be at least as good on LANL.
        let figs = ablations(Scale::Quick);
        let kfig = &figs[0];
        let k1 = kfig.value("LANL", "k=1").unwrap();
        let k8 = kfig.value("LANL", "k=8").unwrap();
        assert!(k8 >= k1 * 0.95, "k8={k8} k1={k1}");
    }

    #[test]
    fn fig3_shows_the_three_sizes() {
        let f = fig3();
        assert_eq!(f.rows.len(), 9);
        assert_eq!(f.rows[0].values[0], 16.0);
        assert_eq!(f.rows[1].values[0], 131_056.0);
        assert_eq!(f.rows[2].values[0], 131_072.0);
    }

    #[test]
    fn tab1_has_all_nine_parameters() {
        let f = tab1();
        assert_eq!(f.rows.len(), 9);
        assert_eq!(f.value("M (HServers)", "value"), Some(6.0));
        assert!(f.value("alpha_h", "value").unwrap() > f.value("alpha_sr", "value").unwrap());
    }

    #[test]
    fn ovh_is_about_one_percent() {
        let f = ovh();
        let pct = f.value("space overhead %", "value").unwrap();
        assert!(pct > 0.1 && pct < 3.0, "overhead {pct}%");
    }

    #[test]
    fn fig14_overhead_is_small() {
        let f = fig14(Scale::Quick);
        for row in &f.rows {
            let pct = row.values[2];
            assert!(pct >= 0.0, "{}: negative overhead {pct}", row.label);
            assert!(pct < 15.0, "{}: overhead {pct}% too large", row.label);
        }
    }

    #[test]
    fn fig12b_quick_preserves_scheme_ordering() {
        let f = fig12b(Scale::Quick);
        let def = f.value("LANL", "DEF").unwrap();
        let mha = f.value("LANL", "MHA").unwrap();
        let harl = f.value("LANL", "HARL").unwrap();
        assert!(mha > def, "MHA {mha} vs DEF {def}");
        assert!(mha >= harl * 0.95, "MHA {mha} should not trail HARL {harl}");
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        run("fig99", Scale::Quick);
    }

    #[test]
    fn fault_replanning_recovers_bandwidth_under_sserver_straggler() {
        let f = fault(Scale::Quick);
        let blind = f.value("SServer straggler 8x", "MHA").unwrap();
        let replanned = f.value("SServer straggler 8x", "MHA+replan").unwrap();
        assert!(
            replanned > blind,
            "health-aware replanning must beat the blind plan: {replanned} vs {blind}"
        );
        // An empty plan makes replanning a no-op, bit for bit.
        let healthy = f.value("healthy", "MHA").unwrap();
        let healthy_replan = f.value("healthy", "MHA+replan").unwrap();
        assert_eq!(healthy, healthy_replan, "healthy replan must be identical");
    }

    #[test]
    fn fault_scenarios_degrade_but_never_stall_the_static_schemes() {
        let f = fault(Scale::Quick);
        for series in ["DEF", "AAL", "HARL", "MHA"] {
            let healthy = f.value("healthy", series).unwrap();
            for scenario in [
                "SServer straggler 8x",
                "SServer outage 0-1s",
                "HServer down",
                "worn SSDs",
            ] {
                let degraded = f.value(scenario, series).unwrap();
                assert!(
                    degraded <= healthy,
                    "{series}/{scenario}: {degraded} vs healthy {healthy}"
                );
                assert!(degraded > 0.0, "{series}/{scenario}: must still make progress");
            }
        }
        // DEF stripes over every server, so losing an HServer must hurt
        // it strictly (MHA's LANL layouts may not touch HServers at all).
        let def_healthy = f.value("healthy", "DEF").unwrap();
        let def_down = f.value("HServer down", "DEF").unwrap();
        assert!(def_down < def_healthy, "DEF: down {def_down} vs healthy {def_healthy}");
    }
}
