//! Figure/table report structures with aligned text rendering.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One reproduced figure or table: labelled rows × named series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier (`fig7r`, `tab1`, ...).
    pub id: String,
    /// Human title, matching the paper's caption.
    pub title: String,
    /// Series (column) names, e.g. the four schemes.
    pub series: Vec<String>,
    /// Unit of the values (e.g. "MB/s").
    pub unit: String,
    /// Data rows.
    pub rows: Vec<FigRow>,
}

/// One row of a figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigRow {
    /// X-axis label ("128+256", "9 procs", ...).
    pub label: String,
    /// One value per series.
    pub values: Vec<f64>,
}

impl Figure {
    /// New empty figure.
    pub fn new(id: &str, title: &str, series: &[&str], unit: &str) -> Self {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            series: series.iter().map(ToString::to_string).collect(),
            unit: unit.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the value count does not match the series count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len(), "row width mismatch");
        self.rows.push(FigRow { label: label.into(), values });
    }

    /// Value at (row label, series name), if present.
    pub fn value(&self, label: &str, series: &str) -> Option<f64> {
        let col = self.series.iter().position(|s| s == series)?;
        let row = self.rows.iter().find(|r| r.label == label)?;
        row.values.get(col).copied()
    }

    /// Ratio of two series on one row (`a / b`), e.g. MHA-over-DEF.
    pub fn ratio(&self, label: &str, a: &str, b: &str) -> Option<f64> {
        Some(self.value(label, a)? / self.value(label, b)?)
    }

    /// JSON encoding for machine consumption.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figure serializes")
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}  ({})", self.id, self.title, self.unit)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(4))
            .max()
            .expect("nonempty iterator");
        let col_w = self
            .series
            .iter()
            .map(|s| s.len().max(10))
            .collect::<Vec<_>>();
        write!(f, "  {:label_w$}", "")?;
        for (s, w) in self.series.iter().zip(&col_w) {
            write!(f, "  {s:>w$}", w = w)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "  {:label_w$}", row.label)?;
            for (v, w) in row.values.iter().zip(&col_w) {
                if v.abs() >= 1e6 || (v.abs() < 1e-3 && *v != 0.0) {
                    write!(f, "  {v:>w$.3e}", w = w)?;
                } else {
                    write!(f, "  {v:>w$.2}", w = w)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut fig = Figure::new("fig7r", "IOR read", &["DEF", "MHA"], "MB/s");
        fig.push_row("128+256", vec![100.0, 180.0]);
        fig.push_row("64+512", vec![120.0, 200.0]);
        fig
    }

    #[test]
    fn value_and_ratio_lookup() {
        let f = sample();
        assert_eq!(f.value("128+256", "MHA"), Some(180.0));
        assert_eq!(f.value("nope", "MHA"), None);
        assert_eq!(f.value("128+256", "HARL"), None);
        assert!((f.ratio("128+256", "MHA", "DEF").unwrap() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn display_renders_all_rows() {
        let text = sample().to_string();
        assert!(text.contains("128+256"));
        assert!(text.contains("DEF"));
        assert!(text.contains("180.00"));
    }

    #[test]
    fn json_round_trip() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: JSON codec is the offline stub");
            return;
        }
        let f = sample();
        let back: Figure = serde_json::from_str(&f.to_json()).unwrap();
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.series, f.series);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut f = sample();
        f.push_row("bad", vec![1.0]);
    }
}
