//! # mha-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (§V) against the simulated substrate:
//!
//! | id | artifact |
//! |----|----------|
//! | `fig3` | LANL per-loop request sizes |
//! | `fig7` | IOR bandwidth, mixed request sizes (read/write) |
//! | `fig8` | per-server I/O time under each scheme |
//! | `fig9` | IOR bandwidth, mixed process counts (read/write) |
//! | `fig10` | IOR bandwidth vs H:S server ratio (read/write) |
//! | `fig11` | HPIO bandwidth vs process count |
//! | `fig12a` | BTIO aggregate bandwidth |
//! | `fig12b` | LANL trace replay |
//! | `fig13a` | LU decomposition replay |
//! | `fig13b` | sparse Cholesky replay |
//! | `fig14` | redirection overhead |
//! | `tab1` | calibrated cost-model parameters (Table I) |
//! | `ovh` | DRT meta-data space overhead (§V-E.2) |
//! | `fault` | degraded-cluster robustness: schemes × fault scenarios |
//! | `online` | plan-while-running vs plan-then-rerun on a phase shift |
//! | `service` | multi-tenant layout service under open-loop arrivals |
//! | `straggler` | client-side straggler-aware dispatch vs replanning |
//!
//! Run `cargo run -p mha-bench --release --bin figures -- all` (add
//! `--quick` for smaller workloads). Criterion micro-benches live in
//! `benches/`.

pub mod experiments;
pub mod online;
pub mod redundancy;
pub mod report;
pub mod service;
pub mod straggler;
pub mod workloads;

pub use report::{FigRow, Figure};
