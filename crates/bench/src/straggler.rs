//! The straggler-scheduling study behind `results/BENCH_straggler.json`:
//! client-side straggler-aware dispatch versus layout replanning under a
//! migrating transient straggler.
//!
//! Four series replay the same MHA-planned workload:
//!
//! * **baseline** — blind seeded-shuffle dispatch, no replanning,
//! * **sched** — [`pfs_sim::SchedPolicy`] straggler-aware dispatch,
//! * **replan** — blind dispatch, planner re-plans around the fault
//!   plan's static health view,
//! * **both** — straggler-aware dispatch over the replanned layout.
//!
//! Two scenarios stress them:
//!
//! * **fault-free** — nothing is wrong. The sched cells must be
//!   *bit-identical* to their blind counterparts (asserted): with no
//!   suspect the adaptive policy degenerates to the seeded shuffle.
//! * **migrating transient straggler** — a duty-cycled outage train
//!   (the client-visible shape of a server stuck in recurring recovery
//!   stalls) that hops from server to server every few periods. The
//!   static health view the replanner consults taints *every* server
//!   equally once the straggler has toured the cluster, so replanning
//!   alone cannot react in time — while the client-side EWMA scheduler
//!   tracks whichever server is slow *right now* and paces its
//!   requests past the blind-issue pile-ups whose exponential backoff
//!   overshoots (or exhausts) the retry budget.
//!
//! A third figure replays the straggler scenario under the seeded
//! temporal-burst arrival generator ([`iotrace::gen::burst`]): bursts
//! hand the scheduler synchronized request storms, the worst case for
//! blind dispatch.
//!
//! Every cell runs on both replay cores and asserts bit-identity
//! (scheduler counters included). The headline is the share of the
//! fault-free bandwidth the scheduler claws back relative to the blind
//! baseline under the straggler.

use crate::report::Figure;
use crate::workloads::Scale;
use iotrace::gen::burst::{generate as gen_burst, BurstConfig};
use iotrace::gen::ior::{generate as gen_ior, IorConfig};
use iotrace::Trace;
use mha_core::{Evaluation, PlannerContext, Scheme};
use pfs_sim::{ClusterConfig, CoreSel, FaultPlan, ReplayReport, RetryPolicy, SchedPolicy};
use storage_model::IoOp;

/// Everything that shapes the straggler scenario: the outage train, the
/// client retry policy it grinds against, and the scheduler knobs. Kept
/// public (doc-hidden) so the offline sweep tool can explore it; the
/// shipped study uses [`Regime::tuned`].
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct Regime {
    /// Outage-train period, seconds.
    pub period_s: f64,
    /// Down fraction of each period.
    pub duty_down: f64,
    /// Periods before the straggler hops to the next server.
    pub migrate_every: usize,
    /// Total periods in the train.
    pub periods: usize,
    /// Client retry policy (first backoff, retry budget, timeout charge).
    pub retry: RetryPolicy,
    /// Scheduler EWMA smoothing factor.
    pub alpha: f64,
    /// Scheduler per-suspect inflight cap (per EWMA interval).
    pub inflight_cap: u32,
    /// Scheduler reorder window, records.
    pub reorder_window: u32,
}

impl Regime {
    /// The shipped setting. The numbers are adversarial *for blind
    /// dispatch*: the 4 s give-up charge is an exact multiple of the
    /// 2 s train period, so a blind client that times out re-issues at
    /// the same phase of the next-but-one window — a synchronized
    /// retry storm that never escapes (the 0.8 s down window just
    /// outlasts the 0.75 s backoff reach). The paced schedule breaks
    /// the resonance: sub-second issue offsets land in the 1.2 s up
    /// gap and are served immediately.
    pub fn tuned() -> Self {
        Self {
            period_s: 2.0,
            duty_down: 0.4,
            migrate_every: 8,
            periods: 240,
            retry: RetryPolicy { backoff_s: 0.05, max_retries: 4, timeout_s: 4.0 },
            alpha: 0.2,
            inflight_cap: 64,
            reorder_window: 64,
        }
    }

    /// The scheduler policy of the sched/both series.
    pub fn policy(&self) -> SchedPolicy {
        SchedPolicy::StragglerAware {
            alpha: self.alpha,
            inflight_cap: self.inflight_cap,
            reorder_window: self.reorder_window,
        }
    }

    /// The migrating duty-cycled outage train, starting at `warmup_s`:
    /// period `k` puts server `(k / migrate_every) % n_servers` down for
    /// the first [`Regime::duty_down`] of the period.
    pub fn train(&self, warmup_s: f64, n_servers: usize) -> FaultPlan {
        let mut plan = FaultPlan::none().with_retry(self.retry);
        for k in 0..self.periods {
            let victim = (k / self.migrate_every.max(1)) % n_servers;
            plan = plan.outage(
                victim,
                warmup_s + self.period_s * k as f64,
                self.period_s * self.duty_down,
            );
        }
        plan
    }
}

/// Everything the study produced.
pub struct StragglerStudy {
    /// The figures written to `results/BENCH_straggler.json`.
    pub figures: Vec<Figure>,
    /// Share of the straggler-induced bandwidth loss the scheduler
    /// recovered over the blind baseline, percent.
    pub recovered_pct: f64,
    /// Requests the scheduler deferred in the straggler cell.
    pub deferred: u64,
}

fn cluster_config() -> ClusterConfig {
    ClusterConfig::paper_default()
}

/// A phase-heavy IOR workload: one request per process per barrier
/// phase, enough phases for the EWMA to learn and the train to cycle.
fn workload(scale: Scale) -> Trace {
    let (procs, phases) = match scale {
        Scale::Full => (16, 64),
        Scale::Quick => (8, 24),
    };
    gen_ior(&IorConfig {
        proc_mix: vec![procs],
        size_mix: vec![1 << 20],
        file_size: 4 << 30,
        reqs_per_proc: phases,
        op: IoOp::Write,
        random_offsets: true,
        seed: 0x57A6,
    })
}

/// The bursty-arrival variant of the same load (the burst generator's
/// request count is random per phase, so volumes differ — each figure
/// compares series within one workload only).
fn bursty_workload(scale: Scale) -> Trace {
    let (procs, phases) = match scale {
        Scale::Full => (16, 64),
        Scale::Quick => (8, 24),
    };
    gen_burst(&BurstConfig {
        procs,
        phases,
        file_size: 4 << 30,
        request_size: 1 << 20,
        regions: 32,
        theta: 0.9,
        mean_reqs: 1.0,
        on_mult: 6.0,
        mean_on: 3.0,
        mean_off: 6.0,
        op: IoOp::Write,
        seed: 0x57A7,
    })
}

/// Bit-identity of everything the study observes, scheduler counters
/// included.
fn assert_identical(serial: &ReplayReport, sharded: &ReplayReport, what: &str) {
    assert_eq!(serial.makespan, sharded.makespan, "{what}: makespan");
    assert_eq!(serial.requests, sharded.requests, "{what}: requests");
    assert_eq!(serial.total_bytes, sharded.total_bytes, "{what}: bytes");
    assert_eq!(serial.timeouts, sharded.timeouts, "{what}: timeouts");
    assert_eq!(serial.retries, sharded.retries, "{what}: retries");
    assert_eq!(serial.fault_wait, sharded.fault_wait, "{what}: fault wait");
    assert_eq!(serial.deferred_requests, sharded.deferred_requests, "{what}: deferred");
    assert_eq!(serial.reorder_depth, sharded.reorder_depth, "{what}: reorder depth");
    assert_eq!(serial.server_busy_secs(), sharded.server_busy_secs(), "{what}: busy");
    assert_eq!(
        serial.request_latency.sum().to_bits(),
        sharded.request_latency.sum().to_bits(),
        "{what}: latency sum"
    );
}

/// Run one cell. `cores = true` runs both cores and asserts
/// bit-identity; `false` (the sweep path) runs serial only.
#[allow(clippy::too_many_arguments)]
fn cell_on(
    trace: &Trace,
    cfg: &ClusterConfig,
    ctx: &PlannerContext,
    faults: Option<&FaultPlan>,
    replan: bool,
    policy: SchedPolicy,
    cores: bool,
    what: &str,
) -> ReplayReport {
    let run = |core: CoreSel| {
        let mut eval = Evaluation::of(Scheme::Mha, trace, cfg)
            .context(ctx)
            .replan_around_faults(replan)
            .sched_policy(policy)
            .core(core);
        if let Some(plan) = faults {
            eval = eval.faults(plan);
        }
        eval.run().unwrap_or_else(|e| panic!("{what}: {e}"))
    };
    let serial = run(CoreSel::Serial);
    if cores {
        let sharded = run(CoreSel::Sharded);
        assert_identical(&serial, &sharded, what);
    }
    serial
}

fn cell(
    trace: &Trace,
    cfg: &ClusterConfig,
    ctx: &PlannerContext,
    faults: Option<&FaultPlan>,
    replan: bool,
    policy: SchedPolicy,
    what: &str,
) -> ReplayReport {
    cell_on(trace, cfg, ctx, faults, replan, policy, true, what)
}

/// The four series of one scenario row, in figure order.
fn series_row(
    trace: &Trace,
    cfg: &ClusterConfig,
    ctx: &PlannerContext,
    faults: Option<&FaultPlan>,
    aware: SchedPolicy,
    what: &str,
) -> [ReplayReport; 4] {
    let blind = SchedPolicy::SeededShuffle;
    [
        cell(trace, cfg, ctx, faults, false, blind, &format!("{what} baseline")),
        cell(trace, cfg, ctx, faults, false, aware, &format!("{what} sched")),
        cell(trace, cfg, ctx, faults, true, blind, &format!("{what} replan")),
        cell(trace, cfg, ctx, faults, true, aware, &format!("{what} both")),
    ]
}

/// Assert a sched cell replayed the exact blind schedule (the fault-free
/// no-op guarantee).
fn assert_noop(blind: &ReplayReport, sched: &ReplayReport, what: &str) {
    assert_eq!(blind.makespan, sched.makespan, "{what}: fault-free sched must be a no-op");
    assert_eq!(
        blind.request_latency.sum().to_bits(),
        sched.request_latency.sum().to_bits(),
        "{what}: fault-free latency stream must be bit-identical"
    );
    assert_eq!(sched.deferred_requests, 0, "{what}: nothing to defer fault-free");
    assert_eq!(sched.reorder_depth, 0, "{what}: nothing to reorder fault-free");
}

/// One sweep observation: serial-only baseline vs sched under a regime.
#[doc(hidden)]
pub struct ProbeOut {
    pub healthy_mbps: f64,
    pub base: ReplayReport,
    pub sched: ReplayReport,
}

/// Serial-only baseline-vs-sched comparison under `regime` — the fast
/// path the offline sweep tool uses to explore the regime space.
#[doc(hidden)]
pub fn probe(scale: Scale, regime: &Regime) -> ProbeOut {
    let cfg = cluster_config();
    let trace = workload(scale);
    let ctx = crate::workloads::context_for(&trace, &cfg);
    let healthy = cell_on(
        &trace, &cfg, &ctx, None, false,
        SchedPolicy::SeededShuffle, false, "probe healthy",
    );
    let warmup = healthy.makespan.as_secs_f64() / 3.0;
    let train = regime.train(warmup, cfg.servers());
    let base = cell_on(
        &trace, &cfg, &ctx, Some(&train), false,
        SchedPolicy::SeededShuffle, false, "probe base",
    );
    let sched = cell_on(
        &trace, &cfg, &ctx, Some(&train), false,
        regime.policy(), false, "probe sched",
    );
    ProbeOut { healthy_mbps: healthy.bandwidth_mbps(), base, sched }
}

/// Run the study. Panics (failing the CI gate) if any acceptance
/// property is violated.
pub fn study(scale: Scale) -> StragglerStudy {
    let regime = Regime::tuned();
    let aware = regime.policy();
    let cfg = cluster_config();
    let trace = workload(scale);
    let ctx = crate::workloads::context_for(&trace, &cfg);

    // --- fault-free ----------------------------------------------------
    let free = series_row(&trace, &cfg, &ctx, None, aware, "fault-free");
    assert_noop(&free[0], &free[1], "fault-free");
    assert_noop(&free[2], &free[3], "fault-free replanned");

    // --- migrating transient straggler ---------------------------------
    // Warm up for a third of the healthy makespan (the EWMA needs a
    // baseline before the trigger can fire), then let the train tour
    // the cluster for the rest of the (heavily dilated) run.
    let healthy_makespan = free[0].makespan.as_secs_f64();
    let warmup = healthy_makespan / 3.0;
    let train = regime.train(warmup, cfg.servers());
    let hit = series_row(&trace, &cfg, &ctx, Some(&train), aware, "straggler");
    let [base, sched, _replan, _both] = &hit;
    if std::env::var_os("STRAGGLER_DEBUG").is_some() {
        for (name, r) in ["base", "sched", "replan", "both"].iter().zip(hit.iter()) {
            eprintln!(
                "DEBUG {name}: makespan={:.2}s bytes={}MB bw={:.1} timeouts={} retries={} \
                 fault_wait={:.2}s deferred={} reorder={}",
                r.makespan.as_secs_f64(),
                r.total_bytes / 1_000_000,
                r.bandwidth_mbps(),
                r.timeouts,
                r.retries,
                r.fault_wait.as_secs_f64(),
                r.deferred_requests,
                r.reorder_depth
            );
        }
    }
    assert!(sched.deferred_requests > 0, "the train must trip the scheduler");
    let bw = |r: &ReplayReport| r.bandwidth_mbps();
    match scale {
        Scale::Quick => assert!(
            bw(sched) >= bw(base),
            "sched must not lose to blind dispatch under the straggler \
             ({:.1} vs {:.1} MB/s)",
            bw(sched),
            bw(base)
        ),
        Scale::Full => assert!(
            bw(sched) > bw(base),
            "sched must beat blind dispatch under the straggler \
             ({:.1} vs {:.1} MB/s)",
            bw(sched),
            bw(base)
        ),
    }
    let recovered_pct = if bw(&free[0]) > bw(base) {
        100.0 * (bw(sched) - bw(base)) / (bw(&free[0]) - bw(base))
    } else {
        0.0
    };

    // --- bursty arrivals under the same train --------------------------
    let btrace = bursty_workload(scale);
    let bctx = crate::workloads::context_for(&btrace, &cfg);
    let bfree = cell(
        &btrace, &cfg, &bctx, None, false,
        SchedPolicy::SeededShuffle, "bursty fault-free",
    );
    let bwarm = bfree.makespan.as_secs_f64() / 3.0;
    let btrain = regime.train(bwarm, cfg.servers());
    let burst = series_row(&btrace, &cfg, &bctx, Some(&btrain), aware, "bursty straggler");

    // --- figures -------------------------------------------------------
    let series = ["baseline", "sched", "replan", "both"];
    let mut fig_bw = Figure::new(
        "straggler",
        "Straggler-aware dispatch vs replanning under a migrating transient straggler (1 MiB IOR writes)",
        &series,
        "MB/s",
    );
    let row = |r: &[ReplayReport; 4]| r.iter().map(bw).collect::<Vec<f64>>();
    fig_bw.push_row("fault-free", row(&free));
    fig_bw.push_row("migrating straggler", row(&hit));

    let mut fig_burst = Figure::new(
        "straggler_bursty",
        "The same scheduler matrix under temporal-burst arrivals",
        &series,
        "MB/s",
    );
    fig_burst.push_row("migrating straggler", row(&burst));

    let mut fig_detail = Figure::new(
        "straggler_detail",
        "Fault accounting of the straggler cells",
        &series,
        "mixed",
    );
    let counters = |f: fn(&ReplayReport) -> f64| hit.iter().map(f).collect::<Vec<f64>>();
    fig_detail.push_row("timeouts", counters(|r| r.timeouts as f64));
    fig_detail.push_row("retries", counters(|r| r.retries as f64));
    fig_detail.push_row("fault wait (s)", counters(|r| r.fault_wait.as_secs_f64()));
    fig_detail.push_row("deferred requests", counters(|r| r.deferred_requests as f64));
    fig_detail.push_row("reorder depth", counters(|r| r.reorder_depth as f64));
    fig_detail.push_row("bytes moved (MB)", counters(|r| r.total_bytes as f64 / 1e6));

    StragglerStudy {
        figures: vec![fig_bw, fig_burst, fig_detail],
        recovered_pct,
        deferred: sched.deferred_requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick-scale study is the CI smoke gate: the fault-free no-op
    /// identity, per-cell serial/sharded bit-identity, and the
    /// sched-never-loses bar all assert inside `study`.
    #[test]
    fn quick_study_passes_all_acceptance_assertions() {
        let s = study(Scale::Quick);
        assert_eq!(s.figures.len(), 3);
        assert!(s.deferred > 0);
        let bw = &s.figures[0];
        let free = bw.value("fault-free", "baseline").unwrap();
        let hit = bw.value("migrating straggler", "baseline").unwrap();
        assert!(hit < free, "the train must cost the blind baseline bandwidth");
    }
}
