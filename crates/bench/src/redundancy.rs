//! The redundancy study behind `results/BENCH_redundancy.json`:
//! replication and erasure coding versus plain striping across healthy,
//! one-loss-degraded, and rebuilding clusters.
//!
//! Four series replay the same 1 MiB-request IOR read workload:
//!
//! * **DEF** — the PFS default round-robin stripe (no plan),
//! * **MHA** — the paper's planned layout, striped,
//! * **MHA+3x** — the MHA plan with 3-way replication attached to every
//!   region layout,
//! * **MHA+EC(4+2)** — the MHA plan with 4+2 erasure coding attached.
//!
//! Three scenarios stress them:
//!
//! * **healthy** — no faults. Redundant reads pick their primaries, so
//!   the MHA rows must be *bit-identical* (asserted).
//! * **one-loss degraded** — an HServer is permanently lost at t = 0.
//!   The striped series limp through dead-server timeouts; the
//!   redundant series must complete with **zero** timeouts — replicated
//!   reads fail over, EC reads reconstruct from surviving shards
//!   (asserted, plus serial == sharded bit-identity per cell).
//! * **rebuilding onto spare** — the lost server's redundant data has
//!   been reconstructed onto a spare SServer through the journaled
//!   [`mha_core::rebuild_onto_spare`] flow, and the spare runs 2× slow
//!   (absorbing rebuild traffic). Swapped layouts must replay with no
//!   degraded reads and no timeouts (asserted).
//!
//! The cluster is 6 HServers + 3 SServers; the planner is scoped to the
//! paper's 6+2 shape so SServer 8 stays empty — that's the spare. DEF,
//! which plans nothing, stripes over all nine servers (the PFS default
//! knows nothing about spares).

use crate::report::Figure;
use crate::workloads::Scale;
use iotrace::gen::ior::{generate, IorConfig};
use iotrace::{FileId, Trace};
use mha_core::{
    apply_plan, rebuild_onto_spare, PipelineStore, Plan, PlannerContext, RebuildOutcome, Scheme,
};
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, FaultPlan, Placement, ReplayInput, ReplayReport,
    ReplaySession, ServerId,
};
use storage_model::IoOp;

/// The permanently lost server (an HServer every planned layout uses).
const VICTIM: usize = 2;
/// The spare the rebuild targets (the SServer the planner never uses).
const SPARE: usize = 8;

/// Everything the study produced.
pub struct RedundancyStudy {
    /// The figures written to `results/BENCH_redundancy.json`.
    pub figures: Vec<Figure>,
    /// Region layouts in the MHA plan (all of them carried both
    /// placements).
    pub layouts: usize,
    /// Bytes the rebuild read from surviving copies/shards (3x + EC).
    pub rebuild_read: u64,
    /// Bytes the rebuild wrote onto the spare (3x + EC).
    pub rebuild_written: u64,
}

fn cluster_config() -> ClusterConfig {
    ClusterConfig::with_ratio(6, 3)
}

fn workload(scale: Scale) -> Trace {
    let (procs, reqs) = match scale {
        Scale::Full => (16, 48),
        Scale::Quick => (8, 8),
    };
    generate(&IorConfig {
        proc_mix: vec![procs],
        size_mix: vec![1 << 20],
        file_size: 4 << 30,
        reqs_per_proc: reqs,
        op: IoOp::Read,
        random_offsets: true,
        seed: 0x8ED,
    })
}

/// Every observable must match bit-for-bit — the degraded-equivalence
/// gate of the two replay cores, including the redundancy accounting.
fn assert_identical(serial: &ReplayReport, sharded: &ReplayReport, what: &str) {
    assert_eq!(serial.makespan, sharded.makespan, "{what}: makespan");
    assert_eq!(serial.requests, sharded.requests, "{what}: requests");
    assert_eq!(serial.total_bytes, sharded.total_bytes, "{what}: bytes");
    assert_eq!(serial.timeouts, sharded.timeouts, "{what}: timeouts");
    assert_eq!(serial.retries, sharded.retries, "{what}: retries");
    assert_eq!(serial.degraded_reads, sharded.degraded_reads, "{what}: degraded reads");
    assert_eq!(
        serial.reconstructed_bytes, sharded.reconstructed_bytes,
        "{what}: reconstructed bytes"
    );
    assert_eq!(serial.failovers, sharded.failovers, "{what}: failovers");
    assert_eq!(serial.server_busy_secs(), sharded.server_busy_secs(), "{what}: busy");
    assert_eq!(
        serial.request_latency.sum().to_bits(),
        sharded.request_latency.sum().to_bits(),
        "{what}: latency sum"
    );
}

/// Replay one (plan, fault) cell on both cores, assert bit-identity,
/// return the report.
fn replay_cell(
    cfg: &ClusterConfig,
    plan: &Plan,
    ctx: &PlannerContext,
    trace: &Trace,
    faults: &FaultPlan,
    what: &str,
) -> ReplayReport {
    let mut cluster = Cluster::new(cfg.clone());
    apply_plan(&mut cluster, plan);
    let mut resolver = plan.make_resolver(ctx.lookup_cost);
    let mut session = ReplaySession::new();
    session.set_fault_plan(faults.clone());
    let serial = session
        .run(ReplayInput::trace(&mut cluster, trace, resolver.as_mut()), CoreSel::Serial)
        .expect("replay");
    let sharded = session
        .run(ReplayInput::trace(&mut cluster, trace, resolver.as_mut()), CoreSel::Sharded)
        .expect("replay");
    assert_identical(&serial, &sharded, what);
    serial
}

/// Rebuild `plan`'s redundant layouts from the victim onto the spare
/// through the journaled flow, returning the swapped plan and the
/// rebuild's byte accounting.
fn rebuilt(plan: &Plan, tag: &str) -> (Plan, RebuildOutcome) {
    let sizes: Vec<(FileId, u64)> = plan.regions.iter().map(|r| (r.file, r.len)).collect();
    let path =
        std::env::temp_dir().join(format!("mha-bench-rebuild-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = PipelineStore::open(&path).expect("open rebuild store");
    let mut layouts = plan.layouts.clone();
    let outcome =
        rebuild_onto_spare(&store, &mut layouts, &sizes, ServerId(VICTIM), ServerId(SPARE))
            .expect("rebuild");
    drop(store);
    let _ = std::fs::remove_file(&path);
    (Plan { layouts, ..plan.clone() }, outcome)
}

/// Run the study. Panics (failing the CI gate) if any acceptance
/// property is violated.
pub fn study(scale: Scale) -> RedundancyStudy {
    let cfg = cluster_config();
    let trace = workload(scale);
    let mut ctx = crate::workloads::context_for(&trace, &cfg);
    // Scope the planner to the paper's 6+2 shape: SServer 8 stays out of
    // every planned layout and serves as the rebuild spare.
    ctx.params = ctx.params.with_shape(6, 2);

    let def = Scheme::Def.planner().plan(&trace, &ctx);
    let mha = Scheme::Mha.planner().plan(&trace, &ctx);
    let rep = mha.clone().with_placement(Placement::Replicated(3));
    let ec = mha.clone().with_placement(Placement::ErasureCoded(4, 2));
    assert!(!mha.layouts.is_empty(), "MHA must plan region layouts");
    assert_eq!(
        rep.redundant_layouts(),
        rep.layouts.len(),
        "every MHA region layout must carry 3x replication"
    );
    assert_eq!(
        ec.redundant_layouts(),
        ec.layouts.len(),
        "every MHA region layout must carry EC(4+2)"
    );

    let healthy = FaultPlan::none();
    let one_loss = FaultPlan::none().down(VICTIM, 0.0);
    let rebuilding = FaultPlan::none().down(VICTIM, 0.0).slow_server(SPARE, 2.0);

    // --- healthy -------------------------------------------------------
    let h_def = replay_cell(&cfg, &def, &ctx, &trace, &healthy, "healthy DEF");
    let h_mha = replay_cell(&cfg, &mha, &ctx, &trace, &healthy, "healthy MHA");
    let h_rep = replay_cell(&cfg, &rep, &ctx, &trace, &healthy, "healthy 3x");
    let h_ec = replay_cell(&cfg, &ec, &ctx, &trace, &healthy, "healthy EC");
    // Healthy redundant reads pick their primaries: bit-identical to the
    // striped MHA replay.
    assert_eq!(h_mha.makespan, h_rep.makespan, "healthy 3x must match striped MHA");
    assert_eq!(h_mha.makespan, h_ec.makespan, "healthy EC must match striped MHA");

    // --- one permanent loss, degraded reads ----------------------------
    let d_def = replay_cell(&cfg, &def, &ctx, &trace, &one_loss, "degraded DEF");
    let d_mha = replay_cell(&cfg, &mha, &ctx, &trace, &one_loss, "degraded MHA");
    let d_rep = replay_cell(&cfg, &rep, &ctx, &trace, &one_loss, "degraded 3x");
    let d_ec = replay_cell(&cfg, &ec, &ctx, &trace, &one_loss, "degraded EC");
    let total = trace.total_bytes();
    assert!(d_def.timeouts > 0, "striped DEF must hit dead-server timeouts");
    assert!(d_mha.timeouts > 0, "striped MHA must hit dead-server timeouts");
    for (r, what) in [(&d_rep, "3x"), (&d_ec, "EC")] {
        assert_eq!(r.timeouts, 0, "degraded {what} must complete without timeouts");
        assert_eq!(r.total_bytes, total, "degraded {what} must move every byte");
    }
    assert!(d_rep.failovers > 0, "replication must fail reads over");
    assert_eq!(d_rep.degraded_reads, 0, "replication reconstructs nothing");
    assert!(d_ec.degraded_reads > 0, "EC must reconstruct degraded reads");
    assert!(d_ec.reconstructed_bytes > 0, "EC must count reconstructed bytes");

    // --- rebuilding onto the spare -------------------------------------
    let (rep_rb, rep_out) = rebuilt(&rep, "3x");
    let (ec_rb, ec_out) = rebuilt(&ec, "ec");
    assert_eq!(rep_out.files, rep.layouts.len(), "3x rebuild covers every layout");
    assert_eq!(ec_out.files, ec.layouts.len(), "EC rebuild covers every layout");
    assert!(ec_out.bytes_read > ec_out.bytes_written, "EC reads k shards per lost byte");
    let r_def = replay_cell(&cfg, &def, &ctx, &trace, &rebuilding, "rebuilding DEF");
    let r_mha = replay_cell(&cfg, &mha, &ctx, &trace, &rebuilding, "rebuilding MHA");
    let r_rep = replay_cell(&cfg, &rep_rb, &ctx, &trace, &rebuilding, "rebuilding 3x");
    let r_ec = replay_cell(&cfg, &ec_rb, &ctx, &trace, &rebuilding, "rebuilding EC");
    for (r, what) in [(&r_rep, "3x"), (&r_ec, "EC")] {
        assert_eq!(r.timeouts, 0, "rebuilt {what} must not touch the dead server");
        assert_eq!(r.degraded_reads, 0, "rebuilt {what} reads are whole again");
        assert_eq!(r.total_bytes, total, "rebuilt {what} must move every byte");
    }
    // Replicated reads are speed-aware: primaries now living on the
    // 2x-slow spare are read from a faster replica instead (counted as
    // failovers — routing, not reconstruction). EC has no such choice;
    // with every home alive it never reconstructs.
    assert_eq!(r_ec.failovers, 0, "rebuilt EC homes are all live");

    // --- figures -------------------------------------------------------
    let series = ["DEF", "MHA", "MHA+3x", "MHA+EC(4+2)"];
    let mut bw = Figure::new(
        "redundancy",
        "Redundant layouts under permanent server loss (1 MiB IOR reads)",
        &series,
        "MB/s",
    );
    let row = |a: &ReplayReport, b: &ReplayReport, c: &ReplayReport, d: &ReplayReport| {
        vec![a.bandwidth_mbps(), b.bandwidth_mbps(), c.bandwidth_mbps(), d.bandwidth_mbps()]
    };
    bw.push_row("healthy", row(&h_def, &h_mha, &h_rep, &h_ec));
    bw.push_row("one-loss degraded", row(&d_def, &d_mha, &d_rep, &d_ec));
    bw.push_row("rebuilding onto spare", row(&r_def, &r_mha, &r_rep, &r_ec));

    let mut detail = Figure::new(
        "redundancy_detail",
        "Redundancy accounting of the one-loss and rebuild runs",
        &series,
        "mixed",
    );
    let mb = 1.0 / 1e6;
    detail.push_row(
        "storage overhead (x)",
        vec![
            Placement::Striped.storage_overhead(),
            Placement::Striped.storage_overhead(),
            Placement::Replicated(3).storage_overhead(),
            Placement::ErasureCoded(4, 2).storage_overhead(),
        ],
    );
    detail.push_row(
        "timeouts (one-loss)",
        vec![
            d_def.timeouts as f64,
            d_mha.timeouts as f64,
            d_rep.timeouts as f64,
            d_ec.timeouts as f64,
        ],
    );
    detail.push_row(
        "replica failovers (one-loss)",
        vec![0.0, 0.0, d_rep.failovers as f64, d_ec.failovers as f64],
    );
    detail.push_row(
        "degraded reads (one-loss)",
        vec![0.0, 0.0, d_rep.degraded_reads as f64, d_ec.degraded_reads as f64],
    );
    detail.push_row(
        "reconstructed MB (one-loss)",
        vec![
            0.0,
            0.0,
            d_rep.reconstructed_bytes as f64 * mb,
            d_ec.reconstructed_bytes as f64 * mb,
        ],
    );
    detail.push_row(
        "rebuild read MB",
        vec![0.0, 0.0, rep_out.bytes_read as f64 * mb, ec_out.bytes_read as f64 * mb],
    );
    detail.push_row(
        "rebuild written MB",
        vec![0.0, 0.0, rep_out.bytes_written as f64 * mb, ec_out.bytes_written as f64 * mb],
    );

    RedundancyStudy {
        figures: vec![bw, detail],
        layouts: mha.layouts.len(),
        rebuild_read: rep_out.bytes_read + ec_out.bytes_read,
        rebuild_written: rep_out.bytes_written + ec_out.bytes_written,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick-scale study is the CI smoke gate: every acceptance
    /// assertion (degraded completion, bit-identity, rebuild coverage)
    /// runs inside `study`.
    #[test]
    fn quick_study_passes_all_acceptance_assertions() {
        let s = study(Scale::Quick);
        assert_eq!(s.figures.len(), 2);
        assert!(s.layouts > 0);
        assert!(s.rebuild_written > 0);
        assert!(s.rebuild_read > s.rebuild_written, "EC shard reads dominate");
        // The degraded redundant runs stay within the healthy ballpark
        // (no timeout cliffs): degraded bandwidth is positive and the
        // striped schemes show the timeout cliff the redundancy avoids.
        let bw = &s.figures[0];
        let d_mha = bw.value("one-loss degraded", "MHA").unwrap();
        let d_rep = bw.value("one-loss degraded", "MHA+3x").unwrap();
        let d_ec = bw.value("one-loss degraded", "MHA+EC(4+2)").unwrap();
        assert!(d_rep > d_mha, "failover must beat timeout-limping ({d_rep} vs {d_mha})");
        assert!(d_ec > d_mha, "reconstruction must beat timeout-limping ({d_ec} vs {d_mha})");
    }
}
