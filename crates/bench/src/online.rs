//! The `online` experiment behind `results/BENCH_online.json`:
//! plan-while-running (windowed incremental re-planning + lazy
//! on-access migration) versus plan-then-rerun on a phase-shifting
//! skewed workload.
//!
//! **Workload.** Two merged Zipfian streams over one shared file — 8
//! ranks issuing 16 KiB requests and 8 ranks issuing 512 KiB requests
//! (the size heterogeneity MHA separates) — with the hot spot pinned to
//! the bottom of the file for the first half of the trace and flipped
//! to the far half at mid-trace (`offset + file_size/2 mod file_size`).
//!
//! **Online timeline.** The trace streams through
//! [`iotrace::WindowedSource`]; each window is replayed under the
//! layouts published so far (redirects resolve through a
//! [`mha_core::LazyMigrator`], so planned extents migrate on first
//! access and the copy is charged to that request), then handed to the
//! [`mha_core::OnlinePlanner`], whose replans feed the next windows.
//! Quiet windows cost one signature comparison.
//!
//! **Baseline timeline.** The same windows replayed with no plan (DEF)
//! end to end, then one cold offline MHA plan from the full profiled
//! trace, then a complete rerun under that plan — the paper's
//! profile-once flow. Its bandwidth only recovers in the rerun, so its
//! time-to-recovery after the shift includes draining the rest of the
//! first run.
//!
//! The headline number is **time to recovered bandwidth**: simulated
//! seconds from the mid-trace shift until a window first reaches 80%
//! of the post-shift steady bandwidth (the planned rerun's post-shift
//! mean).

use crate::report::Figure;
use crate::workloads::{self, Scale};
use iotrace::gen::skewed::{self, SkewedConfig};
use iotrace::{Trace, TraceBatches, TraceRecord, WindowConfig, WindowedSource};
use mha_core::schemes::{LayoutPlanner, MhaPlanner, PlanResolver};
use mha_core::{DrtResolver, LazyMigrator, OnlineConfig, OnlinePlanner, PipelineStore, Replan};
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, IdentityResolver, LayoutSpec, ReplayInput, ReplaySession,
    Resolver,
};
use simrt::SimDuration;
use std::time::Instant;
use storage_model::IoOp;

/// Phases per window. Plans land at window granularity, so smaller
/// windows mean faster reaction and more replan work.
const WINDOW_PHASES: u32 = 4;

/// Per-request DRT lookup cost charged by redirecting resolvers.
const LOOKUP: SimDuration = SimDuration::from_micros(5);

/// The phase-shifting workload: `phases` barrier phases, hot spot
/// flipped to the far half of the file from `shift_phase` on.
pub fn phase_shift_trace(phases: usize, shift_phase: u32) -> Trace {
    let file_size: u64 = 1 << 30;
    let mk = |request_size: u64, seed: u64| SkewedConfig {
        procs: 8,
        phases,
        file_size,
        request_size,
        regions: 64,
        theta: 0.99,
        shift_every: 0,
        op: IoOp::Read,
        seed,
    };
    let small = skewed::generate(&mk(16 << 10, 0xA1));
    let large = skewed::generate(&mk(512 << 10, 0xB2));
    let (s, l) = (small.records(), large.records());
    let per = 8usize;
    let mut recs = Vec::with_capacity(s.len() + l.len());
    for ph in 0..phases {
        recs.extend_from_slice(&s[ph * per..(ph + 1) * per]);
        // The large stream's ranks sit beside the small stream's.
        recs.extend(l[ph * per..(ph + 1) * per].iter().map(|r| TraceRecord {
            pid: r.pid + 100,
            rank: iotrace::Rank(r.rank.0 + per as u32),
            ..*r
        }));
    }
    for r in &mut recs {
        if r.phase >= shift_phase {
            r.offset = ((r.offset + file_size / 2) % file_size).min(file_size - r.len);
        }
    }
    Trace::from_records(recs)
}

/// One point of a bandwidth trajectory.
#[derive(Debug, Clone, Copy)]
struct WindowPoint {
    /// Simulated seconds at the window's end (sum of makespans so far).
    end_s: f64,
    /// The window's aggregate bandwidth, MB/s.
    mbps: f64,
    /// Phase id of the window's first record.
    first_phase: u32,
}

/// Replay `trace` window by window through `resolver`, installing
/// `layouts` into each window's fresh cluster. Returns the trajectory.
fn replay_windows(
    trace: &Trace,
    cluster_cfg: &ClusterConfig,
    layouts: &[(iotrace::FileId, LayoutSpec)],
    resolver: &mut dyn Resolver,
) -> Vec<WindowPoint> {
    let mut src = TraceBatches::new(trace);
    let mut windows =
        WindowedSource::new(&mut src, WindowConfig { phases: WINDOW_PHASES, max_records: 0 });
    let mut session = ReplaySession::new();
    let mut points = Vec::new();
    let mut clock = 0.0f64;
    while let Some(w) = windows.next_window() {
        let first_phase = w.first_phase;
        let wtrace = w.into_trace();
        let mut cluster = Cluster::new(cluster_cfg.clone());
        for (file, layout) in layouts {
            cluster.mds_mut().set_layout(*file, layout.clone());
        }
        let report = session
            .run(ReplayInput::trace(&mut cluster, &wtrace, resolver), CoreSel::Auto)
            .expect("fault-free replay cannot fail");
        clock += report.makespan.as_secs_f64();
        points.push(WindowPoint { end_s: clock, mbps: report.bandwidth_mbps(), first_phase });
    }
    points
}

/// Everything the study measured (figures plus the acceptance facts the
/// smoke gate asserts).
pub struct OnlineStudy {
    /// The reproduced figures, in presentation order.
    pub figures: Vec<Figure>,
    /// Online time-to-recovery over baseline time-to-recovery.
    pub recovery_speedup: f64,
    /// Wall-clock cost of a quiet-window check relative to the cold
    /// offline plan, percent.
    pub quiet_cost_pct: f64,
    /// Online steady bandwidth after recovery (last windows), MB/s.
    pub online_steady_mbps: f64,
    /// Mean online bandwidth after the shift (including the lazy
    /// migration storm right after the replan), MB/s.
    pub online_post_shift_mbps: f64,
    /// Mean unplanned (DEF) bandwidth after the shift, MB/s.
    pub def_post_shift_mbps: f64,
}

/// Run the online study at `scale`. See the module docs for the design.
pub fn study(scale: Scale) -> OnlineStudy {
    let windows_total: usize = match scale {
        Scale::Full => 24,
        Scale::Quick => 16,
    };
    let phases = windows_total * WINDOW_PHASES as usize;
    let shift_phase = (phases / 2) as u32;
    let trace = phase_shift_trace(phases, shift_phase);
    let cluster_cfg = workloads::paper_cluster();
    let ctx = workloads::context_for(&trace, &cluster_cfg);

    // ---- baseline: DEF end to end, one cold plan, full rerun --------
    let def_points =
        replay_windows(&trace, &cluster_cfg, &[], &mut IdentityResolver);
    let t_cold = Instant::now();
    let cold_plan = MhaPlanner.plan(&trace, &ctx);
    let cold_plan_s = t_cold.elapsed().as_secs_f64();
    let PlanResolver::Drt(cold_drt) = &cold_plan.resolver else {
        panic!("MHA plans always redirect")
    };
    let rerun_points = {
        let mut resolver = DrtResolver::new(cold_drt.clone(), LOOKUP);
        replay_windows(&trace, &cluster_cfg, &cold_plan.layouts, &mut resolver)
    };
    // Materializing the cold plan is not free: before the rerun can
    // start, every planned extent has to move. Charge it with the same
    // copy-cost model the lazy path pays, via a throwaway migrator.
    let eager_migration_s = {
        let path = std::env::temp_dir()
            .join(format!("mha-online-eager-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store = PipelineStore::open(&path).expect("open eager store");
        let mut m = LazyMigrator::new(&store, mha_core::Drt::new(), &cluster_cfg, LOOKUP);
        m.add_pending(&cold_drt.entries()).expect("journal eager intents");
        let (_, d) = m.drain().expect("eager drain");
        let _ = std::fs::remove_file(&path);
        d.as_secs_f64()
    };

    // ---- online: windowed replan + lazy on-access migration ---------
    let store_path =
        std::env::temp_dir().join(format!("mha-online-{}", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let store = PipelineStore::open(&store_path).expect("open online store");
    let online_cfg = OnlineConfig::builder()
        // Migrate 16 MiB neighborhoods — the workload's region size:
        // each rank's hot region is one block, so a couple of profiled
        // hits cover the whole span the rank keeps sampling, while the
        // Zipf tail never clears the heat gate.
        .coverage_block(16 << 20)
        // A block has to earn its copy: one-hit Zipf-tail blocks stay
        // in the original file at the default layout.
        .coverage_min_hits(2)
        .build()
        .expect("static online config is valid");
    let mut planner = OnlinePlanner::new(ctx.clone(), online_cfg);
    let mut migrator =
        LazyMigrator::new(&store, mha_core::Drt::new(), &cluster_cfg, LOOKUP);
    let mut layout_book: Vec<(iotrace::FileId, LayoutSpec)> = Vec::new();
    let mut online_points = Vec::new();
    let mut clock = 0.0f64;
    let mut quiet_max_s = 0.0f64;
    let mut replan_max_s = 0.0f64;
    {
        let mut src = TraceBatches::new(&trace);
        let mut windows = WindowedSource::new(
            &mut src,
            WindowConfig { phases: WINDOW_PHASES, max_records: 0 },
        );
        let mut session = ReplaySession::new();
        while let Some(w) = windows.next_window() {
            let sig = mha_core::WindowSig::from(&w.stats);
            let first_phase = w.first_phase;
            let wtrace = w.into_trace();
            // Replay under what is installed *now*; this window's
            // profile only influences the next ones (true online
            // causality — the first window runs unplanned).
            let mut cluster = Cluster::new(cluster_cfg.clone());
            for (file, layout) in &layout_book {
                cluster.mds_mut().set_layout(*file, layout.clone());
            }
            let report = session
                .run(ReplayInput::trace(&mut cluster, &wtrace, &mut migrator), CoreSel::Auto)
                .expect("fault-free replay cannot fail");
            migrator.check().expect("online store never killed");
            clock += report.makespan.as_secs_f64();
            online_points.push(WindowPoint {
                end_s: clock,
                mbps: report.bandwidth_mbps(),
                first_phase,
            });
            let t = Instant::now();
            let outcome = planner.observe(&wtrace, sig);
            let dt = t.elapsed().as_secs_f64();
            match outcome {
                Replan::Quiet => quiet_max_s = quiet_max_s.max(dt),
                Replan::Plan { plan, .. } => {
                    replan_max_s = replan_max_s.max(dt);
                    let PlanResolver::Drt(drt) = &plan.resolver else {
                        panic!("online plans always redirect")
                    };
                    migrator
                        .add_pending(&drt.entries())
                        .expect("journaling intents cannot fail here");
                    layout_book.extend(plan.layouts.iter().cloned());
                }
            }
        }
    }
    let stats = planner.stats;
    let on_access = migrator.on_access_migrations();
    let (drained_bytes, _) = migrator.drain().expect("drain");
    let migrated_mib = migrator.migrated_bytes() as f64 / (1 << 20) as f64;
    store
        .save_tables(migrator.published(), &mha_core::Rst::new())
        .expect("commit final mapping");
    store.clear_journal().expect("retire journal");
    let _ = std::fs::remove_file(&store_path);

    // ---- recovery metric --------------------------------------------
    let shift_idx = online_points
        .iter()
        .position(|p| p.first_phase >= shift_phase)
        .expect("the shift lies inside the trace");
    // Each timeline recovers to 80% of its *own* post-shift steady
    // state: online can only redirect neighborhoods it has profiled, so
    // its ceiling sits below a full-trace plan's — what recovery
    // measures is how fast each flow gets back to the bandwidth it will
    // then sustain.
    let tail = 3.min(online_points.len() - shift_idx);
    let online_steady = mean(&online_points[online_points.len() - tail..]);
    let online_threshold = 0.8 * online_steady;
    let rerun_steady = mean(&rerun_points[shift_idx..]);
    let rerun_threshold = 0.8 * rerun_steady;
    let online_shift_t = end_of(&online_points, shift_idx);
    let online_recovery =
        time_to_threshold(&online_points[shift_idx..], online_threshold, online_shift_t);
    // Baseline: the rest of run 1 passes unplanned (DEF stays under its
    // threshold on this workload — asserted in the smoke gate), then
    // the rerun starts; recovery lands at its first qualifying window.
    let def_shift_t = end_of(&def_points, shift_idx);
    let def_total = def_points.last().expect("nonempty").end_s;
    let def_tail = &def_points[shift_idx..];
    let baseline_recovery = match def_tail.iter().find(|p| p.mbps >= rerun_threshold) {
        Some(p) => p.end_s - def_shift_t,
        None => {
            (def_total - def_shift_t)
                + eager_migration_s
                + time_to_threshold(&rerun_points, rerun_threshold, 0.0)
        }
    };
    let recovery_speedup = baseline_recovery / online_recovery.max(1e-12);
    let quiet_cost_pct = quiet_max_s / cold_plan_s * 100.0;
    let online_post_shift_mbps = mean(&online_points[shift_idx..]);
    let def_post_shift_mbps = mean(def_tail);

    // ---- figures -----------------------------------------------------
    let mut traj = Figure::new(
        "online_traj",
        "Bandwidth per window: plan-then-rerun vs online lazy re-planning \
         (hot spot flips at the midpoint)",
        &["plan-then-rerun: first run (DEF)", "plan-then-rerun: rerun", "online (lazy MHA)"],
        "MB/s",
    );
    for (i, ((d, r), o)) in def_points
        .iter()
        .zip(&rerun_points)
        .zip(&online_points)
        .enumerate()
    {
        let mark = if i == shift_idx { " <- shift" } else { "" };
        traj.push_row(format!("w{i:02}{mark}"), vec![d.mbps, r.mbps, o.mbps]);
    }

    let mut rec = Figure::new(
        "online_recovery",
        "Time to recovered bandwidth after the phase shift \
         (threshold: 80% of each timeline's own post-shift steady state)",
        &["value"],
        "mixed (s / MB/s / x)",
    );
    rec.push_row("online steady post-shift MB/s", vec![online_steady]);
    rec.push_row("online threshold MB/s", vec![online_threshold]);
    rec.push_row("rerun steady post-shift MB/s", vec![rerun_steady]);
    rec.push_row("rerun threshold MB/s", vec![rerun_threshold]);
    rec.push_row("online recovery s", vec![online_recovery]);
    rec.push_row("plan-then-rerun recovery s", vec![baseline_recovery]);
    rec.push_row("  of which eager migration s", vec![eager_migration_s]);
    rec.push_row("recovery speedup x", vec![recovery_speedup]);
    rec.push_row("online post-shift mean MB/s", vec![online_post_shift_mbps]);
    rec.push_row("DEF post-shift mean MB/s", vec![def_post_shift_mbps]);

    let mut cost = Figure::new(
        "online_cost",
        "Planning cost and migration traffic of the online loop",
        &["value"],
        "mixed",
    );
    cost.push_row("cold offline plan ms", vec![cold_plan_s * 1e3]);
    cost.push_row("worst replan ms", vec![replan_max_s * 1e3]);
    cost.push_row("worst quiet-window check ms", vec![quiet_max_s * 1e3]);
    cost.push_row("quiet check / cold plan %", vec![quiet_cost_pct]);
    cost.push_row("windows", vec![stats.windows as f64]);
    cost.push_row("quiet windows", vec![stats.quiet_windows as f64]);
    cost.push_row("replans", vec![stats.replans as f64]);
    cost.push_row("RSSD searches run", vec![stats.searches_run as f64]);
    cost.push_row("RSSD searches reused", vec![stats.searches_reused as f64]);
    cost.push_row("on-access migrations", vec![on_access as f64]);
    cost.push_row("drained MiB (never accessed)", vec![drained_bytes as f64 / (1 << 20) as f64]);
    cost.push_row("migrated MiB total", vec![migrated_mib]);

    OnlineStudy {
        figures: vec![traj, rec, cost],
        recovery_speedup,
        quiet_cost_pct,
        online_steady_mbps: online_steady,
        online_post_shift_mbps,
        def_post_shift_mbps,
    }
}

fn mean(points: &[WindowPoint]) -> f64 {
    points.iter().map(|p| p.mbps).sum::<f64>() / points.len().max(1) as f64
}

/// End time of the window *before* `idx` (0.0 when `idx` is first).
fn end_of(points: &[WindowPoint], idx: usize) -> f64 {
    if idx == 0 {
        0.0
    } else {
        points[idx - 1].end_s
    }
}

/// Seconds from `t0` until the first window at or above `threshold`
/// ends; falls back to the full tail when none qualifies.
fn time_to_threshold(points: &[WindowPoint], threshold: f64, t0: f64) -> f64 {
    points
        .iter()
        .find(|p| p.mbps >= threshold)
        .map(|p| p.end_s - t0)
        .unwrap_or_else(|| points.last().expect("nonempty trajectory").end_s - t0)
}

/// A figure the hand-rolled JSON encoder cannot represent (a NaN or
/// infinite value — JSON has no spelling for either).
#[derive(Debug, Clone, PartialEq)]
pub struct FiguresJsonError {
    /// The offending figure's id.
    pub figure: String,
    /// The row label holding the bad value.
    pub row: String,
    /// The value itself.
    pub value: f64,
}

impl std::fmt::Display for FiguresJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "figure {:?} row {:?} holds {}, which JSON cannot represent",
            self.figure, self.row, self.value
        )
    }
}

impl std::error::Error for FiguresJsonError {}

/// Hand-rolled JSON for the results file: the offline build links a
/// typecheck-only serde_json stand-in whose encoder errors at runtime,
/// so [`Figure::to_json`] is unavailable here. Strings are escaped per
/// RFC 8259 (quotes, backslashes, and control characters); non-finite
/// values are rejected rather than emitted as the invalid tokens
/// `NaN` / `inf`.
pub fn figures_json(figs: &[Figure]) -> Result<String, FiguresJsonError> {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (fi, f) in figs.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"id\": \"{}\",\n", esc(&f.id)));
        out.push_str(&format!("    \"title\": \"{}\",\n", esc(&f.title)));
        let series: Vec<String> =
            f.series.iter().map(|s| format!("\"{}\"", esc(s))).collect();
        out.push_str(&format!("    \"series\": [{}],\n", series.join(", ")));
        out.push_str(&format!("    \"unit\": \"{}\",\n", esc(&f.unit)));
        out.push_str("    \"rows\": [\n");
        for (ri, row) in f.rows.iter().enumerate() {
            let mut vals = Vec::with_capacity(row.values.len());
            for &v in &row.values {
                if !v.is_finite() {
                    return Err(FiguresJsonError {
                        figure: f.id.clone(),
                        row: row.label.clone(),
                        value: v,
                    });
                }
                vals.push(format!("{v}"));
            }
            out.push_str(&format!(
                "      {{ \"label\": \"{}\", \"values\": [{}] }}{}\n",
                esc(&row.label),
                vals.join(", "),
                if ri + 1 < f.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n");
        out.push_str(if fi + 1 < figs.len() { "  },\n" } else { "  }\n" });
    }
    out.push_str("]\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_shift_trace_flips_the_hot_region() {
        let phases = 32;
        let t = phase_shift_trace(phases, 16);
        assert!(t.validate().is_ok());
        let file_size: u64 = 1 << 30;
        let lower = |r: &TraceRecord| r.offset < file_size / 2;
        let pre: Vec<_> = t.records().iter().filter(|r| r.phase < 16).collect();
        let post: Vec<_> = t.records().iter().filter(|r| r.phase >= 16).collect();
        let frac = |v: &[&TraceRecord]| {
            v.iter().filter(|r| lower(r)).count() as f64 / v.len() as f64
        };
        assert!(frac(&pre) > 0.7, "pre-shift traffic is bottom-heavy: {}", frac(&pre));
        assert!(frac(&post) < 0.3, "post-shift traffic is top-heavy: {}", frac(&post));
    }

    #[test]
    fn phase_shift_trace_mixes_two_request_sizes() {
        let t = phase_shift_trace(8, 4);
        let small = t.records().iter().filter(|r| r.len == 16 << 10).count();
        let large = t.records().iter().filter(|r| r.len == 512 << 10).count();
        assert_eq!(small, large);
        assert_eq!(small + large, t.len());
    }

    #[test]
    fn figures_json_is_wellformed_enough_to_round_trip_counts() {
        let mut f = Figure::new("x", "a \"quoted\" title", &["s1", "s2"], "MB/s");
        f.push_row("r1", vec![1.0, 2.5]);
        let json = figures_json(&[f]).expect("finite values encode");
        assert!(json.contains("\\\"quoted\\\""));
        assert_eq!(json.matches("\"label\"").count(), 1);
        assert_eq!(json.matches("\"id\"").count(), 1);
    }

    #[test]
    fn figures_json_escapes_control_characters() {
        let mut f = Figure::new("x", "line\nbreak\ttab", &["s\\1"], "MB/s");
        f.push_row("ctrl\u{1}", vec![1.0]);
        let json = figures_json(&[f]).expect("encodes");
        assert!(json.contains("line\\nbreak\\ttab"), "{json}");
        assert!(json.contains("s\\\\1"), "{json}");
        assert!(json.contains("ctrl\\u0001"), "{json}");
        assert!(!json.contains('\u{1}'), "raw control byte leaked: {json}");
    }

    #[test]
    fn figures_json_rejects_non_finite_values() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut f = Figure::new("fig", "t", &["s1", "s2"], "MB/s");
            f.push_row("row", vec![1.0, bad]);
            let err = figures_json(&[f]).expect_err("non-finite must not encode");
            assert_eq!(err.figure, "fig");
            assert_eq!(err.row, "row");
            assert!(err.to_string().contains("JSON cannot represent"), "{err}");
        }
    }

    #[test]
    fn online_study_smoke_meets_the_acceptance_bars() {
        let s = study(Scale::Quick);
        assert_eq!(s.figures.len(), 3);
        assert!(
            s.recovery_speedup >= 2.0,
            "online must recover at least 2x sooner: {}",
            s.recovery_speedup
        );
        assert!(
            s.quiet_cost_pct < 10.0,
            "a quiet window must cost <10% of a cold plan: {}%",
            s.quiet_cost_pct
        );
        assert!(
            s.online_steady_mbps > 1.2 * s.def_post_shift_mbps,
            "recovered online bandwidth {} must clearly beat unplanned {}",
            s.online_steady_mbps,
            s.def_post_shift_mbps
        );
    }
}
