//! The multi-tenant layout-service study (`BENCH_service`).
//!
//! Drives a [`pfs_sim::LayoutService`] hosting eight tenants, each
//! running the full per-tenant MHA stack ([`mha_core::TenantPipeline`]:
//! online planner + lazy migrator over one shared [`PipelineStore`]),
//! under seeded open-loop arrivals on one shared cluster. The study
//! reports sustained aggregate bandwidth and per-tenant completion
//! latency percentiles, and asserts the service's three headline
//! properties on every run:
//!
//! 1. **Determinism** — the same seed reproduces the whole schedule and
//!    every job report bit-for-bit.
//! 2. **Isolation** — a tenant's per-job replay reports are identical
//!    whether it runs alone or among seven co-tenants.
//! 3. **Degeneracy** — a 1-tenant service run of a single job is
//!    bit-identical to a plain streaming replay of the same trace.

use crate::report::Figure;
use crate::workloads::Scale;
use iotrace::gen::skewed::{self, SkewedConfig};
use iotrace::{TenantId, Trace, TraceBatches};
use mha_core::{OnlineConfig, PipelineStore, TenantPipeline};
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, IdentityResolver, LayoutService, NullRuntime, ReplayInput,
    ReplayReport, ReplaySession, ServiceConfig, ServiceReport,
};
use storage_model::IoOp;

/// Arrival-process seed for the published figures.
const SEED: u64 = 0x5e71_1ce5;

/// Tenants in the service run (the acceptance floor).
const TENANTS: u32 = 8;

/// What the study measured, plus the acceptance facts the smoke gate
/// asserts (the property assertions themselves run inside [`study`]).
pub struct ServiceStudy {
    /// The figures written to `results/BENCH_service.json`.
    pub figures: Vec<Figure>,
    /// Jobs admitted and completed across all tenants.
    pub jobs: usize,
    /// Jobs shed by the per-tenant admission bound.
    pub rejected: usize,
    /// Tenants served.
    pub tenants: usize,
    /// Sustained aggregate bandwidth over the service makespan, MB/s.
    pub aggregate_mbps: f64,
}

/// Tenant `t`'s `job`-th trace: a skewed workload whose request size
/// cycles with the tenant (so co-tenants genuinely differ) and whose
/// hot set drifts across a tenant's own jobs (so pipelines replan).
fn tenant_trace(t: u32, job: u32, scale: Scale) -> Trace {
    let mut cfg =
        SkewedConfig::default_run(if t.is_multiple_of(2) { IoOp::Read } else { IoOp::Write });
    cfg.procs = 8;
    cfg.phases = scale.reqs(8);
    cfg.request_size = match (t + job) % 3 {
        0 => 16 << 10,
        1 => 64 << 10,
        _ => 512 << 10,
    };
    cfg.seed = u64::from(t) * 1000 + u64::from(job) + 1;
    skewed::generate(&cfg)
}

fn fresh_store(tag: &str) -> PipelineStore {
    let p = std::env::temp_dir().join(format!("mha-bench-service-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    PipelineStore::open(p).expect("open service store")
}

/// One full service run: `tenants` pipelines over `store`, each
/// submitting `jobs_per_tenant` jobs. The queue depth covers the whole
/// submission so the published figures cover every job.
fn run_service(
    store: &PipelineStore,
    tenants: &[u32],
    jobs_per_tenant: u32,
    scale: Scale,
) -> ServiceReport {
    let cluster_cfg = ClusterConfig::paper_default();
    let mut cluster = Cluster::new(cluster_cfg.clone());
    let cfg = ServiceConfig::new(SEED).queue_depth(jobs_per_tenant as usize);
    let mut svc = LayoutService::new(&mut cluster, cfg);
    for &t in tenants {
        let pipe = TenantPipeline::new(store, TenantId(t), &cluster_cfg, OnlineConfig::default());
        svc.add_tenant(TenantId(t), Box::new(pipe));
        for job in 0..jobs_per_tenant {
            svc.submit(TenantId(t), tenant_trace(t, job, scale));
        }
    }
    svc.run().expect("fault-free service cannot fail")
}

/// One job's observable outcome as raw bits: tenant, seq, the three
/// timestamps, bytes, requests, makespan.
type JobBits = (u32, u32, u64, u64, u64, u64, usize, u64);

/// Everything observable about one job, as raw bits: any divergence
/// between two runs shows up here.
fn fingerprint(r: &ServiceReport) -> Vec<JobBits> {
    r.jobs
        .iter()
        .map(|j| {
            (
                j.tenant.0,
                j.seq,
                j.arrival.as_secs_f64().to_bits(),
                j.start.as_secs_f64().to_bits(),
                j.completion.as_secs_f64().to_bits(),
                j.report.total_bytes,
                j.report.requests,
                j.report.makespan.as_secs_f64().to_bits(),
            )
        })
        .collect()
}

fn report_bits(r: &ReplayReport) -> (u64, u64, usize, u64, u64) {
    (
        r.makespan.as_secs_f64().to_bits(),
        r.total_bytes,
        r.requests,
        r.mds_lookups,
        r.resolve_overhead.as_secs_f64().to_bits(),
    )
}

/// Run the study. Asserts the determinism, isolation, and degeneracy
/// properties (panicking on violation — the CI smoke gate), then
/// summarizes the full-service run into figures.
pub fn study(scale: Scale) -> ServiceStudy {
    let jobs_per_tenant: u32 = match scale {
        Scale::Full => 8,
        Scale::Quick => 2,
    };
    let all: Vec<u32> = (1..=TENANTS).collect();

    // -- determinism: same seed, fresh stores, bit-identical service --
    let store_a = fresh_store("a");
    let report = run_service(&store_a, &all, jobs_per_tenant, scale);
    let store_b = fresh_store("b");
    let rerun = run_service(&store_b, &all, jobs_per_tenant, scale);
    assert_eq!(
        fingerprint(&report),
        fingerprint(&rerun),
        "same seed must reproduce the service bit-for-bit"
    );

    // -- isolation: tenant 1 solo == tenant 1 among co-tenants --------
    let store_solo = fresh_store("solo");
    let solo = run_service(&store_solo, &[1], jobs_per_tenant, scale);
    let solo_reports: Vec<_> = solo.jobs.iter().map(|j| (j.seq, report_bits(&j.report))).collect();
    let with_cotenants: Vec<_> = report
        .jobs
        .iter()
        .filter(|j| j.tenant == TenantId(1))
        .map(|j| (j.seq, report_bits(&j.report)))
        .collect();
    assert_eq!(
        solo_reports, with_cotenants,
        "co-tenants must not perturb a tenant's replay reports"
    );

    // -- degeneracy: 1-tenant service == plain streaming replay -------
    let trace = tenant_trace(0, 0, scale);
    let service_run = {
        let mut cluster = Cluster::new(ClusterConfig::paper_default());
        let mut svc = LayoutService::new(&mut cluster, ServiceConfig::new(SEED));
        svc.add_tenant(TenantId(0), Box::new(NullRuntime::new()));
        svc.submit(TenantId(0), trace.clone());
        let r = svc.run().expect("fault-free service cannot fail");
        report_bits(&r.jobs[0].report)
    };
    let plain_run = {
        let mut cluster = Cluster::new(ClusterConfig::paper_default());
        let r = ReplaySession::new()
            .run(
                ReplayInput::stream(
                    &mut cluster,
                    &mut TraceBatches::new(&trace),
                    &mut IdentityResolver,
                ),
                CoreSel::Sharded,
            )
            .expect("fault-free replay cannot fail");
        report_bits(&r)
    };
    assert_eq!(
        service_run, plain_run,
        "a 1-tenant service must degenerate to a plain streaming replay"
    );

    // -- figures ------------------------------------------------------
    let mut latency = Figure::new(
        "service_latency",
        "Per-tenant completion latency under open-loop arrivals",
        &["p50", "p95", "p99"],
        "s",
    );
    for t in &report.tenants {
        latency.push_row(
            format!("tenant {}", t.tenant.0),
            vec![t.p50_latency, t.p95_latency, t.p99_latency],
        );
    }
    let mut agg = Figure::new(
        "service_aggregate",
        "Service-wide totals",
        &["value"],
        "mixed",
    );
    let aggregate_mbps = report.aggregate_mbps();
    agg.push_row("aggregate MB/s", vec![aggregate_mbps]);
    agg.push_row("jobs completed", vec![report.jobs.len() as f64]);
    agg.push_row("jobs rejected", vec![report.rejected as f64]);
    agg.push_row("makespan s", vec![report.makespan.as_secs_f64()]);

    ServiceStudy {
        figures: vec![latency, agg],
        jobs: report.jobs.len(),
        rejected: report.rejected,
        tenants: report.tenants.len(),
        aggregate_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_study_smoke_holds_its_properties_and_shape() {
        let s = study(Scale::Quick);
        assert_eq!(s.tenants, TENANTS as usize);
        assert_eq!(s.jobs, (TENANTS * 2) as usize, "quick run admits every job");
        assert!(s.aggregate_mbps > 0.0);
        assert_eq!(s.figures.len(), 2);
        assert_eq!(s.figures[0].rows.len(), TENANTS as usize);
    }
}
