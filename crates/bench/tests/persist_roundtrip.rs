//! Cross-crate persistence round-trip: a planner output saved through the
//! journaled [`PipelineStore`] and reloaded by a *fresh* store handle (a
//! simulated process restart) must replay bit-for-bit identically to the
//! in-memory plan that produced it. This is the acceptance gate for the
//! durability layer: serialization, the envelope checksums, and the
//! generation commit protocol may not perturb a single field of the
//! [`ReplayReport`].

use mha_bench::workloads::{self, Scale};
use mha_core::persist::PipelineStore;
use mha_core::schemes::{apply_plan, Plan, PlannerContext, Scheme};
use pfs_sim::{Cluster, ClusterConfig, CoreSel, ReplayInput, ReplayReport, ReplaySession};
use std::path::PathBuf;
use storage_model::IoOp;

/// Field-by-field equality, exact: durations and counters by value,
/// floats (latency statistics) by bit pattern.
fn assert_reports_identical(a: &ReplayReport, b: &ReplayReport, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(a.total_bytes, b.total_bytes, "{what}: total_bytes");
    assert_eq!(a.read_bytes, b.read_bytes, "{what}: read_bytes");
    assert_eq!(a.write_bytes, b.write_bytes, "{what}: write_bytes");
    assert_eq!(a.resolve_overhead, b.resolve_overhead, "{what}: resolve_overhead");
    assert_eq!(a.mds_lookups, b.mds_lookups, "{what}: mds_lookups");
    assert_eq!(a.retries, b.retries, "{what}: retries");
    assert_eq!(a.timeouts, b.timeouts, "{what}: timeouts");
    assert_eq!(a.fault_wait, b.fault_wait, "{what}: fault_wait");
    assert_eq!(a.per_server.len(), b.per_server.len(), "{what}: server count");
    for (sa, sb) in a.per_server.iter().zip(&b.per_server) {
        assert_eq!(sa.server, sb.server, "{what}: server index");
        assert_eq!(sa.kind, sb.kind, "{what}: server kind");
        assert_eq!(sa.busy, sb.busy, "{what}: S{} busy", sa.server);
        assert_eq!(sa.bytes_read, sb.bytes_read, "{what}: S{} bytes_read", sa.server);
        assert_eq!(sa.bytes_written, sb.bytes_written, "{what}: S{} bytes_written", sa.server);
        assert_eq!(sa.served, sb.served, "{what}: S{} served", sa.server);
        assert_eq!(sa.retries, sb.retries, "{what}: S{} retries", sa.server);
        assert_eq!(sa.timeouts, sb.timeouts, "{what}: S{} timeouts", sa.server);
        assert_eq!(sa.down, sb.down, "{what}: S{} down", sa.server);
        assert_eq!(
            sa.slowdown.to_bits(),
            sb.slowdown.to_bits(),
            "{what}: S{} slowdown",
            sa.server
        );
    }
    let (la, lb) = (&a.request_latency, &b.request_latency);
    assert_eq!(la.count(), lb.count(), "{what}: latency count");
    assert_eq!(la.mean().to_bits(), lb.mean().to_bits(), "{what}: latency mean");
    assert_eq!(la.sum().to_bits(), lb.sum().to_bits(), "{what}: latency sum");
    assert_eq!(la.min().to_bits(), lb.min().to_bits(), "{what}: latency min");
    assert_eq!(la.max().to_bits(), lb.max().to_bits(), "{what}: latency max");
}

fn tmp_path(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("mha-roundtrip-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Install `plan` on a fresh cluster and replay `trace` through its
/// resolver — the same sequence the middleware's optimized run performs.
fn replay_plan(
    cfg: &ClusterConfig,
    plan: &Plan,
    trace: &iotrace::Trace,
    ctx: &PlannerContext,
) -> ReplayReport {
    let mut cluster = Cluster::new(cfg.clone());
    apply_plan(&mut cluster, plan);
    let mut resolver = plan.make_resolver(ctx.lookup_cost);
    ReplaySession::new()
        .run(ReplayInput::trace(&mut cluster, trace, resolver.as_mut()), CoreSel::Auto)
        .expect("fault-free replay cannot fail")
}

fn round_trip(scheme: Scheme, trace: &iotrace::Trace, tag: &str) {
    if serde_json::to_string(&0u32).is_err() {
        eprintln!("skipped: JSON codec is the offline stub");
        return;
    }
    let cfg = workloads::paper_cluster();
    let ctx = PlannerContext::for_cluster(&cfg);
    let plan = scheme.planner().plan(trace, &ctx);
    let before = replay_plan(&cfg, &plan, trace, &ctx);

    let path = tmp_path(tag);
    {
        let store = PipelineStore::open(&path).expect("open store");
        store.save_plan(&plan).expect("persist plan");
    }
    // A fresh handle — nothing shared with the writer but the file.
    let store = PipelineStore::open(&path).expect("reopen store");
    let loaded = store
        .load_plan()
        .expect("load plan")
        .expect("a committed plan must be present");
    assert_eq!(loaded.scheme, plan.scheme, "{tag}: scheme survives");
    assert_eq!(loaded.layouts.len(), plan.layouts.len(), "{tag}: layout rows survive");
    assert_eq!(loaded.rst.len(), plan.rst.len(), "{tag}: RST rows survive");
    assert_eq!(loaded.regions.len(), plan.regions.len(), "{tag}: regions survive");

    let after = replay_plan(&cfg, &loaded, trace, &ctx);
    assert_reports_identical(&before, &after, tag);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn persisted_mha_plan_replays_bit_for_bit() {
    let trace = workloads::lanl_trace(Scale::Quick);
    round_trip(Scheme::Mha, &trace, "mha-lanl");
}

#[test]
fn persisted_harl_plan_replays_bit_for_bit() {
    let trace = workloads::ior_mixed_sizes(&[128, 256], IoOp::Write, Scale::Quick);
    round_trip(Scheme::Harl, &trace, "harl-ior");
}

#[test]
fn persisted_identity_plans_replay_bit_for_bit() {
    // DEF and AAL carry no DRT; the metadata-only path must round-trip too.
    let trace = workloads::lanl_trace(Scale::Quick);
    round_trip(Scheme::Def, &trace, "def-lanl");
    round_trip(Scheme::Aal, &trace, "aal-lanl");
}
