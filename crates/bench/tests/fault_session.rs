//! The fault-injection contract, pinned at the full-grid level:
//!
//! * an **empty** `FaultPlan` is bit-for-bit invisible — every scheme's
//!   report on the LANL and IOR workloads is identical with and without
//!   the plan attached to the session;
//! * a **non-empty** plan is deterministic — repeated runs from fresh
//!   sessions reproduce the degraded reports exactly;
//! * retry/timeout accounting surfaces in `ReplayReport` where the
//!   injected faults say it must.

use iotrace::Trace;
use mha_bench::workloads::{self, Scale};
use mha_core::schemes::{Evaluation, Scheme};
use pfs_sim::{ClusterConfig, FaultPlan, ReplayReport};
use storage_model::IoOp;

const SCHEMES: [Scheme; 4] = [Scheme::Def, Scheme::Aal, Scheme::Harl, Scheme::Mha];

/// Field-by-field equality, exact: durations and counters by value,
/// floats by bit pattern.
fn assert_reports_identical(a: &ReplayReport, b: &ReplayReport, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(a.total_bytes, b.total_bytes, "{what}: total_bytes");
    assert_eq!(a.read_bytes, b.read_bytes, "{what}: read_bytes");
    assert_eq!(a.write_bytes, b.write_bytes, "{what}: write_bytes");
    assert_eq!(a.resolve_overhead, b.resolve_overhead, "{what}: resolve_overhead");
    assert_eq!(a.mds_lookups, b.mds_lookups, "{what}: mds_lookups");
    assert_eq!(a.retries, b.retries, "{what}: retries");
    assert_eq!(a.timeouts, b.timeouts, "{what}: timeouts");
    assert_eq!(a.fault_wait, b.fault_wait, "{what}: fault_wait");
    assert_eq!(a.per_server.len(), b.per_server.len(), "{what}: server count");
    for (sa, sb) in a.per_server.iter().zip(&b.per_server) {
        assert_eq!(sa.busy, sb.busy, "{what}: S{} busy", sa.server);
        assert_eq!(sa.bytes_read, sb.bytes_read, "{what}: S{} bytes_read", sa.server);
        assert_eq!(sa.bytes_written, sb.bytes_written, "{what}: S{} bytes_written", sa.server);
        assert_eq!(sa.served, sb.served, "{what}: S{} served", sa.server);
        assert_eq!(sa.retries, sb.retries, "{what}: S{} retries", sa.server);
        assert_eq!(sa.timeouts, sb.timeouts, "{what}: S{} timeouts", sa.server);
        assert_eq!(sa.down, sb.down, "{what}: S{} down", sa.server);
        assert_eq!(
            sa.slowdown.to_bits(),
            sb.slowdown.to_bits(),
            "{what}: S{} slowdown",
            sa.server
        );
    }
}

fn grid(trace: &Trace, cluster: &ClusterConfig, plan: &FaultPlan) -> Vec<ReplayReport> {
    let ctx = workloads::context_for(trace, cluster);
    SCHEMES
        .iter()
        .map(|&s| {
            Evaluation::of(s, trace, cluster)
                .context(&ctx)
                .faults(plan)
                .run()
                .expect("replay failed")
        })
        .collect()
}

fn fault_free_grid(trace: &Trace, cluster: &ClusterConfig) -> Vec<ReplayReport> {
    let ctx = workloads::context_for(trace, cluster);
    SCHEMES
        .iter()
        .map(|&s| {
            Evaluation::of(s, trace, cluster)
                .context(&ctx)
                .run()
                .expect("replay failed")
        })
        .collect()
}

#[test]
fn empty_fault_plan_is_bit_identical_across_the_grid() {
    let cluster = workloads::paper_cluster();
    let matrix = [
        ("lanl", workloads::lanl_trace(Scale::Quick)),
        ("ior 128+256 write", workloads::ior_mixed_sizes(&[128, 256], IoOp::Write, Scale::Quick)),
        ("ior 64+512 read", workloads::ior_mixed_sizes(&[64, 512], IoOp::Read, Scale::Quick)),
    ];
    let empty = FaultPlan::none();
    for (name, trace) in &matrix {
        let with_plan = grid(trace, &cluster, &empty);
        let without = fault_free_grid(trace, &cluster);
        for (i, (a, b)) in with_plan.iter().zip(&without).enumerate() {
            assert_reports_identical(a, b, &format!("{name}, scheme #{i}"));
            assert_eq!(a.retries, 0, "{name}: empty plan must record no retries");
            assert_eq!(a.timeouts, 0, "{name}: empty plan must record no timeouts");
        }
    }
}

#[test]
fn straggler_replay_is_deterministic_across_fresh_sessions() {
    let cluster = workloads::paper_cluster();
    let trace = workloads::lanl_trace(Scale::Quick);
    let plan = FaultPlan::none().slow_server(6, 8.0);
    let first = grid(&trace, &cluster, &plan);
    for round in 0..2 {
        let again = grid(&trace, &cluster, &plan);
        for (i, (a, b)) in first.iter().zip(&again).enumerate() {
            assert_reports_identical(a, b, &format!("round {round}, scheme #{i}"));
        }
    }
    // The straggler is visible where it must be: the degraded server's
    // health lands in the report, and no scheme got faster.
    let healthy = fault_free_grid(&trace, &cluster);
    for (i, (h, d)) in healthy.iter().zip(&first).enumerate() {
        assert_eq!(d.per_server[6].slowdown, 8.0, "scheme #{i}: S6 slowdown recorded");
        assert!(
            d.makespan >= h.makespan,
            "scheme #{i}: straggler must not shorten the run"
        );
    }
}

#[test]
fn outages_and_loss_surface_retry_accounting() {
    let cluster = workloads::paper_cluster();
    let trace = workloads::lanl_trace(Scale::Quick);

    // A transient outage on an SServer forces retries under DEF (which
    // stripes every request over all servers).
    let outage = FaultPlan::none().outage(6, 0.0, 1.0);
    let r = grid(&trace, &cluster, &outage).remove(0);
    assert!(r.retries > 0, "outage must force retries, got {}", r.retries);
    assert_eq!(
        r.per_server[6].retries, r.retries,
        "all retries belong to the server in outage"
    );

    // Permanent loss: requests to the dead server time out, and the
    // report marks it down.
    let loss = FaultPlan::none().down(6, 0.0);
    let r = grid(&trace, &cluster, &loss).remove(0);
    assert!(r.timeouts > 0, "a lost server must surface timeouts");
    assert!(r.per_server[6].down, "the report must mark S6 down");
    assert!(r.per_server[6].timeouts > 0, "timeouts pinned to the lost server");
}
