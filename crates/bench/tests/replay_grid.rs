//! Determinism of the parallel experiment grid: fanning the (workload ×
//! scheme) cells over rayon must produce the same reports, bit for bit,
//! as a single-thread walk — otherwise figure rows would wobble from run
//! to run and the before/after replay benchmark would be meaningless.
//!
//! The serial reference also threads one `ReplaySession` (and its
//! scratch) through every cell, so the comparison simultaneously pins
//! the allocation-free replay fast path against per-cell sessions with
//! pinned schedules.

use mha_bench::experiments::{scheme_reports, scheme_reports_serial};
use mha_bench::workloads::{self, Scale};
use pfs_sim::ReplayReport;
use storage_model::IoOp;

/// Field-by-field equality, exact: durations and counters by value,
/// floats (latency statistics) by bit pattern.
fn assert_reports_identical(a: &ReplayReport, b: &ReplayReport, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(a.total_bytes, b.total_bytes, "{what}: total_bytes");
    assert_eq!(a.read_bytes, b.read_bytes, "{what}: read_bytes");
    assert_eq!(a.write_bytes, b.write_bytes, "{what}: write_bytes");
    assert_eq!(a.resolve_overhead, b.resolve_overhead, "{what}: resolve_overhead");
    assert_eq!(a.mds_lookups, b.mds_lookups, "{what}: mds_lookups");
    assert_eq!(a.retries, b.retries, "{what}: retries");
    assert_eq!(a.timeouts, b.timeouts, "{what}: timeouts");
    assert_eq!(a.fault_wait, b.fault_wait, "{what}: fault_wait");
    assert_eq!(a.per_server.len(), b.per_server.len(), "{what}: server count");
    for (sa, sb) in a.per_server.iter().zip(&b.per_server) {
        assert_eq!(sa.server, sb.server, "{what}: server index");
        assert_eq!(sa.kind, sb.kind, "{what}: server kind");
        assert_eq!(sa.busy, sb.busy, "{what}: S{} busy", sa.server);
        assert_eq!(sa.bytes_read, sb.bytes_read, "{what}: S{} bytes_read", sa.server);
        assert_eq!(sa.bytes_written, sb.bytes_written, "{what}: S{} bytes_written", sa.server);
        assert_eq!(sa.served, sb.served, "{what}: S{} served", sa.server);
        assert_eq!(sa.retries, sb.retries, "{what}: S{} retries", sa.server);
        assert_eq!(sa.timeouts, sb.timeouts, "{what}: S{} timeouts", sa.server);
        assert_eq!(sa.down, sb.down, "{what}: S{} down", sa.server);
        assert_eq!(
            sa.slowdown.to_bits(),
            sb.slowdown.to_bits(),
            "{what}: S{} slowdown",
            sa.server
        );
    }
    let (la, lb) = (&a.request_latency, &b.request_latency);
    assert_eq!(la.count(), lb.count(), "{what}: latency count");
    assert_eq!(la.mean().to_bits(), lb.mean().to_bits(), "{what}: latency mean");
    assert_eq!(la.sum().to_bits(), lb.sum().to_bits(), "{what}: latency sum");
    assert_eq!(la.min().to_bits(), lb.min().to_bits(), "{what}: latency min");
    assert_eq!(la.max().to_bits(), lb.max().to_bits(), "{what}: latency max");
}

#[test]
fn parallel_grid_matches_serial_grid_bit_for_bit() {
    let cluster = workloads::paper_cluster();
    let matrix = [
        ("lanl", workloads::lanl_trace(Scale::Quick)),
        ("ior 128+256", workloads::ior_mixed_sizes(&[128, 256], IoOp::Write, Scale::Quick)),
        ("ior read 64+512", workloads::ior_mixed_sizes(&[64, 512], IoOp::Read, Scale::Quick)),
    ];
    for (name, trace) in &matrix {
        let par = scheme_reports(trace, &cluster);
        let ser = scheme_reports_serial(trace, &cluster);
        assert_eq!(par.len(), ser.len());
        for (i, (p, s)) in par.iter().zip(&ser).enumerate() {
            assert_reports_identical(p, s, &format!("{name}, scheme #{i}"));
        }
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Thread scheduling varies between runs; reports must not.
    let cluster = workloads::paper_cluster();
    let trace = workloads::lanl_trace(Scale::Quick);
    let first = scheme_reports(&trace, &cluster);
    for round in 0..2 {
        let again = scheme_reports(&trace, &cluster);
        for (i, (a, b)) in first.iter().zip(&again).enumerate() {
            assert_reports_identical(a, b, &format!("round {round}, scheme #{i}"));
        }
    }
}
