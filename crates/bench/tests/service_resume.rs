//! Kill-matrix for the multi-tenant layout service: inject a crash at
//! persistence boundaries sampled across a whole service run, then
//! "restart" (reopen the shared store) and recover every tenant. At
//! every kill point each tenant must come back consistent — a committed
//! generation loads in full or the tenant has none, the migration
//! journal is cleared, and a second recovery is a no-op.

use iotrace::gen::skewed::{self, SkewedConfig};
use iotrace::{TenantId, Trace};
use mha_core::{recover_tenant, OnlineConfig, PipelineStore, TenantPipeline};
use pfs_sim::{Cluster, ClusterConfig, LayoutService, ServiceConfig};
use storage_model::IoOp;

const TENANTS: [u32; 2] = [1, 2];
const JOBS_PER_TENANT: u32 = 2;

fn trace_for(t: u32, job: u32) -> Trace {
    let mut cfg = SkewedConfig::default_run(IoOp::Read);
    cfg.procs = 8;
    cfg.phases = 4;
    // A size shift between a tenant's jobs forces a second replan, so
    // kills land on second-generation commits too.
    cfg.request_size = if job == 0 { 16 << 10 } else { 512 << 10 };
    cfg.seed = u64::from(t) * 100 + u64::from(job) + 1;
    skewed::generate(&cfg)
}

/// One service run over `store`: every tenant a full MHA pipeline.
/// Persistence failures from an armed kill switch park the affected
/// pipeline; the service itself always completes.
fn run_service_on(store: &PipelineStore) {
    let cluster_cfg = ClusterConfig::paper_default();
    let mut cluster = Cluster::new(cluster_cfg.clone());
    let mut svc = LayoutService::new(&mut cluster, ServiceConfig::new(42));
    for &t in &TENANTS {
        let pipe = TenantPipeline::new(store, TenantId(t), &cluster_cfg, OnlineConfig::default());
        svc.add_tenant(TenantId(t), Box::new(pipe));
        for job in 0..JOBS_PER_TENANT {
            svc.submit(TenantId(t), trace_for(t, job));
        }
    }
    svc.run().expect("fault-free replay cannot fail");
}

#[test]
fn every_sampled_kill_point_resumes_all_tenants_consistently() {
    let base = std::env::temp_dir().join(format!("mha-service-resume-{}", std::process::id()));

    // Recording run: count the boundaries one full service crosses.
    let boundaries = {
        let path = base.with_extension("probe");
        let _ = std::fs::remove_file(&path);
        let store = PipelineStore::open(&path).expect("open probe store");
        run_service_on(&store);
        let n = store.kill_switch().boundaries();
        let _ = std::fs::remove_file(&path);
        n
    };
    assert!(boundaries > 0, "the pipelines never touched the store");

    // Sample ~16 kill points evenly across the run (the full matrix is
    // thousands wide; the interesting transitions — first write, entry
    // vs commit, journal vs tables — recur throughout).
    let step = (boundaries / 16).max(1);
    let mut committed_somewhere = false;
    let mut parked_somewhere = false;
    for k in (0..boundaries).step_by(step as usize) {
        let path = base.with_extension(format!("k{k}"));
        let _ = std::fs::remove_file(&path);
        {
            let store = PipelineStore::open(&path).expect("open killed store");
            store.kill_switch().arm(k);
            run_service_on(&store);
        }

        // Restart: reopen the store (switch disarmed) and recover.
        let store = PipelineStore::open(&path).expect("reopen after crash");
        for &t in &TENANTS {
            let outcome =
                recover_tenant(&store, TenantId(t)).expect("recovery itself cannot fail at k={k}");
            let ts = store.tenant(TenantId(t));
            match ts.committed_generation().expect("generation readable") {
                Some(_) => {
                    ts.load_tables()
                        .expect("committed tables readable")
                        .expect("committed generation loads in full");
                    assert!(outcome.tables.is_some());
                    committed_somewhere = true;
                }
                None => {
                    assert!(
                        outcome.tables.is_none(),
                        "tenant {t} recovered tables without a committed generation (k={k})"
                    );
                    parked_somewhere = true;
                }
            }
            assert!(
                ts.journal().expect("journal readable").is_empty(),
                "recovery must clear tenant {t}'s journal (k={k})"
            );
            let again = recover_tenant(&store, TenantId(t)).expect("second recovery");
            assert_eq!(again.rolled_forward, 0, "recovery must be idempotent (k={k})");
            assert_eq!(again.discarded_batches, 0, "recovery must be idempotent (k={k})");
        }
        let _ = std::fs::remove_file(&path);
    }
    assert!(committed_somewhere, "no sampled kill point left a committed generation");
    // Early kills must hit at least one tenant before its first commit.
    assert!(parked_somewhere, "no sampled kill point caught a tenant pre-commit");
}
