//! Smoke test for the planner bench path: one RSSD run over the Quick
//! LANL region under `cargo test`, no criterion required. Guards the
//! bench workload wiring (and the search counters) without paying the
//! measurement harness.

use mha_bench::workloads::{self, Scale};
use mha_core::cost::views_of;
use mha_core::{rssd, RssdConfig};

#[test]
fn planner_smoke() {
    let cluster = workloads::paper_cluster();
    let trace = workloads::lanl_trace(Scale::Quick);
    let ctx = workloads::context_for(&trace, &cluster);
    let views = views_of(&trace);

    let r = rssd(&views, &ctx.params, &ctx.rssd).expect("nonempty region");
    assert!(r.evaluated > 0, "the candidate grid must be non-trivial");
    assert!(r.pruned <= r.evaluated, "pruned candidates are a subset of the grid");
    assert!(r.cost.is_finite() && r.cost > 0.0);
    assert!(r.pair.s > r.pair.h, "SServer stripe stays strictly larger");

    // The pruned and exhaustive searches must agree bit-for-bit on the
    // bench workload itself, so speedup numbers compare equal answers.
    let plain = rssd(
        &views,
        &ctx.params,
        &RssdConfig { pruning: false, ..ctx.rssd.clone() },
    )
    .expect("nonempty region");
    assert_eq!(plain.pruned, 0);
    assert_eq!(r.pair, plain.pair);
    assert_eq!(r.cost.to_bits(), plain.cost.to_bits());
    assert_eq!(r.evaluated, plain.evaluated);
}
