//! Planner introspection: print, for each scheme and a set of workloads,
//! the chosen layouts, the per-server load they produce, and the
//! resulting bandwidth — the debugging view used while calibrating the
//! reproduction.
//!
//! ```text
//! cargo run -p mha-core --release --example planner_introspection [workload]
//! ```
//! workload ∈ {lanl, lu, hpio} (default: lanl)

use iotrace::Trace;
use mha_core::schemes::{Evaluation, PlannerContext, Scheme};
use pfs_sim::ClusterConfig;
use storage_model::IoOp;

fn workload(name: &str) -> Trace {
    match name {
        "lu" => iotrace::gen::lu::generate(&iotrace::gen::lu::LuConfig::default()),
        "hpio" => {
            let mut cfg = iotrace::gen::hpio::HpioConfig::paper(32, IoOp::Write);
            cfg.region_count = 1024;
            iotrace::gen::hpio::generate(&cfg)
        }
        _ => iotrace::gen::lanl::generate(&iotrace::gen::lanl::LanlConfig::paper(12, IoOp::Write)),
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lanl".into());
    let cfg = ClusterConfig::paper_default();
    let ctx = PlannerContext::for_cluster(&cfg);
    let trace = workload(&name);
    println!(
        "workload {name}: {} requests, {} phases, {} bytes",
        trace.len(),
        trace.phase_count(),
        trace.total_bytes()
    );
    println!("cost model: {:?}\n", ctx.params);

    for scheme in Scheme::all() {
        let plan = scheme.planner().plan(&trace, &ctx);
        let report = Evaluation::of(scheme, &trace, &cfg).context(&ctx).report();
        println!(
            "== {:<4} bw={:>7.1} MB/s  makespan={}  regions={}",
            scheme.name(),
            report.bandwidth_mbps(),
            report.makespan,
            plan.regions.len()
        );
        for (file, pair) in plan.rst.iter().take(10) {
            println!("   region {:?}: <h={}, s={}>", file, pair.h, pair.s);
        }
        if plan.rst.len() > 10 {
            println!("   ... {} more regions", plan.rst.len() - 10);
        }
        for s in &report.per_server {
            println!(
                "   srv{} {:?}: busy={:>9}  read={:>10}B  written={:>10}B  subs={}",
                s.server,
                s.kind,
                format!("{}", s.busy),
                s.bytes_read,
                s.bytes_written,
                s.served
            );
        }
    }
}
