//! Request features and the normalized distance of Eq. 1.
//!
//! Each request is a point in a two-dimensional Euclidean space: x =
//! request size, y = request concurrency (the number of requests
//! simultaneously issued to the file). Distances normalize each dimension
//! by its observed range so size (bytes, up to millions) and concurrency
//! (small integers) compare on equal footing.

use crate::cost::ReqView;
use serde::{Deserialize, Serialize};

/// A request's clustering features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReqFeature {
    /// Request size, bytes.
    pub size: f64,
    /// Request concurrency.
    pub concurrency: f64,
}

impl ReqFeature {
    /// Features of a planner request view.
    pub fn of(view: &ReqView) -> Self {
        ReqFeature { size: view.len as f64, concurrency: f64::from(view.concurrency) }
    }
}

/// The normalization context of Eq. 1: per-dimension observed ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpace {
    size_span: f64,
    conc_span: f64,
}

impl FeatureSpace {
    /// Fit the space to a set of points. Zero-span dimensions (all points
    /// equal) are given unit span so they simply contribute 0 distance.
    pub fn fit(points: &[ReqFeature]) -> Self {
        let span = |f: fn(&ReqFeature) -> f64| -> f64 {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for p in points {
                let v = f(p);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let s = hi - lo;
            if s.is_finite() && s > 0.0 {
                s
            } else {
                1.0
            }
        };
        FeatureSpace { size_span: span(|p| p.size), conc_span: span(|p| p.concurrency) }
    }

    /// Eq. 1: normalized Euclidean distance between two request points.
    pub fn distance(&self, a: &ReqFeature, b: &ReqFeature) -> f64 {
        self.distance_sq(a, b).sqrt()
    }

    /// Squared Eq. 1 distance. `sqrt` is monotone, so comparisons over
    /// squared distances order the same way — the grouping hot loops use
    /// this to drop one sqrt per candidate center.
    pub fn distance_sq(&self, a: &ReqFeature, b: &ReqFeature) -> f64 {
        let dx = (a.size - b.size) / self.size_span;
        let dy = (a.concurrency - b.concurrency) / self.conc_span;
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(size: f64, conc: f64) -> ReqFeature {
        ReqFeature { size, concurrency: conc }
    }

    #[test]
    fn distance_is_a_metric_on_samples() {
        let pts = [f(16.0, 8.0), f(131_072.0, 8.0), f(65_536.0, 32.0)];
        let sp = FeatureSpace::fit(&pts);
        for a in &pts {
            assert_eq!(sp.distance(a, a), 0.0);
            for b in &pts {
                assert!((sp.distance(a, b) - sp.distance(b, a)).abs() < 1e-15);
            }
        }
        // Triangle inequality on the sample.
        let (a, b, c) = (&pts[0], &pts[1], &pts[2]);
        assert!(sp.distance(a, c) <= sp.distance(a, b) + sp.distance(b, c) + 1e-12);
    }

    #[test]
    fn normalization_balances_dimensions() {
        // Size spans 1..1e6, concurrency spans 1..2: a full-span step in
        // either dimension must cost the same normalized distance.
        let pts = [f(1.0, 1.0), f(1e6, 2.0)];
        let sp = FeatureSpace::fit(&pts);
        let d_size = sp.distance(&f(1.0, 1.0), &f(1e6, 1.0));
        let d_conc = sp.distance(&f(1.0, 1.0), &f(1.0, 2.0));
        assert!((d_size - d_conc).abs() < 1e-12);
        assert!((d_size - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_dimension_contributes_zero() {
        // All concurrencies equal: distance reduces to the size dimension.
        let pts = [f(10.0, 4.0), f(20.0, 4.0)];
        let sp = FeatureSpace::fit(&pts);
        let d = sp.distance(&pts[0], &pts[1]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feature_of_view() {
        use storage_model::IoOp;
        let v = ReqView { offset: 0, len: 4096, op: IoOp::Read, concurrency: 7 };
        let ft = ReqFeature::of(&v);
        assert_eq!(ft.size, 4096.0);
        assert_eq!(ft.concurrency, 7.0);
    }

    #[test]
    fn empty_fit_is_safe() {
        let sp = FeatureSpace::fit(&[]);
        assert_eq!(sp.distance(&f(0.0, 0.0), &f(1.0, 1.0)), (2.0f64).sqrt());
    }
}
