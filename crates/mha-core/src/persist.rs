//! Crash-consistent persistence for the planning pipeline.
//!
//! The paper's five-phase flow spans multiple application runs: the DRT
//! and RST computed after run *n* must still be there — and still be
//! *right* — when run *n + 1* opens the file system. This module turns
//! the `kvstore` crate (WAL + CRC32 + atomic compaction, the Berkeley DB
//! substitute) into a durability layer with three guarantees:
//!
//! 1. **Versioned, checksummed records.** Every value is wrapped in an
//!    envelope `[magic "MH"][tag][version][crc32(payload)][payload]`.
//!    The WAL already checksums whole records; the envelope additionally
//!    rejects cross-table mixups, format drift and any corruption that
//!    survives the log layer, with structured [`PersistError`]s instead
//!    of panics or silently wrong tables.
//! 2. **Atomic generations.** A save writes every DRT/RST/plan record
//!    under a fresh generation prefix and only then appends a single
//!    *commit record* naming that generation and its exact entry counts.
//!    Readers resolve the commit record first; a crash anywhere before
//!    it leaves the previous committed generation untouched, and a
//!    commit record whose counts don't match the surviving entries is
//!    rejected as corrupt (this closes the WAL-tail-drop hole where a
//!    mid-log flip silently truncates everything after it).
//! 3. **Write-ahead migration journal.** Region migration appends each
//!    batch's intended DRT entries to a journal *before* moving bytes,
//!    and a per-batch commit record *after* the movement traffic has
//!    been replayed. A DRT entry is only published once its batch
//!    committed, so [`recover`] can roll committed batches forward and
//!    discard uncommitted intents — the DRT never resolves to data that
//!    was never migrated.
//!
//! Crash injection is first-class: every mutating operation crosses
//! numbered *commit boundaries* through a [`KillSwitch`]. Arming the
//! switch at boundary `k` makes the `k`-th store write fail with
//! [`PersistError::Killed`] before it happens — simulated process death
//! with everything earlier already in the log — which lets tests sweep a
//! deterministic kill-point matrix across the whole pipeline.

use crate::region::{Drt, DrtEntry, Rst};
use crate::schemes::{Plan, PlanResolver, Scheme};
use iotrace::{FileId, TenantId};
use kvstore::codec::crc32;
use kvstore::{Store, StoreOptions};
use pfs_sim::{FaultPlan, LayoutSpec};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// On-disk format version of every record this module writes.
const VERSION: u8 = 1;

/// Record tags: what kind of payload an envelope carries.
const TAG_DRT: u8 = b'D';
const TAG_RST: u8 = b'R';
const TAG_META: u8 = b'P';
const TAG_FAULT: u8 = b'F';
const TAG_JOURNAL: u8 = b'J';
const TAG_COMMIT: u8 = b'C';

/// The single key naming the committed generation.
const COMMIT_KEY: &[u8] = b"pcommit";

// ------------------------------------------------------------- errors --

/// Why a pipeline persistence operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying kvstore failed (I/O, log-level corruption, ...).
    Store(kvstore::Error),
    /// A record exists but its envelope or payload is damaged.
    Corrupt {
        /// Human-readable rendering of the offending key.
        key: String,
        /// What exactly was wrong.
        reason: String,
    },
    /// A record was written by an incompatible format version.
    VersionMismatch {
        /// Human-readable rendering of the offending key.
        key: String,
        /// Version found on disk.
        found: u8,
        /// Version this build writes and reads.
        expected: u8,
    },
    /// The committed generation references a record that is gone.
    Missing {
        /// Human-readable rendering of the absent key.
        key: String,
    },
    /// Could not encode a value for storage (serde failure).
    Encode(String),
    /// Simulated process death injected by an armed [`KillSwitch`].
    Killed(CommitPoint),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Store(e) => write!(f, "pipeline store: {e}"),
            PersistError::Corrupt { key, reason } => {
                write!(f, "pipeline record {key} is corrupt: {reason}")
            }
            PersistError::VersionMismatch { key, found, expected } => {
                write!(f, "pipeline record {key}: version {found}, expected {expected}")
            }
            PersistError::Missing { key } => write!(f, "pipeline record {key} is missing"),
            PersistError::Encode(e) => write!(f, "pipeline encode failure: {e}"),
            PersistError::Killed(p) => write!(f, "simulated crash at commit boundary {p:?}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kvstore::Error> for PersistError {
    fn from(e: kvstore::Error) -> Self {
        PersistError::Store(e)
    }
}

/// Render a (partially binary) store key for error messages.
fn key_name(k: &[u8]) -> String {
    let mut s = String::with_capacity(k.len() * 2);
    for &b in k {
        if (0x20..0x7f).contains(&b) {
            s.push(b as char);
        } else {
            let _ = write!(s, "\\x{b:02x}");
        }
    }
    s
}

fn corrupt(key: &[u8], reason: impl Into<String>) -> PersistError {
    PersistError::Corrupt { key: key_name(key), reason: reason.into() }
}

// -------------------------------------------------------- kill switch --

/// The commit boundaries a crash can be injected at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPoint {
    /// Before writing one DRT/RST/plan record of an uncommitted
    /// generation.
    TableEntry,
    /// Before writing a generation's commit record — the atomic instant
    /// a save becomes visible.
    TableCommit,
    /// Before journaling one migration batch intent record.
    BatchIntent,
    /// Before writing a migration batch's commit record — the atomic
    /// instant a batch's movement becomes rollable-forward.
    BatchCommit,
    /// Before clearing the migration journal after publication.
    JournalClear,
}

/// Deterministic crash injector.
///
/// Every mutating [`PipelineStore`] operation calls [`KillSwitch::check`]
/// immediately *before* each store write; the switch counts these
/// crossings globally. Arming it at index `k` makes crossing `k` return
/// [`PersistError::Killed`] — the write does not happen, everything
/// earlier is already in the log, exactly the state a process killed
/// between two appends leaves behind. Disarmed, the switch only counts,
/// so a recording run measures how many boundaries a flow crosses.
#[derive(Debug, Default)]
pub struct KillSwitch {
    armed: Cell<Option<u64>>,
    crossed: Cell<u64>,
}

impl KillSwitch {
    /// A disarmed switch.
    pub fn new() -> Self {
        KillSwitch::default()
    }

    /// Die at global boundary `index` (0-based).
    pub fn arm(&self, index: u64) {
        self.armed.set(Some(index));
    }

    /// Stop injecting.
    pub fn disarm(&self) {
        self.armed.set(None);
    }

    /// Boundaries crossed so far (the matrix width of a recording run).
    pub fn boundaries(&self) -> u64 {
        self.crossed.get()
    }

    /// Reset the crossing counter (keeps the armed index).
    pub fn reset(&self) {
        self.crossed.set(0);
    }

    fn check(&self, point: CommitPoint) -> Result<(), PersistError> {
        let i = self.crossed.get();
        self.crossed.set(i + 1);
        if self.armed.get() == Some(i) {
            return Err(PersistError::Killed(point));
        }
        Ok(())
    }
}

// ----------------------------------------------------------- envelope --

/// Wrap `payload` in the versioned, checksummed on-disk envelope.
fn seal(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + payload.len());
    v.push(b'M');
    v.push(b'H');
    v.push(tag);
    v.push(VERSION);
    v.extend_from_slice(&crc32(payload).to_le_bytes());
    v.extend_from_slice(payload);
    v
}

/// Validate an envelope read back for `key` and return its payload.
fn unseal<'a>(key: &[u8], tag: u8, raw: &'a [u8]) -> Result<&'a [u8], PersistError> {
    if raw.len() < 8 {
        return Err(corrupt(key, format!("envelope is {} bytes, header needs 8", raw.len())));
    }
    if raw[0] != b'M' || raw[1] != b'H' {
        return Err(corrupt(key, "bad envelope magic"));
    }
    if raw[2] != tag {
        return Err(corrupt(key, format!("tag {:?}, expected {:?}", raw[2] as char, tag as char)));
    }
    if raw[3] != VERSION {
        return Err(PersistError::VersionMismatch {
            key: key_name(key),
            found: raw[3],
            expected: VERSION,
        });
    }
    let crc = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
    let payload = &raw[8..];
    if crc32(payload) != crc {
        return Err(corrupt(key, "payload CRC mismatch"));
    }
    Ok(payload)
}

fn le_u32(b: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(..4)?.try_into().ok()?))
}

fn le_u64(b: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(..8)?.try_into().ok()?))
}

// ---------------------------------------------------------------- keys --
//
// Every pipeline key optionally carries a tenant namespace prefix
// `t<ns-le32>:`. Namespace 0 (the legacy / single-tenant namespace)
// writes the pre-tenancy key bytes verbatim, so stores written before
// tenancy existed keep loading unchanged, and a tenant-0 store stays
// byte-identical to a legacy one. No legacy key starts with `t`, so the
// namespaces can never collide with the flat key space.

fn ns_prefix(ns: u32) -> Vec<u8> {
    if ns == 0 {
        return Vec::new();
    }
    let mut k = Vec::with_capacity(6);
    k.push(b't');
    k.extend_from_slice(&ns.to_le_bytes());
    k.push(b':');
    k
}

fn commit_key(ns: u32) -> Vec<u8> {
    let mut k = ns_prefix(ns);
    k.extend_from_slice(COMMIT_KEY);
    k
}

fn drt_gen_prefix(ns: u32, gen: u64) -> Vec<u8> {
    let mut k = ns_prefix(ns);
    k.extend_from_slice(b"pdrt:");
    k.extend_from_slice(&gen.to_le_bytes());
    k.push(b':');
    k
}

fn drt_entry_key(ns: u32, gen: u64, o_file: FileId, o_offset: u64) -> Vec<u8> {
    let mut k = drt_gen_prefix(ns, gen);
    k.extend_from_slice(&o_file.0.to_le_bytes());
    k.extend_from_slice(&o_offset.to_le_bytes());
    k
}

fn rst_gen_prefix(ns: u32, gen: u64) -> Vec<u8> {
    let mut k = ns_prefix(ns);
    k.extend_from_slice(b"prst:");
    k.extend_from_slice(&gen.to_le_bytes());
    k.push(b':');
    k
}

fn rst_entry_key(ns: u32, gen: u64, file: FileId) -> Vec<u8> {
    let mut k = rst_gen_prefix(ns, gen);
    k.extend_from_slice(&file.0.to_le_bytes());
    k
}

fn meta_key(ns: u32, gen: u64) -> Vec<u8> {
    let mut k = ns_prefix(ns);
    k.extend_from_slice(b"pmeta:");
    k.extend_from_slice(&gen.to_le_bytes());
    k
}

fn table_prefix(ns: u32, table: &[u8]) -> Vec<u8> {
    let mut k = ns_prefix(ns);
    k.extend_from_slice(table);
    k
}

fn fault_key(name: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(6 + name.len());
    k.extend_from_slice(b"fault:");
    k.extend_from_slice(name.as_bytes());
    k
}

fn journal_key(ns: u32, batch: u32, idx: u32) -> Vec<u8> {
    let mut k = ns_prefix(ns);
    k.extend_from_slice(b"mig:");
    k.extend_from_slice(&batch.to_le_bytes());
    k.push(b':');
    k.extend_from_slice(&idx.to_le_bytes());
    k
}

fn journal_commit_key(ns: u32, batch: u32) -> Vec<u8> {
    let mut k = ns_prefix(ns);
    k.extend_from_slice(b"migc:");
    k.extend_from_slice(&batch.to_le_bytes());
    k
}

/// Journal payload: the full 32-byte entry, little-endian fields.
fn entry_bytes(e: &DrtEntry) -> [u8; 32] {
    let mut b = [0u8; 32];
    b[..4].copy_from_slice(&e.o_file.0.to_le_bytes());
    b[4..12].copy_from_slice(&e.o_offset.to_le_bytes());
    b[12..16].copy_from_slice(&e.r_file.0.to_le_bytes());
    b[16..24].copy_from_slice(&e.r_offset.to_le_bytes());
    b[24..32].copy_from_slice(&e.length.to_le_bytes());
    b
}

fn entry_from_bytes(key: &[u8], v: &[u8]) -> Result<DrtEntry, PersistError> {
    if v.len() != 32 {
        return Err(corrupt(key, format!("journal entry is {} bytes, expected 32", v.len())));
    }
    Ok(DrtEntry {
        o_file: FileId(le_u32(&v[..4]).expect("4 bytes")),
        o_offset: le_u64(&v[4..12]).expect("8 bytes"),
        r_file: FileId(le_u32(&v[12..16]).expect("4 bytes")),
        r_offset: le_u64(&v[16..24]).expect("8 bytes"),
        length: le_u64(&v[24..32]).expect("8 bytes"),
    })
}

// ------------------------------------------------------ pipeline store --

/// Serializable slice of a [`Plan`]: everything but the tables, which
/// have their own binary per-entry records (their `BTreeMap` keys are
/// not JSON-representable, and per-entry records are what makes partial
/// reads detectable).
#[derive(Serialize, Deserialize)]
struct PlanMeta {
    scheme: Scheme,
    layouts: Vec<(FileId, LayoutSpec)>,
    regions: Vec<crate::region::RegionInfo>,
    has_drt: bool,
}

/// The committed-generation record.
struct Committed {
    gen: u64,
    drt_count: u64,
    rst_count: u64,
    has_meta: bool,
}

/// One journaled migration batch, as read back by [`PipelineStore::journal`].
#[derive(Debug, Clone)]
pub struct JournalBatch {
    /// Batch index within the interrupted migration.
    pub batch: u32,
    /// Whether the batch's commit record exists (movement completed).
    pub committed: bool,
    /// The DRT entries the batch intended to publish.
    pub entries: Vec<DrtEntry>,
}

/// Crash-consistent store for the pipeline's durable state: DRT, RST,
/// planner outputs, fault plans, and the migration journal.
///
/// All writes go through a single kvstore WAL, so intra-file ordering is
/// physical: a commit record can only survive a crash if everything
/// written before it survived too (the store truncates torn tails on
/// open). Saves are therefore atomic at the commit record, and the
/// journal's intent→move→commit discipline gives migration its
/// write-ahead invariant.
pub struct PipelineStore {
    store: Store,
    kill: KillSwitch,
}

impl PipelineStore {
    /// Open (or create) the pipeline store at `path`, recovering the log
    /// (torn tails are truncated by the kvstore layer).
    ///
    /// Writes are buffered; every commit record is followed by an
    /// explicit fsync, which is the only durability point the
    /// crash-consistency argument relies on.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let store =
            Store::open(path, StoreOptions { sync_on_write: false, ..StoreOptions::default() })?;
        Ok(PipelineStore { store, kill: KillSwitch::new() })
    }

    /// The crash injector for this store (disarmed by default).
    pub fn kill_switch(&self) -> &KillSwitch {
        &self.kill
    }

    /// The underlying kvstore, for diagnostics and tests.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Flush buffered writes to disk.
    pub fn sync(&self) -> Result<(), PersistError> {
        self.store.sync()?;
        Ok(())
    }

    /// The view of `tenant`'s namespace within this store. Tenant 0 is
    /// the legacy namespace: its view reads and writes exactly the keys
    /// the un-namespaced methods on `PipelineStore` do.
    pub fn tenant(&self, tenant: TenantId) -> TenantStore<'_> {
        TenantStore { store: self, ns: tenant.0 }
    }

    // ------------------------------------------------------ generations --

    fn committed(&self, ns: u32) -> Result<Option<Committed>, PersistError> {
        let ck = commit_key(ns);
        let Some(raw) = self.store.get(&ck)? else { return Ok(None) };
        let payload = unseal(&ck, TAG_COMMIT, &raw)?;
        if payload.len() != 25 {
            return Err(corrupt(&ck, format!("commit record is {} bytes", payload.len())));
        }
        Ok(Some(Committed {
            gen: le_u64(&payload[..8]).expect("8 bytes"),
            drt_count: le_u64(&payload[8..16]).expect("8 bytes"),
            rst_count: le_u64(&payload[16..24]).expect("8 bytes"),
            has_meta: payload[24] != 0,
        }))
    }

    /// Generation the commit record points at, if any save ever committed.
    pub fn committed_generation(&self) -> Result<Option<u64>, PersistError> {
        Ok(self.committed(0)?.map(|c| c.gen))
    }

    /// First generation index with no records at all: past the committed
    /// generation *and* past any half-written generation a crash left
    /// behind, so a new save never mixes records with a dead one.
    fn next_generation(&self, ns: u32) -> Result<u64, PersistError> {
        let mut max = self.committed(ns)?.map(|c| c.gen);
        for table in [&b"pdrt:"[..], b"prst:", b"pmeta:"] {
            let prefix = table_prefix(ns, table);
            for key in self.store.keys_with_prefix(&prefix) {
                if let Some(g) = le_u64(&key[prefix.len()..]) {
                    max = Some(max.map_or(g, |m: u64| m.max(g)));
                }
            }
        }
        Ok(max.map_or(0, |g| g + 1))
    }

    fn save_generation(
        &self,
        ns: u32,
        drt: &Drt,
        rst: &Rst,
        meta_json: Option<&[u8]>,
    ) -> Result<u64, PersistError> {
        let gen = self.next_generation(ns)?;
        for e in drt.entries() {
            self.kill.check(CommitPoint::TableEntry)?;
            self.store
                .put(&drt_entry_key(ns, gen, e.o_file, e.o_offset), &seal(TAG_DRT, &Drt::value(&e)))?;
        }
        for (file, pair) in rst.iter() {
            self.kill.check(CommitPoint::TableEntry)?;
            self.store.put(&rst_entry_key(ns, gen, file), &seal(TAG_RST, &Rst::pair_value(pair)))?;
        }
        if let Some(json) = meta_json {
            self.kill.check(CommitPoint::TableEntry)?;
            self.store.put(&meta_key(ns, gen), &seal(TAG_META, json))?;
        }
        self.kill.check(CommitPoint::TableCommit)?;
        let mut payload = Vec::with_capacity(25);
        payload.extend_from_slice(&gen.to_le_bytes());
        payload.extend_from_slice(&(drt.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(rst.len() as u64).to_le_bytes());
        payload.push(u8::from(meta_json.is_some()));
        self.store.put(&commit_key(ns), &seal(TAG_COMMIT, &payload))?;
        self.store.sync()?;
        Ok(gen)
    }

    fn save_plan_ns(&self, ns: u32, plan: &Plan) -> Result<u64, PersistError> {
        let empty = Drt::new();
        let (drt, has_drt) = match &plan.resolver {
            PlanResolver::Drt(d) => (d, true),
            PlanResolver::Identity => (&empty, false),
        };
        let meta = PlanMeta {
            scheme: plan.scheme,
            layouts: plan.layouts.clone(),
            regions: plan.regions.clone(),
            has_drt,
        };
        let json = serde_json::to_vec(&meta).map_err(|e| PersistError::Encode(e.to_string()))?;
        self.save_generation(ns, drt, &plan.rst, Some(&json))
    }

    /// Atomically commit a new generation holding `drt` and `rst`.
    /// Returns the committed generation index. A crash at any point
    /// before the commit record leaves the previous generation intact.
    pub fn save_tables(&self, drt: &Drt, rst: &Rst) -> Result<u64, PersistError> {
        self.save_generation(0, drt, rst, None)
    }

    /// Atomically commit a new generation holding a whole planner output:
    /// its tables plus scheme, layouts and region descriptors.
    pub fn save_plan(&self, plan: &Plan) -> Result<u64, PersistError> {
        self.save_plan_ns(0, plan)
    }

    /// Load the committed generation's tables, verifying every envelope
    /// and the committed entry counts. `Ok(None)` when nothing has ever
    /// committed; a structured error when anything on disk is damaged.
    pub fn load_tables(&self) -> Result<Option<(Drt, Rst)>, PersistError> {
        self.load_tables_ns(0)
    }

    fn load_tables_ns(&self, ns: u32) -> Result<Option<(Drt, Rst)>, PersistError> {
        let Some(c) = self.committed(ns)? else { return Ok(None) };
        Ok(Some(self.tables_at(ns, &c)?))
    }

    fn tables_at(&self, ns: u32, c: &Committed) -> Result<(Drt, Rst), PersistError> {
        let mut drt = Drt::new();
        let dp = drt_gen_prefix(ns, c.gen);
        let mut n = 0u64;
        for key in self.store.keys_with_prefix(&dp) {
            let rest = &key[dp.len()..];
            if rest.len() != 12 {
                return Err(corrupt(&key, "malformed DRT entry key"));
            }
            let o_file = FileId(le_u32(&rest[..4]).expect("4 bytes"));
            let o_offset = le_u64(&rest[4..]).expect("8 bytes");
            let raw = self
                .store
                .get(&key)?
                .ok_or_else(|| PersistError::Missing { key: key_name(&key) })?;
            let payload = unseal(&key, TAG_DRT, &raw)?;
            let (length, r_file, r_offset) = Drt::decode_value(payload)
                .ok_or_else(|| corrupt(&key, "malformed DRT entry value"))?;
            if !drt.insert(DrtEntry { o_file, o_offset, r_file, r_offset, length }) {
                return Err(corrupt(&key, "overlaps another committed DRT entry"));
            }
            n += 1;
        }
        if n != c.drt_count {
            return Err(corrupt(
                &commit_key(ns),
                format!("{} DRT entries on disk, commit record expects {}", n, c.drt_count),
            ));
        }
        let mut rst = Rst::new();
        let rp = rst_gen_prefix(ns, c.gen);
        let mut m = 0u64;
        for key in self.store.keys_with_prefix(&rp) {
            let rest = &key[rp.len()..];
            if rest.len() != 4 {
                return Err(corrupt(&key, "malformed RST entry key"));
            }
            let file = FileId(le_u32(rest).expect("4 bytes"));
            let raw = self
                .store
                .get(&key)?
                .ok_or_else(|| PersistError::Missing { key: key_name(&key) })?;
            let payload = unseal(&key, TAG_RST, &raw)?;
            let pair = Rst::decode_pair(payload)
                .ok_or_else(|| corrupt(&key, "malformed RST entry value"))?;
            rst.set(file, pair);
            m += 1;
        }
        if m != c.rst_count {
            return Err(corrupt(
                &commit_key(ns),
                format!("{} RST entries on disk, commit record expects {}", m, c.rst_count),
            ));
        }
        Ok((drt, rst))
    }

    /// Load the committed plan, if the committed generation was written
    /// by [`PipelineStore::save_plan`] (table-only generations return
    /// `Ok(None)`).
    pub fn load_plan(&self) -> Result<Option<Plan>, PersistError> {
        self.load_plan_ns(0)
    }

    fn load_plan_ns(&self, ns: u32) -> Result<Option<Plan>, PersistError> {
        let Some(c) = self.committed(ns)? else { return Ok(None) };
        if !c.has_meta {
            return Ok(None);
        }
        let (drt, rst) = self.tables_at(ns, &c)?;
        let mk = meta_key(ns, c.gen);
        let raw =
            self.store.get(&mk)?.ok_or_else(|| PersistError::Missing { key: key_name(&mk) })?;
        let payload = unseal(&mk, TAG_META, &raw)?;
        let meta: PlanMeta = serde_json::from_slice(payload)
            .map_err(|e| corrupt(&mk, format!("plan metadata JSON: {e}")))?;
        let resolver =
            if meta.has_drt { PlanResolver::Drt(drt) } else { PlanResolver::Identity };
        Ok(Some(Plan {
            scheme: meta.scheme,
            layouts: meta.layouts,
            resolver,
            rst,
            regions: meta.regions,
        }))
    }

    /// Raw (validated) plan-metadata JSON of the committed generation,
    /// so recovery can carry it into the generation it commits.
    fn committed_meta_raw(&self, ns: u32) -> Result<Option<Vec<u8>>, PersistError> {
        let Some(c) = self.committed(ns)? else { return Ok(None) };
        if !c.has_meta {
            return Ok(None);
        }
        let mk = meta_key(ns, c.gen);
        let raw =
            self.store.get(&mk)?.ok_or_else(|| PersistError::Missing { key: key_name(&mk) })?;
        Ok(Some(unseal(&mk, TAG_META, &raw)?.to_vec()))
    }

    fn gc_ns(&self, ns: u32) -> Result<(), PersistError> {
        let committed = self.committed(ns)?.map(|c| c.gen);
        for table in [&b"pdrt:"[..], b"prst:", b"pmeta:"] {
            let prefix = table_prefix(ns, table);
            for key in self.store.keys_with_prefix(&prefix) {
                if le_u64(&key[prefix.len()..]) != committed {
                    self.store.delete(&key)?;
                }
            }
        }
        self.store.compact()?;
        Ok(())
    }

    /// Drop every record of non-committed generations and compact the
    /// log (old generations, dead journal tombstones, superseded puts).
    /// Namespace-0 only; use [`TenantStore::gc`] for a tenant's view.
    pub fn gc(&self) -> Result<(), PersistError> {
        self.gc_ns(0)
    }

    // ------------------------------------------------------ fault plans --

    /// Persist a named [`FaultPlan`] (scenario library for degraded-mode
    /// experiments). Overwrites a previous plan of the same name.
    pub fn save_fault_plan(&self, name: &str, plan: &FaultPlan) -> Result<(), PersistError> {
        let json = serde_json::to_vec(plan).map_err(|e| PersistError::Encode(e.to_string()))?;
        self.kill.check(CommitPoint::TableEntry)?;
        self.store.put(&fault_key(name), &seal(TAG_FAULT, &json))?;
        self.store.sync()?;
        Ok(())
    }

    /// Load a named [`FaultPlan`], validating its envelope.
    pub fn load_fault_plan(&self, name: &str) -> Result<Option<FaultPlan>, PersistError> {
        let k = fault_key(name);
        let Some(raw) = self.store.get(&k)? else { return Ok(None) };
        let payload = unseal(&k, TAG_FAULT, &raw)?;
        let plan = serde_json::from_slice(payload)
            .map_err(|e| corrupt(&k, format!("fault plan JSON: {e}")))?;
        Ok(Some(plan))
    }

    // ---------------------------------------------------------- journal --

    fn journal_batch_ns(&self, ns: u32, batch: u32, entries: &[DrtEntry]) -> Result<(), PersistError> {
        for (i, e) in entries.iter().enumerate() {
            self.kill.check(CommitPoint::BatchIntent)?;
            self.store
                .put(&journal_key(ns, batch, i as u32), &seal(TAG_JOURNAL, &entry_bytes(e)))?;
        }
        Ok(())
    }

    /// Journal a migration batch's intended DRT entries *before* any
    /// data moves (the write-ahead half of the invariant).
    pub fn journal_batch(&self, batch: u32, entries: &[DrtEntry]) -> Result<(), PersistError> {
        self.journal_batch_ns(0, batch, entries)
    }

    fn commit_batch_ns(&self, ns: u32, batch: u32) -> Result<(), PersistError> {
        self.kill.check(CommitPoint::BatchCommit)?;
        self.store.put(&journal_commit_key(ns, batch), &seal(TAG_COMMIT, &[]))?;
        self.store.sync()?;
        Ok(())
    }

    /// Mark `batch` moved: written only after the batch's migration
    /// traffic completed, and synced so the commit is durable. From this
    /// record on, recovery rolls the batch forward instead of
    /// discarding it.
    pub fn commit_batch(&self, batch: u32) -> Result<(), PersistError> {
        self.commit_batch_ns(0, batch)
    }

    fn journal_ns(&self, ns: u32) -> Result<Vec<JournalBatch>, PersistError> {
        let mut batches: std::collections::BTreeMap<u32, Vec<(u32, DrtEntry)>> =
            std::collections::BTreeMap::new();
        let prefix = table_prefix(ns, b"mig:");
        for key in self.store.keys_with_prefix(&prefix) {
            let rest = &key[prefix.len()..];
            if rest.len() != 9 || rest[4] != b':' {
                return Err(corrupt(&key, "malformed journal key"));
            }
            let batch = le_u32(&rest[..4]).expect("4 bytes");
            let idx = le_u32(&rest[5..]).expect("4 bytes");
            let raw = self
                .store
                .get(&key)?
                .ok_or_else(|| PersistError::Missing { key: key_name(&key) })?;
            let payload = unseal(&key, TAG_JOURNAL, &raw)?;
            batches.entry(batch).or_default().push((idx, entry_from_bytes(&key, payload)?));
        }
        let mut out = Vec::with_capacity(batches.len());
        for (batch, mut v) in batches {
            v.sort_by_key(|(i, _)| *i);
            let ck = journal_commit_key(ns, batch);
            let committed = match self.store.get(&ck)? {
                Some(raw) => {
                    unseal(&ck, TAG_COMMIT, &raw)?;
                    true
                }
                None => false,
            };
            out.push(JournalBatch {
                batch,
                committed,
                entries: v.into_iter().map(|(_, e)| e).collect(),
            });
        }
        Ok(out)
    }

    /// Read the journal back: every batch with intent records, in batch
    /// order, with its committed flag.
    pub fn journal(&self) -> Result<Vec<JournalBatch>, PersistError> {
        self.journal_ns(0)
    }

    fn clear_journal_ns(&self, ns: u32) -> Result<(), PersistError> {
        self.kill.check(CommitPoint::JournalClear)?;
        for key in self.store.keys_with_prefix(&table_prefix(ns, b"mig:")) {
            self.store.delete(&key)?;
        }
        for key in self.store.keys_with_prefix(&table_prefix(ns, b"migc:")) {
            self.store.delete(&key)?;
        }
        self.store.sync()?;
        Ok(())
    }

    /// Delete every journal record (intents first, then commit markers:
    /// a crash mid-clear leaves either already-published committed
    /// batches or intent-less markers, both of which recovery ignores
    /// or re-skips harmlessly).
    pub fn clear_journal(&self) -> Result<(), PersistError> {
        self.clear_journal_ns(0)
    }
}

// ------------------------------------------------------- tenant views --

/// One tenant's namespaced view of a shared [`PipelineStore`]: the same
/// generation/journal machinery, with every key living under the
/// tenant's prefix. Namespace 0 reads and writes the legacy flat keys,
/// so `store.tenant(TenantId(0))` is interchangeable with the direct
/// `PipelineStore` methods byte for byte.
///
/// Obtained from [`PipelineStore::tenant`]; the borrow keeps every
/// tenant view on the same WAL, so cross-tenant write ordering is still
/// physical and one fsync covers all tenants.
#[derive(Clone, Copy)]
pub struct TenantStore<'a> {
    store: &'a PipelineStore,
    ns: u32,
}

impl TenantStore<'_> {
    /// The tenant this view belongs to.
    pub fn tenant(&self) -> TenantId {
        TenantId(self.ns)
    }

    /// Generation the tenant's commit record points at, if any.
    pub fn committed_generation(&self) -> Result<Option<u64>, PersistError> {
        Ok(self.store.committed(self.ns)?.map(|c| c.gen))
    }

    /// Atomically commit a new generation of this tenant's tables
    /// (see [`PipelineStore::save_tables`]).
    pub fn save_tables(&self, drt: &Drt, rst: &Rst) -> Result<u64, PersistError> {
        self.store.save_generation(self.ns, drt, rst, None)
    }

    /// Atomically commit a whole planner output for this tenant
    /// (see [`PipelineStore::save_plan`]).
    pub fn save_plan(&self, plan: &Plan) -> Result<u64, PersistError> {
        self.store.save_plan_ns(self.ns, plan)
    }

    /// Load this tenant's committed tables
    /// (see [`PipelineStore::load_tables`]).
    pub fn load_tables(&self) -> Result<Option<(Drt, Rst)>, PersistError> {
        self.store.load_tables_ns(self.ns)
    }

    /// Load this tenant's committed plan
    /// (see [`PipelineStore::load_plan`]).
    pub fn load_plan(&self) -> Result<Option<Plan>, PersistError> {
        self.store.load_plan_ns(self.ns)
    }

    /// Journal a migration batch intent in this tenant's journal
    /// (see [`PipelineStore::journal_batch`]).
    pub fn journal_batch(&self, batch: u32, entries: &[DrtEntry]) -> Result<(), PersistError> {
        self.store.journal_batch_ns(self.ns, batch, entries)
    }

    /// Commit a journaled batch (see [`PipelineStore::commit_batch`]).
    pub fn commit_batch(&self, batch: u32) -> Result<(), PersistError> {
        self.store.commit_batch_ns(self.ns, batch)
    }

    /// Read this tenant's journal (see [`PipelineStore::journal`]).
    pub fn journal(&self) -> Result<Vec<JournalBatch>, PersistError> {
        self.store.journal_ns(self.ns)
    }

    /// Clear this tenant's journal (see [`PipelineStore::clear_journal`]).
    pub fn clear_journal(&self) -> Result<(), PersistError> {
        self.store.clear_journal_ns(self.ns)
    }

    /// Drop this tenant's non-committed generations and compact the log.
    pub fn gc(&self) -> Result<(), PersistError> {
        self.store.gc_ns(self.ns)
    }
}

// ----------------------------------------------------------- recovery --

/// What [`recover`] found and did.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The post-recovery tables (`None` when nothing ever committed).
    pub tables: Option<(Drt, Rst)>,
    /// DRT entries re-published from committed journal batches.
    pub rolled_forward: usize,
    /// Journal batches discarded because their commit record is absent.
    pub discarded_batches: usize,
}

/// Bring a reopened [`PipelineStore`] to a consistent state.
///
/// * No journal → nothing to do; the committed generation (if any) *is*
///   the state.
/// * Journal but no committed generation → the crash predates the base
///   save the journal refers to; the journal is discarded wholesale.
/// * Otherwise every **committed** batch's entries are published into
///   the committed DRT (skipping entries the final save already
///   published) and **uncommitted** batches are discarded — their data
///   never finished moving, and the old mapping still resolves to valid
///   bytes because migration copies rather than destroys.
///
/// A rolled-forward state is committed as a fresh generation before the
/// journal is cleared, so a crash *during* recovery just recovers again.
/// Recovering an already-recovered store is a no-op: the journal is
/// empty, nothing rolls forward — recovery is idempotent.
pub fn recover(store: &PipelineStore) -> Result<RecoveryOutcome, PersistError> {
    recover_ns(store, 0)
}

/// [`recover`] for one tenant's namespace of a shared store. Tenants
/// recover independently: rolling tenant A forward never reads or
/// clears tenant B's journal, so a service restart can recover each
/// registered tenant in any order (and skip tenants it no longer
/// serves) without cross-contamination. `recover_tenant(s, TenantId(0))`
/// is exactly [`recover`].
pub fn recover_tenant(
    store: &PipelineStore,
    tenant: TenantId,
) -> Result<RecoveryOutcome, PersistError> {
    recover_ns(store, tenant.0)
}

fn recover_ns(store: &PipelineStore, ns: u32) -> Result<RecoveryOutcome, PersistError> {
    let journal = store.journal_ns(ns)?;
    if journal.is_empty() {
        return Ok(RecoveryOutcome {
            tables: store.load_tables_ns(ns)?,
            rolled_forward: 0,
            discarded_batches: 0,
        });
    }
    let Some((mut drt, rst)) = store.load_tables_ns(ns)? else {
        let discarded = journal.len();
        store.clear_journal_ns(ns)?;
        return Ok(RecoveryOutcome { tables: None, rolled_forward: 0, discarded_batches: discarded });
    };
    let mut rolled = 0usize;
    let mut discarded = 0usize;
    for batch in &journal {
        if !batch.committed {
            discarded += 1;
            continue;
        }
        for e in &batch.entries {
            if drt.lookup_exact(e.o_file, e.o_offset, e.length) == Some((e.r_file, e.r_offset)) {
                continue; // already published by the final save
            }
            if drt.insert(*e) {
                rolled += 1;
            }
            // A rejected insert means a later committed state already
            // covers these bytes differently; the journal record is
            // stale and the committed mapping wins.
        }
    }
    if rolled > 0 {
        let meta = store.committed_meta_raw(ns)?;
        store.save_generation(ns, &drt, &rst, meta.as_deref())?;
    }
    store.clear_journal_ns(ns)?;
    Ok(RecoveryOutcome { tables: Some((drt, rst)), rolled_forward: rolled, discarded_batches: discarded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rssd::StripePair;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("mha-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    /// Plan and fault-plan payloads are JSON-encoded; offline builds
    /// link a typecheck-only serde_json stand-in whose encoder errors
    /// at runtime. Tests exercising those paths skip themselves when
    /// the codec is a stub (they run in full against real serde_json).
    fn json_codec_available() -> bool {
        serde_json::to_vec(&0u32).is_ok()
    }

    fn entry(off: u64, r_file: u32, r_off: u64) -> DrtEntry {
        DrtEntry {
            o_file: FileId(0),
            o_offset: off,
            r_file: FileId(r_file),
            r_offset: r_off,
            length: 4096,
        }
    }

    fn sample_tables() -> (Drt, Rst) {
        let mut drt = Drt::new();
        for i in 0..6u64 {
            assert!(drt.insert(entry(i * 8192, 70_000, i * 4096)));
        }
        let mut rst = Rst::new();
        rst.set(FileId(70_000), StripePair { h: 0, s: 64 << 10 });
        rst.set(FileId(70_001), StripePair { h: 128 << 10, s: 512 << 10 });
        (drt, rst)
    }

    fn sample_plan() -> Plan {
        let (drt, rst) = sample_tables();
        Plan {
            scheme: Scheme::Mha,
            layouts: vec![(
                FileId(70_000),
                LayoutSpec::fixed(&[pfs_sim::ServerId(0), pfs_sim::ServerId(1)], 64 << 10),
            )],
            resolver: PlanResolver::Drt(drt),
            rst,
            regions: vec![crate::region::RegionInfo {
                file: FileId(70_000),
                len: 6 * 4096,
                group: 0,
                extents: 6,
            }],
        }
    }

    #[test]
    fn tables_round_trip_through_a_committed_generation() {
        let path = tmp_path("tables-rt");
        let (drt, rst) = sample_tables();
        {
            let store = PipelineStore::open(&path).expect("open");
            assert!(store.load_tables().expect("empty load").is_none());
            let g0 = store.save_tables(&drt, &rst).expect("save");
            assert_eq!(g0, 0);
            let g1 = store.save_tables(&drt, &rst).expect("save again");
            assert_eq!(g1, 1, "each save commits a fresh generation");
        }
        let store = PipelineStore::open(&path).expect("reopen");
        let (d, r) = store.load_tables().expect("load").expect("committed");
        assert_eq!(d, drt);
        assert_eq!(r, rst);
        store.gc().expect("gc");
        let (d, r) = store.load_tables().expect("load after gc").expect("committed");
        assert_eq!((d, r), (drt, rst));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn plan_round_trip_preserves_everything() {
        if !json_codec_available() {
            eprintln!("skipped: JSON codec is the offline stub");
            return;
        }
        let path = tmp_path("plan-rt");
        let plan = sample_plan();
        {
            let store = PipelineStore::open(&path).expect("open");
            store.save_plan(&plan).expect("save plan");
        }
        let store = PipelineStore::open(&path).expect("reopen");
        let loaded = store.load_plan().expect("load").expect("committed plan");
        assert_eq!(loaded.scheme, plan.scheme);
        assert_eq!(loaded.layouts, plan.layouts);
        assert_eq!(loaded.rst, plan.rst);
        assert_eq!(loaded.regions.len(), plan.regions.len());
        let (PlanResolver::Drt(got), PlanResolver::Drt(want)) =
            (&loaded.resolver, &plan.resolver)
        else {
            panic!("both plans must carry DRTs")
        };
        assert_eq!(got, want);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn identity_plan_round_trips_without_a_drt() {
        if !json_codec_available() {
            eprintln!("skipped: JSON codec is the offline stub");
            return;
        }
        let path = tmp_path("identity-rt");
        let plan = Plan {
            scheme: Scheme::Def,
            layouts: Vec::new(),
            resolver: PlanResolver::Identity,
            rst: Rst::new(),
            regions: Vec::new(),
        };
        let store = PipelineStore::open(&path).expect("open");
        store.save_plan(&plan).expect("save");
        let loaded = store.load_plan().expect("load").expect("committed");
        assert!(matches!(loaded.resolver, PlanResolver::Identity));
        assert_eq!(loaded.scheme, Scheme::Def);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fault_plans_round_trip_by_name() {
        if !json_codec_available() {
            eprintln!("skipped: JSON codec is the offline stub");
            return;
        }
        let path = tmp_path("fault-rt");
        let store = PipelineStore::open(&path).expect("open");
        let plan = FaultPlan::none().slow_server(6, 8.0);
        store.save_fault_plan("straggler", &plan).expect("save");
        let loaded = store.load_fault_plan("straggler").expect("load").expect("present");
        assert_eq!(
            serde_json::to_string(&loaded).expect("json"),
            serde_json::to_string(&plan).expect("json")
        );
        assert!(store.load_fault_plan("absent").expect("load").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tampered_value_is_rejected_with_a_structured_error() {
        let path = tmp_path("tamper");
        let (drt, rst) = sample_tables();
        let store = PipelineStore::open(&path).expect("open");
        store.save_tables(&drt, &rst).expect("save");
        // Flip one payload bit of a committed DRT record, in place.
        let gen = store.committed_generation().expect("gen").expect("committed");
        let key = drt_entry_key(0, gen, FileId(0), 0);
        let mut raw = store.store().get(&key).expect("get").expect("present");
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        store.store().put(&key, &raw).expect("tamper");
        match store.load_tables() {
            Err(PersistError::Corrupt { key, reason }) => {
                assert!(reason.contains("CRC"), "reason: {reason}");
                assert!(key.contains("pdrt"), "key: {key}");
            }
            other => panic!("tampering must surface as Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn future_version_is_rejected_as_version_mismatch() {
        let path = tmp_path("version");
        let (drt, rst) = sample_tables();
        let store = PipelineStore::open(&path).expect("open");
        store.save_tables(&drt, &rst).expect("save");
        let gen = store.committed_generation().expect("gen").expect("committed");
        let key = drt_entry_key(0, gen, FileId(0), 0);
        let mut raw = store.store().get(&key).expect("get").expect("present");
        raw[3] = VERSION + 1;
        store.store().put(&key, &raw).expect("tamper");
        assert!(matches!(
            store.load_tables(),
            Err(PersistError::VersionMismatch { found, expected, .. })
                if found == VERSION + 1 && expected == VERSION
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_entry_under_a_committed_count_is_corrupt() {
        let path = tmp_path("count");
        let (drt, rst) = sample_tables();
        let store = PipelineStore::open(&path).expect("open");
        store.save_tables(&drt, &rst).expect("save");
        let gen = store.committed_generation().expect("gen").expect("committed");
        store.store().delete(&drt_entry_key(0, gen, FileId(0), 0)).expect("delete");
        assert!(
            matches!(store.load_tables(), Err(PersistError::Corrupt { .. })),
            "count mismatch must be corrupt, not a silently shorter table"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_matrix_over_save_plan_never_exposes_a_partial_generation() {
        if !json_codec_available() {
            eprintln!("skipped: JSON codec is the offline stub");
            return;
        }
        // Recording run: measure the boundary count of one save_plan on
        // top of an already-committed older generation.
        let plan = sample_plan();
        let (old_drt, old_rst) = {
            let mut d = Drt::new();
            assert!(d.insert(entry(1 << 30, 60_000, 0)));
            let mut r = Rst::new();
            r.set(FileId(60_000), StripePair { h: 64 << 10, s: 64 << 10 });
            (d, r)
        };
        let path = tmp_path("matrix-record");
        let boundaries = {
            let store = PipelineStore::open(&path).expect("open");
            store.save_tables(&old_drt, &old_rst).expect("base save");
            store.kill_switch().reset();
            store.save_plan(&plan).expect("recording save");
            store.kill_switch().boundaries()
        };
        let _ = std::fs::remove_file(&path);
        assert!(boundaries >= 10, "expected a real matrix, got {boundaries} boundaries");

        for k in 0..boundaries {
            let path = tmp_path(&format!("matrix-{k}"));
            {
                let store = PipelineStore::open(&path).expect("open");
                store.save_tables(&old_drt, &old_rst).expect("base save");
                store.kill_switch().reset();
                store.kill_switch().arm(k);
                match store.save_plan(&plan) {
                    Err(PersistError::Killed(_)) => {}
                    other => panic!("boundary {k}: expected Killed, got {other:?}"),
                }
            }
            // "Crash", reopen, recover: the store must resolve to the old
            // committed generation, never a mix.
            let store = PipelineStore::open(&path).expect("reopen");
            let out = recover(&store).expect("recover");
            let (d, r) = out.tables.expect("base generation still committed");
            assert_eq!(d, old_drt, "boundary {k}: DRT must be the old generation");
            assert_eq!(r, old_rst, "boundary {k}: RST must be the old generation");
            assert_eq!(out.rolled_forward, 0);
            // And a retried save on the recovered store works and wins.
            store.kill_switch().disarm();
            store.save_plan(&plan).expect("retry save");
            let loaded = store.load_plan().expect("load").expect("plan");
            assert_eq!(loaded.rst, plan.rst);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn journal_roll_forward_and_discard() {
        let path = tmp_path("journal");
        let store = PipelineStore::open(&path).expect("open");
        let (drt, rst) = sample_tables();
        store.save_tables(&drt, &rst).expect("base");
        // Batch 0 committed (moved), batch 1 only journaled (crash before
        // its movement finished).
        let committed = [entry(1 << 20, 70_001, 0), entry((1 << 20) + 8192, 70_001, 4096)];
        let uncommitted = [entry(1 << 21, 70_001, 8192)];
        store.journal_batch(0, &committed).expect("journal 0");
        store.commit_batch(0).expect("commit 0");
        store.journal_batch(1, &uncommitted).expect("journal 1");

        let out = recover(&store).expect("recover");
        assert_eq!(out.rolled_forward, 2);
        assert_eq!(out.discarded_batches, 1);
        let (d, _) = out.tables.expect("tables");
        for e in &committed {
            assert_eq!(
                d.lookup_exact(e.o_file, e.o_offset, e.length),
                Some((e.r_file, e.r_offset)),
                "committed batch must be rolled forward"
            );
        }
        for e in &uncommitted {
            assert_eq!(
                d.lookup_exact(e.o_file, e.o_offset, e.length),
                None,
                "uncommitted batch must be discarded"
            );
        }
        // Idempotence: recovering again changes nothing.
        let again = recover(&store).expect("recover again");
        assert_eq!(again.rolled_forward, 0);
        assert_eq!(again.discarded_batches, 0);
        assert_eq!(again.tables.expect("tables").0, d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_with_no_base_generation_is_discarded() {
        let path = tmp_path("orphan-journal");
        let store = PipelineStore::open(&path).expect("open");
        store.journal_batch(0, &[entry(0, 70_000, 0)]).expect("journal");
        store.commit_batch(0).expect("commit");
        let out = recover(&store).expect("recover");
        assert!(out.tables.is_none());
        assert_eq!(out.discarded_batches, 1);
        assert!(store.journal().expect("journal").is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_log_falls_back_to_an_older_committed_state() {
        let path = tmp_path("truncate");
        let (drt, rst) = sample_tables();
        let full_len = {
            let store = PipelineStore::open(&path).expect("open");
            store.save_tables(&drt, &rst).expect("save");
            std::fs::metadata(&path).expect("meta").len()
        };
        // Chop the file shorter and shorter: every prefix must open and
        // resolve to either the full tables (nothing essential lost) or
        // no committed state — never a partial or a panic.
        for cut in (0..full_len).step_by(7) {
            let store = PipelineStore::open(&path).expect("open full");
            drop(store);
            let f = std::fs::OpenOptions::new().write(true).open(&path).expect("open file");
            f.set_len(cut).expect("truncate");
            drop(f);
            let store = PipelineStore::open(&path).expect("open truncated");
            match store.load_tables() {
                Ok(None) => {}
                Ok(Some((d, r))) => {
                    assert_eq!((d, r), (drt.clone(), rst.clone()), "cut at {cut}");
                }
                Err(e) => panic!("truncation must be recovered, not error: {e} (cut {cut})"),
            }
            // Rewrite the full state for the next iteration.
            let _ = std::fs::remove_file(&path);
            let store = PipelineStore::open(&path).expect("reopen");
            store.save_tables(&drt, &rst).expect("resave");
        }
        let _ = std::fs::remove_file(&path);
    }

    fn tenant_tables(tag: u64) -> (Drt, Rst) {
        let mut drt = Drt::new();
        for i in 0..4u64 {
            assert!(drt.insert(DrtEntry {
                o_file: FileId(tag as u32),
                o_offset: i * 8192,
                r_file: FileId(80_000 + tag as u32),
                r_offset: i * 4096 + tag * 1_000_000,
                length: 4096,
            }));
        }
        let mut rst = Rst::new();
        rst.set(FileId(80_000 + tag as u32), StripePair { h: 0, s: (64 << 10) * (tag + 1) });
        (drt, rst)
    }

    #[test]
    fn tenant_zero_view_is_the_legacy_store_verbatim() {
        let path = tmp_path("tenant-zero");
        let store = PipelineStore::open(&path).expect("open");
        let (drt, rst) = sample_tables();
        // Written through the namespaced view, readable through the
        // legacy API (and vice versa): namespace 0 adds no prefix.
        let g = store.tenant(TenantId(0)).save_tables(&drt, &rst).expect("ns save");
        assert_eq!(store.committed_generation().expect("legacy gen"), Some(g));
        let (d, r) = store.load_tables().expect("legacy load").expect("committed");
        assert_eq!((d, r), (drt.clone(), rst.clone()));
        let g2 = store.save_tables(&drt, &rst).expect("legacy save");
        assert_eq!(store.tenant(TenantId(0)).committed_generation().expect("ns gen"), Some(g2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn co_tenants_on_one_store_never_observe_each_other() {
        let path = tmp_path("tenant-iso");
        let store = PipelineStore::open(&path).expect("open");
        let (d0, r0) = sample_tables();
        store.save_tables(&d0, &r0).expect("legacy save");
        for t in 1..=3u32 {
            let (d, r) = tenant_tables(u64::from(t));
            store.tenant(TenantId(t)).save_tables(&d, &r).expect("tenant save");
        }
        // Each view loads exactly what it saved.
        let (ld, lr) = store.load_tables().expect("legacy").expect("committed");
        assert_eq!((ld, lr), (d0, r0));
        for t in 1..=3u32 {
            let (d, r) = tenant_tables(u64::from(t));
            let (td, tr) = store.tenant(TenantId(t)).load_tables().expect("load").expect("committed");
            assert_eq!((td, tr), (d, r), "tenant {t} sees foreign tables");
        }
        // Re-saving one tenant advances only that tenant's generation.
        let before: Vec<_> = (0..=3u32)
            .map(|t| store.tenant(TenantId(t)).committed_generation().unwrap())
            .collect();
        let (d2, r2) = tenant_tables(2);
        store.tenant(TenantId(2)).save_tables(&d2, &r2).expect("resave");
        for t in 0..=3u32 {
            let now = store.tenant(TenantId(t)).committed_generation().unwrap();
            if t == 2 {
                assert_eq!(now, before[t as usize].map(|g| g + 1));
            } else {
                assert_eq!(now, before[t as usize], "tenant {t}'s generation moved");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_tenant_rolls_forward_and_discards_per_namespace_only() {
        let path = tmp_path("tenant-recover");
        let store = PipelineStore::open(&path).expect("open");
        for t in 1..=2u32 {
            let (d, r) = tenant_tables(u64::from(t));
            store.tenant(TenantId(t)).save_tables(&d, &r).expect("save");
        }
        // Tenant 1: a committed journal batch recovery must roll forward.
        let extra1 = DrtEntry {
            o_file: FileId(1),
            o_offset: 1 << 30,
            r_file: FileId(80_001),
            r_offset: 1 << 30,
            length: 4096,
        };
        let t1 = store.tenant(TenantId(1));
        t1.journal_batch(0, std::slice::from_ref(&extra1)).expect("journal");
        t1.commit_batch(0).expect("commit");
        // Tenant 2: an uncommitted batch recovery must discard.
        let extra2 = DrtEntry { o_file: FileId(2), ..extra1 };
        store.tenant(TenantId(2)).journal_batch(0, std::slice::from_ref(&extra2)).expect("journal");

        let o1 = recover_tenant(&store, TenantId(1)).expect("recover t1");
        assert_eq!(o1.rolled_forward, 1);
        assert_eq!(o1.discarded_batches, 0);
        let (d1, _) = o1.tables.expect("tables");
        assert_eq!(
            d1.lookup_exact(extra1.o_file, extra1.o_offset, extra1.length),
            Some((extra1.r_file, extra1.r_offset))
        );

        // Tenant 2's journal was untouched by tenant 1's recovery.
        let o2 = recover_tenant(&store, TenantId(2)).expect("recover t2");
        assert_eq!(o2.rolled_forward, 0);
        assert_eq!(o2.discarded_batches, 1);
        let (d2, _) = o2.tables.expect("tables");
        assert_eq!(d2.lookup_exact(extra2.o_file, extra2.o_offset, extra2.length), None);

        // The legacy namespace never had state and still does not.
        let o0 = recover(&store).expect("recover legacy");
        assert!(o0.tables.is_none());
        let _ = std::fs::remove_file(&path);
    }
}
