//! The runtime I/O Redirector.
//!
//! On the application's subsequent runs every `MPI_File_read/write` is
//! intercepted; the redirector looks the request up in the DRT and
//! forwards the I/O to the region files (§III-G, §IV-B). Lookups cost
//! time — the paper's Fig. 14 measures exactly this overhead — so the
//! resolver charges a configurable per-lookup latency, with a default
//! derived from measuring our kvstore-backed DRT (single-digit
//! microseconds for a cached entry; we charge a conservative in-memory
//! hash-lookup cost).

use crate::region::{CompactDrt, Drt};
use iotrace::TraceRecord;
use pfs_sim::{PhysExtent, Resolution, Resolver};
use simrt::SimDuration;

/// DRT-backed resolver: the MHA (and HARL) redirection path.
///
/// Construction freezes the mutable [`Drt`] into a [`CompactDrt`] so the
/// replay hot loop translates through flat sorted arrays (and the
/// [`Resolver::resolve_into`] fast path reuses the caller's extent
/// buffer) instead of walking nested B-trees and allocating a `Vec` per
/// request.
#[derive(Debug, Clone)]
pub struct DrtResolver {
    drt: Drt,
    compact: CompactDrt,
    lookup_cost: SimDuration,
    lookups: u64,
    redirected: u64,
    fallbacks: u64,
}

impl DrtResolver {
    /// Resolver over `drt`, charging `lookup_cost` per request.
    pub fn new(drt: Drt, lookup_cost: SimDuration) -> Self {
        let compact = drt.compact();
        DrtResolver { drt, compact, lookup_cost, lookups: 0, redirected: 0, fallbacks: 0 }
    }

    /// Default lookup cost: an in-memory hash probe plus bookkeeping at
    /// the MPI-IO layer (~5 µs, consistent with the paper's "acceptable"
    /// Fig. 14 overhead on a 2008-era Opteron).
    pub fn with_default_cost(drt: Drt) -> Self {
        Self::new(drt, SimDuration::from_micros(5))
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Requests that were (at least partially) redirected to a region.
    pub fn redirected(&self) -> u64 {
        self.redirected
    }

    /// Requests served entirely from their original file.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// The table this resolver consults.
    pub fn drt(&self) -> &Drt {
        &self.drt
    }
}

impl Resolver for DrtResolver {
    fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
        let mut extents = Vec::new();
        let overhead = self.resolve_into(rec, &mut extents);
        Resolution { extents, overhead }
    }

    fn resolve_into(&mut self, rec: &TraceRecord, out: &mut Vec<PhysExtent>) -> SimDuration {
        self.lookups += 1;
        self.compact.translate_into(rec.file, rec.offset, rec.len, out);
        let any_moved = out.iter().any(|e| e.file != rec.file);
        if any_moved {
            self.redirected += 1;
        } else {
            self.fallbacks += 1;
        }
        self.lookup_cost
    }
}

/// A resolver that charges lookup cost but never moves data — the paper's
/// Fig. 14 methodology ("we intentionally do not make data reordering so
/// that I/O requests are redirected to the original I/O system").
#[derive(Debug, Clone)]
pub struct NullRedirectResolver {
    lookup_cost: SimDuration,
}

impl NullRedirectResolver {
    /// Charge `lookup_cost` per request, redirect nothing.
    pub fn new(lookup_cost: SimDuration) -> Self {
        NullRedirectResolver { lookup_cost }
    }

    /// The default redirection cost (see [`DrtResolver::with_default_cost`]).
    pub fn with_default_cost() -> Self {
        Self::new(SimDuration::from_micros(5))
    }
}

impl Resolver for NullRedirectResolver {
    fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
        Resolution {
            extents: vec![PhysExtent { file: rec.file, offset: rec.offset, len: rec.len }],
            overhead: self.lookup_cost,
        }
    }

    fn resolve_into(&mut self, rec: &TraceRecord, out: &mut Vec<PhysExtent>) -> SimDuration {
        out.clear();
        out.push(PhysExtent { file: rec.file, offset: rec.offset, len: rec.len });
        self.lookup_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::DrtEntry;
    use iotrace::record::Rank;
    use iotrace::FileId;
    use simrt::SimTime;
    use storage_model::IoOp;

    fn rec(offset: u64, len: u64) -> TraceRecord {
        TraceRecord {
            pid: 0,
            rank: Rank(0),
            file: FileId(0),
            op: IoOp::Read,
            offset,
            len,
            ts: SimTime::ZERO,
            phase: 0,
        }
    }

    fn resolver() -> DrtResolver {
        let mut drt = Drt::new();
        drt.insert(DrtEntry {
            o_file: FileId(0),
            o_offset: 1000,
            r_file: FileId(50),
            r_offset: 0,
            length: 500,
        });
        DrtResolver::with_default_cost(drt)
    }

    #[test]
    fn redirects_mapped_extent() {
        let mut r = resolver();
        let res = r.resolve(&rec(1000, 500));
        assert_eq!(res.extents, vec![PhysExtent { file: FileId(50), offset: 0, len: 500 }]);
        assert_eq!(res.overhead, SimDuration::from_micros(5));
        assert_eq!(r.redirected(), 1);
        assert_eq!(r.fallbacks(), 0);
    }

    #[test]
    fn falls_back_for_unmapped_extent() {
        let mut r = resolver();
        let res = r.resolve(&rec(0, 100));
        assert_eq!(res.extents[0].file, FileId(0));
        assert_eq!(r.fallbacks(), 1);
    }

    #[test]
    fn partial_coverage_splits() {
        let mut r = resolver();
        let res = r.resolve(&rec(900, 300));
        // [900,1000) original + [1000,1200) region.
        assert_eq!(res.extents.len(), 2);
        assert_eq!(res.extents[0].file, FileId(0));
        assert_eq!(res.extents[1].file, FileId(50));
        assert_eq!(res.extents.iter().map(|e| e.len).sum::<u64>(), 300);
        assert_eq!(r.redirected(), 1, "partially moved still counts");
    }

    #[test]
    fn null_resolver_charges_but_never_moves() {
        let mut r = NullRedirectResolver::with_default_cost();
        let res = r.resolve(&rec(1000, 500));
        assert_eq!(res.extents[0].file, FileId(0));
        assert!(res.overhead > SimDuration::ZERO);
    }

    #[test]
    fn lookup_counter_advances() {
        let mut r = resolver();
        for i in 0..10 {
            r.resolve(&rec(i * 100, 50));
        }
        assert_eq!(r.lookups(), 10);
    }

    #[test]
    fn resolve_into_matches_resolve() {
        // Two independent resolvers over a multi-entry table; every
        // request pattern (full hit, partial, gap-straddling, miss,
        // zero-length) must yield identical extents, overhead and
        // counters through both paths.
        let mut drt = Drt::new();
        for (oo, rf, ro, len) in
            [(1000, 50, 0, 500), (2000, 51, 128, 300), (2500, 50, 4096, 100)]
        {
            drt.insert(DrtEntry {
                o_file: FileId(0),
                o_offset: oo,
                r_file: FileId(rf),
                r_offset: ro,
                length: len,
            });
        }
        let mut a = DrtResolver::with_default_cost(drt.clone());
        let mut b = DrtResolver::with_default_cost(drt);
        let mut out = vec![PhysExtent { file: FileId(99), offset: 7, len: 7 }];
        let cases =
            [(1000, 500), (900, 300), (1900, 800), (0, 100), (2450, 200), (1200, 0), (3000, 64)];
        for (offset, len) in cases {
            let want = a.resolve(&rec(offset, len));
            let overhead = b.resolve_into(&rec(offset, len), &mut out);
            assert_eq!(out, want.extents, "extents for [{offset}, +{len})");
            assert_eq!(overhead, want.overhead);
        }
        assert_eq!(a.lookups(), b.lookups());
        assert_eq!(a.redirected(), b.redirected());
        assert_eq!(a.fallbacks(), b.fallbacks());

        let mut n = NullRedirectResolver::with_default_cost();
        let want = n.resolve(&rec(1000, 500));
        let overhead = n.resolve_into(&rec(1000, 500), &mut out);
        assert_eq!(out, want.extents);
        assert_eq!(overhead, want.overhead);
    }
}
