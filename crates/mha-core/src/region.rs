//! Regions, the Data Reordering Table (DRT) and the Region Stripe Table
//! (RST).
//!
//! The *Data Reorganizer* turns a grouping into concrete regions: each
//! group's request extents are packed, ordered by their offsets in the
//! original file, into a fresh physical *region file*. The DRT records
//! every relocation as the paper's five-field entry
//! `(O_file, O_offset) → (R_file, R_offset, Length)` and supports the
//! range translation the *Redirector* needs at runtime. The RST maps each
//! region file to its optimized `<h, s>` stripe pair. Both tables
//! persist through [`kvstore`] (the Berkeley DB substitute), one record
//! per entry, synchronously written as the paper requires.

use crate::cost::ReqView;
use crate::grouping::{GroupIndex, Grouping};
use crate::rssd::StripePair;
use iotrace::{FileId, Trace, TraceRecord};
use pfs_sim::PhysExtent;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::BTreeMap;

/// One DRT entry (the paper's five variables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrtEntry {
    /// Original file.
    pub o_file: FileId,
    /// Offset in the original file.
    pub o_offset: u64,
    /// Region (reordered) file.
    pub r_file: FileId,
    /// Offset in the region file.
    pub r_offset: u64,
    /// Extent length, bytes.
    pub length: u64,
}

/// The Data Reordering Table: original extents → region extents.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Drt {
    /// Per original file: start offset → (length, region file, region offset).
    map: BTreeMap<FileId, BTreeMap<u64, (u64, FileId, u64)>>,
    entries: usize,
}

impl Drt {
    /// Empty table.
    pub fn new() -> Self {
        Drt::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no data has been reordered.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Insert an entry. Returns `false` (and inserts nothing) if the new
    /// extent would overlap an existing entry for the same original file —
    /// overlapping relocations would make translation ambiguous.
    pub fn insert(&mut self, e: DrtEntry) -> bool {
        if e.length == 0 {
            return false;
        }
        let per_file = self.map.entry(e.o_file).or_default();
        // Check the neighbour below and the first entry at/above.
        if let Some((&lo, &(llen, _, _))) = per_file.range(..=e.o_offset).next_back() {
            if lo + llen > e.o_offset {
                return false;
            }
        }
        if let Some((&hi, _)) = per_file.range(e.o_offset..).next() {
            if hi < e.o_offset + e.length {
                return false;
            }
        }
        per_file.insert(e.o_offset, (e.length, e.r_file, e.r_offset));
        self.entries += 1;
        true
    }

    /// Exact-extent lookup (fast path for replayed traces, which repeat
    /// the profiled requests verbatim).
    pub fn lookup_exact(&self, file: FileId, offset: u64, len: u64) -> Option<(FileId, u64)> {
        let (l, rf, ro) = self.map.get(&file)?.get(&offset)?;
        (*l == len).then_some((*rf, *ro))
    }

    /// Translate an arbitrary extent into physical extents: relocated
    /// pieces map to their region files; bytes with no DRT entry stay on
    /// the original file. Pieces come back in logical (offset) order and
    /// partition the request exactly.
    pub fn translate(&self, file: FileId, offset: u64, len: u64) -> Vec<PhysExtent> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let end = offset + len;
        let Some(per_file) = self.map.get(&file) else {
            out.push(PhysExtent { file, offset, len });
            return out;
        };
        let mut pos = offset;
        // Start from the entry that could cover `offset` (the one at or
        // before it), then walk forward.
        let start_key = per_file
            .range(..=pos)
            .next_back()
            .map(|(&k, _)| k)
            .unwrap_or(pos);
        for (&eo, &(elen, rf, ro)) in per_file.range(start_key..) {
            if pos >= end {
                break;
            }
            let e_end = eo + elen;
            if e_end <= pos {
                continue;
            }
            if eo >= end {
                break;
            }
            if eo > pos {
                // Uncovered gap before this entry.
                out.push(PhysExtent { file, offset: pos, len: eo - pos });
                pos = eo;
            }
            let take = e_end.min(end) - pos;
            out.push(PhysExtent { file: rf, offset: ro + (pos - eo), len: take });
            pos += take;
        }
        if pos < end {
            out.push(PhysExtent { file, offset: pos, len: end - pos });
        }
        out
    }

    /// All entries, ordered by (original file, offset).
    pub fn entries(&self) -> Vec<DrtEntry> {
        let mut v = Vec::with_capacity(self.entries);
        for (&o_file, per_file) in &self.map {
            for (&o_offset, &(length, r_file, r_offset)) in per_file {
                v.push(DrtEntry { o_file, o_offset, r_file, r_offset, length });
            }
        }
        v
    }

    /// Persist every entry into `store` (key `(o_file, o_offset)`, value
    /// `(length, r_file, r_offset)` — the paper's encoding under §IV-A).
    pub fn save(&self, store: &kvstore::Store) -> kvstore::Result<()> {
        for e in self.entries() {
            store.put(&Self::key(e.o_file, e.o_offset), &Self::value(&e))?;
        }
        Ok(())
    }

    /// Load a table previously saved with [`Drt::save`]. Unparseable
    /// records are skipped (they belong to other tables sharing the store).
    pub fn load(store: &kvstore::Store) -> kvstore::Result<Drt> {
        let mut drt = Drt::new();
        for key in store.keys_with_prefix(b"drt:") {
            let Some((o_file, o_offset)) = Self::decode_key(&key) else { continue };
            let Some(value) = store.get(&key)? else { continue };
            let Some((length, r_file, r_offset)) = Self::decode_value(&value) else { continue };
            drt.insert(DrtEntry { o_file, o_offset, r_file, r_offset, length });
        }
        Ok(drt)
    }

    fn key(o_file: FileId, o_offset: u64) -> Vec<u8> {
        let mut k = Vec::with_capacity(16);
        k.extend_from_slice(b"drt:");
        k.extend_from_slice(&o_file.0.to_le_bytes());
        k.extend_from_slice(&o_offset.to_le_bytes());
        k
    }

    fn decode_key(k: &[u8]) -> Option<(FileId, u64)> {
        let rest = k.strip_prefix(b"drt:")?;
        if rest.len() != 12 {
            return None;
        }
        let file = u32::from_le_bytes(rest[..4].try_into().ok()?);
        let off = u64::from_le_bytes(rest[4..].try_into().ok()?);
        Some((FileId(file), off))
    }

    /// Binary value encoding of one entry: `(length, r_file, r_offset)`,
    /// all little-endian. Shared with the crash-consistent pipeline store
    /// ([`crate::persist`]) so both layers speak one on-disk dialect.
    pub(crate) fn value(e: &DrtEntry) -> Vec<u8> {
        let mut v = Vec::with_capacity(20);
        v.extend_from_slice(&e.length.to_le_bytes());
        v.extend_from_slice(&e.r_file.0.to_le_bytes());
        v.extend_from_slice(&e.r_offset.to_le_bytes());
        v
    }

    pub(crate) fn decode_value(v: &[u8]) -> Option<(u64, FileId, u64)> {
        if v.len() != 20 {
            return None;
        }
        let length = u64::from_le_bytes(v[..8].try_into().ok()?);
        let r_file = u32::from_le_bytes(v[8..12].try_into().ok()?);
        let r_offset = u64::from_le_bytes(v[12..].try_into().ok()?);
        Some((length, FileId(r_file), r_offset))
    }

    /// Freeze this table into a [`CompactDrt`] for the replay fast path.
    pub fn compact(&self) -> CompactDrt {
        let mut files = Vec::with_capacity(self.map.len());
        let mut spans = Vec::with_capacity(self.map.len());
        let mut entries = Vec::with_capacity(self.entries);
        let mut scales = Vec::with_capacity(self.map.len());
        for (&file, per_file) in &self.map {
            let start = entries.len();
            for (&o_offset, &(length, r_file, r_offset)) in per_file {
                entries.push(CompactEntry { o_offset, length, r_file, r_offset });
            }
            let span = &entries[start..];
            // Entries per byte of offset range: seeds the interpolated
            // search with a position guess. Degenerate spans (one entry,
            // or all at one offset) scale to 0, i.e. "guess the front".
            scales.push(match (span.first(), span.last()) {
                (Some(f), Some(l)) if l.o_offset > f.o_offset => {
                    (span.len() - 1) as f64 / (l.o_offset - f.o_offset) as f64
                }
                _ => 0.0,
            });
            files.push(file);
            spans.push((start, entries.len()));
        }
        CompactDrt { files, spans, entries, scales, cursor: Cell::new((usize::MAX, 0)) }
    }
}

#[derive(Debug, Clone, Copy)]
struct CompactEntry {
    o_offset: u64,
    length: u64,
    r_file: FileId,
    r_offset: u64,
}

/// A frozen, flattened [`Drt`] tuned for the replay hot loop.
///
/// The nested `BTreeMap<FileId, BTreeMap<u64, …>>` becomes one sorted
/// file index plus one contiguous entry array sliced per file, so a
/// translation costs two binary searches over dense memory instead of a
/// pointer-chasing tree walk. A last-hit cursor (interior-mutable, so
/// lookups stay `&self`) remembers where the previous translation left
/// off; region traces replay in near-sequential offset order, which
/// turns most seeks into an O(1) neighbour check. Translations are
/// byte-for-byte identical to [`Drt::translate`].
///
/// The cursor makes `CompactDrt` `Send` but not `Sync`; parallel replay
/// constructs one resolver (and thus one table) per grid cell.
#[derive(Debug, Clone, Default)]
pub struct CompactDrt {
    /// Original files with entries, sorted.
    files: Vec<FileId>,
    /// Per file: `[start, end)` slice of `entries`.
    spans: Vec<(usize, usize)>,
    /// All entries, grouped by file, sorted by `o_offset` within a file.
    entries: Vec<CompactEntry>,
    /// Per file: entries per byte over the span's offset range, used to
    /// interpolate a starting guess for cold seeks.
    scales: Vec<f64>,
    /// `(file slot, absolute entry index)` of the last translation's
    /// final position.
    cursor: Cell<(usize, usize)>,
}

impl CompactDrt {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no data has been reordered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// [`Drt::translate`], reusing `out` (cleared first). Relocated
    /// pieces map to their region files; bytes with no entry stay on the
    /// original file; pieces partition the request in offset order.
    pub fn translate_into(&self, file: FileId, offset: u64, len: u64, out: &mut Vec<PhysExtent>) {
        out.clear();
        if len == 0 {
            return;
        }
        let end = offset + len;
        let Some(slot) = self.file_slot(file) else {
            out.push(PhysExtent { file, offset, len });
            return;
        };
        let (base, stop) = self.spans[slot];
        let ents = &self.entries[base..stop];
        let mut idx = self.seek(slot, base, ents, offset);
        let mut pos = offset;
        while idx < ents.len() {
            if pos >= end {
                break;
            }
            let e = &ents[idx];
            let e_end = e.o_offset + e.length;
            if e_end <= pos {
                idx += 1;
                continue;
            }
            if e.o_offset >= end {
                break;
            }
            if e.o_offset > pos {
                // Uncovered gap before this entry.
                out.push(PhysExtent { file, offset: pos, len: e.o_offset - pos });
                pos = e.o_offset;
            }
            let take = e_end.min(end) - pos;
            out.push(PhysExtent {
                file: e.r_file,
                offset: e.r_offset + (pos - e.o_offset),
                len: take,
            });
            pos += take;
            idx += 1;
        }
        self.cursor.set((slot, base + idx.min(ents.len().saturating_sub(1))));
        if pos < end {
            out.push(PhysExtent { file, offset: pos, len: end - pos });
        }
    }

    /// Allocating convenience wrapper over [`Self::translate_into`].
    pub fn translate(&self, file: FileId, offset: u64, len: u64) -> Vec<PhysExtent> {
        let mut out = Vec::new();
        self.translate_into(file, offset, len, &mut out);
        out
    }

    fn file_slot(&self, file: FileId) -> Option<usize> {
        let (c_slot, _) = self.cursor.get();
        if self.files.get(c_slot) == Some(&file) {
            return Some(c_slot);
        }
        self.files.binary_search(&file).ok()
    }

    /// Index of the entry the walk starts from: the last entry with
    /// `o_offset <= offset`, or `0` when every entry lies above `offset`
    /// (mirrors the `range(..=pos).next_back()` seed in
    /// [`Drt::translate`]). Tries the cached cursor and its successor
    /// first; cold seeks interpolate a guess from the file's offset
    /// density and gallop out from it — region files pack extents nearly
    /// uniformly, so the guess usually lands within a step or two of the
    /// target, beating a full-width binary search.
    fn seek(&self, slot: usize, base: usize, ents: &[CompactEntry], offset: u64) -> usize {
        let (c_slot, c_abs) = self.cursor.get();
        if c_slot == slot && c_abs >= base {
            let c = c_abs - base;
            if Self::is_start(ents, c, offset) {
                return c;
            }
            if Self::is_start(ents, c + 1, offset) {
                return c + 1;
            }
        }
        let first = ents[0].o_offset;
        if offset <= first {
            return 0;
        }
        let guess = ((offset - first) as f64 * self.scales[slot]) as usize;
        Self::gallop_partition(ents, offset, guess.min(ents.len() - 1)).saturating_sub(1)
    }

    /// `ents.partition_point(|e| e.o_offset <= offset)`, started from an
    /// interpolated `guess` instead of the slice midpoint: double the
    /// step away from the guess until the answer is bracketed, then
    /// binary-search the bracket. Exact for any guess; O(log distance)
    /// from the guess rather than O(log n).
    fn gallop_partition(ents: &[CompactEntry], offset: u64, guess: usize) -> usize {
        let n = ents.len();
        let le = |i: usize| ents[i].o_offset <= offset;
        if le(guess) {
            let mut lo = guess;
            let mut step = 1usize;
            let mut hi = guess + step;
            while hi < n && le(hi) {
                lo = hi;
                step <<= 1;
                hi = guess + step;
            }
            let hi = hi.min(n);
            lo + 1 + ents[lo + 1..hi].partition_point(|e| e.o_offset <= offset)
        } else {
            let mut hi = guess;
            let mut step = 1usize;
            let mut lo = guess.saturating_sub(step);
            while lo > 0 && !le(lo) {
                hi = lo;
                step <<= 1;
                lo = guess.saturating_sub(step);
            }
            if !le(lo) {
                return 0;
            }
            lo + 1 + ents[lo + 1..hi].partition_point(|e| e.o_offset <= offset)
        }
    }

    fn is_start(ents: &[CompactEntry], i: usize, offset: u64) -> bool {
        match ents.get(i) {
            Some(e) if e.o_offset <= offset => {
                ents.get(i + 1).is_none_or(|next| next.o_offset > offset)
            }
            Some(_) => i == 0,
            None => false,
        }
    }
}

/// The Region Stripe Table: region file → optimized stripe pair.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rst {
    pairs: BTreeMap<FileId, StripePair>,
}

impl Rst {
    /// Empty table.
    pub fn new() -> Self {
        Rst::default()
    }

    /// Record the pair for a region file.
    pub fn set(&mut self, file: FileId, pair: StripePair) {
        self.pairs.insert(file, pair);
    }

    /// Pair for `file`, if optimized.
    pub fn get(&self, file: FileId) -> Option<StripePair> {
        self.pairs.get(&file).copied()
    }

    /// All `(file, pair)` rows in file order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, StripePair)> + '_ {
        self.pairs.iter().map(|(&f, &p)| (f, p))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Persist into `store` under `rst:`-prefixed keys.
    pub fn save(&self, store: &kvstore::Store) -> kvstore::Result<()> {
        for (file, pair) in self.iter() {
            let mut k = Vec::with_capacity(8);
            k.extend_from_slice(b"rst:");
            k.extend_from_slice(&file.0.to_le_bytes());
            store.put(&k, &Self::pair_value(pair))?;
        }
        Ok(())
    }

    /// Load a table previously saved with [`Rst::save`].
    pub fn load(store: &kvstore::Store) -> kvstore::Result<Rst> {
        let mut rst = Rst::new();
        for key in store.keys_with_prefix(b"rst:") {
            let Some(rest) = key.strip_prefix(b"rst:") else { continue };
            let Ok(fb): Result<[u8; 4], _> = rest.try_into() else { continue };
            let Some(value) = store.get(&key)? else { continue };
            let Some(pair) = Self::decode_pair(&value) else { continue };
            rst.set(FileId(u32::from_le_bytes(fb)), pair);
        }
        Ok(rst)
    }

    /// Binary value encoding of one pair: `h` then `s`, little-endian.
    /// Shared with [`crate::persist`].
    pub(crate) fn pair_value(pair: StripePair) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&pair.h.to_le_bytes());
        v.extend_from_slice(&pair.s.to_le_bytes());
        v
    }

    pub(crate) fn decode_pair(v: &[u8]) -> Option<StripePair> {
        if v.len() != 16 {
            return None;
        }
        let h = u64::from_le_bytes(v[..8].try_into().ok()?);
        let s = u64::from_le_bytes(v[8..].try_into().ok()?);
        Some(StripePair { h, s })
    }
}

/// One constructed region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionInfo {
    /// The region's physical file id.
    pub file: FileId,
    /// Region length, bytes.
    pub len: u64,
    /// The grouping group this region holds.
    pub group: usize,
    /// Number of distinct extents migrated into the region.
    pub extents: usize,
}

/// Output of the Data Reorganizer.
#[derive(Debug, Clone)]
pub struct RegionBuild {
    /// Regions in group order.
    pub regions: Vec<RegionInfo>,
    /// The reordering table.
    pub drt: Drt,
    /// Per-region planner views: each group's requests with their
    /// *region* offsets (what RSSD optimizes).
    pub region_views: Vec<Vec<ReqView>>,
    /// Trace indices whose extents could not be migrated (overlapping
    /// non-identical extents stay in the original file).
    pub residuals: Vec<usize>,
}

/// Build regions from a grouping over `trace`, aligning each migrated
/// extent to a 4 KiB boundary in its region file. Region files get ids
/// `region_file_base`, `region_file_base + 1`, … (callers pick a base
/// beyond every original file id).
pub fn build_regions(trace: &Trace, grouping: &Grouping, region_file_base: u32) -> RegionBuild {
    build_regions_aligned(trace, grouping, region_file_base, 4 << 10)
}

/// [`build_regions`] with an explicit packing alignment.
///
/// Alignment matters: stripe sizes are multiples of the search step, so
/// packing odd-sized extents back-to-back would make *every* request
/// straddle stripe boundaries regardless of the `<h, s>` pair RSSD picks,
/// paying an extra startup per request. Aligning each extent start to the
/// step trades a sliver of space (< one step per extent) for clean
/// decompositions — the same reason file systems align block allocations.
///
/// Two passes keep every byte **single-homed** even when requests overlap
/// (read-modify-write patterns like LU's slab updates):
///
/// 1. *Migration*: groups are processed bulk-first (descending total
///    bytes, so large extents claim their ranges whole); within a group,
///    extents ordered by original-file offset (the paper's rule). Only
///    the subranges not yet covered by the DRT migrate — an extent
///    overlapping already-moved data reuses those mappings.
/// 2. *Views*: every trace record is translated through the finished DRT;
///    each piece landing in a region contributes a planner view to *that*
///    region, so RSSD optimizes exactly the requests the region will
///    serve at runtime. Records with any piece left in the original file
///    are reported as residuals.
pub fn build_regions_aligned(
    trace: &Trace,
    grouping: &Grouping,
    region_file_base: u32,
    align: u64,
) -> RegionBuild {
    build_regions_per_group(trace, grouping, region_file_base, &vec![align; grouping.groups()])
}

/// [`build_regions_aligned`] with a per-group packing alignment — used by
/// the MHA planner's second pass, which repacks each region aligned to
/// the stripe size RSSD chose for it so extents decompose on the stripe
/// grid.
pub fn build_regions_per_group(
    trace: &Trace,
    grouping: &Grouping,
    region_file_base: u32,
    aligns: &[u64],
) -> RegionBuild {
    build_regions_filtered(trace, grouping, region_file_base, aligns, &vec![true; grouping.groups()])
}

/// [`build_regions_per_group`] with a per-group include mask: excluded
/// groups migrate nothing (their requests stay in the original files,
/// reported as residuals) — the mechanism behind *selective* MHA, which
/// the paper motivates by applying the scheme only to critical data
/// sections.
pub fn build_regions_filtered(
    trace: &Trace,
    grouping: &Grouping,
    region_file_base: u32,
    aligns: &[u64],
    include: &[bool],
) -> RegionBuild {
    assert_eq!(aligns.len(), grouping.groups(), "one alignment per group");
    assert_eq!(include.len(), grouping.groups(), "one include flag per group");
    let records = trace.records();
    let conc = trace.concurrency();
    let groups = grouping.groups();
    let index = GroupIndex::new(grouping);
    let mut cursors = vec![0u64; groups];
    let mut extent_counts = vec![0usize; groups];

    // Pass 1 — migration, bulk groups first.
    let mut group_bytes = vec![0u64; groups];
    for (i, rec) in records.iter().enumerate() {
        group_bytes[grouping.assignment[i]] += rec.len;
    }
    let mut order: Vec<usize> = (0..groups).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(group_bytes[g]));

    let mut builder = DrtBuilder::new();
    let mut member_buf: Vec<u32> = Vec::new();
    let mut gap_buf: Vec<(u64, u64)> = Vec::new();
    let mut covered_buf: Vec<(u64, u64)> = Vec::new();
    for &g in &order {
        if !include[g] {
            continue;
        }
        let r_file = FileId(region_file_base + g as u32);
        member_buf.clear();
        member_buf.extend_from_slice(index.members(g));
        // The index is part of the key, so keys are unique and the
        // unstable sort reproduces the original stable
        // `members().sort_by_key((file, offset, i))` order exactly.
        member_buf.sort_unstable_by_key(|&i| {
            let r = &records[i as usize];
            (r.file, r.offset, i)
        });
        for &i in &member_buf {
            let rec = &records[i as usize];
            if rec.len == 0 {
                continue;
            }
            // Migrate only the subranges no region owns yet.
            builder.gaps_into(rec.file, rec.offset, rec.len, &mut gap_buf, &mut covered_buf);
            for &(off, len) in &gap_buf {
                builder.append(
                    rec.file,
                    SlabEntry { o_offset: off, length: len, r_file, r_offset: cursors[g] },
                );
                let align = aligns[g].max(1);
                cursors[g] = (cursors[g] + len).div_ceil(align) * align;
                extent_counts[g] += 1;
            }
        }
        builder.seal_group();
    }
    let slab = builder.freeze();

    // Pass 2 — planner views from the finished table.
    let (region_views, residuals) = extract_views(records, &conc, &slab, region_file_base, groups);

    let drt = slab.to_drt();
    let regions = (0..groups)
        .map(|g| RegionInfo {
            file: FileId(region_file_base + g as u32),
            len: cursors[g],
            group: g,
            extents: extent_counts[g],
        })
        .collect();

    RegionBuild { regions, drt, region_views, residuals }
}

/// One migrated extent in a [`DrtBuilder`] run: the DRT entry minus the
/// original file, which keys the run.
#[derive(Debug, Clone, Copy)]
struct SlabEntry {
    o_offset: u64,
    length: u64,
    r_file: FileId,
    r_offset: u64,
}

/// Per-file state of a [`DrtBuilder`]: sealed sorted runs from earlier
/// groups plus the current group's append-only run.
#[derive(Debug, Default)]
struct FileSlab {
    runs: Vec<Vec<SlabEntry>>,
    cur: Vec<SlabEntry>,
}

/// Interval-slab builder behind [`build_regions_filtered`]'s migration
/// pass.
///
/// The pass used to grow the nested-BTreeMap [`Drt`] entry by entry and
/// call [`Drt::translate`] — a tree walk plus a fresh `Vec<PhysExtent>`
/// per record — just to find which subranges were still unmigrated.
/// The builder instead keeps each file's extents as *sorted runs*, one
/// per group that touched the file: within a group, members migrate in
/// (file, offset) order, so appends stay sorted for free. A gap query
/// binary-searches the few runs for overlaps into a reusable scratch
/// buffer; runs are globally disjoint (only gap subranges are ever
/// appended), so the overlaps union into disjoint intervals and one
/// small sort yields the coverage in ascending order. `freeze` flattens
/// the runs into one sorted slab per file for pass 2's shared-read
/// translation, and `DrtSlab::to_drt` reproduces the classic table
/// entry for entry.
#[derive(Debug, Default)]
struct DrtBuilder {
    /// Original files with entries, sorted; parallel to `slabs`.
    files: Vec<FileId>,
    slabs: Vec<FileSlab>,
}

impl DrtBuilder {
    fn new() -> Self {
        DrtBuilder::default()
    }

    /// Uncovered subranges of `[offset, offset + len)` on `file`, written
    /// ascending into `gaps` (cleared first). `covered` is scratch.
    fn gaps_into(
        &self,
        file: FileId,
        offset: u64,
        len: u64,
        gaps: &mut Vec<(u64, u64)>,
        covered: &mut Vec<(u64, u64)>,
    ) {
        gaps.clear();
        if len == 0 {
            return;
        }
        let end = offset + len;
        covered.clear();
        if let Ok(slot) = self.files.binary_search(&file) {
            let slab = &self.slabs[slot];
            for run in slab.runs.iter().chain(std::iter::once(&slab.cur)) {
                // First entry whose end lies above `offset` (runs are
                // sorted and internally disjoint, so entry ends ascend).
                let i0 = run.partition_point(|e| e.o_offset + e.length <= offset);
                for e in &run[i0..] {
                    if e.o_offset >= end {
                        break;
                    }
                    covered.push((e.o_offset.max(offset), (e.o_offset + e.length).min(end)));
                }
            }
        }
        covered.sort_unstable();
        let mut pos = offset;
        for &(s, e) in covered.iter() {
            if s > pos {
                gaps.push((pos, s - pos));
            }
            pos = pos.max(e);
        }
        if pos < end {
            gaps.push((pos, end - pos));
        }
    }

    /// Record a migrated extent. The caller guarantees it lies in a gap
    /// (it came from [`Self::gaps_into`]) and that per-file appends
    /// ascend (members migrate in (file, offset) order).
    fn append(&mut self, file: FileId, e: SlabEntry) {
        debug_assert!(e.length > 0, "zero-length extents never migrate");
        let slab = match self.files.binary_search(&file) {
            Ok(i) => &mut self.slabs[i],
            Err(i) => {
                self.files.insert(i, file);
                self.slabs.insert(i, FileSlab::default());
                &mut self.slabs[i]
            }
        };
        debug_assert!(
            slab.cur.last().is_none_or(|l| l.o_offset + l.length <= e.o_offset),
            "per-run appends must ascend"
        );
        slab.cur.push(e);
    }

    /// Seal the current group's appends; the next group starts fresh
    /// runs (its members revisit files in (file, offset) order again).
    fn seal_group(&mut self) {
        for slab in &mut self.slabs {
            if !slab.cur.is_empty() {
                let run = std::mem::take(&mut slab.cur);
                slab.runs.push(run);
            }
        }
    }

    /// Flatten into per-file sorted entry slabs.
    fn freeze(mut self) -> DrtSlab {
        self.seal_group();
        let mut files = Vec::with_capacity(self.files.len());
        let mut spans = Vec::with_capacity(self.files.len());
        let total: usize = self.slabs.iter().map(|s| s.runs.iter().map(Vec::len).sum::<usize>()).sum();
        let mut entries = Vec::with_capacity(total);
        for (file, slab) in self.files.into_iter().zip(self.slabs) {
            let start = entries.len();
            for run in slab.runs {
                entries.extend(run.into_iter().map(|e| CompactEntry {
                    o_offset: e.o_offset,
                    length: e.length,
                    r_file: e.r_file,
                    r_offset: e.r_offset,
                }));
            }
            entries[start..].sort_unstable_by_key(|e| e.o_offset);
            files.push(file);
            spans.push((start, entries.len()));
        }
        DrtSlab { files, spans, entries }
    }
}

/// Frozen result of a [`DrtBuilder`]: the per-file sorted entry slab of
/// [`CompactDrt`] without its last-hit cursor. Cursor-free means `Sync`,
/// so pass 2 translates record chunks in parallel against one shared
/// table; the walk itself is the same code (and produces the same
/// pieces) as [`CompactDrt::translate_into`] with a plain binary-search
/// seek.
#[derive(Debug)]
struct DrtSlab {
    files: Vec<FileId>,
    spans: Vec<(usize, usize)>,
    entries: Vec<CompactEntry>,
}

impl DrtSlab {
    /// [`Drt::translate`] into a reusable buffer (cleared first).
    fn translate_into(&self, file: FileId, offset: u64, len: u64, out: &mut Vec<PhysExtent>) {
        out.clear();
        if len == 0 {
            return;
        }
        let end = offset + len;
        let Ok(slot) = self.files.binary_search(&file) else {
            out.push(PhysExtent { file, offset, len });
            return;
        };
        let (base, stop) = self.spans[slot];
        let ents = &self.entries[base..stop];
        // Start from the last entry at or below `offset` (the
        // `range(..=pos).next_back()` seed of `Drt::translate`).
        let mut idx = ents.partition_point(|e| e.o_offset <= offset).saturating_sub(1);
        let mut pos = offset;
        while idx < ents.len() {
            if pos >= end {
                break;
            }
            let e = &ents[idx];
            let e_end = e.o_offset + e.length;
            if e_end <= pos {
                idx += 1;
                continue;
            }
            if e.o_offset >= end {
                break;
            }
            if e.o_offset > pos {
                // Uncovered gap before this entry.
                out.push(PhysExtent { file, offset: pos, len: e.o_offset - pos });
                pos = e.o_offset;
            }
            let take = e_end.min(end) - pos;
            out.push(PhysExtent {
                file: e.r_file,
                offset: e.r_offset + (pos - e.o_offset),
                len: take,
            });
            pos += take;
            idx += 1;
        }
        if pos < end {
            out.push(PhysExtent { file, offset: pos, len: end - pos });
        }
    }

    /// The classic nested-map table, entry for entry.
    fn to_drt(&self) -> Drt {
        let mut drt = Drt::new();
        for (slot, &file) in self.files.iter().enumerate() {
            let (base, stop) = self.spans[slot];
            for e in &self.entries[base..stop] {
                let inserted = drt.insert(DrtEntry {
                    o_file: file,
                    o_offset: e.o_offset,
                    r_file: e.r_file,
                    r_offset: e.r_offset,
                    length: e.length,
                });
                debug_assert!(inserted, "slab entries are disjoint by construction");
            }
        }
        drt
    }
}

/// Pass 2 chunk size; chunk outputs are merged in index order, so the
/// result is identical to the serial scan no matter how rayon schedules
/// the chunks (the work is pure integer bookkeeping — no floats).
const PASS2_CHUNK: usize = 1024;
/// Below this many records the chunk fan-out costs more than it saves.
const PASS2_PAR_MIN: usize = 4 * PASS2_CHUNK;

/// Pass 2 of [`build_regions_filtered`]: translate every record through
/// the frozen slab; pieces landing in a region become that region's
/// planner views, records with any piece left in an original file are
/// residuals.
fn extract_views(
    records: &[TraceRecord],
    conc: &[u32],
    slab: &DrtSlab,
    region_file_base: u32,
    groups: usize,
) -> (Vec<Vec<ReqView>>, Vec<usize>) {
    let scan_chunk = |ci: usize, recs: &[TraceRecord], conc: &[u32]| {
        let mut views: Vec<Vec<ReqView>> = vec![Vec::new(); groups];
        let mut residuals: Vec<usize> = Vec::new();
        let mut pieces: Vec<PhysExtent> = Vec::new();
        for (j, rec) in recs.iter().enumerate() {
            if rec.len == 0 {
                continue;
            }
            slab.translate_into(rec.file, rec.offset, rec.len, &mut pieces);
            let mut any_original = false;
            for piece in &pieces {
                if piece.file.0 >= region_file_base {
                    let g = (piece.file.0 - region_file_base) as usize;
                    views[g].push(ReqView {
                        offset: piece.offset,
                        len: piece.len,
                        op: rec.op,
                        concurrency: conc[j],
                    });
                } else {
                    any_original = true;
                }
            }
            if any_original {
                residuals.push(ci * PASS2_CHUNK + j);
            }
        }
        (views, residuals)
    };
    let parts: Vec<(Vec<Vec<ReqView>>, Vec<usize>)> = if records.len() >= PASS2_PAR_MIN {
        records
            .par_chunks(PASS2_CHUNK)
            .zip(conc.par_chunks(PASS2_CHUNK))
            .enumerate()
            .map(|(ci, (r, c))| scan_chunk(ci, r, c))
            .collect()
    } else {
        vec![scan_chunk(0, records, conc)]
    };
    let mut region_views: Vec<Vec<ReqView>> = vec![Vec::new(); groups];
    let mut residuals = Vec::new();
    for (views, res) in parts {
        for (g, mut v) in views.into_iter().enumerate() {
            region_views[g].append(&mut v);
        }
        residuals.extend(res);
    }
    (region_views, residuals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{group_requests, GroupingConfig};
    use crate::pattern::ReqFeature;
    use iotrace::gen::lanl::{generate, LanlConfig};
    use storage_model::IoOp;

    fn e(of: u32, oo: u64, rf: u32, ro: u64, len: u64) -> DrtEntry {
        DrtEntry {
            o_file: FileId(of),
            o_offset: oo,
            r_file: FileId(rf),
            r_offset: ro,
            length: len,
        }
    }

    #[test]
    fn insert_rejects_overlap() {
        let mut d = Drt::new();
        assert!(d.insert(e(0, 100, 10, 0, 50)));
        assert!(!d.insert(e(0, 120, 10, 50, 10)), "inside existing");
        assert!(!d.insert(e(0, 90, 10, 50, 20)), "straddles start");
        assert!(!d.insert(e(0, 140, 10, 50, 20)), "straddles end");
        assert!(d.insert(e(0, 150, 10, 50, 10)), "touching is fine");
        assert!(d.insert(e(1, 100, 11, 0, 50)), "other file independent");
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn exact_lookup() {
        let mut d = Drt::new();
        d.insert(e(0, 100, 10, 777, 50));
        assert_eq!(d.lookup_exact(FileId(0), 100, 50), Some((FileId(10), 777)));
        assert_eq!(d.lookup_exact(FileId(0), 100, 49), None);
        assert_eq!(d.lookup_exact(FileId(0), 101, 50), None);
        assert_eq!(d.lookup_exact(FileId(1), 100, 50), None);
    }

    #[test]
    fn translate_exact_extent() {
        let mut d = Drt::new();
        d.insert(e(0, 100, 10, 777, 50));
        let t = d.translate(FileId(0), 100, 50);
        assert_eq!(t, vec![PhysExtent { file: FileId(10), offset: 777, len: 50 }]);
    }

    #[test]
    fn translate_partial_and_gap() {
        let mut d = Drt::new();
        d.insert(e(0, 100, 10, 0, 50));
        d.insert(e(0, 200, 11, 40, 50));
        // Request [120, 230): tail of entry 1, gap [150,200), head of entry 2.
        let t = d.translate(FileId(0), 120, 110);
        assert_eq!(
            t,
            vec![
                PhysExtent { file: FileId(10), offset: 20, len: 30 },
                PhysExtent { file: FileId(0), offset: 150, len: 50 },
                PhysExtent { file: FileId(11), offset: 40, len: 30 },
            ]
        );
        let total: u64 = t.iter().map(|x| x.len).sum();
        assert_eq!(total, 110);
    }

    #[test]
    fn translate_unknown_file_passes_through() {
        let d = Drt::new();
        let t = d.translate(FileId(9), 5, 10);
        assert_eq!(t, vec![PhysExtent { file: FileId(9), offset: 5, len: 10 }]);
        assert!(d.translate(FileId(9), 5, 0).is_empty());
    }

    #[test]
    fn compact_translate_partial_gap_and_pass_through() {
        let mut d = Drt::new();
        d.insert(e(0, 100, 10, 0, 50));
        d.insert(e(0, 200, 11, 40, 50));
        let c = d.compact();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.translate(FileId(0), 120, 110), d.translate(FileId(0), 120, 110));
        assert_eq!(
            c.translate(FileId(9), 5, 10),
            vec![PhysExtent { file: FileId(9), offset: 5, len: 10 }],
            "unknown file passes through"
        );
        assert!(c.translate(FileId(0), 120, 0).is_empty());
        // A sequential walk exercises the cursor fast path at every
        // alignment relative to the entry boundaries.
        let mut out = Vec::new();
        for off in (0..300).step_by(7) {
            c.translate_into(FileId(0), off, 13, &mut out);
            assert_eq!(out, d.translate(FileId(0), off, 13), "offset {off}");
        }
        // And a backwards jump must not be confused by the warm cursor.
        c.translate_into(FileId(0), 0, 300, &mut out);
        assert_eq!(out, d.translate(FileId(0), 0, 300));
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn compact_translate_matches_btree_translate_randomized() {
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        for trial in 0..20 {
            let mut d = Drt::new();
            for _ in 0..200 {
                let of = (xorshift(&mut s) % 4) as u32;
                let oo = (xorshift(&mut s) % 10_000) * 8;
                let len = 1 + xorshift(&mut s) % 512;
                let rf = 100 + (xorshift(&mut s) % 8) as u32;
                let ro = xorshift(&mut s) % 1_000_000;
                // Overlapping candidates are rejected, leaving a random
                // mix of covered ranges and gaps.
                d.insert(e(of, oo, rf, ro, len));
            }
            let c = d.compact();
            assert_eq!(c.len(), d.len());
            // Deliberately dirty buffer: translate_into must fully
            // replace previous contents.
            let mut out = vec![PhysExtent { file: FileId(77), offset: 1, len: 1 }];
            for _ in 0..500 {
                let file = FileId((xorshift(&mut s) % 5) as u32);
                let offset = xorshift(&mut s) % 90_000;
                let len = xorshift(&mut s) % 2_000;
                let want = d.translate(file, offset, len);
                c.translate_into(file, offset, len, &mut out);
                assert_eq!(out, want, "trial {trial} file {file:?} [{offset}, +{len})");
            }
        }
    }

    #[test]
    fn drt_persistence_round_trip() {
        let path = std::env::temp_dir().join(format!("drt-rt-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store = kvstore::Store::open_default(&path).unwrap();
        let mut d = Drt::new();
        d.insert(e(0, 100, 10, 0, 50));
        d.insert(e(0, 200, 11, 40, 50));
        d.insert(e(3, 0, 12, 8, 16));
        d.save(&store).unwrap();
        let back = Drt::load(&store).unwrap();
        assert_eq!(back, d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rst_round_trip_shares_store_with_drt() {
        let path = std::env::temp_dir().join(format!("rst-rt-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store = kvstore::Store::open_default(&path).unwrap();
        let mut d = Drt::new();
        d.insert(e(0, 0, 10, 0, 64));
        d.save(&store).unwrap();
        let mut r = Rst::new();
        r.set(FileId(10), StripePair { h: 0, s: 128 << 10 });
        r.set(FileId(11), StripePair { h: 32 << 10, s: 96 << 10 });
        r.save(&store).unwrap();
        let rb = Rst::load(&store).unwrap();
        assert_eq!(rb, r);
        let db = Drt::load(&store).unwrap();
        assert_eq!(db, d);
        assert_eq!(rb.get(FileId(10)), Some(StripePair { h: 0, s: 128 << 10 }));
        assert_eq!(rb.get(FileId(99)), None);
        let _ = std::fs::remove_file(&path);
    }

    fn lanl_build() -> (Trace, RegionBuild) {
        let trace = generate(&LanlConfig::paper(6, IoOp::Write));
        let views = crate::cost::views_of(&trace);
        let feats: Vec<ReqFeature> = views.iter().map(ReqFeature::of).collect();
        let grouping = group_requests(&feats, &GroupingConfig { k: 2, ..Default::default() });
        let build = build_regions(&trace, &grouping, 1000);
        (trace, build)
    }

    #[test]
    fn lanl_regions_pack_similar_requests() {
        let (trace, build) = lanl_build();
        assert_eq!(build.regions.len(), 2);
        assert!(build.residuals.is_empty());
        // Region bytes cover the trace bytes, padded by at most one
        // alignment unit per migrated extent.
        let region_bytes: u64 = build.regions.iter().map(|r| r.len).sum();
        let extents: usize = build.regions.iter().map(|r| r.extents).sum();
        assert!(region_bytes >= trace.total_bytes());
        assert!(region_bytes < trace.total_bytes() + extents as u64 * 4096);
        // Each region is internally homogeneous in size class.
        for views in &build.region_views {
            let small = views.iter().filter(|v| v.len < 1000).count();
            assert!(small == 0 || small == views.len(), "mixed region");
        }
    }

    #[test]
    fn region_views_are_aligned_and_tile_the_region() {
        let (_, build) = lanl_build();
        for (g, views) in build.region_views.iter().enumerate() {
            // Views arrive in trace order; sorted by offset they must
            // tile the region exactly (one aligned slot per extent).
            let mut sorted: Vec<(u64, u64)> = views.iter().map(|v| (v.offset, v.len)).collect();
            sorted.sort_unstable();
            let mut cursor = 0u64;
            for (off, len) in sorted {
                assert_eq!(off % 4096, 0, "group {g}: extent start must be aligned");
                assert_eq!(off, cursor, "group {g}: hole or overlap at {off}");
                cursor = (off + len).div_ceil(4096) * 4096;
            }
            assert_eq!(cursor, build.regions[g].len, "group {g} length");
        }
    }

    #[test]
    fn custom_alignment_of_one_packs_densely() {
        let trace = generate(&LanlConfig::paper(3, IoOp::Write));
        let views = crate::cost::views_of(&trace);
        let feats: Vec<ReqFeature> = views.iter().map(ReqFeature::of).collect();
        let grouping = group_requests(&feats, &GroupingConfig { k: 2, ..Default::default() });
        let build = build_regions_aligned(&trace, &grouping, 1000, 1);
        let region_bytes: u64 = build.regions.iter().map(|r| r.len).sum();
        assert_eq!(region_bytes, trace.total_bytes(), "align=1 wastes nothing");
    }

    #[test]
    fn drt_translates_every_original_request() {
        let (trace, build) = lanl_build();
        for rec in trace.records() {
            let t = build.drt.translate(rec.file, rec.offset, rec.len);
            assert_eq!(t.len(), 1, "exact extents translate whole");
            assert!(t[0].file.0 >= 1000, "must point into a region file");
            assert_eq!(t[0].len, rec.len);
        }
    }

    /// The original BTreeMap-incremental implementation of
    /// [`build_regions_filtered`], kept verbatim (with the `members`
    /// rescan inlined) as the oracle for the interval-slab builder.
    fn build_oracle(
        trace: &Trace,
        grouping: &Grouping,
        region_file_base: u32,
        aligns: &[u64],
        include: &[bool],
    ) -> RegionBuild {
        let records = trace.records();
        let conc = trace.concurrency();
        let groups = grouping.groups();
        let mut drt = Drt::new();
        let mut cursors = vec![0u64; groups];
        let mut extent_counts = vec![0usize; groups];
        let mut group_bytes = vec![0u64; groups];
        for (i, rec) in records.iter().enumerate() {
            group_bytes[grouping.assignment[i]] += rec.len;
        }
        let mut order: Vec<usize> = (0..groups).collect();
        order.sort_by_key(|&g| std::cmp::Reverse(group_bytes[g]));
        for &g in &order {
            if !include[g] {
                continue;
            }
            let r_file = FileId(region_file_base + g as u32);
            let mut members: Vec<usize> = grouping
                .assignment
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == g)
                .map(|(i, _)| i)
                .collect();
            members.sort_by_key(|&i| (records[i].file, records[i].offset, i));
            for &i in &members {
                let rec = &records[i];
                if rec.len == 0 {
                    continue;
                }
                let gaps: Vec<(u64, u64)> = drt
                    .translate(rec.file, rec.offset, rec.len)
                    .into_iter()
                    .filter(|p| p.file == rec.file)
                    .map(|p| (p.offset, p.len))
                    .collect();
                for (off, len) in gaps {
                    let inserted = drt.insert(DrtEntry {
                        o_file: rec.file,
                        o_offset: off,
                        r_file,
                        r_offset: cursors[g],
                        length: len,
                    });
                    assert!(inserted, "translate gaps are uncovered by construction");
                    let align = aligns[g].max(1);
                    cursors[g] = (cursors[g] + len).div_ceil(align) * align;
                    extent_counts[g] += 1;
                }
            }
        }
        let mut region_views: Vec<Vec<ReqView>> = vec![Vec::new(); groups];
        let mut residuals = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            if rec.len == 0 {
                continue;
            }
            let mut any_original = false;
            for piece in drt.translate(rec.file, rec.offset, rec.len) {
                if piece.file.0 >= region_file_base {
                    let g = (piece.file.0 - region_file_base) as usize;
                    region_views[g].push(ReqView {
                        offset: piece.offset,
                        len: piece.len,
                        op: rec.op,
                        concurrency: conc[i],
                    });
                } else {
                    any_original = true;
                }
            }
            if any_original {
                residuals.push(i);
            }
        }
        let regions = (0..groups)
            .map(|g| RegionInfo {
                file: FileId(region_file_base + g as u32),
                len: cursors[g],
                group: g,
                extents: extent_counts[g],
            })
            .collect();
        RegionBuild { regions, drt, region_views, residuals }
    }

    fn assert_builds_equal(got: &RegionBuild, want: &RegionBuild, ctx: &str) {
        assert_eq!(got.drt, want.drt, "{ctx}: drt");
        assert_eq!(got.region_views, want.region_views, "{ctx}: region views");
        assert_eq!(got.residuals, want.residuals, "{ctx}: residuals");
        let key = |r: &RegionInfo| (r.file, r.len, r.group, r.extents);
        assert_eq!(
            got.regions.iter().map(key).collect::<Vec<_>>(),
            want.regions.iter().map(key).collect::<Vec<_>>(),
            "{ctx}: regions"
        );
    }

    /// Random overlapping traces, random assignments, mixed alignments
    /// and include masks: the slab builder must reproduce the BTreeMap
    /// oracle in every output field.
    #[test]
    fn drt_builder_equivalence_randomized() {
        use iotrace::record::Rank;
        use simrt::SimTime;
        let mut s = 0x0DD5_EED5_1234_4321u64;
        for trial in 0..25 {
            let n = 1 + (xorshift(&mut s) % 400) as usize;
            let k = 1 + (xorshift(&mut s) % 5) as usize;
            let mut ts = 0u64;
            let recs: Vec<iotrace::TraceRecord> = (0..n)
                .map(|i| {
                    ts += xorshift(&mut s) % 100;
                    iotrace::TraceRecord {
                        pid: 0,
                        rank: Rank((xorshift(&mut s) % 8) as u32),
                        file: FileId((xorshift(&mut s) % 4) as u32),
                        op: if xorshift(&mut s).is_multiple_of(2) { IoOp::Read } else { IoOp::Write },
                        offset: (xorshift(&mut s) % 1000) * 512,
                        len: 1 + xorshift(&mut s) % 65_536,
                        ts: SimTime::from_nanos(ts),
                        phase: (i as u32) / 16,
                    }
                })
                .collect();
            let trace = Trace::from_records(recs);
            let assignment: Vec<usize> =
                (0..n).map(|_| (xorshift(&mut s) % k as u64) as usize).collect();
            let grouping = Grouping {
                assignment,
                centers: vec![ReqFeature { size: 0.0, concurrency: 0.0 }; k],
                iterations: 0,
            };
            let aligns: Vec<u64> =
                (0..k).map(|_| [1u64, 512, 4096][(xorshift(&mut s) % 3) as usize]).collect();
            let include: Vec<bool> = (0..k).map(|_| !xorshift(&mut s).is_multiple_of(4)).collect();
            let want = build_oracle(&trace, &grouping, 1000, &aligns, &include);
            let got = build_regions_filtered(&trace, &grouping, 1000, &aligns, &include);
            assert_builds_equal(&got, &want, &format!("trial {trial} (n={n}, k={k})"));
        }
    }

    /// The paper's own workload shapes, grouped by the real Algorithm 1,
    /// through every entry point layered on `build_regions_filtered`.
    #[test]
    fn drt_builder_equivalence_on_paper_workloads() {
        for procs in [2u32, 6] {
            let trace = generate(&LanlConfig::paper(procs, IoOp::Write));
            let views = crate::cost::views_of(&trace);
            let feats: Vec<ReqFeature> = views.iter().map(ReqFeature::of).collect();
            for k in [1usize, 2, 4] {
                let grouping =
                    group_requests(&feats, &GroupingConfig { k, ..Default::default() });
                let groups = grouping.groups();
                let all = vec![true; groups];
                let aligns = vec![4096u64; groups];
                let want = build_oracle(&trace, &grouping, 1000, &aligns, &all);
                let got = build_regions_aligned(&trace, &grouping, 1000, 4096);
                assert_builds_equal(&got, &want, &format!("procs {procs} k {k} aligned"));
                // Selective mask: drop the first group.
                if groups > 1 {
                    let mut mask = all.clone();
                    mask[0] = false;
                    let want = build_oracle(&trace, &grouping, 1000, &aligns, &mask);
                    let got = build_regions_filtered(&trace, &grouping, 1000, &aligns, &mask);
                    assert_builds_equal(&got, &want, &format!("procs {procs} k {k} masked"));
                }
            }
        }
    }

    #[test]
    fn repeated_extents_are_migrated_once() {
        // A trace reading the same extent 5 times must produce one DRT
        // entry and 5 region views at the same offset.
        use iotrace::record::Rank;
        use simrt::SimTime;
        let recs: Vec<iotrace::TraceRecord> = (0..5)
            .map(|i| iotrace::TraceRecord {
                pid: 0,
                rank: Rank(0),
                file: FileId(0),
                op: IoOp::Read,
                offset: 4096,
                len: 8192,
                ts: SimTime::from_nanos(i as u64 * 20_000_000),
                phase: i,
            })
            .collect();
        let trace = Trace::from_records(recs);
        let views = crate::cost::views_of(&trace);
        let feats: Vec<ReqFeature> = views.iter().map(ReqFeature::of).collect();
        let grouping = group_requests(&feats, &GroupingConfig { k: 4, ..Default::default() });
        let build = build_regions(&trace, &grouping, 100);
        assert_eq!(build.drt.len(), 1);
        let total_views: usize = build.region_views.iter().map(Vec::len).sum();
        assert_eq!(total_views, 5);
        let region_bytes: u64 = build.regions.iter().map(|r| r.len).sum();
        assert_eq!(region_bytes, 8192, "one copy of the data");
    }
}
